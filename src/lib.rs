//! # CloudMirror
//!
//! A from-scratch Rust reproduction of **"Application-Driven Bandwidth
//! Guarantees in Datacenters"** (Lee, Turner, Lee, Popa, Banerjee, Kang,
//! Sharma — SIGCOMM 2014).
//!
//! CloudMirror provides bandwidth guarantees to cloud applications through
//! three pieces, all implemented here:
//!
//! * the **Tenant Application Graph (TAG)** abstraction — guarantees that
//!   mirror the application's communication structure instead of a physical
//!   topology ([`core::model::Tag`]);
//! * a **VM placement algorithm** that maps TAGs onto tree datacenters,
//!   saving bandwidth by provably-beneficial colocation while balancing
//!   slot/bandwidth utilization and (optionally) guaranteeing worst-case
//!   survivability ([`core::placement::CmPlacer`]);
//! * a **unified placement engine**: every algorithm here — CloudMirror,
//!   its ablations, and all baselines — implements the
//!   [`core::placement::Placer`] trait, stages changes through the
//!   transactional [`core::txn::ReservationTxn`], and yields the same
//!   [`core::placement::Deployed`] handle, so the simulator, the figure
//!   harnesses and the benches drive them interchangeably;
//! * a **runtime enforcement** layer — an ElasticSwitch-style guarantee
//!   partitioner with the paper's TAG patch, over a fluid max-min network
//!   ([`enforce`]);
//! * a **tenant-lifecycle controller** — [`Cluster`] owns a topology and
//!   any placer and exposes the whole closed loop as one typed API:
//!   `admit` / `scale_tier` / `migrate` / `depart`, plus utilization and
//!   enforcement-wired guarantee queries ([`cluster`]).
//!
//! Everything the evaluation needs is included: the tree-datacenter
//! substrate ([`topology`]), the Oktopus VC/VOC and SecondNet baselines
//! ([`baselines`]), synthetic bing/hpcloud/mixed workload pools
//! ([`workloads`]), the admission-control simulator ([`sim`]), and the
//! traffic-trace → TAG inference pipeline ([`inference`]).
//!
//! This crate is a facade: it re-exports the workspace members under one
//! name and carries the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). Start with the
//! [`cm_core`] quick-start, or run:
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release -p cm-bench --bin reproduce_all
//! ```

pub use cm_baselines as baselines;
pub use cm_cluster as cluster;
pub use cm_core as core;
pub use cm_enforce as enforce;
pub use cm_inference as inference;
pub use cm_sim as sim;
pub use cm_topology as topology;
pub use cm_workloads as workloads;

// Convenience re-exports of the items almost every user touches.
pub use cm_cluster::{
    Cluster, CmError, EcmpConfig, EcmpMode, Fault, FaultReport, GuaranteeModel, GuaranteeReport,
    RepairReport, TagSpec, TenantDamage, TenantHandle, TenantId, TrafficReport,
};
pub use cm_core::{
    CmConfig, CmPlacer, CutModel, Deployed, HaPolicy, Placer, RejectReason, ReservationTxn, Tag,
    TagBuilder, TierId,
};
pub use cm_topology::{gbps, mbps, Kbps, Topology, TreeSpec};
