//! Cross-crate safety invariants: whatever any placement algorithm does,
//! the physical ledger stays sound — no link over capacity, no slot
//! oversubscription, and a full release returns the datacenter to its
//! pristine state. Driven by proptest over random tenant batches.

use cloudmirror::baselines::{OktopusVcPlacer, OvocPlacer, SecondNetPlacer};
use cloudmirror::core::placement::Placer;
use cloudmirror::workloads::{apps, mixed_pool};
use cloudmirror::{mbps, CmConfig, CmPlacer, Topology, TreeSpec};
use proptest::prelude::*;

fn small_spec() -> TreeSpec {
    TreeSpec::small(2, 2, 4, 4, [mbps(1_000.0), mbps(2_000.0), mbps(4_000.0)])
}

/// Exact resource snapshot of the whole tree: free slots per subtree and
/// the used bandwidth of every uplink.
fn full_snapshot(topo: &Topology) -> Vec<(u64, Option<(u64, u64)>)> {
    let mut snap = Vec::new();
    for level in 0..topo.num_levels() {
        for &n in topo.nodes_at_level(level) {
            snap.push((topo.subtree_slots_free(n), topo.uplink_used(n)));
        }
    }
    snap
}

/// Strategy: a batch of (pool index, release order hint) actions.
fn arb_batch() -> impl Strategy<Value = Vec<(usize, bool)>> {
    prop::collection::vec((0usize..60, any::<bool>()), 1..25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cm_ledger_is_always_sound(batch in arb_batch(), seed in 0u64..4) {
        let pool = mixed_pool(seed);
        let spec = small_spec();
        let mut topo = Topology::build(&spec);
        let mut placer = CmPlacer::new(CmConfig::cm());
        let mut live = Vec::new();
        for (idx, release_one) in batch {
            let tag = &pool.tenants()[idx];
            if let Ok(state) = placer.place_tag(&mut topo, tag) {
                state.check_consistency(&topo).expect("tenant ledger consistent");
                live.push(state);
            }
            topo.check_invariants().expect("topology invariants");
            if release_one && !live.is_empty() {
                let mut s = live.swap_remove(0);
                s.clear(&mut topo);
                topo.check_invariants().expect("after release");
            }
        }
        for mut s in live {
            s.clear(&mut topo);
        }
        prop_assert_eq!(topo.subtree_slots_free(topo.root()), spec.total_slots());
        for l in 0..topo.num_levels() {
            prop_assert_eq!(topo.reserved_at_level(l), (0, 0));
        }
    }

    #[test]
    fn all_ha_variants_are_sound(batch in arb_batch(), rwcs in prop::sample::select(vec![0.25f64, 0.5, 0.75])) {
        let pool = mixed_pool(1);
        let spec = small_spec();
        let mut topo = Topology::build(&spec);
        let mut placer = CmPlacer::new(CmConfig::cm_ha(rwcs));
        let mut live = Vec::new();
        for (idx, _) in batch {
            let tag = &pool.tenants()[idx];
            if let Ok(state) = placer.place_tag(&mut topo, tag) {
                // Eq. 7: no fault domain holds more than the cap.
                for (server, counts) in state.placement(&topo) {
                    let _ = server;
                    for (t, &c) in counts.iter().enumerate() {
                        let n = tag.tiers()[t].size;
                        let cap = ((n as f64 * (1.0 - rwcs)).floor() as u32).max(1);
                        prop_assert!(c <= cap, "tier {t}: {c} > cap {cap} (n={n})");
                    }
                }
                live.push(state);
            }
            topo.check_invariants().expect("topology invariants");
        }
        for mut s in live {
            s.clear(&mut topo);
        }
        prop_assert_eq!(topo.subtree_slots_free(topo.root()), spec.total_slots());
    }
}

#[test]
fn baseline_placers_release_cleanly() {
    let spec = small_spec();
    let tag = apps::three_tier(4, 4, 2, mbps(40.0), mbps(10.0), mbps(5.0));
    // OVOC.
    {
        let mut topo = Topology::build(&spec);
        let mut p = OvocPlacer::new();
        let mut s = p.place_tag(&mut topo, &tag).unwrap();
        s.check_consistency(&topo).unwrap();
        s.clear(&mut topo);
        assert_eq!(topo.subtree_slots_free(topo.root()), spec.total_slots());
        topo.check_invariants().unwrap();
    }
    // VC.
    {
        let mut topo = Topology::build(&spec);
        let mut p = OktopusVcPlacer::new();
        let mut s = p.place_tag(&mut topo, &tag).unwrap();
        s.clear(&mut topo);
        assert_eq!(topo.subtree_slots_free(topo.root()), spec.total_slots());
    }
    // SecondNet.
    {
        let mut topo = Topology::build(&spec);
        let mut p = SecondNetPlacer::new();
        let mut s = p.place_tag(&mut topo, &tag).unwrap();
        s.check_consistency(&topo).unwrap();
        s.clear(&mut topo);
        assert_eq!(topo.subtree_slots_free(topo.root()), spec.total_slots());
    }
}

/// The cross-placer conservation invariant: for **every** `Placer` impl,
/// place-then-release on a shared topology — with a live background tenant
/// making the prior state nontrivial — restores all link reservations and
/// slot counters exactly. One test catches commit/rollback bugs of the
/// shared transaction engine for all algorithms at once.
#[test]
fn place_then_release_conserves_resources_for_every_placer() {
    let spec = small_spec();
    let mut topo = Topology::build(&spec);
    let mut background = CmPlacer::new(CmConfig::cm());
    let mut bg = background
        .place_tag(
            &mut topo,
            &apps::three_tier(2, 2, 2, mbps(60.0), mbps(25.0), mbps(10.0)),
        )
        .expect("background tenant fits");
    let before = full_snapshot(&topo);

    let mut placers: Vec<Box<dyn Placer>> = vec![
        Box::new(CmPlacer::new(CmConfig::cm())),
        Box::new(CmPlacer::new(CmConfig::coloc_only())),
        Box::new(CmPlacer::new(CmConfig::balance_only())),
        Box::new(CmPlacer::new(CmConfig::cm_ha(0.5))),
        Box::new(CmPlacer::new(CmConfig::cm_opp_ha())),
        Box::new(OvocPlacer::new()),
        Box::new(OktopusVcPlacer::new()),
        Box::new(SecondNetPlacer::new()),
    ];
    let tags = [
        apps::three_tier(3, 3, 2, mbps(50.0), mbps(20.0), mbps(10.0)),
        apps::mapreduce(9, mbps(15.0)),
        // Over-demanding: must bounce, also without leaving a trace.
        apps::three_tier(6, 6, 6, mbps(900.0), mbps(1.0), 0),
    ];
    for p in placers.iter_mut() {
        for tag in &tags {
            if let Ok(d) = p.place(&mut topo, tag) {
                d.check_consistency(&topo)
                    .unwrap_or_else(|e| panic!("{}: inconsistent ledger: {e}", p.name()));
                d.release(&mut topo);
            }
            assert_eq!(
                full_snapshot(&topo),
                before,
                "{} leaked slots or bandwidth",
                p.name()
            );
            topo.check_invariants().expect("topology invariants");
        }
    }

    bg.clear(&mut topo);
    assert_eq!(topo.subtree_slots_free(topo.root()), spec.total_slots());
    for l in 0..topo.num_levels() {
        assert_eq!(topo.reserved_at_level(l), (0, 0));
    }
}

#[test]
fn rejection_leaves_zero_trace_under_pressure() {
    // Fill the datacenter almost completely, then bounce oversized and
    // over-demanding tenants off it; every rejection must be side-effect
    // free.
    let spec = small_spec();
    let mut topo = Topology::build(&spec);
    let mut placer = CmPlacer::new(CmConfig::cm());
    let filler = apps::mapreduce(48, mbps(20.0));
    let _live = placer.place_tag(&mut topo, &filler).unwrap();
    let before_slots = topo.subtree_slots_free(topo.root());
    let before: Vec<_> = (0..topo.num_levels())
        .map(|l| topo.reserved_at_level(l))
        .collect();
    for tag in [
        apps::mapreduce(17, mbps(10.0)),                      // slots
        apps::three_tier(6, 6, 6, mbps(900.0), mbps(1.0), 0), // bandwidth
    ] {
        assert!(placer.place_tag(&mut topo, &tag).is_err());
        assert_eq!(topo.subtree_slots_free(topo.root()), before_slots);
        let after: Vec<_> = (0..topo.num_levels())
            .map(|l| topo.reserved_at_level(l))
            .collect();
        assert_eq!(before, after);
    }
}
