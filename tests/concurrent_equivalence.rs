//! Concurrency correctness: the sharded optimistic admission engine must
//! produce **bit-identical decisions** to the serial engine — same
//! admitted set, same placements, same reservations — for every placer,
//! any thread count, and any speculation/invalidation interleaving.
//!
//! Two layers:
//!
//! * a stress test on the paper datacenter (seeds 1–6, all five
//!   production placers) comparing full per-event outcome records and
//!   replaying the committed deltas onto a fresh topology to re-check the
//!   physical invariants;
//! * proptests interleaving concurrent commits with speculation rollbacks
//!   (random schedules, random thread counts, and the engine's
//!   force-invalidate knob, which makes every speculation take the
//!   rollback + at-turn recompute path).

use cloudmirror::baselines::{OktopusVcPlacer, OvocPlacer, SecondNetPlacer};
use cloudmirror::core::placement::{
    run_events, ConcurrentConfig, ConcurrentOutcome, Event, EventOutcome, Placer,
};
use cloudmirror::sim::schedule::{
    build_schedule, run_schedule_concurrent, run_schedule_serial, Schedule,
};
use cloudmirror::sim::SimConfig;
use cloudmirror::workloads::bing_like_pool;
use cloudmirror::{mbps, CmConfig, CmPlacer, TagBuilder, Topology, TreeSpec};
use proptest::prelude::*;
use std::sync::Arc;

/// Replay the engine's committed records onto a fresh topology: every
/// admission's slots and reservations applied, every departure released.
/// Checks the physical invariants after every event and that the final
/// state is pristine (the schedule departs everyone).
fn replay_and_check(schedule: &Schedule, outcomes: &[EventOutcome]) {
    let mut topo = schedule.topo.clone();
    let mut live: Vec<Option<Arc<cloudmirror::core::placement::AdmitRecord>>> =
        vec![None; schedule.events.len()];
    for (ei, (e, o)) in schedule.events.iter().zip(outcomes).enumerate() {
        match (e, o) {
            (Event::Arrive { .. }, EventOutcome::Arrival(ConcurrentOutcome::Admitted(rec))) => {
                for (server, counts) in &rec.placement {
                    let n: u32 = counts.iter().sum();
                    if n > 0 {
                        topo.alloc_slots(*server, n).expect("replayed slots fit");
                    }
                }
                for &(link, (o, i)) in &rec.reservations {
                    topo.adjust_uplink(link, o as i64, i as i64)
                        .expect("replayed reservation fits");
                }
                live[ei] = Some(Arc::clone(rec));
            }
            (Event::Arrive { .. }, EventOutcome::Arrival(ConcurrentOutcome::Rejected(_))) => {}
            (Event::Depart { arrival }, EventOutcome::Departure) => {
                if let Some(rec) = live[*arrival].take() {
                    for (server, counts) in &rec.placement {
                        let n: u32 = counts.iter().sum();
                        if n > 0 {
                            topo.release_slots(*server, n).expect("replayed release");
                        }
                    }
                    for &(link, (o, i)) in &rec.reservations {
                        topo.adjust_uplink(link, -(o as i64), -(i as i64))
                            .expect("replayed release");
                    }
                }
            }
            _ => panic!("outcomes misaligned with events"),
        }
        topo.check_invariants().expect("invariants after event");
    }
    // Release whatever is still live (schedules need not drain), then the
    // datacenter must be pristine.
    for rec in live.into_iter().flatten() {
        for (server, counts) in &rec.placement {
            let n: u32 = counts.iter().sum();
            if n > 0 {
                topo.release_slots(*server, n).expect("final release");
            }
        }
        for &(link, (o, i)) in &rec.reservations {
            topo.adjust_uplink(link, -(o as i64), -(i as i64))
                .expect("final release");
        }
    }
    topo.check_invariants().expect("final invariants");
    assert_eq!(
        topo.subtree_slots_free(topo.root()),
        schedule.topo.subtree_slots_free(schedule.topo.root()),
        "all slots returned"
    );
    for l in 0..topo.num_levels() {
        assert_eq!(topo.reserved_at_level(l), (0, 0), "level {l} drained");
    }
}

/// `WcsStats` equality that treats NaN (the empty min/max sentinel) as
/// equal to itself.
fn wcs_eq(a: &cloudmirror::sim::WcsStats, b: &cloudmirror::sim::WcsStats) -> bool {
    a.components == b.components
        && a.mean.to_bits() == b.mean.to_bits()
        && a.min.to_bits() == b.min.to_bits()
        && a.max.to_bits() == b.max.to_bits()
}

fn admitted_count(outcomes: &[EventOutcome]) -> usize {
    outcomes
        .iter()
        .filter(|o| matches!(o, EventOutcome::Arrival(ConcurrentOutcome::Admitted(_))))
        .count()
}

/// The stress test proper: paper datacenter, seeds 1–6, each production
/// placer; concurrent (3 workers) vs serial, full records compared.
fn stress_one<P, F>(make: F, arrivals: usize)
where
    P: Placer,
    F: Fn() -> P + Sync,
{
    let pool = bing_like_pool(42);
    for seed in 1..=6u64 {
        let mut cfg = SimConfig::paper_default();
        cfg.seed = seed;
        cfg.arrivals = arrivals;
        let schedule = build_schedule(&cfg, &pool);
        let mut serial_placer = make();
        let serial = run_schedule_serial(&schedule, &mut serial_placer);
        let concurrent = run_schedule_concurrent(&schedule, &make, 3);
        assert_eq!(
            concurrent.outcomes,
            serial.outcomes,
            "{}: seed {seed} diverged",
            make().name()
        );
        assert_eq!(concurrent.result.rejections, serial.result.rejections);
        assert!(wcs_eq(&concurrent.result.wcs, &serial.result.wcs));
        assert_eq!(concurrent.result.peak_tenants, serial.result.peak_tenants);
        replay_and_check(&schedule, &concurrent.outcomes);
        // Sanity: the runs actually admit something.
        assert!(admitted_count(&serial.outcomes) > 0, "degenerate schedule");
    }
}

#[test]
fn concurrent_matches_serial_cm_paper_seeds() {
    stress_one(|| CmPlacer::new(CmConfig::cm()), 220);
}

#[test]
fn concurrent_matches_serial_cm_ha_paper_seeds() {
    stress_one(|| CmPlacer::named(CmConfig::cm_ha(0.5), "CM+HA"), 180);
}

#[test]
fn concurrent_matches_serial_cm_opp_ha_paper_seeds() {
    // Opportunistic HA: cross-arrival predictor state plus whole-topology
    // availability reads — the hardest configuration for the speculation
    // contract (its trace degrades to read-everything).
    stress_one(|| CmPlacer::named(CmConfig::cm_opp_ha(), "CM+oppHA"), 150);
}

#[test]
fn concurrent_matches_serial_ovoc_paper_seeds() {
    stress_one(OvocPlacer::new, 220);
}

#[test]
fn concurrent_matches_serial_vc_paper_seeds() {
    stress_one(OktopusVcPlacer::new, 220);
}

#[test]
fn concurrent_matches_serial_secondnet_paper_seeds() {
    stress_one(SecondNetPlacer::new, 120);
}

// ---------------------------------------------------------------------
// Proptests: random schedules, random thread counts, forced rollbacks.
// ---------------------------------------------------------------------

fn small_schedule(tags: &[(u32, u64)], depart_stride: usize) -> Schedule {
    let topo = Topology::build(&TreeSpec::small(
        4,
        2,
        4,
        4,
        [mbps(1000.0), mbps(2000.0), mbps(4000.0)],
    ));
    let mut events = Vec::new();
    let mut arrivals = 0usize;
    for (i, &(n, sr)) in tags.iter().enumerate() {
        let mut b = TagBuilder::new("hose");
        let t = b.tier("t", 1 + n % 7);
        b.self_loop(t, 10 + sr % mbps(60.0)).unwrap();
        events.push(Event::Arrive {
            tag: Arc::new(b.build().unwrap()),
        });
        arrivals += 1;
        if depart_stride > 0 && i % depart_stride == depart_stride - 1 {
            // Depart the oldest not-yet-departed arrival.
            let departed: Vec<usize> = events
                .iter()
                .filter_map(|e| match e {
                    Event::Depart { arrival } => Some(*arrival),
                    _ => None,
                })
                .collect();
            if let Some(a) = (0..events.len())
                .filter(|&j| matches!(events[j], Event::Arrive { .. }))
                .find(|j| !departed.contains(j))
            {
                events.push(Event::Depart { arrival: a });
            }
        }
    }
    Schedule {
        events,
        arrivals,
        topo,
        wcs_level: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent commits interleaved with departures and speculation
    /// rollbacks (forced and organic) always reproduce the serial
    /// decisions, for every placer-relevant thread count and shard level.
    #[test]
    fn interleaved_commits_and_rollbacks_match_serial(
        tags in prop::collection::vec((0u32..8, 0u64..mbps(60.0)), 4..28),
        threads in 1usize..=4,
        depart_stride in 0usize..4,
        force_invalidate in any::<bool>(),
        shard_level in 1u8..=2,
    ) {
        let schedule = small_schedule(&tags, depart_stride);
        let mut serial_placer = CmPlacer::new(CmConfig::cm());
        let serial = run_schedule_serial(&schedule, &mut serial_placer);
        let cfg = ConcurrentConfig {
            threads,
            shard_level: Some(shard_level),
            wcs_level: schedule.wcs_level,
            force_invalidate,
            skip_conflict_validation: false,
        };
        let outcomes = run_events(
            &schedule.topo,
            &schedule.events,
            || CmPlacer::new(CmConfig::cm()),
            &cfg,
        );
        prop_assert_eq!(&outcomes, &serial.outcomes);
        replay_and_check(&schedule, &outcomes);
    }

    /// Same interleaving property for a translating placer (OVOC), whose
    /// speculative path exercises the traced search through a model
    /// conversion.
    #[test]
    fn interleaved_ovoc_matches_serial(
        tags in prop::collection::vec((0u32..8, 0u64..mbps(60.0)), 4..20),
        threads in 2usize..=4,
        depart_stride in 0usize..3,
    ) {
        let schedule = small_schedule(&tags, depart_stride);
        let mut serial_placer = OvocPlacer::new();
        let serial = run_schedule_serial(&schedule, &mut serial_placer);
        let concurrent = run_schedule_concurrent(&schedule, OvocPlacer::new, threads);
        prop_assert_eq!(&concurrent.outcomes, &serial.outcomes);
        replay_and_check(&schedule, &concurrent.outcomes);
    }
}
