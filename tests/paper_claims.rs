//! End-to-end checks of the paper's headline claims, each tied to the
//! table/figure it reproduces.

use cloudmirror::enforce::{fig13_throughput, fig4_throughput, GuaranteeModel};
use cloudmirror::sim::experiments::table1;
use cloudmirror::sim::{run_sim, CmAdmission, OvocAdmission, SimConfig};
use cloudmirror::workloads::{apps, bing_like_pool, mixed_pool};
use cloudmirror::{mbps, CmConfig, CmPlacer, CutModel, Topology, TreeSpec};

/// Table 1 / §2.2: VOC pricing dominates TAG pricing on the same
/// placements, and increasingly so at higher tree levels.
#[test]
fn table1_tag_beats_voc_at_every_level() {
    let pool = bing_like_pool(42);
    let rows = table1(&pool, 1, mbps(400.0));
    let (tag, voc, ovoc) = (&rows[0], &rows[1], &rows[2]);
    for l in 0..3 {
        assert!(
            tag.gbps[l] <= voc.gbps[l] + 1e-9,
            "level {l}: CM+TAG {} > CM+VOC {}",
            tag.gbps[l],
            voc.gbps[l]
        );
    }
    // The aggregation-level gap is the paper's dramatic one (0.7 vs 14.7):
    // OVOC must reserve strictly more than CM+TAG above the server level.
    assert!(
        tag.gbps[1] + tag.gbps[2] < voc.gbps[1] + voc.gbps[2],
        "TAG must strictly win above the server level"
    );
    assert!(ovoc.gbps[1] > tag.gbps[1]);
}

/// Fig. 7/8 headline: "CloudMirror can handle 40% more bandwidth demand
/// than the state of the art" — CM's rejected bandwidth must be well below
/// OVOC's under pressure.
#[test]
fn cm_rejects_less_bandwidth_than_ovoc() {
    let pool = bing_like_pool(42);
    let cfg = SimConfig {
        seed: 5,
        arrivals: 1_500,
        load: 0.9,
        td_mean: 300.0,
        bmax_kbps: mbps(1200.0),
        spec: TreeSpec::paper_datacenter(),
        wcs_level: 0,
    };
    let cm = run_sim(&cfg, &pool, &mut CmAdmission::new());
    let ovoc = run_sim(&cfg, &pool, &mut OvocAdmission::new());
    assert!(
        ovoc.rejections.bw_rate() > 0.0,
        "the scenario must stress OVOC"
    );
    assert!(
        cm.rejections.bw_rate() < ovoc.rejections.bw_rate(),
        "CM {} vs OVOC {}",
        cm.rejections.bw_rate(),
        ovoc.rejections.bw_rate()
    );
}

/// Fig. 3: the Storm split costs S·B under TAG and 2S·B under VOC.
#[test]
fn fig3_storm_cut_prices() {
    let tag = apps::storm(10, 100);
    let voc = cloudmirror::core::model::VocModel::from_tag(&tag);
    let split = vec![10, 10, 0, 0];
    assert_eq!(tag.cut_kbps(&split).0, 1000);
    assert_eq!(voc.cut_kbps(&split).0, 2000);
}

/// Fig. 4: TAG holds 500/100 under congestion; the hose yields 300:300.
#[test]
fn fig4_guarantee_isolation() {
    let tag = fig4_throughput(5, 5, GuaranteeModel::Tag);
    assert!((tag.web_mbps - 500.0).abs() < 1.0);
    assert!((tag.db_mbps - 100.0).abs() < 1.0);
    let hose = fig4_throughput(5, 5, GuaranteeModel::Hose);
    assert!((hose.web_mbps - 300.0).abs() < 1.0);
    assert!((hose.db_mbps - 300.0).abs() < 1.0);
}

/// Fig. 6: the paper's rack request is placeable with Balance but not with
/// blind colocation.
#[test]
fn fig6_balance_is_necessary() {
    let tag = apps::fig6_request();
    let mut topo = Topology::build(&TreeSpec::fig6_rack());
    let mut cm = CmPlacer::new(CmConfig::cm());
    assert!(cm.place_tag(&mut topo, &tag).is_ok(), "Fig. 6(d) must fit");

    let mut topo = Topology::build(&TreeSpec::fig6_rack());
    let mut coloc_only = CmPlacer::new(CmConfig::coloc_only());
    assert!(
        coloc_only.place_tag(&mut topo, &tag).is_err(),
        "blind colocation strands component C (Fig. 6(c))"
    );
}

/// Fig. 13: the TAG patch protects the 450 Mbps trunk guarantee for any
/// number of competing intra-tier senders; the hose model does not.
#[test]
fn fig13_protection() {
    for k in 1..=5 {
        let p = fig13_throughput(k, GuaranteeModel::Tag);
        assert!(p.x_to_z_mbps >= 450.0 - 1e-6, "k={k}: {}", p.x_to_z_mbps);
    }
    let p = fig13_throughput(5, GuaranteeModel::Hose);
    assert!(p.x_to_z_mbps < 200.0);
}

/// Fig. 11/12: guaranteed HA achieves its floor; opportunistic HA lifts
/// mean WCS at no bandwidth-rejection cost.
#[test]
fn ha_variants_behave_as_figs_11_12() {
    let pool = mixed_pool(3);
    // The WCS orderings are stable per seed; the opp-vs-CM rejection
    // comparison is noisy at 400 arrivals, so it is asserted on the mean
    // over several sim seeds (as the paper's claim is statistical).
    let seeds = [1u64, 2, 3, 4, 5, 6];
    let mut cm_bw_sum = 0.0;
    let mut opp_bw_sum = 0.0;
    for seed in seeds {
        let cfg = SimConfig {
            seed,
            arrivals: 400,
            load: 0.7,
            td_mean: 100.0,
            bmax_kbps: mbps(200.0),
            spec: TreeSpec::small(2, 4, 8, 8, [mbps(1000.0), mbps(4000.0), mbps(8000.0)]),
            wcs_level: 0,
        };
        let cm = run_sim(&cfg, &pool, &mut CmAdmission::new());
        let ha = run_sim(
            &cfg,
            &pool,
            &mut CmAdmission::with_config(CmConfig::cm_ha(0.5), "CM+HA"),
        );
        let opp = run_sim(
            &cfg,
            &pool,
            &mut CmAdmission::with_config(CmConfig::cm_opp_ha(), "CM+oppHA"),
        );
        // Guarantee: every measured component survives at the 50% floor
        // (up to the 1/N granularity of small tiers, handled by Eq. 7's
        // max(1,·)).
        assert!(
            ha.wcs.min >= 0.5 - 0.26,
            "seed {seed}: min WCS {}",
            ha.wcs.min
        );
        assert!(ha.wcs.mean > cm.wcs.mean, "seed {seed}");
        // Opportunistic: better WCS than plain CM at every seed.
        assert!(opp.wcs.mean > cm.wcs.mean, "seed {seed}");
        cm_bw_sum += cm.rejections.bw_rate();
        opp_bw_sum += opp.rejections.bw_rate();
    }
    // ... and rejections no worse than plain CM's on average.
    let n = seeds.len() as f64;
    assert!(
        opp_bw_sum / n <= cm_bw_sum / n + 0.01,
        "opp mean {} vs cm mean {}",
        opp_bw_sum / n,
        cm_bw_sum / n
    );
}

/// §5.1: "experiments using a synthetic workload ... and experiments using
/// the hpcloud workload yielded results similar to Table 1" — the model
/// ordering must hold on every pool, not just bing.
#[test]
fn table1_ordering_holds_on_all_pools() {
    for pool in [cloudmirror::workloads::hpcloud_like_pool(7), mixed_pool(7)] {
        let rows = table1(&pool, 3, mbps(300.0));
        let (tag, voc) = (&rows[0], &rows[1]);
        for l in 0..3 {
            assert!(
                tag.gbps[l] <= voc.gbps[l] + 1e-9,
                "{}: level {l}: CM+TAG {} > CM+VOC {}",
                pool.name(),
                tag.gbps[l],
                voc.gbps[l]
            );
        }
    }
}

/// §5.1: "CM+pipe consuming 8% less bandwidth than SecondNet" — more
/// generally, idealized pipes priced on any placement cost no more than
/// the TAG pricing of that placement.
#[test]
fn pipes_price_below_tag_on_deployments() {
    let tag = apps::three_tier(6, 6, 4, mbps(50.0), mbps(20.0), mbps(10.0));
    let spec = TreeSpec::small(2, 2, 4, 4, [mbps(1000.0), mbps(2000.0), mbps(4000.0)]);
    let mut topo = Topology::build(&spec);
    let mut cm = CmPlacer::new(CmConfig::cm());
    let state = cm.place_tag(&mut topo, &tag).unwrap();
    let pipe = cloudmirror::core::model::PipeModel::from_tag_idealized(&tag);
    // Price every server cut both ways.
    for (server, counts) in state.placement(&topo) {
        let mut pipe_inside = Vec::new();
        // Reconstruct a consistent per-VM membership: first-k of each tier
        // on this server is a valid relabeling for cut pricing.
        let mut offsets = [0u32; 3];
        let mut acc = 0;
        for (off, tier) in offsets.iter_mut().zip(tag.tiers()) {
            *off = acc;
            acc += tier.size;
        }
        let mut member = vec![0u32; acc as usize];
        for (t, &c) in counts.iter().enumerate() {
            for i in 0..c {
                member[(offsets[t] + i) as usize] = 1;
            }
        }
        pipe_inside.extend(member);
        let (po, pi) = pipe.cut_kbps(&pipe_inside);
        let (to, ti) = tag.cut_kbps(&counts);
        let slack = pipe.pipes().len() as u64;
        assert!(po + pi <= to + ti + slack, "server {server}");
    }
}
