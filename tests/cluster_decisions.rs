//! Golden admission decisions across the `Cluster` lifecycle redesign.
//!
//! The simulator's event loop is now a thin driver over the
//! `cm_cluster::Cluster` controller (arrival = `admit`, departure =
//! `depart`), and `PlacerAdmission` delegates to the same admission front
//! door. That is pure plumbing: every fingerprint below was captured from
//! the pre-redesign loop (the commit before this one) and must keep
//! matching bit-for-bit — paper sims on the 2048-server datacenter plus a
//! bandwidth-starved small tree, seeds 1–6, for every CloudMirror variant
//! and both Oktopus baselines (SecondNet has its own golden file,
//! `secondnet_decisions.rs`).

use cloudmirror::sim::events::{run_sim, SimConfig};
use cloudmirror::sim::{Admission, CmAdmission, OvocAdmission, VcAdmission};
use cloudmirror::workloads::bing_like_pool;
use cloudmirror::{mbps, CmConfig, TreeSpec};

fn fingerprint(cfg: &SimConfig, adm: &mut dyn Admission) -> String {
    let pool = bing_like_pool(42);
    let r = run_sim(cfg, &pool, adm);
    format!(
        "rej={} slots={} bw={} vms={} bwk={} wcs_components={} wcs_mean={:.6} peak={}",
        r.rejections.rejected_tenants,
        r.rejections.rejected_for_slots,
        r.rejections.rejected_for_bandwidth,
        r.rejections.rejected_vms,
        r.rejections.rejected_bw_kbps,
        r.wcs.components,
        r.wcs.mean,
        r.peak_tenants
    )
}

fn paper_cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.seed = seed;
    cfg.arrivals = 150;
    cfg
}

fn small_cfg(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        arrivals: 250,
        load: 0.9,
        td_mean: 100.0,
        bmax_kbps: mbps(300.0),
        spec: TreeSpec::small(2, 4, 8, 8, [mbps(1000.0), mbps(4000.0), mbps(8000.0)]),
        wcs_level: 0,
    }
}

fn assert_goldens(
    make: impl Fn() -> Box<dyn Admission>,
    name: &str,
    paper: [&str; 6],
    small: [&str; 6],
) {
    for seed in 1..=6u64 {
        assert_eq!(
            fingerprint(&paper_cfg(seed), make().as_mut()),
            paper[(seed - 1) as usize],
            "{name} paper seed {seed}"
        );
        assert_eq!(
            fingerprint(&small_cfg(seed), make().as_mut()),
            small[(seed - 1) as usize],
            "{name} small seed {seed}"
        );
    }
}

#[test]
fn cm_decisions_unchanged_seeds_1_to_6() {
    assert_goldens(
        || Box::new(CmAdmission::new()),
        "CM",
        [
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=849 wcs_mean=0.102429 peak=136",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=604 wcs_mean=0.080362 peak=138",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=762 wcs_mean=0.101845 peak=140",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=810 wcs_mean=0.088642 peak=138",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=789 wcs_mean=0.082080 peak=137",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=728 wcs_mean=0.104821 peak=136",
        ],
        [
            "rej=44 slots=3 bw=41 vms=6366 bwk=755626575 wcs_components=706 wcs_mean=0.384371 peak=13",
            "rej=40 slots=7 bw=33 vms=8405 bwk=889446665 wcs_components=772 wcs_mean=0.366180 peak=11",
            "rej=76 slots=9 bw=67 vms=12135 bwk=1345029826 wcs_components=595 wcs_mean=0.403161 peak=11",
            "rej=40 slots=8 bw=32 vms=8953 bwk=887700693 wcs_components=664 wcs_mean=0.381908 peak=13",
            "rej=53 slots=9 bw=44 vms=8803 bwk=1030522043 wcs_components=647 wcs_mean=0.367860 peak=12",
            "rej=42 slots=7 bw=35 vms=8678 bwk=972556537 wcs_components=578 wcs_mean=0.410218 peak=12",
        ],
    );
}

#[test]
fn cm_ha_decisions_unchanged_seeds_1_to_6() {
    assert_goldens(
        || Box::new(CmAdmission::with_config(CmConfig::cm_ha(0.5), "CM+HA")),
        "CM+HA",
        [
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=849 wcs_mean=0.546868 peak=136",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=604 wcs_mean=0.544178 peak=138",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=762 wcs_mean=0.544527 peak=140",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=810 wcs_mean=0.543342 peak=138",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=789 wcs_mean=0.546130 peak=137",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=728 wcs_mean=0.542035 peak=136",
        ],
        [
            "rej=52 slots=3 bw=49 vms=6849 bwk=826501287 wcs_components=648 wcs_mean=0.600395 peak=12",
            "rej=40 slots=9 bw=31 vms=8474 bwk=897558221 wcs_components=770 wcs_mean=0.596451 peak=11",
            "rej=67 slots=9 bw=58 vms=11448 bwk=1248145162 wcs_components=619 wcs_mean=0.615393 peak=11",
            "rej=40 slots=8 bw=32 vms=8816 bwk=880541916 wcs_components=665 wcs_mean=0.611535 peak=13",
            "rej=55 slots=5 bw=50 vms=8581 bwk=990246397 wcs_components=671 wcs_mean=0.601126 peak=12",
            "rej=42 slots=5 bw=37 vms=7721 bwk=855375266 wcs_components=599 wcs_mean=0.608542 peak=12",
        ],
    );
}

#[test]
fn cm_opp_ha_decisions_unchanged_seeds_1_to_6() {
    assert_goldens(
        || Box::new(CmAdmission::with_config(CmConfig::cm_opp_ha(), "CM+oppHA")),
        "CM+oppHA",
        [
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=849 wcs_mean=0.196653 peak=136",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=604 wcs_mean=0.256750 peak=138",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=762 wcs_mean=0.298229 peak=140",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=810 wcs_mean=0.292164 peak=138",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=789 wcs_mean=0.250998 peak=137",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=728 wcs_mean=0.230683 peak=136",
        ],
        [
            "rej=44 slots=3 bw=41 vms=6488 bwk=762512357 wcs_components=705 wcs_mean=0.410347 peak=13",
            "rej=42 slots=7 bw=35 vms=8464 bwk=879999382 wcs_components=745 wcs_mean=0.409962 peak=11",
            "rej=64 slots=12 bw=52 vms=12789 bwk=1362074550 wcs_components=637 wcs_mean=0.433748 peak=11",
            "rej=43 slots=10 bw=33 vms=9031 bwk=936890841 wcs_components=675 wcs_mean=0.414510 peak=13",
            "rej=51 slots=8 bw=43 vms=8066 bwk=943773619 wcs_components=668 wcs_mean=0.412959 peak=12",
            "rej=42 slots=7 bw=35 vms=8678 bwk=972556537 wcs_components=578 wcs_mean=0.427916 peak=12",
        ],
    );
}

#[test]
fn ablation_decisions_unchanged_seeds_1_to_6() {
    assert_goldens(
        || Box::new(CmAdmission::with_config(CmConfig::coloc_only(), "Coloc")),
        "Coloc",
        [
            "rej=2 slots=0 bw=2 vms=408 bwk=136674557 wcs_components=649 wcs_mean=0.067368 peak=138",
            "rej=1 slots=0 bw=1 vms=290 bwk=104897640 wcs_components=595 wcs_mean=0.074901 peak=137",
            "rej=8 slots=0 bw=8 vms=2590 bwk=832971644 wcs_components=576 wcs_mean=0.083427 peak=136",
            "rej=4 slots=0 bw=4 vms=612 bwk=200560397 wcs_components=639 wcs_mean=0.082140 peak=131",
            "rej=3 slots=0 bw=3 vms=526 bwk=168451474 wcs_components=779 wcs_mean=0.073775 peak=132",
            "rej=10 slots=0 bw=10 vms=2260 bwk=792104048 wcs_components=586 wcs_mean=0.076498 peak=125",
        ],
        [
            "rej=157 slots=6 bw=151 vms=13404 bwk=1575418092 wcs_components=300 wcs_mean=0.157927 peak=8",
            "rej=145 slots=2 bw=143 vms=11888 bwk=1445246716 wcs_components=393 wcs_mean=0.167041 peak=9",
            "rej=167 slots=9 bw=158 vms=16113 bwk=1873231408 wcs_components=269 wcs_mean=0.140637 peak=7",
            "rej=163 slots=5 bw=158 vms=13864 bwk=1656056242 wcs_components=290 wcs_mean=0.137101 peak=9",
            "rej=153 slots=2 bw=151 vms=11908 bwk=1425727061 wcs_components=284 wcs_mean=0.152265 peak=9",
            "rej=131 slots=4 bw=127 vms=11662 bwk=1364817351 wcs_components=346 wcs_mean=0.153423 peak=10",
        ],
    );
    assert_goldens(
        || Box::new(CmAdmission::with_config(CmConfig::balance_only(), "Balance")),
        "Balance",
        [
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=849 wcs_mean=0.133480 peak=136",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=604 wcs_mean=0.126440 peak=138",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=762 wcs_mean=0.134565 peak=140",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=810 wcs_mean=0.129277 peak=138",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=789 wcs_mean=0.129029 peak=137",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=728 wcs_mean=0.147812 peak=136",
        ],
        [
            "rej=59 slots=6 bw=53 vms=7546 bwk=842354794 wcs_components=610 wcs_mean=0.446258 peak=13",
            "rej=37 slots=3 bw=34 vms=6155 bwk=654836130 wcs_components=725 wcs_mean=0.418356 peak=11",
            "rej=67 slots=7 bw=60 vms=10500 bwk=1225306853 wcs_components=602 wcs_mean=0.420719 peak=13",
            "rej=55 slots=9 bw=46 vms=9947 bwk=1083681885 wcs_components=559 wcs_mean=0.415596 peak=15",
            "rej=58 slots=6 bw=52 vms=9465 bwk=1124840238 wcs_components=655 wcs_mean=0.401438 peak=13",
            "rej=44 slots=6 bw=38 vms=8496 bwk=946849080 wcs_components=567 wcs_mean=0.428212 peak=12",
        ],
    );
}

#[test]
fn baseline_decisions_unchanged_seeds_1_to_6() {
    assert_goldens(
        || Box::new(OvocAdmission::new()),
        "OVOC",
        [
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=849 wcs_mean=0.041327 peak=136",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=604 wcs_mean=0.037308 peak=138",
            "rej=2 slots=0 bw=2 vms=1464 bwk=343617774 wcs_components=701 wcs_mean=0.041342 peak=141",
            "rej=2 slots=0 bw=2 vms=1464 bwk=343617774 wcs_components=708 wcs_mean=0.036230 peak=133",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=789 wcs_mean=0.035471 peak=137",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=728 wcs_mean=0.043471 peak=136",
        ],
        [
            "rej=61 slots=4 bw=57 vms=8309 bwk=1019891891 wcs_components=576 wcs_mean=0.312832 peak=15",
            "rej=69 slots=4 bw=65 vms=8168 bwk=1009750617 wcs_components=607 wcs_mean=0.284573 peak=12",
            "rej=67 slots=7 bw=60 vms=12011 bwk=1401651076 wcs_components=525 wcs_mean=0.352973 peak=11",
            "rej=69 slots=7 bw=62 vms=10821 bwk=1216557248 wcs_components=431 wcs_mean=0.391388 peak=16",
            "rej=73 slots=5 bw=68 vms=10508 bwk=1302829578 wcs_components=496 wcs_mean=0.307918 peak=14",
            "rej=47 slots=5 bw=42 vms=7375 bwk=814212817 wcs_components=545 wcs_mean=0.311833 peak=11",
        ],
    );
    assert_goldens(
        || Box::new(VcAdmission::new()),
        "VC",
        [
            "rej=1 slots=0 bw=1 vms=732 bwk=171808887 wcs_components=721 wcs_mean=0.041581 peak=139",
            "rej=0 slots=0 bw=0 vms=0 bwk=0 wcs_components=604 wcs_mean=0.041883 peak=138",
            "rej=2 slots=0 bw=2 vms=1464 bwk=343617774 wcs_components=666 wcs_mean=0.042626 peak=141",
            "rej=2 slots=0 bw=2 vms=1464 bwk=343617774 wcs_components=673 wcs_mean=0.034984 peak=132",
            "rej=1 slots=0 bw=1 vms=732 bwk=171808887 wcs_components=740 wcs_mean=0.039297 peak=135",
            "rej=3 slots=0 bw=3 vms=2196 bwk=515426661 wcs_components=644 wcs_mean=0.036745 peak=133",
        ],
        [
            "rej=63 slots=4 bw=59 vms=8083 bwk=955245921 wcs_components=542 wcs_mean=0.313894 peak=15",
            "rej=76 slots=2 bw=74 vms=8177 bwk=1007370445 wcs_components=619 wcs_mean=0.265700 peak=12",
            "rej=89 slots=6 bw=83 vms=12224 bwk=1447237525 wcs_components=523 wcs_mean=0.296370 peak=10",
            "rej=74 slots=8 bw=66 vms=11559 bwk=1343121300 wcs_components=476 wcs_mean=0.321684 peak=13",
            "rej=67 slots=6 bw=61 vms=11290 bwk=1391901830 wcs_components=508 wcs_mean=0.314669 peak=14",
            "rej=59 slots=6 bw=53 vms=9407 bwk=1074746235 wcs_components=548 wcs_mean=0.285558 peak=11",
        ],
    );
}
