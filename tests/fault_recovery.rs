//! Golden fault-recovery claims: kill one ToR-level fault domain on
//! identical CM and CM+HA workloads and *measure* the paper's §4.5
//! survivability story end to end.
//!
//! * CM+HA (Eq. 7 enforced at the ToR level) retains at least its admitted
//!   `rwcs` fraction of every tier — and hence ≥ `rwcs²` of its VM pairs —
//!   with the surviving guarantees still met in the fluid traffic solve.
//! * Plain CM, judged against the same bound it never enforced, loses
//!   everything it colocated under the dead ToR.
//! * After repair, a quiesced cluster's guarantee verdicts are restored
//!   **bit-identically**: the placer is deterministic and the restored
//!   topology is exactly the pre-fault one. The evicted CM tenant is
//!   re-placed wholesale, so its full report (servers included) matches
//!   bit for bit; the surviving CM+HA fragment regrows through the placer,
//!   which returns the lost VMs to the same servers but may pick a
//!   different tier mix per server — its *verdicts* (model, tier sizes,
//!   server multiset, per-pair guarantees, zero violations) match bit for
//!   bit.

use cloudmirror::core::placement::wcs_cap;
use cloudmirror::topology::NodeId;
use cloudmirror::{
    mbps, Cluster, CmConfig, CmPlacer, Fault, HaPolicy, TagBuilder, Topology, TreeSpec,
};

const RWCS: f64 = 0.5;

fn spec() -> TreeSpec {
    TreeSpec::small(2, 2, 4, 4, [mbps(1_000.0), mbps(2_000.0), mbps(4_000.0)])
}

fn web_db() -> cloudmirror::Tag {
    let mut b = TagBuilder::new("webdb");
    let w = b.tier("web", 8);
    let d = b.tier("db", 4);
    b.sym_edge(w, d, mbps(20.0)).unwrap();
    b.self_loop(d, mbps(10.0)).unwrap();
    b.build().unwrap()
}

fn cm_ha() -> CmConfig {
    CmConfig {
        ha: HaPolicy::Guaranteed {
            rwcs: RWCS,
            laa_level: 1,
        },
        ..CmConfig::default()
    }
}

/// The ToR hosting the most of the tenant's VMs — the worst single domain
/// to lose.
fn worst_tor(cluster: &Cluster<CmPlacer>, id: cloudmirror::TenantId) -> NodeId {
    let topo = cluster.topology();
    let mut per_tor: std::collections::HashMap<NodeId, u32> = std::collections::HashMap::new();
    for (server, counts) in cluster.placement_of(id).unwrap() {
        let tor = topo
            .path_to_root(server)
            .find(|&n| topo.level(n) == 1)
            .unwrap();
        *per_tor.entry(tor).or_default() += counts.iter().sum::<u32>();
    }
    per_tor
        .into_iter()
        .max_by_key(|&(n, c)| (c, std::cmp::Reverse(n.0)))
        .unwrap()
        .0
}

#[test]
fn tor_kill_separates_cm_from_cm_ha_and_repair_is_bit_identical() {
    for (cfg, enforced) in [(CmConfig::cm(), false), (cm_ha(), true)] {
        let label = if enforced { "CM+HA" } else { "CM" };
        let mut cluster = Cluster::adopt(Topology::build(&spec()), CmPlacer::new(cfg));
        let h = cluster.admit(web_db()).unwrap();
        let pre_guarantees = cluster.guarantee_report(h.id()).unwrap();
        let pre_traffic = cluster.traffic_report();
        assert_eq!(pre_traffic.violations, 0, "{label}: healthy start");
        let pre_pairs = pre_guarantees.pairs.len();

        let tor = worst_tor(&cluster, h.id());
        let report = cluster.inject_fault(Fault::Domain(tor)).unwrap();
        assert_eq!(report.failed_servers.len(), 4, "{label}: whole rack dies");
        let damage = &report.tenants[0];

        // Measured per-tier survivability against the admitted Eq. 7 bound.
        let mut violated = false;
        for (t, &pre) in damage.pre_sizes.iter().enumerate() {
            if pre == 0 {
                continue;
            }
            let surviving = (pre - damage.lost[t].min(pre)) as f64 / pre as f64;
            let bound = 1.0 - wcs_cap(pre, RWCS) as f64 / pre as f64;
            if surviving + 1e-9 < bound {
                violated = true;
            }
            if enforced {
                assert!(
                    surviving + 1e-9 >= bound,
                    "{label} tier {t}: survived {surviving} < admitted bound {bound}"
                );
                assert!(surviving >= RWCS, "{label}: Eq. 7 keeps ≥ rwcs per tier");
            }
        }
        if enforced {
            // Eq. 7 guarantees each tier keeps ≥ `n − wcs_cap(n)` VMs, so
            // the intact-pair count is bounded below by pairing those
            // guaranteed survivors (self-loop pairs shrink as k·(k−1));
            // and the survivors' guarantees still hold in the fluid solve
            // over the degraded tree.
            let guaranteed = |n: u32| (n - wcs_cap(n, RWCS).min(n)) as f64;
            let mut bound_pairs = 0.0;
            for p in &pre_guarantees.pairs {
                let (ta, tb) = (pre_guarantees.vm_tier[p.src], pre_guarantees.vm_tier[p.dst]);
                let (na, nb) = (
                    damage.pre_sizes[ta.index()] as f64,
                    damage.pre_sizes[tb.index()] as f64,
                );
                let (ga, gb) = (guaranteed(na as u32), guaranteed(nb as u32));
                bound_pairs += if ta == tb {
                    (ga / na) * ((ga - 1.0).max(0.0) / (nb - 1.0).max(1.0))
                } else {
                    (ga / na) * (gb / nb)
                };
            }
            let surviving_pairs = cluster.guarantee_report(h.id()).unwrap().pairs.len();
            assert!(
                surviving_pairs as f64 + 1e-9 >= bound_pairs,
                "{label}: {surviving_pairs}/{pre_pairs} pairs intact, admitted bound {bound_pairs}"
            );
            let degraded = cluster.traffic_report();
            assert_eq!(degraded.violations, 0, "{label}: survivors stay whole");
        } else {
            assert!(
                violated,
                "{label}: colocation must break the unenforced bound"
            );
            assert!(damage.evicted, "{label}: the colocated tenant dies whole");
        }

        // Repair on the quiesced cluster: deterministic placer + exactly
        // restored topology ⇒ bit-identical guarantee verdicts.
        let repair = cluster.repair(Fault::Domain(tor)).unwrap();
        assert_eq!(repair.repaired, vec![h.id()], "{label}: repaired");
        assert!(repair.degraded.is_empty(), "{label}: no degraded repairs");
        let post_guarantees = cluster.guarantee_report(h.id()).unwrap();
        let post_traffic = cluster.traffic_report();
        assert_eq!(
            post_traffic.violations, 0,
            "{label}: repaired guarantees hold"
        );
        if enforced {
            // The fragment regrew through the placer: same servers, but the
            // tier mix per server may differ from the pre-fault layout, so
            // compare the placement-independent verdicts bit for bit.
            assert_eq!(post_guarantees.model, pre_guarantees.model);
            let sorted_servers = |g: &cloudmirror::GuaranteeReport| {
                let mut v = g.vm_server.clone();
                v.sort_by_key(|n| n.0);
                v
            };
            assert_eq!(
                sorted_servers(&post_guarantees),
                sorted_servers(&pre_guarantees),
                "{label}: repair returns the lost VMs to the same servers"
            );
            let tier_sizes = |g: &cloudmirror::GuaranteeReport| {
                let mut sizes = vec![0u32; damage.pre_sizes.len()];
                for t in &g.vm_tier {
                    sizes[t.index()] += 1;
                }
                sizes
            };
            assert_eq!(
                tier_sizes(&post_guarantees),
                tier_sizes(&pre_guarantees),
                "{label}: every tier regrows to its admitted size"
            );
            let sorted_kbps = |g: &cloudmirror::GuaranteeReport| {
                let mut v: Vec<f64> = g.pairs.iter().map(|p| p.kbps).collect();
                v.sort_by(f64::total_cmp);
                v
            };
            assert_eq!(
                sorted_kbps(&post_guarantees),
                sorted_kbps(&pre_guarantees),
                "{label}: per-pair guarantees restore bit-identically"
            );
        } else {
            assert_eq!(
                post_guarantees, pre_guarantees,
                "{label}: guarantee verdicts must restore bit-identically"
            );
            assert_eq!(
                post_traffic.total_rate_kbps, pre_traffic.total_rate_kbps,
                "{label}: measured throughput restores exactly"
            );
        }

        cluster.depart(h.id()).unwrap();
        assert_eq!(cluster.topology().slots_in_use(), 0);
        cluster.check_invariants().unwrap();
    }
}
