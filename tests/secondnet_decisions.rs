//! Golden admission decisions for the SecondNet placer.
//!
//! The matching-search optimizations (range-based affinity, closed-form
//! NIC feasibility, incremental switch cuts, conversion memoization) are
//! pure performance work: every fingerprint below was captured from the
//! pre-optimization placer and must keep matching bit-for-bit. The
//! fingerprints cover paper sims on the 2048-server datacenter, seeds
//! 1–6, plus a heavily bandwidth-constrained small datacenter where
//! rejections and the retry machinery dominate.

use cloudmirror::sim::events::{run_sim, SimConfig};
use cloudmirror::sim::SecondNetAdmission;
use cloudmirror::workloads::bing_like_pool;
use cloudmirror::{mbps, TreeSpec};

fn fingerprint(cfg: &SimConfig) -> String {
    let pool = bing_like_pool(42);
    let r = run_sim(cfg, &pool, &mut SecondNetAdmission::new());
    format!(
        "rej={} slots={} bw={} vms={} bwk={} wcs_components={} peak={}",
        r.rejections.rejected_tenants,
        r.rejections.rejected_for_slots,
        r.rejections.rejected_for_bandwidth,
        r.rejections.rejected_vms,
        r.rejections.rejected_bw_kbps,
        r.wcs.components,
        r.peak_tenants
    )
}

#[test]
fn paper_datacenter_decisions_unchanged_seeds_1_to_6() {
    // Captured from the pre-optimization greedy (commit before this one),
    // paper datacenter, 150 arrivals per seed.
    let expected = [
        "rej=2 slots=0 bw=2 vms=580 bwk=209795280 wcs_components=0 peak=136",
        "rej=1 slots=0 bw=1 vms=290 bwk=104897640 wcs_components=0 peak=137",
        "rej=5 slots=0 bw=5 vms=1450 bwk=524488200 wcs_components=0 peak=139",
        "rej=3 slots=0 bw=3 vms=870 bwk=314692920 wcs_components=0 peak=133",
        "rej=3 slots=0 bw=3 vms=870 bwk=314692920 wcs_components=0 peak=130",
        "rej=2 slots=0 bw=2 vms=580 bwk=209795280 wcs_components=0 peak=135",
    ];
    for seed in 1..=6u64 {
        let mut cfg = SimConfig::paper_default();
        cfg.seed = seed;
        cfg.arrivals = 150;
        assert_eq!(
            fingerprint(&cfg),
            expected[(seed - 1) as usize],
            "paper seed {seed}"
        );
    }
}

#[test]
fn constrained_small_datacenter_decisions_unchanged() {
    // Same capture on a bandwidth-starved small tree (heavy rejection and
    // ban-retry traffic), 250 arrivals per seed.
    let expected = [
        "rej=52 slots=5 bw=47 vms=7343 bwk=904034786 wcs_components=0 peak=15",
        "rej=49 slots=6 bw=43 vms=7779 bwk=938186853 wcs_components=0 peak=11",
        "rej=67 slots=8 bw=59 vms=10486 bwk=1317891506 wcs_components=0 peak=12",
        "rej=69 slots=13 bw=56 vms=11133 bwk=1261262724 wcs_components=0 peak=14",
        "rej=56 slots=6 bw=50 vms=10043 bwk=1190238462 wcs_components=0 peak=12",
        "rej=45 slots=4 bw=41 vms=8216 bwk=940237070 wcs_components=0 peak=12",
    ];
    for seed in 1..=6u64 {
        let cfg = SimConfig {
            seed,
            arrivals: 250,
            load: 0.9,
            td_mean: 100.0,
            bmax_kbps: mbps(300.0),
            spec: TreeSpec::small(2, 4, 8, 8, [mbps(1000.0), mbps(4000.0), mbps(8000.0)]),
            wcs_level: 0,
        };
        assert_eq!(
            fingerprint(&cfg),
            expected[(seed - 1) as usize],
            "small seed {seed}"
        );
    }
}
