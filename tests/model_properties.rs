//! Property-based tests of the model mathematics that the paper's
//! arguments rest on:
//!
//! * TAG's cut price never exceeds VOC's for the same placement
//!   (footnote 7: "one can easily prove...");
//! * VC (plain hose) never beats VOC;
//! * idealized pipes never cost more than TAG on a cut;
//! * colocation savings are non-negative (cut subadditivity);
//! * the hose and pipe models are exact special cases of TAG (§3).

use cloudmirror::core::model::{PipeModel, Tag, TagBuilder, VocModel};
use cloudmirror::core::CutModel;
use proptest::prelude::*;

/// Strategy: a random well-formed TAG with up to 5 internal tiers.
fn arb_tag() -> impl Strategy<Value = Tag> {
    let tiers = prop::collection::vec(1u32..12, 1..5);
    (tiers, any::<u64>()).prop_map(|(sizes, seed)| {
        let mut b = TagBuilder::new("prop");
        let ids: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| b.tier(format!("t{i}"), s))
            .collect();
        // Deterministic pseudo-random edge structure from the seed.
        let mut x = seed | 1;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..ids.len() {
            for j in 0..ids.len() {
                if i == j {
                    if next() % 3 == 0 {
                        let _ = b.self_loop(ids[i], 10 + next() % 1000);
                    }
                } else if next() % 2 == 0 {
                    let _ = b.edge(ids[i], ids[j], 10 + next() % 1000, 10 + next() % 1000);
                }
            }
        }
        // Guarantee at least one edge so the TAG is non-trivial.
        if next() % 2 == 0 || ids.len() == 1 {
            let _ = b.self_loop(ids[0], 500);
        } else {
            let _ = b.edge(ids[0], ids[1], 500, 500);
        }
        b.build().expect("generated TAG is valid")
    })
}

/// Strategy: a TAG plus a random inside-count vector for a cut.
fn arb_tag_and_cut() -> impl Strategy<Value = (Tag, Vec<u32>)> {
    arb_tag().prop_flat_map(|tag| {
        let sizes = tag.placeable_counts();
        let inside: Vec<BoxedStrategy<u32>> = sizes.iter().map(|&s| (0..=s).boxed()).collect();
        (Just(tag), inside)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tag_cut_never_exceeds_voc_cut((tag, inside) in arb_tag_and_cut()) {
        let voc = VocModel::from_tag(&tag);
        let (to, ti) = tag.cut_kbps(&inside);
        let (vo, vi) = voc.cut_kbps(&inside);
        prop_assert!(to <= vo, "TAG out {to} > VOC out {vo}");
        prop_assert!(ti <= vi, "TAG in {ti} > VOC in {vi}");
    }

    #[test]
    fn voc_cut_never_exceeds_vc_cut((tag, inside) in arb_tag_and_cut()) {
        let voc = VocModel::from_tag(&tag);
        let vc = VocModel::vc_from_tag(&tag);
        let (vo, vi) = voc.cut_kbps(&inside);
        let (co, ci) = vc.cut_kbps(&inside);
        prop_assert!(vo <= co && vi <= ci, "VOC ({vo},{vi}) vs VC ({co},{ci})");
    }

    #[test]
    fn pipes_never_exceed_tag((tag, inside) in arb_tag_and_cut()) {
        let pipe = PipeModel::from_tag_idealized(&tag);
        // Expand tier counts into per-VM membership (first `k` VMs of each
        // tier inside).
        let mut pipe_inside = Vec::new();
        for (t, &k) in inside.iter().enumerate() {
            let n = tag.tier_size(t);
            for i in 0..n {
                pipe_inside.push(u32::from(i < k));
            }
        }
        let (to, ti) = tag.cut_kbps(&inside);
        let (po, pi) = pipe.cut_kbps(&pipe_inside);
        // Rounding the per-pipe division can add at most 0.5 kbps per pipe.
        let slack = pipe.pipes().len() as u64 + 1;
        prop_assert!(po <= to + slack, "pipe out {po} > TAG out {to} (+{slack})");
        prop_assert!(pi <= ti + slack, "pipe in {pi} > TAG in {ti} (+{slack})");
    }

    #[test]
    fn coloc_saving_is_non_negative((tag, extra) in arb_tag_and_cut()) {
        // Splitting `extra` arbitrarily against an existing population can
        // never make the colocated cut worse than full spread.
        let existing: Vec<u32> = tag
            .placeable_counts()
            .iter()
            .zip(&extra)
            .map(|(&s, &e)| s - e)
            .collect();
        let saving = tag.coloc_saving_kbps(&existing, &extra);
        // coloc_saving uses saturating_sub; verify directly as well.
        let (eo, ei) = tag.cut_kbps(&existing);
        let (so, si) = tag.cut_spread_kbps(&extra);
        let combined: Vec<u32> = existing.iter().zip(&extra).map(|(&a, &b)| a + b).collect();
        let (co, ci) = tag.cut_kbps(&combined);
        prop_assert!(co + ci <= eo + ei + so + si, "subadditivity violated");
        let _ = saving;
    }

    #[test]
    fn empty_and_full_cuts_cost_only_external((tag, _) in arb_tag_and_cut()) {
        let zero = vec![0u32; tag.num_tiers()];
        prop_assert_eq!(tag.cut_kbps(&zero), (0, 0));
        let full = tag.placeable_counts();
        // Pools here have no external components, so a fully-contained
        // tenant needs nothing on its uplink.
        prop_assert_eq!(tag.cut_kbps(&full), tag.external_demand_kbps());
        prop_assert_eq!(tag.external_demand_kbps(), (0, 0));
    }

    #[test]
    fn edge_crossing_sums_to_cut((tag, inside) in arb_tag_and_cut()) {
        // The O(degree) incremental form used by the placer must tile the
        // full Eq. 1 exactly.
        let total: u64 = tag
            .edges()
            .iter()
            .map(|e| tag.edge_crossing_kbps(e, &inside))
            .sum();
        let (o, i) = tag.cut_kbps(&inside);
        prop_assert_eq!(total, o + i);
    }

    #[test]
    fn scaling_scales_cuts_linearly((tag, inside) in arb_tag_and_cut()) {
        let doubled = tag.scaled(2.0);
        let (o1, i1) = tag.cut_kbps(&inside);
        let (o2, i2) = doubled.cut_kbps(&inside);
        prop_assert_eq!(o2, o1 * 2);
        prop_assert_eq!(i2, i1 * 2);
    }
}

#[test]
fn hose_is_a_tag_special_case() {
    // §3: "a TAG with one component and a self-loop is the hose model."
    let mut b = TagBuilder::new("hose");
    let t = b.tier("all", 9);
    b.self_loop(t, 250).unwrap();
    let tag = b.build().unwrap();
    let vc = VocModel::vc_from_tag(&tag);
    for k in 0..=9u32 {
        assert_eq!(tag.cut_kbps(&[k]), vc.cut_kbps(&[k]), "k={k}");
    }
}

#[test]
fn pipe_is_a_tag_special_case() {
    // §3: "a TAG with exactly one VM per component and no self-loops is
    // the pipe model."
    let mut b = TagBuilder::new("pipes");
    let a = b.tier("a", 1);
    let c = b.tier("b", 1);
    let d = b.tier("c", 1);
    b.edge(a, c, 11, 11).unwrap();
    b.edge(c, d, 23, 23).unwrap();
    b.edge(d, a, 47, 47).unwrap();
    let tag = b.build().unwrap();
    let pipe = PipeModel::from_tag_idealized(&tag);
    for mask in 0u32..8 {
        let inside: Vec<u32> = (0..3).map(|i| (mask >> i) & 1).collect();
        assert_eq!(tag.cut_kbps(&inside), pipe.cut_kbps(&inside), "mask={mask}");
    }
}
