//! Cross-crate lifecycle-controller tests: every placer in the workspace
//! drives through `Cluster`, and CloudMirror's `scale_tier` is proven
//! **exact-incremental** — the reservations after an in-place scale are
//! bit-identical to pricing the final placement of the expanded TAG from
//! scratch on a fresh topology.

use cloudmirror::baselines::{OktopusVcPlacer, OvocPlacer, SecondNetPlacer};
use cloudmirror::cluster::GuaranteeModel;
use cloudmirror::core::reserve::TenantState;
use cloudmirror::workloads::{apps, bing_like_pool};
use cloudmirror::{
    mbps, Cluster, CmConfig, CmPlacer, Placer, Tag, TenantId, TierId, Topology, TreeSpec,
};
use std::sync::Arc;

fn spec() -> TreeSpec {
    TreeSpec::small(2, 4, 8, 8, [mbps(1000.0), mbps(4000.0), mbps(8000.0)])
}

/// Admit → scale out → scale in → migrate → depart for one placer; the
/// datacenter must end pristine and every intermediate state consistent.
fn drive_lifecycle<P: Placer>(placer: P) {
    let mut cluster = Cluster::new(&spec(), placer);
    let name = cluster.placer().name();
    let pool = bing_like_pool(42).scaled_to_bmax(mbps(100.0));
    let mut handles = Vec::new();
    for tag in pool.tenants().iter().take(12) {
        if let Ok(h) = cluster.admit(tag) {
            handles.push(h);
        }
        cluster
            .check_invariants()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    assert!(!handles.is_empty(), "{name} admitted nothing");
    // Scale the first tier of every live tenant out and back in.
    for h in &handles {
        let tier = cluster
            .tag_of(h.id())
            .unwrap()
            .internal_tiers()
            .next()
            .expect("tenants have internal tiers");
        if cluster.scale_tier(h.id(), tier, 2).is_ok() {
            cluster
                .scale_tier(h.id(), tier, -2)
                .unwrap_or_else(|e| panic!("{name}: shrink back failed: {e}"));
        }
        cluster
            .check_invariants()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    // Migrate one tenant, then drain everything.
    let _ = cluster.migrate(handles[0].id());
    cluster
        .check_invariants()
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    for h in &handles {
        cluster.depart(h.id()).unwrap();
    }
    assert_eq!(cluster.topology().slots_in_use(), 0, "{name} leaked slots");
    for l in 0..cluster.topology().num_levels() {
        assert_eq!(
            cluster.topology().reserved_at_level(l),
            (0, 0),
            "{name} leaked bandwidth at level {l}"
        );
    }
}

#[test]
fn all_six_placers_drive_through_the_cluster() {
    drive_lifecycle(CmPlacer::new(CmConfig::cm()));
    drive_lifecycle(CmPlacer::named(CmConfig::cm_ha(0.5), "CM+HA"));
    drive_lifecycle(CmPlacer::named(CmConfig::cm_opp_ha(), "CM+oppHA"));
    drive_lifecycle(OvocPlacer::new());
    drive_lifecycle(OktopusVcPlacer::new());
    drive_lifecycle(SecondNetPlacer::new());
}

#[test]
fn heterogeneous_placers_drive_as_boxed_trait_objects() {
    // `Placer` is object-safe and implemented for `Box<dyn Placer>`, so a
    // mixed fleet runs through the same generic controller.
    let placers: Vec<Box<dyn Placer>> = vec![
        Box::new(CmPlacer::new(CmConfig::cm())),
        Box::new(OvocPlacer::new()),
        Box::new(OktopusVcPlacer::new()),
    ];
    for placer in placers {
        let mut cluster: Cluster<Box<dyn Placer>> = Cluster::new(&spec(), placer);
        let h = cluster
            .admit(apps::three_tier(
                3,
                3,
                2,
                mbps(50.0),
                mbps(20.0),
                mbps(10.0),
            ))
            .unwrap();
        cluster.scale_tier(h.id(), TierId(0), 1).unwrap();
        cluster.depart(h.id()).unwrap();
        assert_eq!(cluster.topology().slots_in_use(), 0);
    }
}

/// Price `placement` of `tag` from scratch on a fresh copy of `spec`:
/// replay the per-server placement into a new `TenantState` and sync every
/// touched link. Under recompute-from-set semantics the resulting
/// reservations are the *definitional* prices of that placement.
fn price_from_scratch(
    spec: &TreeSpec,
    tag: &Arc<Tag>,
    placement: &[(cloudmirror::topology::NodeId, Vec<u32>)],
) -> Vec<(cloudmirror::topology::NodeId, (u64, u64))> {
    let mut topo = Topology::build(spec);
    let mut state = TenantState::new_shared(Arc::clone(tag));
    for (server, counts) in placement {
        for (t, &c) in counts.iter().enumerate() {
            if c > 0 {
                state.place(&mut topo, *server, t, c).expect("replay fits");
            }
        }
    }
    let mut touched: Vec<_> = state.touched_nodes().collect();
    touched.sort_by_key(|&n| (topo.level(n), n));
    for n in touched {
        state
            .sync_uplink(&mut topo, n)
            .expect("fresh topology holds the definitional prices");
    }
    state.check_consistency(&topo).expect("replay consistent");
    state.reservations()
}

#[test]
fn cm_scale_is_exact_incremental_vs_full_readmit() {
    // Grow a live CloudMirror deployment tier by tier; after every scale
    // the incremental repricing must equal a full re-admit of the expanded
    // TAG *with the same placement* on a fresh topology — no drift, ever.
    let spec = spec();
    let mut cluster = Cluster::new(&spec, CmPlacer::new(CmConfig::cm()));
    let tag = apps::three_tier(4, 6, 4, mbps(80.0), mbps(30.0), mbps(15.0));
    let h = cluster.admit(tag).unwrap();
    for (tier, delta) in [(0u16, 3i64), (1, 5), (2, 2), (0, -2), (1, -4), (2, 6)] {
        cluster
            .scale_tier(h.id(), TierId(tier), delta)
            .unwrap_or_else(|e| panic!("scale tier {tier} by {delta}: {e}"));
        let scaled_tag = Arc::clone(cluster.tag_of(h.id()).unwrap());
        let placement = cluster.placement_of(h.id()).unwrap();
        let incremental = cluster.deployed(h.id()).unwrap().reservations();
        let from_scratch = price_from_scratch(&spec, &scaled_tag, &placement);
        assert_eq!(
            incremental, from_scratch,
            "tier {tier} {delta:+}: incremental reservations drifted from the definitional prices"
        );
        // And the ledger itself agrees with a recomputation in place.
        cluster.check_invariants().unwrap();
    }
    cluster.depart(h.id()).unwrap();
    assert_eq!(cluster.topology().slots_in_use(), 0);
}

#[test]
fn cm_scale_places_only_the_delta() {
    // Exact-incremental also means *incremental*: growing a tier must not
    // move any existing VM (the generic fallback would re-place wholesale).
    let mut cluster = Cluster::new(&spec(), CmPlacer::new(CmConfig::cm()));
    let h = cluster
        .admit(apps::three_tier(
            4,
            6,
            4,
            mbps(80.0),
            mbps(30.0),
            mbps(15.0),
        ))
        .unwrap();
    let before = cluster.placement_of(h.id()).unwrap();
    cluster.scale_tier(h.id(), TierId(1), 4).unwrap();
    let after = cluster.placement_of(h.id()).unwrap();
    for (server, counts) in &before {
        let now = after
            .iter()
            .find(|(s, _)| s == server)
            .map(|(_, c)| c.clone())
            .unwrap_or_else(|| vec![0; counts.len()]);
        for (t, &c) in counts.iter().enumerate() {
            assert!(
                now[t] >= c,
                "server {server}: tier {t} lost VMs ({} -> {}) during a grow",
                c,
                now[t]
            );
        }
    }
    cluster.depart(h.id()).unwrap();
}

#[test]
fn ha_scale_in_preserves_the_survivability_guarantee() {
    // The admission-time promise (Eq. 7: no fault domain holds more than
    // max(1, ⌊N·(1−rwcs)⌋) of a tier) must survive scale-ins. An 8-VM
    // hose under rwcs=0.5 places 4+4; shrinking to 4 must drain both
    // servers to 2+2 (WCS stays 0.5), not vacate one whole block.
    let mut cluster = Cluster::new(&spec(), CmPlacer::new(CmConfig::cm_ha(0.5)));
    let h = cluster.admit(apps::mapreduce(8, mbps(20.0))).unwrap();
    let wcs0 = cluster
        .deployed(h.id())
        .unwrap()
        .wcs_at_level(cluster.topology(), 0)[0]
        .unwrap();
    assert!(wcs0 >= 0.5);
    cluster.scale_tier(h.id(), TierId(0), -4).unwrap();
    let wcs1 = cluster
        .deployed(h.id())
        .unwrap()
        .wcs_at_level(cluster.topology(), 0)[0]
        .unwrap();
    assert!(
        wcs1 >= 0.5,
        "scale-in broke the rwcs=0.5 guarantee: wcs {wcs0} -> {wcs1}"
    );
    // A shrink that cannot meet the cap without moving VMs is rejected
    // (4 VMs at 2+2; size 3 caps each server at 1 — needs redistribution).
    let err = cluster.scale_tier(h.id(), TierId(0), -1).unwrap_err();
    assert!(matches!(err, cloudmirror::CmError::Rejected(_)));
    let wcs2 = cluster
        .deployed(h.id())
        .unwrap()
        .wcs_at_level(cluster.topology(), 0)[0]
        .unwrap();
    assert!(wcs2 >= 0.5, "rejected shrink must change nothing");
    cluster.depart(h.id()).unwrap();
    assert_eq!(cluster.topology().slots_in_use(), 0);
}

#[test]
fn scale_in_reports_no_phantom_servers() {
    // After a shrink fully vacates a server, placement_of must not list it.
    let mut cluster = Cluster::new(&spec(), CmPlacer::new(CmConfig::cm()));
    let h = cluster.admit(apps::mapreduce(16, mbps(20.0))).unwrap();
    cluster.scale_tier(h.id(), TierId(0), -12).unwrap();
    let placement = cluster.placement_of(h.id()).unwrap();
    let total: u32 = placement.iter().map(|(_, c)| c.iter().sum::<u32>()).sum();
    assert_eq!(total, 4);
    for (server, counts) in &placement {
        assert!(
            counts.iter().any(|&c| c > 0),
            "placement lists vacated server {server}"
        );
    }
    cluster.depart(h.id()).unwrap();
}

#[test]
fn guarantee_report_reflects_the_placer_not_the_model_alone() {
    // The same tenant admitted by CM (which colocates) and by SecondNet
    // yields different cross-network guarantee exposure — the report wires
    // actual placement, not just the TAG.
    let tag = apps::mapreduce(8, mbps(20.0));
    let mut cm = Cluster::new(&spec(), CmPlacer::new(CmConfig::cm()));
    let hc = cm.admit(tag.clone()).unwrap();
    let cm_report = cm.guarantee_report(hc.id()).unwrap();
    assert_eq!(cm_report.model, GuaranteeModel::Tag);
    // CloudMirror colocates the whole hose onto one server: nothing needs
    // the network.
    assert_eq!(cm_report.cross_network_kbps(), 0.0);
    assert!(cm_report.total_kbps() > 0.0);

    let mut ha = Cluster::new(&spec(), CmPlacer::new(CmConfig::cm_ha(0.75)));
    let hh = ha.admit(tag).unwrap();
    let ha_report = ha.guarantee_report(hh.id()).unwrap();
    // Anti-affinity spreads the tier, pushing guarantees onto the network.
    assert!(
        ha_report.cross_network_kbps() > 0.0,
        "HA placement must expose cross-server pairs"
    );
}

#[test]
fn unknown_ids_error_uniformly_across_queries() {
    let cluster = Cluster::new(&spec(), CmPlacer::new(CmConfig::cm()));
    let ghost = TenantId::from_raw(42);
    assert!(cluster.placement_of(ghost).is_err());
    assert!(cluster.guarantee_report(ghost).is_err());
    assert!(cluster.tag_of(ghost).is_none());
    assert!(cluster.deployed(ghost).is_none());
}
