//! End-to-end traffic engine claims: the paper's Fig. 13 interference
//! experiment reproduced *through the placement layer* (admit with a real
//! placer, route over the placed topology, solve the shared max-min
//! network), plus the paper-scale performance floor — a 2048-server churn
//! snapshot must solve in well under a second.

use cloudmirror::workloads::bing_like_pool;
use cloudmirror::{
    gbps, mbps, Cluster, CmConfig, CmPlacer, EcmpConfig, GuaranteeModel, TagBuilder, TenantId,
    TreeSpec,
};

/// Fig. 13 through placement: tenant A is the paper's scenario — VM `X`
/// (tier C1) sends to `Z` (tier C2, trunk `<450, 450>` Mbps) while 4
/// intra-tier peers blast `Z` over C2's 450 Mbps self-loop; a bystander
/// tenant B is co-admitted so the solve is genuinely multi-tenant. With
/// 1-slot servers every VM lands on its own machine and the 1 Gbps NIC
/// into `Z`'s server is the physical bottleneck. The TAG patch must hold
/// X→Z at ≥ 450 Mbps; plain hose enforcement dilutes it to ~200 Mbps
/// (180 Mbps floor + its equal share of the spare) — the 450-vs-180 split.
#[test]
fn fig13_tag_protects_and_hose_violates_over_placed_topology() {
    let spec = TreeSpec::small(2, 2, 4, 1, [mbps(1000.0), mbps(8000.0), mbps(16000.0)]);
    let mut cluster = Cluster::new(&spec, CmPlacer::new(CmConfig::cm()));

    // Tenant A: the Fig. 13 TAG.
    let mut b = TagBuilder::new("fig13");
    let c1 = b.tier("C1", 1);
    let c2 = b.tier("C2", 5); // Z + 4 intra senders
    b.edge(c1, c2, 450_000, 450_000).unwrap();
    b.self_loop(c2, 450_000).unwrap();
    let a = cluster.admit(b.build().unwrap()).expect("tenant A admits");

    // Tenant B: an unrelated two-tier bystander elsewhere in the tree.
    let mut b2 = TagBuilder::new("bystander");
    let w = b2.tier("web", 2);
    let d = b2.tier("db", 2);
    b2.sym_edge(w, d, mbps(100.0)).unwrap();
    let bid = cluster.admit(b2.build().unwrap()).expect("tenant B admits");
    assert_eq!(cluster.tenant_count(), 2);

    // Identify X (the C1 VM) and pick Z (the first C2 VM) from the
    // placement-wired report; the remaining C2 VMs are the intra senders.
    let report = cluster.guarantee_report(a.id()).unwrap();
    let x = report
        .vm_tier
        .iter()
        .position(|t| t.index() == 0)
        .expect("C1 VM placed");
    let c2_vms: Vec<usize> = (0..report.vm_tier.len())
        .filter(|&i| report.vm_tier[i].index() == 1)
        .collect();
    let z = c2_vms[0];
    // 1 slot per server: every VM is alone on its machine, so every pair
    // crosses the network and Z's NIC downlink really is the bottleneck.
    assert_eq!(report.vm_server.len(), 6);
    let mut servers = report.vm_server.clone();
    servers.dedup();
    assert_eq!(servers.len(), 6, "one VM per server");

    let mut pairs = vec![(x, z)];
    pairs.extend(c2_vms[1..].iter().map(|&s| (s, z)));
    let active = vec![(a.id(), pairs)];

    // The paper's patched ElasticSwitch: X→Z keeps its full trunk
    // guarantee however hard the intra senders push.
    let tag_report = cluster.traffic_report_active(&active).unwrap();
    let xz = tag_report.pair(a.id().raw(), x, z).unwrap();
    assert!(
        xz.rate_kbps >= 450_000.0 - 1.0,
        "TAG model must protect X→Z at 450 Mbps, got {} kbps",
        xz.rate_kbps
    );
    assert!((xz.intent_kbps - 450_000.0).abs() < 1e-3);
    assert_eq!(tag_report.violations, 0, "TAG floors meet every intent");
    assert!(tag_report.work_conserving);
    // Work conservation at the bottleneck: the 5 flows into Z fill the
    // whole 1 Gbps NIC.
    let into_z: f64 = tag_report
        .flows
        .iter()
        .filter(|f| f.tenant == a.id().raw() && f.dst == z)
        .map(|f| f.rate_kbps)
        .sum();
    assert!(
        (into_z - 1_000_000.0).abs() < 1.0,
        "bottleneck fully used: {into_z}"
    );

    // Plain hose enforcement on the *identical* placements: Z's aggregate
    // receive hose (900 Mbps) splits equally over 5 senders → X's floor
    // dilutes to 180 Mbps and its achieved rate lands near 200 Mbps.
    cluster.set_guarantee_model(GuaranteeModel::Hose);
    let hose_report = cluster.traffic_report_active(&active).unwrap();
    let xz_hose = hose_report.pair(a.id().raw(), x, z).unwrap();
    assert!(
        (xz_hose.floor_kbps - 180_000.0).abs() < 1e-3,
        "hose floor dilutes to 180 Mbps, got {} kbps",
        xz_hose.floor_kbps
    );
    assert!(
        xz_hose.rate_kbps < 250_000.0,
        "hose must fail to protect X→Z, got {} kbps",
        xz_hose.rate_kbps
    );
    // The intent is still what the TAG promised — so this is a violation.
    assert!((xz_hose.intent_kbps - 450_000.0).abs() < 1e-3);
    assert!(xz_hose.violated());
    let a_summary = hose_report
        .tenants
        .iter()
        .find(|t| t.id == a.id().raw())
        .unwrap();
    assert_eq!(a_summary.violations, 1);
    assert!(a_summary.worst_shortfall_kbps > 200_000.0);
    // The bystander is untouched in both worlds.
    for r in [&tag_report, &hose_report] {
        let b_summary = r.tenants.iter().find(|t| t.id == bid.id().raw()).unwrap();
        assert_eq!(b_summary.violations, 0);
    }
}

/// A full paper-scale (2048-server) churn snapshot: ~90 live bing-like
/// tenants, every TAG edge expanded into VM-pair flows over the physical
/// tree, one shared solve. The placement layer reserved every TAG floor,
/// so the Tag model must meet every intent; in release builds the whole
/// engine run (expand + partition + route + solve) must finish in < 1 s.
/// (Debug builds solve a reduced snapshot — the timing bound is a release
/// property, which is how CI runs this test.)
#[test]
fn paper_scale_snapshot_solves_fast_and_compliant() {
    let pool = bing_like_pool(42).scaled_to_bmax(800_000);
    let mut cluster = Cluster::new(&TreeSpec::paper_datacenter(), CmPlacer::new(CmConfig::cm()));
    let (target, size_cap) = if cfg!(debug_assertions) {
        (12usize, 120u64) // keep tier-1 debug runs quick
    } else {
        (90usize, u64::MAX)
    };
    let mut admitted = 0usize;
    'fill: loop {
        let before = admitted;
        for tag in pool.tenants() {
            if tag.total_vms() > size_cap {
                continue;
            }
            if cluster.admit(tag.clone()).is_ok() {
                admitted += 1;
                if admitted >= target {
                    break 'fill;
                }
            }
        }
        if admitted == before {
            break; // datacenter full
        }
    }
    assert!(admitted >= target / 2, "only {admitted} tenants admitted");

    let r = cluster.traffic_report();
    assert_eq!(r.tenants.len(), admitted);
    assert!(r.cross_flows > 1_000, "expected a dense flow mix");
    assert!(r.work_conserving);
    assert_eq!(
        r.violations, 0,
        "admission reserved every TAG floor; the Tag model must meet every \
         intent ({} violated)",
        r.violations
    );
    // Deterministic ids in admission order.
    assert_eq!(r.tenants[0].id, TenantId::from_raw(0).raw());
    #[cfg(not(debug_assertions))]
    {
        let secs = r.build_secs + r.solve_secs;
        assert!(
            secs < 1.0,
            "paper-scale snapshot took {secs:.3} s ({} flows)",
            r.cross_flows
        );
    }
}

/// The incremental engine's scale claim: a 32,768-server ECMP fat-tree
/// (32 pods x 32 racks x 32 servers, 8-way-hashed core) with ~90 live
/// bing-like tenants must step in < 1 s in release builds — both the cold
/// step (every tenant expands, routes fill) and a warm step after one
/// scale operation (only the dirty tenant re-expands). Compliance holds at
/// every scale: admission reserved every TAG floor, so the Tag model meets
/// every intent. (Debug builds run a reduced snapshot without the timing
/// bound, which is a release property — how CI runs this test.)
#[test]
fn fat_tree_32k_snapshot_steps_under_a_second() {
    let spec = TreeSpec {
        fanout_top_down: vec![32, 32, 32],
        uplink_kbps: vec![gbps(10.0), gbps(80.0), gbps(320.0)],
        slots_per_server: 25,
    };
    let pool = bing_like_pool(42).scaled_to_bmax(800_000);
    let mut cluster = Cluster::new(&spec, CmPlacer::new(CmConfig::cm()));
    cluster.set_traffic_ecmp(EcmpConfig::hashed(8));
    let (target, size_cap) = if cfg!(debug_assertions) {
        (12usize, 120u64)
    } else {
        (90usize, u64::MAX)
    };
    let mut admitted = 0usize;
    let mut last = None;
    'fill: loop {
        let before = admitted;
        for tag in pool.tenants() {
            if tag.total_vms() > size_cap {
                continue;
            }
            if let Ok(h) = cluster.admit(tag.clone()) {
                last = Some(h);
                admitted += 1;
                if admitted >= target {
                    break 'fill;
                }
            }
        }
        if admitted == before {
            break;
        }
    }
    assert!(admitted >= target / 2, "only {admitted} tenants admitted");

    let cold = cluster.traffic_step();
    assert!(cold.cross_flows > 100, "expected a real flow mix");
    assert!(cold.work_conserving);
    assert_eq!(cold.violations, 0, "Tag floors meet every intent at 32k");
    assert!(
        cold.fluid_flows <= cold.cross_flows,
        "bundling never inflates the solver's flow count"
    );

    // Dirty exactly one tenant; the next step re-expands only it.
    let h = last.expect("at least one tenant admitted");
    let tier = cluster
        .tag_of(h.id())
        .unwrap()
        .internal_tiers()
        .next()
        .unwrap();
    let _ = cluster.scale_tier(h.id(), tier, 1);
    let warm = cluster.traffic_step();
    assert_eq!(warm.violations, 0);
    #[cfg(not(debug_assertions))]
    {
        let cold_secs = cold.build_secs + cold.solve_secs + cold.score_secs;
        let warm_secs = warm.build_secs + warm.solve_secs + warm.score_secs;
        assert!(
            cold_secs < 1.0,
            "32k cold step took {cold_secs:.3} s ({} fluid flows)",
            cold.fluid_flows
        );
        assert!(
            warm_secs < 1.0,
            "32k warm step took {warm_secs:.3} s ({} fluid flows)",
            warm.fluid_flows
        );
        assert!(
            warm.expand_secs <= cold.expand_secs,
            "warm step re-expanded more than the cold step ({:.4} s vs {:.4} s)",
            warm.expand_secs,
            cold.expand_secs
        );
    }
}

/// The 131,072-server exit bar: a 32 pods x 64 racks x 64 servers 8-way
/// ECMP fat-tree with ~90 live bing-like tenants. The first step cold-
/// solves every component; a subsequent churn step re-solves only the
/// components the scaled tenant touches and must stay under the release
/// wall-clock bound. (Debug builds run a reduced snapshot without the
/// timing bound, which is a release property — how CI runs this test.)
#[test]
fn fat_tree_131k_snapshot_steps_under_churn() {
    let spec = TreeSpec {
        fanout_top_down: vec![32, 64, 64],
        uplink_kbps: vec![gbps(10.0), gbps(80.0), gbps(320.0)],
        slots_per_server: 25,
    };
    let pool = bing_like_pool(42).scaled_to_bmax(800_000);
    let mut cluster = Cluster::new(&spec, CmPlacer::new(CmConfig::cm()));
    cluster.set_traffic_ecmp(EcmpConfig::hashed(8));
    let (target, size_cap) = if cfg!(debug_assertions) {
        (12usize, 120u64)
    } else {
        (90usize, u64::MAX)
    };
    let mut admitted = 0usize;
    let mut last = None;
    'fill: loop {
        let before = admitted;
        for tag in pool.tenants() {
            if tag.total_vms() > size_cap {
                continue;
            }
            if let Ok(h) = cluster.admit(tag.clone()) {
                last = Some(h);
                admitted += 1;
                if admitted >= target {
                    break 'fill;
                }
            }
        }
        if admitted == before {
            break;
        }
    }
    assert!(admitted >= target / 2, "only {admitted} tenants admitted");

    let cold = cluster.traffic_step();
    assert!(cold.cross_flows > 100, "expected a real flow mix");
    assert!(cold.work_conserving);
    assert_eq!(cold.violations, 0, "Tag floors meet every intent at 131k");
    assert!(cold.components_total > 0);
    assert_eq!(
        cold.components_dirty, cold.components_total,
        "the first solve cold-starts every component"
    );

    // Dirty exactly one tenant; the next solve touches only its components.
    let h = last.expect("at least one tenant admitted");
    let tier = cluster
        .tag_of(h.id())
        .unwrap()
        .internal_tiers()
        .next()
        .unwrap();
    let _ = cluster.scale_tier(h.id(), tier, 1);
    let warm = cluster.traffic_step();
    assert_eq!(warm.violations, 0);
    assert!(
        warm.components_dirty <= warm.components_total,
        "dirty set is a subset of the partition"
    );
    #[cfg(not(debug_assertions))]
    {
        let cold_secs = cold.build_secs + cold.solve_secs + cold.score_secs;
        let warm_secs = warm.build_secs + warm.solve_secs + warm.score_secs;
        assert!(
            cold_secs < 3.0,
            "131k cold step took {cold_secs:.3} s ({} fluid flows)",
            cold.fluid_flows
        );
        assert!(
            warm_secs < 1.0,
            "131k churn step took {warm_secs:.3} s ({} fluid flows, {}/{} components dirty)",
            warm.fluid_flows,
            warm.components_dirty,
            warm.components_total
        );
        assert!(
            warm.components_dirty < cold.components_dirty,
            "one scaled tenant must not dirty the whole partition ({}/{})",
            warm.components_dirty,
            warm.components_total
        );
    }
}
