//! Equivalence of the descend-from-root subtree search with the pre-change
//! linear scan, plus exactness of the topology's incremental aggregates
//! under arbitrary op interleavings.
//!
//! The descend search ([`Topology::descend_to_level`]) replaced the
//! O(level-width × depth) scan in `FindLowestSubtree`; these tests prove it
//! is a pure optimization:
//!
//! * a property test interleaves random slot allocations/releases, uplink
//!   adjustments and transaction rollbacks, re-checking every incremental
//!   aggregate against brute force (`check_invariants`) and the chosen
//!   subtree against the linear reference scan;
//! * full simulations on the paper's 2048-server datacenter for seeds 1–6
//!   must admit/reject the identical tenant sequence with identical WCS
//!   statistics under both search implementations (the linear scan lives on
//!   as [`SearchStrategy::LinearReference`], a test/benchmark-only mode).

use cloudmirror::core::placement::{
    find_lowest_subtree, find_lowest_subtree_linear, CmConfig, CmPlacer, SearchStrategy,
};
use cloudmirror::core::txn::ReservationTxn;
use cloudmirror::core::TenantState;
use cloudmirror::sim::admission::PlacerAdmission;
use cloudmirror::sim::{run_sim, SimConfig};
use cloudmirror::workloads::bing_like_pool;
use cloudmirror::{mbps, TagBuilder, Topology, TreeSpec};
use proptest::prelude::*;

fn hose(n: u32, sr: u64) -> cloudmirror::Tag {
    let mut b = TagBuilder::new("hose");
    let t = b.tier("t", n);
    b.self_loop(t, sr).unwrap();
    b.build().unwrap()
}

/// One encoded random operation; decoded against the current topology so
/// every op is always applicable.
type Op = (u8, u16, u16, bool);

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0u8..6, any::<u16>(), any::<u16>(), any::<bool>()), 20..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn aggregates_and_descend_survive_random_interleavings(
        ops in arb_ops(),
        spec_pick in 0usize..3,
        query_seed in 0u64..1000,
    ) {
        let spec = match spec_pick {
            0 => TreeSpec::small(2, 2, 4, 4, [mbps(100.0), mbps(200.0), mbps(400.0)]),
            1 => TreeSpec::small(3, 2, 5, 3, [mbps(50.0), mbps(150.0), mbps(300.0)]),
            _ => TreeSpec::small(1, 4, 8, 2, [mbps(80.0), mbps(120.0), mbps(240.0)]),
        };
        let mut topo = Topology::build(&spec);
        let mut state = TenantState::new(hose(10_000, 10));
        for (kind, a, b, flag) in ops {
            let servers = topo.servers().to_vec();
            let s = servers[a as usize % servers.len()];
            match kind {
                0 => {
                    // Slot allocation (ignored when full).
                    let k = b as u32 % (spec.slots_per_server + 1);
                    let _ = topo.alloc_slots(s, k);
                }
                1 => {
                    // Slot release, bounded by what is actually used.
                    let used = topo.slots_total(s) - topo.slots_free(s);
                    if used > 0 {
                        topo.release_slots(s, 1 + b as u32 % used).unwrap();
                    }
                }
                2 | 3 => {
                    // Uplink adjust on a random node of a random level
                    // (reserve for kind 2, release for kind 3).
                    let level = b as usize % topo.num_levels();
                    let nodes = topo.nodes_at_level(level);
                    let n = nodes[a as usize % nodes.len()];
                    if let Some((au, ad)) = topo.uplink_avail(n) {
                        if kind == 2 {
                            let du = (a as u64 * 37) % (au + 1);
                            let dd = (b as u64 * 53) % (ad + 1);
                            topo.adjust_uplink(n, du as i64, dd as i64).unwrap();
                        } else if let Some((uu, ud)) = topo.uplink_used(n) {
                            let du = if uu > 0 { (a as u64) % (uu + 1) } else { 0 };
                            let dd = if ud > 0 { (b as u64) % (ud + 1) } else { 0 };
                            topo.adjust_uplink(n, -(du as i64), -(dd as i64)).unwrap();
                        }
                    }
                }
                _ => {
                    // A transaction staging placements + syncs, then either
                    // rolled back to a savepoint and dropped, or committed.
                    let mut txn = ReservationTxn::begin(&mut topo, &mut state);
                    let sp = txn.savepoint();
                    for i in 0..(b % 4 + 1) {
                        let srv = servers[(a as usize + i as usize) % servers.len()];
                        let free = txn.topo().slots_free(srv);
                        if free > 0 && txn.place(srv, 0, 1 + a as u32 % free).is_ok() {
                            let _ = txn.sync_path_to_root(srv);
                        }
                    }
                    if flag {
                        txn.rollback_to(sp);
                        txn.commit();
                    }
                    // else: dropped uncommitted — full rollback.
                }
            }
            topo.check_invariants().expect("incremental aggregates exact");
        }
        // Descend vs linear-scan agreement over a grid of queries.
        let mut q = query_seed;
        for level in 0..topo.num_levels() {
            for _ in 0..6 {
                q = q.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let vms = q >> 33 & 0x3F;
                let ext_up = (q >> 20 & 0xFFF) * 100;
                let ext_dn = (q >> 8 & 0xFFF) * 100;
                prop_assert_eq!(
                    find_lowest_subtree(&topo, level, vms, (ext_up, ext_dn)),
                    find_lowest_subtree_linear(&topo, level, vms, (ext_up, ext_dn)),
                    "level {}, vms {}, ext ({}, {})", level, vms, ext_up, ext_dn
                );
            }
        }
    }
}

/// The before/after guarantee on the paper datacenter: for sim seeds 1–6,
/// the descend search admits and rejects the *identical* tenant sequence —
/// same rejection counts, same WCS statistics — as the pre-change linear
/// scan, for plain CM and both HA flavours.
#[test]
fn paper_sim_decisions_identical_under_both_searches_seeds_1_to_6() {
    let pool = bing_like_pool(42);
    let mut cfg = SimConfig::paper_default();
    cfg.arrivals = 400; // enough churn to exercise climbs and rejections
    for (cm_cfg, label) in [
        (CmConfig::cm(), "CM"),
        (CmConfig::cm_ha(0.5), "CM+HA"),
        (CmConfig::cm_opp_ha(), "CM+oppHA"),
    ] {
        for seed in 1..=6 {
            cfg.seed = seed;
            let mut descend = PlacerAdmission::from_placer(CmPlacer::named(cm_cfg, label));
            let mut linear = PlacerAdmission::from_placer(
                CmPlacer::named(cm_cfg, label)
                    .with_search_strategy(SearchStrategy::LinearReference),
            );
            let a = run_sim(&cfg, &pool, &mut descend);
            let b = run_sim(&cfg, &pool, &mut linear);
            assert_eq!(
                a.rejections, b.rejections,
                "{label}, seed {seed}: admission decisions diverged"
            );
            assert_eq!(a.wcs, b.wcs, "{label}, seed {seed}: WCS stats diverged");
            assert_eq!(a.peak_tenants, b.peak_tenants, "{label}, seed {seed}");
        }
    }
}
