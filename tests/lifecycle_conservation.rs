//! Lifecycle conservation: random interleavings of admit / scale_tier /
//! migrate / depart — plus fault injection and repair — leave the topology
//! exactly pristine once every fault is repaired and every tenant has
//! departed, with `check_invariants` (topology + per-tenant ledger
//! recomputation) holding at every step. Driven by proptest over op
//! scripts, for CloudMirror (exact-incremental scaling) and OVOC (the
//! generic re-place fallback).

use cloudmirror::baselines::OvocPlacer;
use cloudmirror::workloads::mixed_pool;
use cloudmirror::{mbps, Cluster, CmConfig, CmPlacer, Fault, Placer, TenantId, TierId, TreeSpec};
use proptest::prelude::*;

fn small_spec() -> TreeSpec {
    TreeSpec::small(2, 2, 4, 4, [mbps(1_000.0), mbps(2_000.0), mbps(4_000.0)])
}

/// One scripted lifecycle op; indices are reduced modulo the live set.
#[derive(Debug, Clone, Copy)]
enum Op {
    Admit(usize),
    Scale {
        victim: usize,
        tier: usize,
        delta: i64,
    },
    Migrate(usize),
    Depart(usize),
    /// Kill one server (index reduced modulo the server count).
    ServerFault(usize),
    /// Kill one ToR-level fault domain (index modulo the ToR count).
    DomainFault(usize),
    /// Halve one ToR uplink's capacity.
    Degrade(usize),
    /// Repair the oldest outstanding fault (no-op when none).
    Repair,
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..12, 0usize..60, 0usize..4, -3i64..4).prop_map(|(kind, idx, tier, delta)| match kind {
        // Admissions weighted heaviest so scripts build up live tenants.
        0..=2 => Op::Admit(idx),
        3 | 4 => Op::Scale {
            victim: idx,
            tier,
            delta: if delta == 0 { 1 } else { delta },
        },
        5 => Op::Migrate(idx),
        6 | 7 => Op::Depart(idx),
        8 => Op::ServerFault(idx),
        9 => Op::DomainFault(idx),
        10 => Op::Degrade(idx),
        _ => Op::Repair,
    })
}

fn run_script<P: Placer>(placer: P, seed: u64, script: &[Op]) {
    let pool = mixed_pool(seed);
    let spec = small_spec();
    let mut cluster = Cluster::new(&spec, placer);
    let mut live: Vec<TenantId> = Vec::new();
    let mut outstanding: Vec<Fault> = Vec::new();
    for (step, &op) in script.iter().enumerate() {
        match op {
            Op::Admit(idx) => {
                if let Ok(h) = cluster.admit(&pool.tenants()[idx % pool.len()]) {
                    live.push(h.id());
                }
            }
            Op::Scale {
                victim,
                tier,
                delta,
            } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[victim % live.len()];
                let tiers: Vec<TierId> = cluster.tag_of(id).unwrap().internal_tiers().collect();
                let tier = tiers[tier % tiers.len()];
                // Both accepted and rejected scales must keep the books
                // balanced; rejections must change nothing.
                let before = cluster.placement_of(id).unwrap();
                if cluster.scale_tier(id, tier, delta).is_err() {
                    assert_eq!(
                        cluster.placement_of(id).unwrap(),
                        before,
                        "step {step}: failed scale moved VMs"
                    );
                }
            }
            Op::Migrate(victim) => {
                if live.is_empty() {
                    continue;
                }
                let id = live[victim % live.len()];
                let before_slots = cluster.topology().slots_in_use();
                let _ = cluster.migrate(id);
                assert_eq!(
                    cluster.topology().slots_in_use(),
                    before_slots,
                    "step {step}: migrate changed total slot usage"
                );
            }
            Op::Depart(victim) => {
                if live.is_empty() {
                    continue;
                }
                let id = live.swap_remove(victim % live.len());
                cluster.depart(id).expect("live tenant departs");
            }
            Op::ServerFault(idx) => {
                let servers = cluster.topology().servers();
                let fault = Fault::Server(servers[idx % servers.len()]);
                let report = cluster.inject_fault(fault).expect("server faults apply");
                // Damage accounting is self-consistent.
                assert_eq!(
                    report.lost_vms,
                    report.tenants.iter().map(|d| d.lost_vms).sum::<u64>(),
                    "step {step}: fault report totals disagree"
                );
                outstanding.push(fault);
            }
            Op::DomainFault(idx) => {
                let tors = cluster.topology().nodes_at_level(1);
                let fault = Fault::Domain(tors[idx % tors.len()]);
                cluster.inject_fault(fault).expect("domain faults apply");
                outstanding.push(fault);
            }
            Op::Degrade(idx) => {
                let tors = cluster.topology().nodes_at_level(1);
                let fault = Fault::DegradeLink {
                    node: tors[idx % tors.len()],
                    fraction: 0.5,
                };
                let report = cluster.inject_fault(fault).expect("degrades apply");
                assert_eq!(report.lost_vms, 0, "step {step}: degrade lost VMs");
                outstanding.push(fault);
            }
            Op::Repair => {
                if outstanding.is_empty() {
                    continue;
                }
                let fault = outstanding.remove(0);
                cluster.repair(fault).expect("repairing an injected fault");
            }
        }
        cluster
            .check_invariants()
            .unwrap_or_else(|e| panic!("step {step} ({op:?}): {e}"));
    }
    // Repair every outstanding fault (failed capacity reads as in-use and
    // would otherwise break the pristine-drain accounting), then depart
    // everyone: the datacenter must be exactly pristine.
    for fault in outstanding {
        cluster.repair(fault).expect("repairing an injected fault");
    }
    for id in live {
        cluster.depart(id).unwrap();
    }
    assert_eq!(cluster.topology().slots_in_use(), 0);
    assert_eq!(
        cluster
            .topology()
            .subtree_slots_free(cluster.topology().root()),
        small_spec().total_slots()
    );
    for l in 0..cluster.topology().num_levels() {
        assert_eq!(cluster.topology().reserved_at_level(l), (0, 0));
    }
    cluster.topology().check_invariants().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cm_lifecycle_conserves_resources(
        script in prop::collection::vec(arb_op(), 1..40),
        seed in 0u64..4,
    ) {
        run_script(CmPlacer::new(CmConfig::cm()), seed, &script);
    }

    #[test]
    fn cm_ha_lifecycle_conserves_resources(
        script in prop::collection::vec(arb_op(), 1..30),
        seed in 0u64..3,
    ) {
        run_script(CmPlacer::new(CmConfig::cm_ha(0.5)), seed, &script);
    }

    #[test]
    fn ovoc_fallback_lifecycle_conserves_resources(
        script in prop::collection::vec(arb_op(), 1..30),
        seed in 0u64..3,
    ) {
        run_script(OvocPlacer::new(), seed, &script);
    }
}
