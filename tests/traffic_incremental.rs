//! Differential correctness of the incremental traffic engine: a cluster
//! churned through hundreds of randomized lifecycle operations must agree
//! with a from-scratch [`TrafficEngine`] built off the same placements.
//! With warm starts **forced off** the agreement is **bit-identical** (the
//! component-scoped cold solver orders flows canonically, so no churn
//! history may leak into the arithmetic); with warm starts on, rates are
//! tolerance-equal with exactly the same violation verdicts, and floors
//! and intents stay bit-identical (they are placement state, untouched by
//! the solver path). Every solve is additionally checked against a global
//! from-scratch [`Fluid::rates`] over the engine's own flow set, and
//! against the batch [`datacenter::solve`] reference periodically.

use cloudmirror::enforce::datacenter::{self, TenantTraffic};
use cloudmirror::enforce::{Fluid, TrafficEngine};
use cloudmirror::{
    mbps, Cluster, CmConfig, CmPlacer, EcmpConfig, GuaranteeModel, Tag, TagBuilder, TenantId,
    TierId, TrafficReport, TreeSpec,
};
use std::sync::Arc;

/// Deterministic xorshift64* stream driving the churn decisions.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Small TAG shapes exercising trunks, self-loops, and fan-in.
fn pool() -> Vec<Arc<Tag>> {
    let mut tags = Vec::new();
    let mut b = TagBuilder::new("web-db");
    let w = b.tier("web", 3);
    let d = b.tier("db", 2);
    b.sym_edge(w, d, mbps(40.0)).unwrap();
    tags.push(Arc::new(b.build().unwrap()));

    let mut b = TagBuilder::new("three-tier");
    let fe = b.tier("fe", 2);
    let mid = b.tier("mid", 3);
    let back = b.tier("back", 2);
    b.sym_edge(fe, mid, mbps(30.0)).unwrap();
    b.edge(mid, back, mbps(20.0), mbps(20.0)).unwrap();
    b.self_loop(mid, mbps(25.0)).unwrap();
    tags.push(Arc::new(b.build().unwrap()));

    let mut b = TagBuilder::new("workers");
    let wk = b.tier("wk", 4);
    b.self_loop(wk, mbps(30.0)).unwrap();
    tags.push(Arc::new(b.build().unwrap()));

    let mut b = TagBuilder::new("hub");
    let src = b.tier("src", 1);
    let sink = b.tier("sink", 4);
    b.edge(src, sink, mbps(50.0), mbps(50.0)).unwrap();
    tags.push(Arc::new(b.build().unwrap()));
    tags
}

/// A from-scratch engine over the cluster's current placements (every
/// tenant expanded fresh — no churn history, no warm route cache; its
/// single solve is all-cold by construction).
fn from_scratch_report(
    cluster: &Cluster<CmPlacer>,
    model: GuaranteeModel,
    ecmp: EcmpConfig,
) -> TrafficReport {
    let topo = cluster.topology();
    let mut engine = TrafficEngine::new(topo, model, ecmp);
    for id in cluster.tenant_ids() {
        let placement = cluster.placement_of(id).unwrap();
        let tag = cluster.tag_of(id).unwrap().clone();
        engine.upsert_tenant(topo, id.raw(), 1, &tag, &placement);
    }
    engine.solve_detailed(topo)
}

/// The batch reference solve over the same placements.
fn batch_report(cluster: &Cluster<CmPlacer>, model: GuaranteeModel) -> TrafficReport {
    let tenants: Vec<TenantTraffic> = cluster
        .tenant_ids()
        .map(|id| {
            TenantTraffic::from_placement(
                id.raw(),
                cluster.tag_of(id).unwrap().clone(),
                &cluster.placement_of(id).unwrap(),
                model,
            )
        })
        .collect();
    datacenter::solve(cluster.topology(), &tenants)
}

fn assert_bits(x: f64, y: f64, what: &str, step: usize) {
    assert!(
        x.to_bits() == y.to_bits(),
        "step {step}: {what} not bit-equal ({x} vs {y})"
    );
}

fn close(x: f64, y: f64) -> bool {
    (x - y).abs() < 1e-6 * (1.0 + y.abs())
}

fn assert_close(x: f64, y: f64, what: &str, step: usize) {
    assert!(close(x, y), "step {step}: {what} differs ({x} vs {y})");
}

/// Churned-engine output vs a fresh engine. `bits` = demand bit-equality
/// on every solver-derived float (forced-cold mode); otherwise rates and
/// aggregates are tolerance-equal while verdicts, floors, and intents must
/// still match exactly (floors/intents are placement state, not touched by
/// the warm path).
fn assert_equivalent(got: &TrafficReport, fresh: &TrafficReport, step: usize, bits: bool) {
    let num = if bits { assert_bits } else { assert_close };
    assert_eq!(got.cross_flows, fresh.cross_flows, "step {step}");
    assert_eq!(got.colocated_flows, fresh.colocated_flows, "step {step}");
    assert_eq!(got.fluid_flows, fresh.fluid_flows, "step {step}");
    assert_eq!(got.violations, fresh.violations, "step {step}");
    assert_eq!(got.work_conserving, fresh.work_conserving, "step {step}");
    num(got.total_rate_kbps, fresh.total_rate_kbps, "total", step);
    assert_eq!(got.flows.len(), fresh.flows.len(), "step {step}");
    for (a, b) in got.flows.iter().zip(&fresh.flows) {
        assert_eq!(
            (a.tenant, a.src, a.dst, a.colocated),
            (b.tenant, b.src, b.dst, b.colocated),
            "step {step}: flow identity"
        );
        num(a.rate_kbps, b.rate_kbps, "rate", step);
        assert_bits(a.floor_kbps, b.floor_kbps, "floor", step);
        assert_bits(a.intent_kbps, b.intent_kbps, "intent", step);
    }
    assert_eq!(got.tenants.len(), fresh.tenants.len(), "step {step}");
    for (a, b) in got.tenants.iter().zip(&fresh.tenants) {
        assert_eq!(
            (a.id, a.vms, a.pairs, a.cross_pairs, a.violations),
            (b.id, b.vms, b.pairs, b.cross_pairs, b.violations),
            "step {step}: tenant summary"
        );
        assert_bits(a.intent_kbps, b.intent_kbps, "tenant intent", step);
        num(a.achieved_kbps, b.achieved_kbps, "tenant achieved", step);
    }
    for (a, b) in got.levels.iter().zip(&fresh.levels) {
        num(a.mean_utilization, b.mean_utilization, "level mean", step);
        num(a.max_utilization, b.max_utilization, "level max", step);
    }
}

/// Engine vs batch: identical pair populations and violation verdicts,
/// tolerance-equal rates (bundled vs per-pair summation order differs).
fn assert_matches_batch(eng: &TrafficReport, batch: &TrafficReport, step: usize) {
    assert_eq!(eng.cross_flows, batch.cross_flows, "step {step}");
    assert_eq!(eng.colocated_flows, batch.colocated_flows, "step {step}");
    assert_eq!(eng.violations, batch.violations, "step {step}");
    assert_eq!(eng.work_conserving, batch.work_conserving, "step {step}");
    assert!(
        close(eng.total_rate_kbps, batch.total_rate_kbps),
        "step {step}: totals {} vs {}",
        eng.total_rate_kbps,
        batch.total_rate_kbps
    );
    assert_eq!(eng.flows.len(), batch.flows.len(), "step {step}");
    for f in &eng.flows {
        let r = batch
            .flows
            .iter()
            .find(|b| (b.tenant, b.src, b.dst) == (f.tenant, f.src, f.dst))
            .unwrap_or_else(|| panic!("step {step}: batch misses pair {f:?}"));
        assert_eq!(f.colocated, r.colocated, "step {step}");
        assert!(
            close(f.rate_kbps, r.rate_kbps)
                && close(f.floor_kbps, r.floor_kbps)
                && close(f.intent_kbps, r.intent_kbps),
            "step {step}: pair {}/{}->{} engine ({}, {}, {}) vs batch ({}, {}, {})",
            f.tenant,
            f.src,
            f.dst,
            f.rate_kbps,
            f.floor_kbps,
            f.intent_kbps,
            r.rate_kbps,
            r.floor_kbps,
            r.intent_kbps
        );
    }
}

/// The engine's own per-flow rates vs a global from-scratch
/// [`Fluid::rates`] over the identical flow set (works under ECMP too —
/// the comparison is on the engine's already-routed fluid network).
fn assert_matches_global_fluid(engine: &TrafficEngine, step: usize) {
    let net: Fluid = engine.network().fluid().clone();
    let want = net.rates();
    let got = engine.network().rates();
    assert_eq!(got.len(), want.len(), "step {step}");
    for (i, (&x, &y)) in got.iter().zip(&want).enumerate() {
        assert!(
            close(x, y),
            "step {step}: fluid flow {i} rate {x} vs global from-scratch {y}"
        );
    }
}

/// Drive ≥200 randomized lifecycle steps (admit / scale ± / migrate /
/// depart), checking the cluster's embedded engine against a from-scratch
/// engine after **every** step, against a global from-scratch
/// [`Fluid::rates`] over its own flow set, and against the batch solver
/// periodically (batch comparison only under single-path routing — the
/// batch solver has no ECMP).
fn churn_differential(model: GuaranteeModel, ecmp: EcmpConfig, seed: u64, force_cold: bool) {
    const STEPS: usize = 220;
    let spec = TreeSpec::small(2, 3, 4, 4, [mbps(1000.0), mbps(4000.0), mbps(8000.0)]);
    let mut cluster =
        Cluster::new(&spec, CmPlacer::new(CmConfig::cm())).with_guarantee_model(model);
    cluster.set_traffic_ecmp(ecmp);
    let pool = pool();
    let single_path = ecmp == EcmpConfig::none();
    let mut rng = Rng(seed);
    let mut live: Vec<TenantId> = Vec::new();
    for step in 0..STEPS {
        let op = if live.len() >= 10 { 90 } else { rng.below(100) };
        match op {
            0..=44 => {
                let tag = &pool[rng.below(pool.len() as u64) as usize];
                if let Ok(h) = cluster.admit(tag) {
                    live.push(h.id());
                }
            }
            45..=69 if !live.is_empty() => {
                let id = live[rng.below(live.len() as u64) as usize];
                let tiers: Vec<TierId> = cluster.tag_of(id).unwrap().internal_tiers().collect();
                let tier = tiers[rng.below(tiers.len() as u64) as usize];
                let delta = 1 + rng.below(3) as i64;
                let delta = if rng.below(2) == 0 { delta } else { -delta };
                let _ = cluster.scale_tier(id, tier, delta);
            }
            70..=84 if !live.is_empty() => {
                let id = live[rng.below(live.len() as u64) as usize];
                let _ = cluster.migrate(id);
            }
            _ if !live.is_empty() => {
                let id = live.swap_remove(rng.below(live.len() as u64) as usize);
                cluster.depart(id).unwrap();
            }
            _ => {}
        }

        if force_cold {
            cluster.set_traffic_force_cold(true);
        }
        let got = cluster.traffic_report_as(model);
        let fresh = from_scratch_report(&cluster, model, ecmp);
        assert_equivalent(&got, &fresh, step, force_cold);
        cluster.with_traffic_engine(|engine| assert_matches_global_fluid(engine, step));
        if single_path && step % 5 == 0 {
            assert_matches_batch(&got, &batch_report(&cluster, model), step);
        }
    }
    assert!(!live.is_empty(), "churn kept a live population");
    cluster.check_invariants().unwrap();
}

#[test]
fn incremental_engine_matches_from_scratch_tag() {
    churn_differential(GuaranteeModel::Tag, EcmpConfig::none(), 7, false);
}

#[test]
fn incremental_engine_matches_from_scratch_hose() {
    churn_differential(GuaranteeModel::Hose, EcmpConfig::none(), 11, false);
}

#[test]
fn incremental_engine_matches_from_scratch_under_ecmp() {
    churn_differential(GuaranteeModel::Tag, EcmpConfig::hashed(2), 13, false);
}

#[test]
fn forced_cold_engine_is_bit_equal_to_from_scratch() {
    churn_differential(GuaranteeModel::Tag, EcmpConfig::none(), 7, true);
}

#[test]
fn forced_cold_engine_is_bit_equal_under_ecmp() {
    churn_differential(GuaranteeModel::Tag, EcmpConfig::hashed(2), 13, true);
}

/// Without churn between solves, no component is dirty: the engine must
/// skip every solve and return the previous rates verbatim.
#[test]
fn quiescent_steps_resolve_zero_components() {
    let spec = TreeSpec::small(2, 3, 4, 4, [mbps(1000.0), mbps(4000.0), mbps(8000.0)]);
    let mut cluster = Cluster::new(&spec, CmPlacer::new(CmConfig::cm()))
        .with_guarantee_model(GuaranteeModel::Tag);
    for tag in pool() {
        cluster.admit(&tag).unwrap();
    }
    let first = cluster.traffic_report_as(GuaranteeModel::Tag);
    assert!(first.components_dirty > 0);
    assert!(first.components_total > 0);
    let second = cluster.traffic_report_as(GuaranteeModel::Tag);
    assert_eq!(second.components_dirty, 0, "no churn → nothing dirty");
    assert_eq!(second.components_total, first.components_total);
    assert_eq!(second.solve_cold_secs + second.solve_warm_secs, 0.0);
    assert_equivalent(&second, &first, 1, true);
}
