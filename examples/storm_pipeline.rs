//! The Storm analytics pipeline of the paper's Fig. 3: why TAG reserves
//! half the bandwidth VOC does for the same deployment.
//!
//! ```text
//! cargo run --release --example storm_pipeline
//! ```

use cloudmirror::baselines::OvocPlacer;
use cloudmirror::core::model::VocModel;
use cloudmirror::core::CutModel;
use cloudmirror::workloads::apps;
use cloudmirror::{mbps, Cluster, CmConfig, CmPlacer, TreeSpec};

fn main() {
    // Storm job: spout1 -> {bolt1, bolt2}, bolt2 -> bolt3; 8 VMs per
    // component, 20 Mbps per VM per communicating pair.
    let tag = apps::storm(8, mbps(20.0));
    println!(
        "Storm tenant: {} VMs, components: spout1, bolt1, bolt2, bolt3",
        tag.total_vms()
    );

    // A two-rack datacenter that forces the job to split (each rack holds
    // 16 VMs).
    let spec = TreeSpec::small(1, 2, 4, 4, [mbps(1_000.0), mbps(2_000.0), mbps(4_000.0)]);

    // Deploy with CloudMirror (TAG pricing)...
    let mut cm = Cluster::new(&spec, CmPlacer::new(CmConfig::cm()));
    cm.admit(tag.clone()).expect("fits");
    let (cm_tor_up, cm_tor_dn) = cm.topology().reserved_at_level(1);

    // ... and with improved Oktopus (VOC pricing).
    let mut ovoc = Cluster::new(&spec, OvocPlacer::new());
    ovoc.admit(tag.clone()).expect("fits");
    let (ov_tor_up, ov_tor_dn) = ovoc.topology().reserved_at_level(1);

    println!("\nToR-uplink bandwidth reserved for the same job:");
    println!(
        "  CloudMirror (TAG): {:>6.0} Mbps out / {:>6.0} Mbps in",
        cm_tor_up as f64 / 1000.0,
        cm_tor_dn as f64 / 1000.0
    );
    println!(
        "  Oktopus (VOC)    : {:>6.0} Mbps out / {:>6.0} Mbps in",
        ov_tor_up as f64 / 1000.0,
        ov_tor_dn as f64 / 1000.0
    );

    // The Fig. 3(c) cut priced analytically: {spout1, bolt1} in one branch.
    let voc = VocModel::from_tag(&tag);
    let split = vec![8, 8, 0, 0];
    println!(
        "\nFig. 3(c) split priced on one cut: TAG {:.0} Mbps (= S*B), VOC {:.0} Mbps (= 2S*B)",
        tag.cut_kbps(&split).0 as f64 / 1000.0,
        voc.cut_kbps(&split).0 as f64 / 1000.0
    );
    println!(
        "\nVOC aggregates each component's inter-component guarantees into one\n\
         oversubscribed hose, so it cannot see that only spout1->bolt2 crosses\n\
         the cut — and reserves for bolt1 and bolt3 traffic that never leaves."
    );
}
