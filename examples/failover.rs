//! Fault injection & recovery (§4.5): kill the worst ToR under identical
//! CM and CM+HA tenants and *measure* what survives.
//!
//! CM+HA admits under the Eq. 7 cap — no fault domain at the availability
//! level may hold more than `max(1, ⌊n·(1−rwcs)⌋)` of a tier's `n` VMs —
//! so a single ToR kill provably leaves every tier at or above its
//! admitted surviving fraction, and the fluid traffic solve confirms the
//! survivors' guarantees still hold on the degraded tree. Plain CM packs
//! for bandwidth alone and loses whole tiers. Repairing the rack re-places
//! exactly the lost VMs and restores the guarantees.
//!
//! ```text
//! cargo run --release --example failover
//! ```

use cloudmirror::core::placement::wcs_cap;
use cloudmirror::topology::NodeId;
use cloudmirror::{
    mbps, Cluster, CmConfig, CmError, CmPlacer, Fault, HaPolicy, TagBuilder, TreeSpec,
};

const RWCS: f64 = 0.5;

/// The ToR holding the most of the tenant's VMs — the worst single rack
/// to lose.
fn worst_tor(cluster: &Cluster<CmPlacer>, id: cloudmirror::TenantId) -> NodeId {
    let topo = cluster.topology();
    let mut per_tor: std::collections::HashMap<NodeId, u32> = std::collections::HashMap::new();
    for (server, counts) in cluster.placement_of(id).expect("live") {
        let tor = topo
            .path_to_root(server)
            .find(|&n| topo.level(n) == 1)
            .expect("servers sit under a ToR");
        *per_tor.entry(tor).or_default() += counts.iter().sum::<u32>();
    }
    per_tor
        .into_iter()
        .max_by_key(|&(n, c)| (c, std::cmp::Reverse(n.0)))
        .expect("tenant has VMs")
        .0
}

fn main() -> Result<(), CmError> {
    let spec = TreeSpec::small(2, 2, 4, 4, [mbps(1_000.0), mbps(2_000.0), mbps(4_000.0)]);
    let ha = CmConfig {
        ha: HaPolicy::Guaranteed {
            rwcs: RWCS,
            laa_level: 1, // availability domains = ToRs
        },
        ..CmConfig::default()
    };

    println!("single ToR kill, identical web/db tenants, rwcs = {RWCS}:\n");
    for (cfg, label) in [(CmConfig::cm(), "CM"), (ha, "CM+HA")] {
        let mut cluster = Cluster::new(&spec, CmPlacer::new(cfg));
        let mut b = TagBuilder::new("webdb");
        let w = b.tier("web", 8);
        let d = b.tier("db", 4);
        b.sym_edge(w, d, mbps(20.0)).expect("valid edge");
        b.self_loop(d, mbps(10.0)).expect("valid edge");
        let tenant = cluster.admit(b.build().expect("valid TAG"))?;

        let healthy = cluster.traffic_report();
        let tor = worst_tor(&cluster, tenant.id());
        let report = cluster.inject_fault(Fault::Domain(tor))?;
        let damage = &report.tenants[0];

        println!("[{label}] killed {tor:?}: {} VMs lost", report.lost_vms);
        for (t, &pre) in damage.pre_sizes.iter().enumerate() {
            if pre == 0 {
                continue;
            }
            let lost = damage.lost[t].min(pre);
            let bound = 1.0 - wcs_cap(pre, RWCS) as f64 / pre as f64;
            println!(
                "  tier {t}: {}/{pre} survive ({:.0}%) vs admitted bound {:.0}%{}",
                pre - lost,
                100.0 * (pre - lost) as f64 / pre as f64,
                100.0 * bound,
                if ((pre - lost) as f64 / pre as f64) + 1e-9 < bound {
                    "  <- VIOLATED"
                } else {
                    ""
                },
            );
        }
        let degraded = cluster.traffic_report();
        println!(
            "  traffic: {:.0} -> {:.0} Mbps, {} guarantee violations among survivors",
            healthy.total_rate_kbps / 1000.0,
            degraded.total_rate_kbps / 1000.0,
            degraded.violations,
        );

        let repair = cluster.repair(Fault::Domain(tor))?;
        let restored = cluster.traffic_report();
        println!(
            "  repaired: {} tenants re-placed, traffic back to {:.0} Mbps, {} violations\n",
            repair.repaired.len(),
            restored.total_rate_kbps / 1000.0,
            restored.violations,
        );

        cluster.depart(tenant.id())?;
        cluster.check_invariants().expect("ledger exact");
    }

    println!(
        "CM+HA pays the Eq. 7 spreading constraint at admission and keeps at\n\
         least its admitted rwcs fraction of every tier through the worst\n\
         single-rack loss; plain CM colocates for bandwidth and loses whole\n\
         tiers. Repair re-places exactly the lost VMs on the restored rack."
    );
    Ok(())
}
