//! Quickstart: describe a three-tier web application as a TAG, run it
//! through the full tenant lifecycle on a [`Cluster`] — admit, inspect the
//! placement and guarantees, scale a tier under load, and depart.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cloudmirror::{mbps, Cluster, CmConfig, CmError, CmPlacer, Placer, TagBuilder, TreeSpec};

fn main() -> Result<(), CmError> {
    // 1. The application (the paper's Fig. 2(a)): a web tier talking to a
    //    business-logic tier at 500 Mbps per VM, the logic tier talking to
    //    a database tier at 100 Mbps per VM, and 50 Mbps of intra-database
    //    consistency traffic.
    let mut b = TagBuilder::new("webshop");
    let web = b.tier("web", 6);
    let logic = b.tier("logic", 6);
    let db = b.tier("db", 4);
    b.sym_edge(web, logic, mbps(500.0)).unwrap();
    b.sym_edge(logic, db, mbps(100.0)).unwrap();
    b.self_loop(db, mbps(50.0)).unwrap();
    let tag = b.build().unwrap();
    println!(
        "tenant '{}': {} VMs across {} tiers, {:.0} Mbps aggregate guarantee",
        tag.name(),
        tag.total_vms(),
        tag.internal_tiers().count(),
        tag.total_bandwidth_kbps() as f64 / 1000.0
    );

    // 2. The datacenter, run by the CloudMirror placer behind a lifecycle
    //    controller: 2 pods x 2 racks x 4 servers, 4 VM slots each, 10 G
    //    NICs with oversubscribed 20 G ToR and 20 G agg uplinks.
    let spec = TreeSpec::small(2, 2, 4, 4, [mbps(10_000.0), mbps(20_000.0), mbps(20_000.0)]);
    let mut cluster = Cluster::new(&spec, CmPlacer::new(CmConfig::cm()));
    println!(
        "datacenter: {} servers, {} slots, placer {}",
        spec.num_servers(),
        spec.total_slots(),
        cluster.placer().name()
    );

    // 3. Admit the tenant.
    let tenant = cluster.admit(tag)?;
    let tag = tenant.tag().clone();
    println!("\nplacement (server -> VMs per tier):");
    for (server, counts) in cluster.placement_of(tenant.id())? {
        let named: Vec<String> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(t, &c)| format!("{}x{}", c, tag.tiers()[t].name))
            .collect();
        let (up, dn) = cluster.topology().uplink_used(server).unwrap();
        println!(
            "  {server}: {:<24} NIC reserved {:>6.0}/{:>6.0} Mbps (out/in)",
            named.join(" + "),
            up as f64 / 1000.0,
            dn as f64 / 1000.0
        );
    }
    let util = cluster.utilization();
    println!(
        "utilization: {}/{} slots ({:.0}%), {} tenant(s) live",
        util.slots_in_use,
        util.slots_total,
        util.slot_fraction() * 100.0,
        util.tenants
    );

    // 4. What runtime enforcement must protect: the TAG's guarantees
    //    partitioned over the actual VM pairs of this placement.
    let report = cluster.guarantee_report(tenant.id())?;
    println!(
        "guarantees: {:.0} Mbps total across {} pairs — {:.0} Mbps crosses \
         the network, {:.0} Mbps absorbed by colocation",
        report.total_kbps() / 1000.0,
        report.pairs.len(),
        report.cross_network_kbps() / 1000.0,
        report.colocated_kbps() / 1000.0
    );

    // 5. Load spike: scale the web tier out by 4 VMs, then back in. Per-VM
    //    guarantees never change (§3) — only the delta VMs are placed.
    let new_size = cluster.scale_tier(tenant.id(), web, 4)?;
    println!(
        "\nscaled web tier to {new_size} VMs: {} slots in use",
        cluster.utilization().slots_in_use
    );
    cluster.scale_tier(tenant.id(), web, -4)?;

    // 6. Departure releases everything.
    cluster.depart(tenant.id())?;
    assert_eq!(cluster.utilization().slots_in_use, 0);
    println!("departed: datacenter is clean again");
    Ok(())
}
