//! Quickstart: describe a three-tier web application as a TAG, deploy it
//! on a small datacenter with CloudMirror, inspect the placement and the
//! bandwidth it reserves, then release it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cloudmirror::{mbps, CmConfig, CmPlacer, TagBuilder, Topology, TreeSpec};

fn main() {
    // 1. The application (the paper's Fig. 2(a)): a web tier talking to a
    //    business-logic tier at 500 Mbps per VM, the logic tier talking to
    //    a database tier at 100 Mbps per VM, and 50 Mbps of intra-database
    //    consistency traffic.
    let mut b = TagBuilder::new("webshop");
    let web = b.tier("web", 6);
    let logic = b.tier("logic", 6);
    let db = b.tier("db", 4);
    b.sym_edge(web, logic, mbps(500.0)).unwrap();
    b.sym_edge(logic, db, mbps(100.0)).unwrap();
    b.self_loop(db, mbps(50.0)).unwrap();
    let tag = b.build().unwrap();
    println!(
        "tenant '{}': {} VMs across {} tiers, {:.0} Mbps aggregate guarantee",
        tag.name(),
        tag.total_vms(),
        tag.internal_tiers().count(),
        tag.total_bandwidth_kbps() as f64 / 1000.0
    );

    // 2. The datacenter: 2 pods x 2 racks x 4 servers, 4 VM slots each,
    //    10 G NICs with oversubscribed 20 G ToR and 20 G agg uplinks.
    let spec = TreeSpec::small(2, 2, 4, 4, [mbps(10_000.0), mbps(20_000.0), mbps(20_000.0)]);
    let mut topo = Topology::build(&spec);
    println!(
        "datacenter: {} servers, {} slots",
        spec.num_servers(),
        spec.total_slots()
    );

    // 3. Deploy with CloudMirror.
    let mut placer = CmPlacer::new(CmConfig::cm());
    let mut deployment = placer.place_tag(&mut topo, &tag).expect("tenant fits");
    println!("\nplacement (server -> VMs per tier):");
    for (server, counts) in deployment.placement(&topo) {
        let named: Vec<String> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(t, &c)| format!("{}x{}", c, tag.tiers()[t].name))
            .collect();
        let (up, dn) = topo.uplink_used(server).unwrap();
        println!(
            "  {server}: {:<24} NIC reserved {:>6.0}/{:>6.0} Mbps (out/in)",
            named.join(" + "),
            up as f64 / 1000.0,
            dn as f64 / 1000.0
        );
    }
    for level in 1..topo.num_levels() - 1 {
        let (up, dn) = topo.reserved_at_level(level);
        println!(
            "level {level} uplinks reserve {:.0}/{:.0} Mbps (out/in) in total",
            up as f64 / 1000.0,
            dn as f64 / 1000.0
        );
    }

    // 4. Survivability of the placement (fraction of each tier that
    //    survives any single server failure).
    let wcs = deployment.wcs_at_level(&topo, 0);
    for (t, w) in wcs.iter().enumerate() {
        if let Some(w) = w {
            println!(
                "tier '{}' worst-case survivability: {:.0}%",
                tag.tiers()[t].name,
                w * 100.0
            );
        }
    }

    // 5. Release everything.
    deployment.clear(&mut topo);
    assert_eq!(topo.subtree_slots_free(topo.root()), spec.total_slots());
    println!("\nreleased: datacenter is clean again");
}
