//! Automatic TAG generation (§3 "Producing TAG Models"): synthesize a raw
//! VM-to-VM traffic trace from a known application, recover its component
//! structure with Louvain clustering, score it with adjusted mutual
//! information, build the TAG with statistical-multiplexing-aware
//! guarantees — and close the paper's loop by admitting the inferred TAG
//! onto a datacenter through the lifecycle controller.
//!
//! ```text
//! cargo run --release --example infer_tag
//! ```

use cloudmirror::inference::{
    adjusted_mutual_information, feature_similarity, infer_tag, louvain, synthesize_trace,
    SynthConfig,
};
use cloudmirror::workloads::apps;
use cloudmirror::{mbps, Cluster, CmConfig, CmPlacer, TreeSpec};

fn main() {
    // Ground truth: a three-tier app (10 web, 10 logic, 5 db VMs).
    let truth_tag = apps::three_tier(10, 10, 5, 500, 100, 50);
    println!(
        "ground truth: '{}' with {} VMs in 3 tiers",
        truth_tag.name(),
        truth_tag.total_vms()
    );

    // Observe only raw traffic, with imperfect load balancing and noise.
    let cfg = SynthConfig {
        seed: 7,
        snapshots: 24,
        skew: 0.8,
        noise: 0.2,
    };
    let (trace, truth_labels) = synthesize_trace(&truth_tag, &cfg);
    println!(
        "observed: {} snapshots of a {}x{} traffic matrix (no structure given)",
        trace.num_snapshots(),
        trace.num_vms(),
        trace.num_vms()
    );

    // Pipeline: features -> similarity -> Louvain -> AMI -> TAG.
    let sim = feature_similarity(&trace);
    let labels = louvain(trace.num_vms(), &sim);
    let clusters = labels
        .iter()
        .collect::<std::collections::HashSet<_>>()
        .len();
    let ami = adjusted_mutual_information(&labels, &truth_labels);
    println!("\ninferred {clusters} components; AMI vs ground truth = {ami:.2}");
    println!("(the paper reports mean AMI 0.54 on the real bing.com dataset)");

    let (tag, _vm_tiers) = infer_tag(&trace, &labels, "inferred", 5.0);
    println!("\ninferred TAG:");
    for t in tag.internal_tiers() {
        println!(
            "  component '{}' x{}{}",
            tag.tier(t).name,
            tag.tier(t).size,
            tag.self_loop_of(t)
                .map(|sr| format!(", self-loop {sr} kbps/VM"))
                .unwrap_or_default()
        );
    }
    for e in tag.edges().iter().filter(|e| !e.is_self_loop()) {
        println!(
            "  {} -> {}: <S={}, R={}> kbps/VM",
            tag.tier(e.from).name,
            tag.tier(e.to).name,
            e.snd_kbps,
            e.rcv_kbps
        );
    }

    // Close the loop: the inferred TAG is a deployable tenant. Admit it
    // onto a datacenter and see what its guarantees cost the network.
    let spec = TreeSpec::small(2, 2, 4, 8, [mbps(10_000.0), mbps(20_000.0), mbps(40_000.0)]);
    let mut cluster = Cluster::new(&spec, CmPlacer::new(CmConfig::cm()));
    match cluster.admit(tag) {
        Ok(tenant) => {
            let placement = cluster.placement_of(tenant.id()).expect("live");
            let deployed = cluster.deployed(tenant.id()).expect("live");
            println!(
                "\ndeployed the inferred TAG: {} VMs on {} servers, \
                 {:.0} Mbps reserved end to end",
                deployed.total_placed(cluster.topology()),
                placement.len(),
                deployed.total_reserved_kbps() as f64 / 1000.0
            );
            cluster.depart(tenant.id()).expect("departs");
        }
        Err(e) => println!("\ninferred TAG was rejected: {e}"),
    }
}
