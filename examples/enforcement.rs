//! Runtime guarantee enforcement (§5.2): the Fig. 13 experiment — a
//! 450 Mbps inter-tier guarantee protected from intra-tier traffic by the
//! TAG patch to ElasticSwitch-style guarantee partitioning.
//!
//! ```text
//! cargo run --release --example enforcement
//! ```

use cloudmirror::enforce::{fig13_throughput, GuaranteeModel};

fn main() {
    println!(
        "VM Z receives from X (tier C1, trunk <450,450> Mbps) and from k\n\
         intra-tier senders (self-loop 450 Mbps); the link into Z is 1 Gbps\n\
         with 10% left unreserved.\n"
    );
    println!(
        "{:>3} | {:>12} {:>12} | {:>12} {:>12}",
        "k", "X->Z (TAG)", "intra (TAG)", "X->Z (hose)", "intra (hose)"
    );
    for k in 0..=5 {
        let tag = fig13_throughput(k, GuaranteeModel::Tag);
        let hose = fig13_throughput(k, GuaranteeModel::Hose);
        println!(
            "{:>3} | {:>12.0} {:>12.0} | {:>12.0} {:>12.0}",
            k,
            tag.x_to_z_mbps,
            tag.intra_mbps.max(0.0),
            hose.x_to_z_mbps,
            hose.intra_mbps.max(0.0)
        );
    }
    println!(
        "\nWith the TAG patch the X->Z flow keeps >= 450 Mbps regardless of k\n\
         (work-conserving: it also gets a share of the unreserved 100 Mbps).\n\
         The unpatched hose dilutes X to 1/(k+1) of Z's aggregate hose —\n\
         the §2.2 failure that motivates TAG."
    );
}
