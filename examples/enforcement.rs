//! Runtime guarantee enforcement (§5.2): the Fig. 13 experiment — a
//! 450 Mbps inter-tier guarantee protected from intra-tier traffic by the
//! TAG patch to ElasticSwitch-style guarantee partitioning.
//!
//! ```text
//! cargo run --release --example enforcement
//! ```

use cloudmirror::enforce::{fig13_throughput, GuaranteeModel};
use cloudmirror::{mbps, Cluster, CmConfig, CmPlacer, TagBuilder, TreeSpec};

fn main() {
    println!(
        "VM Z receives from X (tier C1, trunk <450,450> Mbps) and from k\n\
         intra-tier senders (self-loop 450 Mbps); the link into Z is 1 Gbps\n\
         with 10% left unreserved.\n"
    );
    println!(
        "{:>3} | {:>12} {:>12} | {:>12} {:>12}",
        "k", "X->Z (TAG)", "intra (TAG)", "X->Z (hose)", "intra (hose)"
    );
    for k in 0..=5 {
        let tag = fig13_throughput(k, GuaranteeModel::Tag);
        let hose = fig13_throughput(k, GuaranteeModel::Hose);
        println!(
            "{:>3} | {:>12.0} {:>12.0} | {:>12.0} {:>12.0}",
            k,
            tag.x_to_z_mbps,
            tag.intra_mbps.max(0.0),
            hose.x_to_z_mbps,
            hose.intra_mbps.max(0.0)
        );
    }
    println!(
        "\nWith the TAG patch the X->Z flow keeps >= 450 Mbps regardless of k\n\
         (work-conserving: it also gets a share of the unreserved 100 Mbps).\n\
         The unpatched hose dilutes X to 1/(k+1) of Z's aggregate hose —\n\
         the §2.2 failure that motivates TAG."
    );

    // The §5.2 controller hand-off, live: admit the Fig. 13 tenant through
    // the lifecycle controller and ask it what enforcement must protect —
    // guarantees partitioned over the VM pairs of the *actual* placement.
    let mut b = TagBuilder::new("fig13");
    let c1 = b.tier("C1", 1);
    let c2 = b.tier("C2", 5);
    b.edge(c1, c2, mbps(450.0), mbps(450.0)).unwrap();
    b.self_loop(c2, mbps(450.0)).unwrap();
    let spec = TreeSpec::small(1, 2, 2, 4, [mbps(1_000.0), mbps(4_000.0), mbps(8_000.0)]);
    let mut cluster = Cluster::new(&spec, CmPlacer::new(CmConfig::cm()));
    let tenant = cluster.admit(b.build().unwrap()).expect("fits");
    // Reconstruct the Fig. 13 demand pattern on the controller's VM view:
    // X (the C1 VM) sends to one C2 VM "Z", and every other C2 VM also
    // blasts Z with intra-tier traffic.
    let layout = cluster.guarantee_report(tenant.id()).expect("live");
    let x = layout.vm_tier.iter().position(|&t| t == c1).expect("has X");
    let c2_vms: Vec<usize> = (0..layout.vm_tier.len())
        .filter(|&v| layout.vm_tier[v] == c2)
        .collect();
    let z = c2_vms[0];
    let mut active = vec![(x, z)];
    active.extend(c2_vms[1..].iter().map(|&s| (s, z)));

    for model in [GuaranteeModel::Tag, GuaranteeModel::Hose] {
        cluster.set_guarantee_model(model);
        let report = cluster
            .guarantee_report_active(tenant.id(), &active)
            .expect("live");
        let x_to_z = report.pairs[0].kbps;
        let intra: f64 = report.pairs[1..].iter().map(|p| p.kbps).sum();
        println!(
            "\ncontroller report ({model:?} model, Fig. 13 demand pattern): \
             X->Z guaranteed {:.0} Mbps, intra senders share {:.0} Mbps",
            x_to_z / 1000.0,
            intra / 1000.0,
        );
    }
    println!(
        "\nThe controller knows the placement AND the abstraction, so the\n\
         TAG-patched partitioner protects X's trunk guarantee; the plain\n\
         hose dilutes it into Z's aggregate receive hose."
    );
    cluster.depart(tenant.id()).expect("departs");
}
