//! A miniature version of the paper's §5.1 evaluation: Poisson tenant
//! arrivals/departures from the bing-like pool against the 2048-server
//! datacenter, comparing CloudMirror with improved Oktopus. The event loop
//! (`run_sim`) is a thin driver over the `Cluster` lifecycle controller —
//! each arrival is an `admit`, each departure a `depart`.
//!
//! ```text
//! cargo run --release --example datacenter_sim
//! ```

use cloudmirror::sim::{run_sim, CmAdmission, OvocAdmission, SimConfig};
use cloudmirror::workloads::bing_like_pool;

fn main() {
    let pool = bing_like_pool(42);
    let stats = pool.stats();
    println!(
        "bing-like pool: {} tenants, mean {:.0} VMs, largest {} VMs, \
         {:.0}% inter-component traffic",
        stats.count,
        stats.mean_size,
        stats.max_size,
        stats.inter_component_fraction * 100.0
    );

    let mut cfg = SimConfig::paper_default();
    cfg.arrivals = 3_000;
    cfg.load = 0.9;
    cfg.bmax_kbps = 1_200_000;
    println!(
        "\nsimulating {} arrivals at {:.0}% load, Bmax = {} Mbps ...\n",
        cfg.arrivals,
        cfg.load * 100.0,
        cfg.bmax_kbps / 1000
    );

    for result in [
        run_sim(&cfg, &pool, &mut CmAdmission::new()),
        run_sim(&cfg, &pool, &mut OvocAdmission::new()),
    ] {
        let r = &result.rejections;
        println!(
            "{:>5}: rejected {:>5.1}% of bandwidth, {:>5.1}% of VMs, \
             {:>4.1}% of tenants ({} slot / {} bandwidth); peak {} tenants live",
            result.algo,
            r.bw_rate() * 100.0,
            r.vm_rate() * 100.0,
            r.tenant_rate() * 100.0,
            r.rejected_for_slots,
            r.rejected_for_bandwidth,
            result.peak_tenants
        );
    }
    println!(
        "\nCloudMirror admits more demand than Oktopus because TAG reserves\n\
         only the bandwidth the application structure actually needs (§5.1)."
    );
}
