//! TAG flexibility under auto-scaling (§3 "Benefits", §6): per-VM
//! guarantees stay fixed while a live deployment's web tier scales
//! 4 → 24 → 6 VMs in place via [`Cluster::scale_tier`] — no tenant
//! redeployment, no guarantee recomputation. A per-pipe model would need a
//! fresh value for every VM pair at every step.
//!
//! ```text
//! cargo run --release --example autoscale_web
//! ```

use cloudmirror::core::model::PipeModel;
use cloudmirror::core::TierId;
use cloudmirror::workloads::apps;
use cloudmirror::{mbps, Cluster, CmConfig, CmError, CmPlacer, TreeSpec};

fn main() -> Result<(), CmError> {
    let spec = TreeSpec::small(2, 4, 8, 8, [mbps(5_000.0), mbps(20_000.0), mbps(40_000.0)]);
    let mut cluster = Cluster::new(&spec, CmPlacer::new(CmConfig::cm()));

    // Deploy at the initial size: 4 web, 8 logic, 4 db.
    let tag = apps::three_tier(4, 8, 4, mbps(300.0), mbps(100.0), mbps(50.0));
    let web = TierId(0);
    let tenant = cluster.admit(tag)?;

    println!("auto-scaling the web tier of a LIVE deployment:\n");
    println!(
        "{:>8} | {:>10} | {:>12} | {:>14} | {:>12} | {:>14}",
        "web VMs", "TAG edges", "TAG values", "pipe values", "servers", "reserved Mbps"
    );
    for target in [4u32, 12, 24, 6] {
        cluster.resize_tier(tenant.id(), web, target)?;
        cluster.check_invariants().expect("ledger exact");
        let model = cluster.tag_of(tenant.id()).expect("live");
        // What a pipe model would need at this size.
        let pipes = PipeModel::from_tag_idealized(model).pipes().len();
        let deployed = cluster.deployed(tenant.id()).expect("live");
        println!(
            "{:>8} | {:>10} | {:>12} | {:>14} | {:>12} | {:>14.0}",
            target,
            model.edges().len(),
            "unchanged",
            pipes,
            cluster.placement_of(tenant.id())?.len(),
            deployed.total_reserved_kbps() as f64 / 1000.0
        );
    }
    cluster.depart(tenant.id())?;
    println!(
        "\nThe TAG stays 5 edges with identical per-VM values at every scale\n\
         (\"per-VM bandwidth guarantees Se and Re typically do not need to\n\
         change when tier sizes are changed by scaling\", §3); the pipe-model\n\
         equivalent balloons with the pair count and every value would need\n\
         recomputation whenever the load balancer re-spreads traffic."
    );
    Ok(())
}
