//! A hand-rolled scoped thread pool for embarrassingly-parallel work.
//!
//! **Why hand-rolled:** this workspace builds in a network-isolated
//! container (see `third_party/`), so rayon/crossbeam are deliberately out
//! of reach; scoped threads plus a mutex-guarded work queue cover
//! everything the experiment sweeps need. Contributions must keep it that
//! way — no new external concurrency dependencies. The primitives come
//! from `cm_core::sync`, so `cm-race` can model-check this pool too.
//!
//! [`par_map_indexed`] preserves determinism by construction: each task's
//! result is stored at its input index, so the output order (and therefore
//! every downstream table) is independent of the thread count and of
//! scheduling. Tasks must be independently deterministic — which every
//! simulation cell is, since each builds its own topology, RNG, and
//! admission controller from scratch.

// Acquisition order: the work queue is popped (a guard that dies at end of
// statement) strictly before a result slot is written. Never write a slot
// while holding the queue guard — cm-analyze checks inversions against
// this header, and cm-race verifies it dynamically through the sync shim.
// cm-analyze: lock-order(queue < slots)

use cm_core::sync::{scope, Mutex};
use std::collections::VecDeque;

/// Default worker count for experiment sweeps: `CM_SWEEP_THREADS` when
/// set (0 or unparsable falls back), else the machine's available
/// parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("CM_SWEEP_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Apply `f` to every item on up to `threads` workers and return the
/// results in input order. `f(i, item)` receives the item's index; results
/// are merged by index, so the outcome is identical for any `threads`.
pub fn par_map_indexed<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop_front();
                let Some((i, item)) = job else { break };
                let r = f(i, item);
                *slots[i].lock().expect("slot lock") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("every task ran to completion")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let got = par_map_indexed(threads, items.clone(), |_, x| x * x);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn index_is_passed_through() {
        let got = par_map_indexed(4, vec!["a", "b", "c"], |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let got: Vec<u32> = par_map_indexed(4, Vec::<u32>::new(), |_, x| x);
        assert!(got.is_empty());
    }
}
