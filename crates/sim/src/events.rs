//! The Poisson arrival/departure event loop (§5 "Simulation Setup").
//!
//! Since the lifecycle redesign the loop itself is a thin driver over a
//! [`cm_cluster::Cluster`]: arrivals become [`Cluster::admit`], departures
//! become [`Cluster::depart`], and the cluster owns the topology and the
//! tenant registry. Decisions are bit-identical to the pre-redesign loop
//! (the cluster's admission front door calls the same
//! `Placer::place_shared` in the same order), which
//! `tests/cluster_decisions.rs` pins with golden fingerprints.

use crate::admission::Admission;
use crate::metrics::{RejectionCounts, WcsAccumulator, WcsByLevel, WcsStats};
use cm_cluster::{Cluster, TenantId};
use cm_core::model::Tag;
use cm_core::placement::{Deployed, Placer, RejectReason};
use cm_topology::{Kbps, Topology, TreeSpec};
use cm_workloads::TenantPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed (arrival times, tenant sampling and dwell times).
    pub seed: u64,
    /// Number of tenant arrivals (the paper uses 10,000).
    pub arrivals: usize,
    /// Target datacenter load in `[0, 1]`:
    /// `load = T_s · λ · T_d / total_slots`.
    pub load: f64,
    /// Mean tenant dwell time `T_d` (exponentially distributed, fixed mean).
    pub td_mean: f64,
    /// Target `B_max`: the pool is scaled so its peak mean per-VM demand
    /// equals this (kbps). `0` keeps the pool's relative units.
    pub bmax_kbps: Kbps,
    /// The datacenter.
    pub spec: TreeSpec,
    /// Fault-domain level for WCS measurement (0 = server).
    pub wcs_level: u8,
}

impl SimConfig {
    /// The paper's §5.1 default setup: the 2048-server datacenter,
    /// `B_max = 800 Mbps`, 90 % load, and a reduced arrival count suitable
    /// for quick runs (pass `--full`-style overrides for 10,000).
    pub fn paper_default() -> Self {
        SimConfig {
            seed: 1,
            arrivals: 2_000,
            load: 0.9,
            td_mean: 1_000.0,
            bmax_kbps: 800_000,
            spec: TreeSpec::paper_datacenter(),
            wcs_level: 0,
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Algorithm display name.
    pub algo: &'static str,
    /// Rejection accounting.
    pub rejections: RejectionCounts,
    /// WCS across deployed components at `wcs_level`.
    pub wcs: WcsStats,
    /// WCS across deployed components at **every** fault-domain level,
    /// indexed by level (0 = server, 1 = ToR, …) — one fault anywhere in
    /// the tree has a measured survivability story, not just the
    /// configured `wcs_level`.
    pub wcs_by_level: Vec<WcsStats>,
    /// Peak number of concurrently deployed tenants.
    pub peak_tenants: usize,
}

#[derive(PartialEq)]
struct Departure {
    time: f64,
    id: u64,
}

impl Eq for Departure {}

impl Ord for Departure {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("event times are finite")
            .then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for Departure {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-placement latency observations of an instrumented simulation run
/// (see [`run_sim_timed`]).
#[derive(Debug, Clone, Default)]
pub struct AdmissionTimings {
    /// Wall-clock seconds of every `admit` call (accepted and rejected),
    /// in arrival order.
    pub admit_secs: Vec<f64>,
}

impl AdmissionTimings {
    /// Total seconds spent inside the admission controller.
    pub fn total_secs(&self) -> f64 {
        self.admit_secs.iter().sum()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of per-placement latency, by the
    /// nearest-rank method. `None` when no placements were recorded.
    pub fn quantile_secs(&self, q: f64) -> Option<f64> {
        if self.admit_secs.is_empty() {
            return None;
        }
        let mut sorted = self.admit_secs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

/// Run one simulation: `arrivals` Poisson arrivals sampled uniformly from
/// `pool` (scaled to `B_max`), exponential dwell times, against a fresh
/// topology and the given admission controller.
///
/// The arrival rate λ is solved from the configured load exactly as in the
/// paper: `λ = load · total_slots / (T_s · T_d)`.
pub fn run_sim(cfg: &SimConfig, pool: &TenantPool, admission: &mut dyn Admission) -> SimResult {
    run_sim_inner(cfg, pool, admission, None)
}

/// [`run_sim`] with per-placement latency instrumentation — the
/// `bench_admission` macro-benchmark's entry point. The event sequence is
/// identical to the untimed run (timing happens around the `admit` calls).
pub fn run_sim_timed(
    cfg: &SimConfig,
    pool: &TenantPool,
    admission: &mut dyn Admission,
) -> (SimResult, AdmissionTimings) {
    let mut t = AdmissionTimings {
        admit_secs: Vec::with_capacity(cfg.arrivals),
    };
    let r = run_sim_inner(cfg, pool, admission, Some(&mut t));
    (r, t)
}

/// Lifts a borrowed `dyn Admission` into a [`Placer`] so the event loop
/// can hand it to the lifecycle controller; admission stays dyn-dispatched
/// exactly as before the redesign.
struct DynPlacer<'a>(&'a mut dyn Admission);

impl Placer for DynPlacer<'_> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn place(&mut self, topo: &mut Topology, tag: &Tag) -> Result<Deployed, RejectReason> {
        self.0.admit(topo, tag)
    }

    fn place_shared(
        &mut self,
        topo: &mut Topology,
        tag: &Arc<Tag>,
    ) -> Result<Deployed, RejectReason> {
        self.0.admit_shared(topo, tag)
    }
}

fn run_sim_inner(
    cfg: &SimConfig,
    pool: &TenantPool,
    admission: &mut dyn Admission,
    mut timings: Option<&mut AdmissionTimings>,
) -> SimResult {
    let pool = if cfg.bmax_kbps > 0 {
        pool.scaled_to_bmax(cfg.bmax_kbps)
    } else {
        pool.clone()
    };
    let algo = admission.name();
    let mut cluster = Cluster::adopt(Topology::build(&cfg.spec), DynPlacer(admission));
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let total_slots = cfg.spec.total_slots() as f64;
    let ts = pool.mean_size();
    let lambda = cfg.load * total_slots / (ts * cfg.td_mean);
    assert!(lambda > 0.0, "load must be positive");

    let mut counts = RejectionCounts::default();
    let mut wcs_acc = WcsAccumulator::default();
    let mut wcs_levels = WcsByLevel::new(cluster.topology());
    let mut departures: BinaryHeap<Reverse<Departure>> = BinaryHeap::new();
    let mut live: std::collections::HashMap<u64, TenantId> = std::collections::HashMap::new();
    let mut peak = 0usize;
    let mut now = 0.0f64;

    for id in 0..cfg.arrivals as u64 {
        now += exp_sample(&mut rng, lambda);
        // Process departures due before this arrival.
        while let Some(Reverse(d)) = departures.peek() {
            if d.time > now {
                break;
            }
            let d = departures.pop().expect("peeked").0;
            if let Some(tid) = live.remove(&d.id) {
                cluster.depart(tid).expect("live tenants depart cleanly");
            }
        }
        let tag = &pool.tenants()[rng.random_range(0..pool.len())];
        let vms = tag.total_vms();
        let bw = tag.total_bandwidth_kbps() as u128;
        counts.arrivals += 1;
        counts.total_vms += vms;
        counts.total_bw_kbps += bw;
        let t0 = timings.as_ref().map(|_| std::time::Instant::now());
        let outcome = cluster.admit(tag);
        if let (Some(t), Some(t0)) = (timings.as_deref_mut(), t0) {
            t.admit_secs.push(t0.elapsed().as_secs_f64());
        }
        match outcome {
            Ok(handle) => {
                let deployed = cluster.deployed(handle.id()).expect("just admitted");
                let sizes = deployed.tier_sizes();
                wcs_acc.record(
                    &deployed.wcs_at_level(cluster.topology(), cfg.wcs_level),
                    &sizes,
                );
                wcs_levels.record(
                    cluster.topology(),
                    &deployed.placement(cluster.topology()),
                    &sizes,
                );
                let dwell = exp_sample(&mut rng, 1.0 / cfg.td_mean);
                departures.push(Reverse(Departure {
                    time: now + dwell,
                    id,
                }));
                live.insert(id, handle.id());
                peak = peak.max(cluster.tenant_count());
            }
            Err(e) => {
                let reason = e
                    .reject_reason()
                    .expect("admission can only fail with a placement rejection");
                counts.rejected_tenants += 1;
                counts.rejected_vms += vms;
                counts.rejected_bw_kbps += bw;
                match reason {
                    RejectReason::InsufficientSlots => counts.rejected_for_slots += 1,
                    RejectReason::InsufficientBandwidth => counts.rejected_for_bandwidth += 1,
                }
            }
        }
    }
    // Drain remaining tenants so the topology ends clean (a cheap global
    // leak check in debug builds).
    cluster.release_all();
    crate::debug_invariant_sweep(|| {
        cluster.check_invariants()?;
        for l in 0..cluster.topology().num_levels() {
            let r = cluster.topology().reserved_at_level(l);
            if r != (0, 0) {
                return Err(format!("drained level {l} still reserves {r:?} kbps"));
            }
        }
        Ok(())
    });

    SimResult {
        algo,
        rejections: counts,
        wcs: wcs_acc.finish(),
        wcs_by_level: wcs_levels.finish(),
        peak_tenants: peak,
    }
}

/// Exponential sample with the given rate via inverse CDF.
fn exp_sample(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{CmAdmission, OvocAdmission};
    use cm_topology::mbps;
    use cm_workloads::mixed_pool;

    fn small_cfg() -> SimConfig {
        SimConfig {
            seed: 3,
            arrivals: 150,
            load: 0.7,
            td_mean: 100.0,
            bmax_kbps: mbps(100.0),
            spec: TreeSpec::small(2, 4, 8, 8, [mbps(1000.0), mbps(4000.0), mbps(8000.0)]),
            wcs_level: 0,
        }
    }

    #[test]
    fn sim_runs_and_balances_books() {
        let pool = mixed_pool(1);
        let mut cm = CmAdmission::new();
        let r = run_sim(&small_cfg(), &pool, &mut cm);
        assert_eq!(r.rejections.arrivals, 150);
        assert!(r.peak_tenants > 0);
        assert!(r.rejections.tenant_rate() <= 1.0);
        // Per-level WCS: one entry per fault-domain level, and the entry at
        // the configured level matches the classic single-level stats.
        assert_eq!(r.wcs_by_level.len(), 3);
        assert_eq!(r.wcs_by_level[0], r.wcs);
        // Larger fault domains can only lower survivability.
        assert!(r.wcs_by_level[1].mean <= r.wcs_by_level[0].mean + 1e-12);
        assert!(r.wcs_by_level[2].mean <= r.wcs_by_level[1].mean + 1e-12);
        // The debug asserts inside run_sim verify the ledger drained clean.
    }

    #[test]
    fn sim_is_deterministic() {
        let pool = mixed_pool(1);
        let a = run_sim(&small_cfg(), &pool, &mut CmAdmission::new());
        let b = run_sim(&small_cfg(), &pool, &mut CmAdmission::new());
        assert_eq!(a.rejections, b.rejections);
        assert_eq!(a.wcs, b.wcs);
    }

    #[test]
    fn zero_load_rejects_nothing_small() {
        let pool = mixed_pool(2);
        let mut cfg = small_cfg();
        cfg.load = 0.05;
        cfg.bmax_kbps = mbps(10.0);
        let r = run_sim(&cfg, &pool, &mut CmAdmission::new());
        assert_eq!(
            r.rejections.rejected_tenants, 0,
            "negligible load must be fully admitted"
        );
    }

    #[test]
    fn cm_rejects_no_more_bandwidth_than_ovoc() {
        // The paper's headline: CM admits more demand than OVOC.
        let pool = mixed_pool(3);
        let mut cfg = small_cfg();
        cfg.arrivals = 250;
        cfg.load = 0.9;
        cfg.bmax_kbps = mbps(400.0);
        let cm = run_sim(&cfg, &pool, &mut CmAdmission::new());
        let ovoc = run_sim(&cfg, &pool, &mut OvocAdmission::new());
        assert!(
            cm.rejections.bw_rate() <= ovoc.rejections.bw_rate() + 1e-9,
            "CM {} vs OVOC {}",
            cm.rejections.bw_rate(),
            ovoc.rejections.bw_rate()
        );
    }
}
