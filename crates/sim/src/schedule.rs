//! Pre-generated event schedules and their serial/concurrent runners.
//!
//! The classic [`run_sim`](crate::events::run_sim) loop samples its RNG
//! lazily (a tenant's dwell time is drawn only if it is admitted), which
//! ties the random stream to admission outcomes — fine for one-at-a-time
//! admission, but a speculative engine cannot know arrival `i`'s tag
//! before earlier outcomes settle. A [`Schedule`] cuts that knot: arrival
//! times, tenant choices, and dwell times are all drawn up front, so the
//! whole event sequence (arrivals interleaved with the departures of
//! admitted tenants) is a pure function of the configuration.
//!
//! Two runners execute a schedule:
//!
//! * [`run_schedule_serial`] — one placer, one topology, events in order;
//!   the ground truth.
//! * [`run_schedule_concurrent`] — the sharded optimistic engine
//!   ([`cm_core::placement::run_events`]), which must produce
//!   **identical** outcomes for any thread count; the concurrency stress
//!   tests assert exactly that, record by record.
//!
//! Schedules use their own RNG stream; results are *statistically*, not
//! bitwise, comparable with `run_sim` on the same configuration.

use crate::events::SimConfig;
use crate::metrics::{RejectionCounts, WcsAccumulator, WcsByLevel};
use crate::SimResult;
use cm_core::placement::{
    run_events, ConcurrentConfig, ConcurrentOutcome, Event, EventOutcome, PlacementTrace, Placer,
};
use cm_core::placement::{AdmitRecord, Deployed, RejectReason};
use cm_topology::Topology;
use cm_workloads::TenantPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A fully pre-generated admission event sequence (see the module docs).
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Arrivals and departures in simulation-time order.
    pub events: Vec<Event>,
    /// Number of arrival events.
    pub arrivals: usize,
    /// The topology every run of this schedule starts from.
    pub topo: Topology,
    /// Fault-domain level for per-tenant WCS.
    pub wcs_level: u8,
}

/// Everything one schedule run produces: the folded simulation metrics
/// plus the raw per-event outcomes (placements included), which is what
/// the serial-vs-concurrent equivalence tests compare.
#[derive(Debug, Clone)]
pub struct ScheduleRun {
    /// Folded metrics, comparable with [`run_sim`](crate::events::run_sim)
    /// results.
    pub result: SimResult,
    /// Per-event outcomes, aligned with [`Schedule::events`].
    pub outcomes: Vec<EventOutcome>,
}

/// Build the event schedule for a configuration: Poisson arrivals at the
/// load-derived rate, tenants sampled uniformly from the scaled pool,
/// exponential dwell times, and departures interleaved exactly where the
/// classic loop would process them (before the first arrival at or after
/// the departure time; simultaneous departures ordered by arrival id).
pub fn build_schedule(cfg: &SimConfig, pool: &TenantPool) -> Schedule {
    let pool = if cfg.bmax_kbps > 0 {
        pool.scaled_to_bmax(cfg.bmax_kbps)
    } else {
        pool.clone()
    };
    let topo = Topology::build(&cfg.spec);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let total_slots = cfg.spec.total_slots() as f64;
    let ts = pool.mean_size();
    let lambda = cfg.load * total_slots / (ts * cfg.td_mean);
    assert!(lambda > 0.0, "load must be positive");

    let mut now = 0.0f64;
    // (time, kind, arrival-order): kind 0 = departure, 1 = arrival, so a
    // departure at exactly an arrival's time sorts first — matching the
    // classic loop's `d.time <= now` drain.
    let mut keyed: Vec<(f64, u8, usize)> = Vec::with_capacity(cfg.arrivals * 2);
    let mut tags: Vec<Arc<cm_core::model::Tag>> = Vec::with_capacity(cfg.arrivals);
    for i in 0..cfg.arrivals {
        now += exp_sample(&mut rng, lambda);
        let tag = Arc::clone(&pool.tenants()[rng.random_range(0..pool.len())]);
        let dwell = exp_sample(&mut rng, 1.0 / cfg.td_mean);
        keyed.push((now, 1, i));
        keyed.push((now + dwell, 0, i));
        tags.push(tag);
    }
    keyed.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("event times are finite")
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });
    let mut events = Vec::with_capacity(keyed.len());
    let mut arrival_event = vec![usize::MAX; cfg.arrivals];
    for (_, kind, i) in keyed {
        if kind == 1 {
            arrival_event[i] = events.len();
            events.push(Event::Arrive {
                tag: Arc::clone(&tags[i]),
            });
        } else {
            let a = arrival_event[i];
            debug_assert_ne!(a, usize::MAX, "dwell times are positive");
            events.push(Event::Depart { arrival: a });
        }
    }
    Schedule {
        events,
        arrivals: cfg.arrivals,
        topo,
        wcs_level: cfg.wcs_level,
    }
}

/// Run a schedule with one placer on one topology, strictly in order —
/// the serial ground truth the concurrent engine is validated against.
/// Uses the same placer hooks as the engine (`note_arrival` +
/// `place_speculative`), which are decision-identical to `place_shared`.
pub fn run_schedule_serial<P: Placer>(schedule: &Schedule, placer: &mut P) -> ScheduleRun {
    let mut topo = schedule.topo.clone();
    let mut live: Vec<Option<Deployed>> = Vec::new();
    let mut outcomes = Vec::with_capacity(schedule.events.len());
    let mut arrival_of_event = std::collections::HashMap::new();
    let mut trace = PlacementTrace::default();
    for (ei, e) in schedule.events.iter().enumerate() {
        match e {
            Event::Arrive { tag } => {
                arrival_of_event.insert(ei, live.len());
                // Place first, note after: `peek` must see the EWMA of the
                // strict arrival prefix, exactly as `observe`'s return value
                // does in the classic path (and as the engine's
                // exclusive-prefix `note_upto` does).
                let placed = placer.place_speculative(&mut topo, tag, &mut trace);
                placer.note_arrival(tag);
                match placed {
                    Ok(d) => {
                        let rec = AdmitRecord {
                            placement: d.placement(&topo),
                            reservations: d.reservations(),
                            tier_sizes: d.tier_sizes(),
                            wcs: d.wcs_at_level(&topo, schedule.wcs_level),
                        };
                        live.push(Some(d));
                        outcomes.push(EventOutcome::Arrival(ConcurrentOutcome::Admitted(
                            Arc::new(rec),
                        )));
                    }
                    Err(r) => {
                        live.push(None);
                        outcomes.push(EventOutcome::Arrival(ConcurrentOutcome::Rejected(r)));
                    }
                }
            }
            Event::Depart { arrival } => {
                let idx = arrival_of_event[arrival];
                if let Some(d) = live[idx].take() {
                    d.release(&mut topo);
                }
                outcomes.push(EventOutcome::Departure);
            }
        }
    }
    // Tenants still live at the end (a schedule need not drain) keep their
    // resources; the ledger must still be internally consistent.
    crate::debug_invariant_sweep(|| topo.check_invariants());
    ScheduleRun {
        result: fold_outcomes(schedule, &outcomes, placer.name()),
        outcomes,
    }
}

/// Run a schedule on the concurrent engine with the given thread count.
/// Outcomes are bit-identical to [`run_schedule_serial`] for any
/// `threads` (the engine's sequence-numbered commit protocol; asserted by
/// `tests/concurrent_equivalence.rs`).
pub fn run_schedule_concurrent<P, F>(
    schedule: &Schedule,
    make_placer: F,
    threads: usize,
) -> ScheduleRun
where
    P: Placer,
    F: Fn() -> P + Sync,
{
    let name = make_placer().name();
    let cfg = ConcurrentConfig {
        threads,
        wcs_level: schedule.wcs_level,
        ..Default::default()
    };
    let outcomes = run_events(&schedule.topo, &schedule.events, make_placer, &cfg);
    ScheduleRun {
        result: fold_outcomes(schedule, &outcomes, name),
        outcomes,
    }
}

/// Fold per-event outcomes into the classic [`SimResult`] metrics,
/// deterministically (strict event order).
fn fold_outcomes(schedule: &Schedule, outcomes: &[EventOutcome], algo: &'static str) -> SimResult {
    let mut counts = RejectionCounts::default();
    let mut wcs_acc = WcsAccumulator::default();
    let mut wcs_levels = WcsByLevel::new(&schedule.topo);
    let mut live = 0usize;
    let mut peak = 0usize;
    let mut admitted = vec![false; schedule.events.len()];
    for (ei, (e, o)) in schedule.events.iter().zip(outcomes).enumerate() {
        match (e, o) {
            (Event::Arrive { tag }, EventOutcome::Arrival(out)) => {
                counts.arrivals += 1;
                counts.total_vms += tag.total_vms();
                counts.total_bw_kbps += tag.total_bandwidth_kbps() as u128;
                match out {
                    ConcurrentOutcome::Admitted(rec) => {
                        wcs_acc.record(&rec.wcs, &rec.tier_sizes);
                        wcs_levels.record(&schedule.topo, &rec.placement, &rec.tier_sizes);
                        admitted[ei] = true;
                        live += 1;
                        peak = peak.max(live);
                    }
                    ConcurrentOutcome::Rejected(reason) => {
                        counts.rejected_tenants += 1;
                        counts.rejected_vms += tag.total_vms();
                        counts.rejected_bw_kbps += tag.total_bandwidth_kbps() as u128;
                        match reason {
                            RejectReason::InsufficientSlots => counts.rejected_for_slots += 1,
                            RejectReason::InsufficientBandwidth => {
                                counts.rejected_for_bandwidth += 1
                            }
                        }
                    }
                }
            }
            (Event::Depart { arrival }, EventOutcome::Departure) => {
                if admitted[*arrival] {
                    admitted[*arrival] = false;
                    live -= 1;
                }
            }
            _ => unreachable!("outcomes align with events"),
        }
    }
    SimResult {
        algo,
        rejections: counts,
        wcs: wcs_acc.finish(),
        wcs_by_level: wcs_levels.finish(),
        peak_tenants: peak,
    }
}

/// Exponential sample with the given rate via inverse CDF (same sampler as
/// the classic loop).
fn exp_sample(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::placement::{CmConfig, CmPlacer};
    use cm_topology::{mbps, TreeSpec};
    use cm_workloads::mixed_pool;

    fn small_cfg() -> SimConfig {
        SimConfig {
            seed: 3,
            arrivals: 150,
            load: 0.7,
            td_mean: 100.0,
            bmax_kbps: mbps(100.0),
            spec: TreeSpec::small(2, 4, 8, 8, [mbps(1000.0), mbps(4000.0), mbps(8000.0)]),
            wcs_level: 0,
        }
    }

    #[test]
    fn schedule_interleaves_departures_deterministically() {
        let pool = mixed_pool(1);
        let a = build_schedule(&small_cfg(), &pool);
        let b = build_schedule(&small_cfg(), &pool);
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.events.len(), 2 * a.arrivals);
        let arrivals = a
            .events
            .iter()
            .filter(|e| matches!(e, Event::Arrive { .. }))
            .count();
        assert_eq!(arrivals, 150);
        // Departures reference earlier arrivals.
        for (i, e) in a.events.iter().enumerate() {
            if let Event::Depart { arrival } = e {
                assert!(*arrival < i);
                assert!(matches!(a.events[*arrival], Event::Arrive { .. }));
            }
        }
    }

    #[test]
    fn serial_and_concurrent_schedule_runs_agree() {
        let pool = mixed_pool(1);
        let schedule = build_schedule(&small_cfg(), &pool);
        let mut placer = CmPlacer::new(CmConfig::cm());
        let serial = run_schedule_serial(&schedule, &mut placer);
        for threads in [1usize, 3] {
            let conc =
                run_schedule_concurrent(&schedule, || CmPlacer::new(CmConfig::cm()), threads);
            assert_eq!(conc.outcomes, serial.outcomes, "threads = {threads}");
            assert_eq!(conc.result.rejections, serial.result.rejections);
            assert_eq!(conc.result.wcs, serial.result.wcs);
            assert_eq!(conc.result.wcs_by_level, serial.result.wcs_by_level);
            assert_eq!(conc.result.peak_tenants, serial.result.peak_tenants);
        }
    }

    #[test]
    fn folded_metrics_look_like_a_simulation() {
        let pool = mixed_pool(2);
        let schedule = build_schedule(&small_cfg(), &pool);
        let run = run_schedule_serial(&schedule, &mut CmPlacer::new(CmConfig::cm()));
        assert_eq!(run.result.rejections.arrivals, 150);
        assert!(run.result.peak_tenants > 0);
        assert!(run.result.rejections.tenant_rate() <= 1.0);
    }
}
