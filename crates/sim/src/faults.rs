//! Fault injection & recovery mid-churn: worst-case survivability as a
//! **measured** quantity instead of a placement-time promise.
//!
//! [`run_churn_faults`] drives the autoscaling-churn workload of
//! [`crate::lifecycle`] while periodically failing a fault domain, killing
//! a single server, or degrading a link — then repairing a few arrivals
//! later. Every domain kill is scored against the paper's Eq. 7 bound: a
//! tier of `n` VMs placed under `rwcs` worst-case survivability may lose at
//! most `wcs_cap(n, rwcs) = max(1, ⌊n·(1−rwcs)⌋)` VMs to any single fault
//! domain, so its *measured* surviving fraction must stay at or above
//! `1 − wcs_cap(n, rwcs)/n`. CM+HA (with `laa_level` at the killed level)
//! enforces the cap at admission and must record **zero** violations; plain
//! CM never enforced it and is judged against the same number — the gap is
//! the survivability the paper's §4.5 buys.
//!
//! During each degraded window the datacenter-wide traffic solve keeps
//! running, accumulating **violation-seconds** (one arrival ≈ one second)
//! — the throughput side of the same story: evacuated reservations shrink
//! to what survived, so surviving guarantees stay enforceable even while
//! the dead links are measured at zero capacity.

use crate::lifecycle::{ChurnConfig, OpLatencies};
use cm_cluster::{Cluster, Fault, TenantId};
use cm_core::placement::{wcs_cap, Placer};
use cm_topology::Topology;
use cm_workloads::TenantPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::time::Instant;

/// Configuration of one fault-injection churn run.
#[derive(Debug, Clone)]
pub struct FaultChurnConfig {
    /// The underlying churn workload (spec, pool scaling, op mix).
    pub churn: ChurnConfig,
    /// Inject one fault every this many arrivals (0 = never).
    pub fault_every: usize,
    /// Repair an outstanding fault this many arrivals after injection.
    /// Keep it below `fault_every` so windows do not overlap.
    pub repair_after: usize,
    /// Tree level of the killed fault domains (1 = ToR).
    pub domain_level: u8,
    /// The survivability bound every damaged tenant is judged against.
    /// For CM+HA this is the admitted `rwcs`; plain CM is judged against
    /// the same number it never enforced.
    pub rwcs: f64,
}

impl FaultChurnConfig {
    /// A small deterministic scenario for benches and tests: ToR-level
    /// kills every 8 arrivals, repaired 3 arrivals later, judged at the
    /// paper's default `rwcs = 0.25`.
    pub fn quick(churn: ChurnConfig) -> Self {
        FaultChurnConfig {
            churn,
            fault_every: 8,
            repair_after: 3,
            domain_level: 1,
            rwcs: 0.25,
        }
    }
}

/// Everything one fault-injection churn run produces.
#[derive(Debug, Clone)]
pub struct FaultChurnReport {
    /// Placer display name.
    pub placer: &'static str,
    /// Admissions accepted.
    pub admitted: usize,
    /// Departures executed.
    pub departs: usize,
    /// Faults injected, by kind.
    pub domain_kills: usize,
    /// Single-server kills.
    pub server_kills: usize,
    /// Link degradations (no VM loss).
    pub degrades: usize,
    /// VMs lost to failed servers across all faults.
    pub vms_lost: u64,
    /// Tenants that lost at least one VM.
    pub tenants_damaged: usize,
    /// Damaged tenants whose remainder had to be evicted wholesale.
    pub tenants_evicted: usize,
    /// Per-tier Eq. 7 judgments made on domain kills.
    pub survivability_checks: usize,
    /// Judgments where the measured surviving fraction fell below the
    /// `rwcs` bound. Zero for CM+HA with `laa_level` at the killed level.
    pub survivability_violations: usize,
    /// Worst measured surviving fraction across all judged tiers (1.0
    /// when nothing was judged).
    pub worst_survival: f64,
    /// Repair rounds executed (one per fault).
    pub repairs: usize,
    /// Tenant repairs that failed (capacity gone) across all rounds.
    pub repair_failures: usize,
    /// Wall-clock latency of each repair round (topology restore plus
    /// every tenant re-placement it triggered).
    pub repair: OpLatencies,
    /// Arrivals that ran inside a degraded window.
    pub degraded_arrivals: usize,
    /// Σ traffic-guarantee violations over degraded arrivals, at one
    /// arrival per second.
    pub violation_seconds: f64,
    /// Wall-clock seconds of the whole run.
    pub wall_secs: f64,
}

/// One outstanding fault: what was injected, and when.
struct Outstanding {
    fault: Fault,
    injected_at: usize,
}

/// Judge one fault report's damage against Eq. 7 and fold it into the run
/// report. Only tenants that were healthy before this fault are judged —
/// overlapping damage has no single admitted bound to compare against.
fn judge_domain_kill(
    report: &cm_cluster::FaultReport,
    already_damaged: &BTreeSet<TenantId>,
    rwcs: f64,
    out: &mut FaultChurnReport,
) {
    for d in &report.tenants {
        if already_damaged.contains(&d.tenant) {
            continue;
        }
        for (t, &pre) in d.pre_sizes.iter().enumerate() {
            if pre == 0 || d.lost[t] == 0 {
                continue;
            }
            let surviving = (pre - d.lost[t].min(pre)) as f64 / pre as f64;
            let bound = 1.0 - wcs_cap(pre, rwcs) as f64 / pre as f64;
            out.survivability_checks += 1;
            out.worst_survival = out.worst_survival.min(surviving);
            if surviving + 1e-9 < bound {
                out.survivability_violations += 1;
            }
        }
    }
}

/// Run the churn workload with a deterministic fail → degrade → repair
/// schedule woven through it (see the module docs). Faults rotate
/// domain-kill → server-kill → link-degrade; every fault is repaired
/// `repair_after` arrivals later and all of them before the final drain,
/// so the datacenter ends pristine.
pub fn run_churn_faults<P: Placer>(
    cfg: &FaultChurnConfig,
    pool: &TenantPool,
    placer: P,
) -> FaultChurnReport {
    let churn = &cfg.churn;
    let pool = if churn.bmax_kbps > 0 {
        pool.scaled_to_bmax(churn.bmax_kbps)
    } else {
        pool.clone()
    };
    let mut cluster = Cluster::adopt(Topology::build(&churn.spec), placer);
    let mut rng = StdRng::seed_from_u64(churn.seed);
    let mut report = FaultChurnReport {
        placer: cluster.placer().name(),
        admitted: 0,
        departs: 0,
        domain_kills: 0,
        server_kills: 0,
        degrades: 0,
        vms_lost: 0,
        tenants_damaged: 0,
        tenants_evicted: 0,
        survivability_checks: 0,
        survivability_violations: 0,
        worst_survival: 1.0,
        repairs: 0,
        repair_failures: 0,
        repair: OpLatencies::default(),
        degraded_arrivals: 0,
        violation_seconds: 0.0,
        wall_secs: 0.0,
    };
    let t_run = Instant::now();
    let mut live: Vec<TenantId> = Vec::new();
    let mut outstanding: Vec<Outstanding> = Vec::new();
    let mut fault_count = 0usize;

    let repair_round = |cluster: &mut Cluster<P>, o: Outstanding, rep: &mut FaultChurnReport| {
        let t0 = Instant::now();
        let r = cluster
            .repair(o.fault)
            .expect("repairing an injected fault");
        rep.repair.push_secs(t0.elapsed().as_secs_f64());
        rep.repairs += 1;
        rep.repair_failures += r.degraded.len();
    };

    for arrival in 0..churn.tenants {
        // Repair every fault whose window has elapsed.
        while let Some(pos) = outstanding
            .iter()
            .position(|o| arrival >= o.injected_at + cfg.repair_after)
        {
            let o = outstanding.remove(pos);
            repair_round(&mut cluster, o, &mut report);
        }

        // Inject the next scheduled fault.
        if cfg.fault_every > 0 && (arrival + 1) % cfg.fault_every == 0 {
            let already: BTreeSet<TenantId> = cluster.faulted_tenants().collect();
            let fault = match fault_count % 3 {
                0 => {
                    let domains = cluster.topology().nodes_at_level(cfg.domain_level as usize);
                    Fault::Domain(domains[rng.random_range(0..domains.len())])
                }
                1 => {
                    let servers = cluster.topology().servers();
                    Fault::Server(servers[rng.random_range(0..servers.len())])
                }
                _ => {
                    let nodes = cluster.topology().nodes_at_level(cfg.domain_level as usize);
                    Fault::DegradeLink {
                        node: nodes[rng.random_range(0..nodes.len())],
                        fraction: 0.5,
                    }
                }
            };
            fault_count += 1;
            let fr = cluster.inject_fault(fault).expect("valid fault target");
            match fault {
                Fault::Domain(_) => {
                    report.domain_kills += 1;
                    judge_domain_kill(&fr, &already, cfg.rwcs, &mut report);
                }
                Fault::Server(_) => report.server_kills += 1,
                Fault::DegradeLink { .. } => report.degrades += 1,
            }
            report.vms_lost += fr.lost_vms;
            report.tenants_damaged += fr.tenants.iter().filter(|d| d.lost_vms > 0).count();
            report.tenants_evicted += fr.tenants.iter().filter(|d| d.evicted).count();
            outstanding.push(Outstanding {
                fault,
                injected_at: arrival,
            });
        }

        // The lifecycle slice: steady-state depart, admit, scale cycles.
        if live.len() >= churn.target_live.max(1) {
            let id = live.remove(0);
            cluster.depart(id).expect("live tenant departs");
            report.departs += 1;
        }
        let tag = &pool.tenants()[rng.random_range(0..pool.len())];
        if let Ok(handle) = cluster.admit(tag) {
            report.admitted += 1;
            live.push(handle.id());
        }
        for _ in 0..churn.scale_cycles {
            if live.is_empty() {
                break;
            }
            let id = live[rng.random_range(0..live.len())];
            let tiers: Vec<_> = cluster
                .tag_of(id)
                .map(|tag| tag.internal_tiers().collect())
                .unwrap_or_default();
            if tiers.is_empty() {
                continue;
            }
            let tier = tiers[rng.random_range(0..tiers.len())];
            let delta = rng.random_range(1..5u32) as i64;
            if cluster.scale_tier(id, tier, delta).is_ok() {
                let _ = cluster.scale_tier(id, tier, -delta);
            }
        }
        if churn.migrate_every > 0 && (arrival + 1) % churn.migrate_every == 0 && !live.is_empty() {
            let id = live[rng.random_range(0..live.len())];
            let _ = cluster.migrate(id);
        }

        // Degraded window: the traffic solve measures the dead links.
        if !outstanding.is_empty() {
            report.degraded_arrivals += 1;
            report.violation_seconds += cluster.traffic_step().violations as f64;
        }
    }

    // Repair everything still outstanding, then drain pristine.
    for o in std::mem::take(&mut outstanding) {
        repair_round(&mut cluster, o, &mut report);
    }
    for id in live {
        cluster.depart(id).expect("live tenant departs");
        report.departs += 1;
    }
    crate::debug_invariant_sweep(|| {
        cluster.check_invariants()?;
        let in_use = cluster.topology().slots_in_use();
        if in_use != 0 {
            return Err(format!("drained datacenter still holds {in_use} slots"));
        }
        Ok(())
    });

    report.wall_secs = t_run.elapsed().as_secs_f64();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::placement::{CmConfig, CmPlacer, HaPolicy};
    use cm_topology::{mbps, TreeSpec};
    use cm_workloads::mixed_pool;

    fn quick_cfg() -> FaultChurnConfig {
        FaultChurnConfig::quick(ChurnConfig {
            seed: 11,
            spec: TreeSpec::small(2, 4, 8, 8, [mbps(1000.0), mbps(4000.0), mbps(8000.0)]),
            bmax_kbps: mbps(100.0),
            tenants: 80,
            target_live: 12,
            scale_cycles: 1,
            migrate_every: 0,
        })
    }

    /// CM+HA with `laa_level` at the killed level never violates its
    /// admitted Eq. 7 bound under domain kills; plain CM — judged against
    /// the same `rwcs` it never enforced — does.
    #[test]
    fn domain_kills_separate_cm_from_cm_ha() {
        let pool = mixed_pool(3);
        let cfg = quick_cfg();
        let ha = CmConfig {
            ha: HaPolicy::Guaranteed {
                rwcs: cfg.rwcs,
                laa_level: cfg.domain_level,
            },
            ..CmConfig::default()
        };
        let r_ha = run_churn_faults(&cfg, &pool, CmPlacer::new(ha));
        let r_cm = run_churn_faults(&cfg, &pool, CmPlacer::new(CmConfig::cm()));

        assert!(r_ha.domain_kills > 0 && r_cm.domain_kills > 0);
        assert!(r_cm.survivability_checks > 0, "kills must hit tenants");
        assert_eq!(
            r_ha.survivability_violations, 0,
            "CM+HA must hold its admitted Eq. 7 bound (worst survival {})",
            r_ha.worst_survival
        );
        assert!(
            r_cm.survivability_violations > 0,
            "plain CM concentrates tiers and must break the same bound"
        );
        // Every fault was repaired; both runs drained pristine (checked by
        // the driver's debug asserts) and repairs were measured.
        assert_eq!(
            r_ha.repairs,
            r_ha.domain_kills + r_ha.server_kills + r_ha.degrades
        );
        assert!(r_ha.repair.quantile_us(0.99).unwrap() >= 0.0);
    }

    /// The schedule is deterministic: same seed, same faults, same damage.
    #[test]
    fn fault_schedule_is_deterministic() {
        let pool = mixed_pool(3);
        let cfg = quick_cfg();
        let a = run_churn_faults(&cfg, &pool, CmPlacer::new(CmConfig::cm()));
        let b = run_churn_faults(&cfg, &pool, CmPlacer::new(CmConfig::cm()));
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.vms_lost, b.vms_lost);
        assert_eq!(a.survivability_checks, b.survivability_checks);
        assert_eq!(a.survivability_violations, b.survivability_violations);
        assert_eq!(a.violation_seconds, b.violation_seconds);
    }
}
