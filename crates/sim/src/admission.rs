//! Admission control over the unified lifecycle front door.
//!
//! The simulator drives every algorithm through [`Admission`], and there is
//! exactly one implementation: [`PlacerAdmission`], generic over any
//! [`Placer`](cm_core::placement::Placer) from `cm-core` or `cm-baselines`. Since the lifecycle
//! redesign, `PlacerAdmission` is a thin shim over the
//! [`cm_cluster`] controller's admission front door
//! ([`cm_cluster::admit_with`]) — the same code path
//! [`cm_cluster::Cluster::admit`] takes, so borrowed-topology admission and
//! controller-owned admission cannot diverge.
//!
//! The shared-model path ([`Admission::admit_shared`], taking `Arc<Tag>`)
//! is the **primary** interface; the by-reference [`Admission::admit`] is a
//! compatibility wrapper that pays one deep clone to enter it. The seed's
//! per-algorithm adapter structs are long gone — a new placement strategy
//! reaches the simulator by implementing `Placer`, nothing else; the
//! familiar names remain as type aliases ([`CmAdmission`],
//! [`OvocAdmission`], [`VcAdmission`], [`SecondNetAdmission`]).

use cm_baselines::{OktopusVcPlacer, OvocPlacer, SecondNetPlacer};
use cm_core::model::Tag;
use cm_core::placement::{CmConfig, CmPlacer, Placer, RejectReason};
use cm_topology::Topology;
use std::sync::Arc;

pub use cm_core::placement::Deployed;

/// A placement algorithm that can admit TAG tenants into the simulation.
pub trait Admission {
    /// Short name used in result tables ("CM", "OVOC", ...).
    fn name(&self) -> &'static str;

    /// Try to deploy a shared tenant model; `Err` leaves the topology
    /// untouched. This is the primary (hot-path) entry point: pools hand
    /// out `Arc<Tag>`s and placers adopt them without a deep clone.
    fn admit_shared(
        &mut self,
        topo: &mut Topology,
        tag: &Arc<Tag>,
    ) -> Result<Deployed, RejectReason>;

    /// Compatibility wrapper over [`Admission::admit_shared`] for callers
    /// holding a bare `&Tag`: pays one clone to share the model.
    fn admit(&mut self, topo: &mut Topology, tag: &Tag) -> Result<Deployed, RejectReason> {
        self.admit_shared(topo, &Arc::new(tag.clone()))
    }
}

/// The one admission adapter: any [`Placer`] is an admission controller.
pub struct PlacerAdmission<P: Placer> {
    placer: P,
}

impl<P: Placer> PlacerAdmission<P> {
    /// Wrap an existing placer instance.
    pub fn from_placer(placer: P) -> Self {
        PlacerAdmission { placer }
    }

    /// The wrapped placer.
    pub fn placer(&self) -> &P {
        &self.placer
    }
}

impl<P: Placer + Default> PlacerAdmission<P> {
    /// Create an admission controller over the placer's default
    /// configuration.
    pub fn new() -> Self {
        Self::from_placer(P::default())
    }
}

impl<P: Placer + Default> Default for PlacerAdmission<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl PlacerAdmission<CmPlacer> {
    /// CloudMirror admission with an explicit configuration and display
    /// name (used for the HA and ablation variants).
    pub fn with_config(cfg: CmConfig, name: &'static str) -> Self {
        Self::from_placer(CmPlacer::named(cfg, name))
    }
}

impl<P: Placer> Admission for PlacerAdmission<P> {
    fn name(&self) -> &'static str {
        self.placer.name()
    }

    fn admit_shared(
        &mut self,
        topo: &mut Topology,
        tag: &Arc<Tag>,
    ) -> Result<Deployed, RejectReason> {
        cm_cluster::admit_with(topo, &mut self.placer, tag)
    }
}

/// CloudMirror admission (CM+TAG), in any [`CmConfig`] variant.
pub type CmAdmission = PlacerAdmission<CmPlacer>;
/// Improved-Oktopus admission of TAG tenants modeled as generalized VOCs.
pub type OvocAdmission = PlacerAdmission<OvocPlacer>;
/// Oktopus virtual-cluster (hose) admission.
pub type VcAdmission = PlacerAdmission<OktopusVcPlacer>;
/// SecondNet-style pipe admission.
pub type SecondNetAdmission = PlacerAdmission<SecondNetPlacer>;

#[cfg(test)]
mod tests {
    use super::*;
    use cm_topology::{mbps, TreeSpec};
    use cm_workloads::apps;

    #[test]
    fn all_admissions_place_and_release() {
        let spec = TreeSpec::small(2, 2, 4, 4, [mbps(1000.0), mbps(2000.0), mbps(4000.0)]);
        let tag = apps::three_tier(3, 3, 2, mbps(50.0), mbps(20.0), mbps(10.0));
        let mut controllers: Vec<Box<dyn Admission>> = vec![
            Box::new(CmAdmission::new()),
            Box::new(OvocAdmission::new()),
            Box::new(VcAdmission::new()),
            Box::new(SecondNetAdmission::new()),
        ];
        for ctl in &mut controllers {
            let mut topo = Topology::build(&spec);
            let d = ctl.admit(&mut topo, &tag).unwrap_or_else(|e| {
                panic!("{} rejected a trivially-fitting tenant: {e}", ctl.name())
            });
            assert_eq!(
                d.placement(&topo)
                    .iter()
                    .map(|(_, c)| c.iter().sum::<u32>())
                    .sum::<u32>(),
                8
            );
            d.release(&mut topo);
            topo.check_invariants().unwrap();
            for l in 0..topo.num_levels() {
                assert_eq!(topo.reserved_at_level(l), (0, 0), "{}", ctl.name());
            }
        }
    }

    #[test]
    fn admit_is_a_shared_path_wrapper() {
        // The by-reference compatibility path and the primary shared path
        // make identical decisions (and identical placements).
        let spec = TreeSpec::small(2, 2, 4, 4, [mbps(1000.0), mbps(2000.0), mbps(4000.0)]);
        let tag = apps::mapreduce(6, mbps(30.0));
        let shared = Arc::new(tag.clone());
        let mut topo_a = Topology::build(&spec);
        let mut topo_b = Topology::build(&spec);
        let a = CmAdmission::new().admit(&mut topo_a, &tag).unwrap();
        let b = CmAdmission::new()
            .admit_shared(&mut topo_b, &shared)
            .unwrap();
        assert_eq!(a.placement(&topo_a), b.placement(&topo_b));
        assert_eq!(a.reservations(), b.reservations());
        a.release(&mut topo_a);
        b.release(&mut topo_b);
    }

    #[test]
    fn names_flow_through_from_the_placers() {
        assert_eq!(CmAdmission::new().name(), "CM");
        assert_eq!(OvocAdmission::new().name(), "OVOC");
        assert_eq!(VcAdmission::new().name(), "VC");
        assert_eq!(SecondNetAdmission::new().name(), "SecondNet");
        assert_eq!(
            CmAdmission::with_config(CmConfig::cm_ha(0.5), "CM+HA").name(),
            "CM+HA"
        );
    }

    #[test]
    fn wcs_is_exposed_through_the_erased_handle() {
        let spec = TreeSpec::small(2, 2, 4, 4, [mbps(1000.0), mbps(2000.0), mbps(4000.0)]);
        let mut topo = Topology::build(&spec);
        let mut cm = CmAdmission::with_config(CmConfig::cm_ha(0.5), "CM+HA");
        let tag = apps::mapreduce(8, mbps(10.0));
        let d = cm.admit(&mut topo, &tag).unwrap();
        let wcs = d.wcs_at_level(&topo, 0);
        assert!(wcs[0].unwrap() >= 0.5);
        assert_eq!(d.tier_sizes(), vec![8]);
    }
}
