//! Uniform admission interface over all placement algorithms.

use cm_baselines::{OktopusVcPlacer, OvocPlacer, SecondNetPlacer};
use cm_core::cut::CutModel;
use cm_core::model::Tag;
use cm_core::placement::{CmConfig, CmPlacer, RejectReason};
use cm_core::reserve::TenantState;
use cm_topology::{NodeId, Topology};

/// A deployed tenant with its algorithm-specific state erased; release it
/// through [`Deployed::release`] when the tenant departs.
pub struct Deployed(Box<dyn DeployedOps>);

impl Deployed {
    /// Release all slots and bandwidth held by the tenant.
    pub fn release(mut self, topo: &mut Topology) {
        self.0.release(topo);
    }

    /// Worst-case survivability per tier at the given level (`None` for
    /// tiers without placeable VMs). See
    /// [`TenantState::wcs_at_level`](cm_core::reserve::TenantState::wcs_at_level).
    pub fn wcs_at_level(&self, topo: &Topology, level: u8) -> Vec<Option<f64>> {
        self.0.wcs_at_level(topo, level)
    }

    /// Per-server VM counts of the placement.
    pub fn placement(&self, topo: &Topology) -> Vec<(NodeId, Vec<u32>)> {
        self.0.placement(topo)
    }

    /// Sizes of the tenant's tiers, aligned with the placement's count
    /// vectors.
    pub fn tier_sizes(&self) -> Vec<u32> {
        self.0.tier_sizes()
    }
}

trait DeployedOps {
    fn release(&mut self, topo: &mut Topology);
    fn wcs_at_level(&self, topo: &Topology, level: u8) -> Vec<Option<f64>>;
    fn placement(&self, topo: &Topology) -> Vec<(NodeId, Vec<u32>)>;
    fn tier_sizes(&self) -> Vec<u32>;
}

impl<M: CutModel + 'static> DeployedOps for TenantState<M> {
    fn release(&mut self, topo: &mut Topology) {
        self.clear(topo);
    }

    fn wcs_at_level(&self, topo: &Topology, level: u8) -> Vec<Option<f64>> {
        TenantState::wcs_at_level(self, topo, level)
    }

    fn placement(&self, topo: &Topology) -> Vec<(NodeId, Vec<u32>)> {
        TenantState::placement(self, topo)
    }

    fn tier_sizes(&self) -> Vec<u32> {
        (0..self.model().num_tiers())
            .map(|t| self.model().tier_size(t))
            .collect()
    }
}

/// A placement algorithm that can admit TAG tenants.
pub trait Admission {
    /// Short name used in result tables ("CM", "OVOC", ...).
    fn name(&self) -> &'static str;

    /// Try to deploy the tenant; `Err` leaves the topology untouched.
    fn admit(&mut self, topo: &mut Topology, tag: &Tag) -> Result<Deployed, RejectReason>;
}

/// CloudMirror admission (CM+TAG), in any [`CmConfig`] variant.
pub struct CmAdmission {
    placer: CmPlacer,
    name: &'static str,
}

impl CmAdmission {
    /// The paper's plain CM.
    pub fn new() -> Self {
        Self::with_config(CmConfig::cm(), "CM")
    }

    /// CM with an explicit configuration and display name (used for the
    /// HA and ablation variants).
    pub fn with_config(cfg: CmConfig, name: &'static str) -> Self {
        CmAdmission {
            placer: CmPlacer::new(cfg),
            name,
        }
    }
}

impl Default for CmAdmission {
    fn default() -> Self {
        Self::new()
    }
}

impl Admission for CmAdmission {
    fn name(&self) -> &'static str {
        self.name
    }

    fn admit(&mut self, topo: &mut Topology, tag: &Tag) -> Result<Deployed, RejectReason> {
        self.placer.place(topo, tag).map(|s| Deployed(Box::new(s)))
    }
}

/// Improved-Oktopus admission of TAG tenants modeled as generalized VOCs.
#[derive(Default)]
pub struct OvocAdmission {
    placer: OvocPlacer,
}

impl OvocAdmission {
    /// Create an OVOC admission controller.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Admission for OvocAdmission {
    fn name(&self) -> &'static str {
        "OVOC"
    }

    fn admit(&mut self, topo: &mut Topology, tag: &Tag) -> Result<Deployed, RejectReason> {
        self.placer
            .place_tag(topo, tag)
            .map(|s| Deployed(Box::new(s)))
    }
}

/// Oktopus virtual-cluster (hose) admission.
#[derive(Default)]
pub struct VcAdmission {
    placer: OktopusVcPlacer,
}

impl VcAdmission {
    /// Create a VC admission controller.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Admission for VcAdmission {
    fn name(&self) -> &'static str {
        "VC"
    }

    fn admit(&mut self, topo: &mut Topology, tag: &Tag) -> Result<Deployed, RejectReason> {
        self.placer
            .place_tag(topo, tag)
            .map(|s| Deployed(Box::new(s)))
    }
}

/// SecondNet-style pipe admission.
#[derive(Default)]
pub struct SecondNetAdmission {
    placer: SecondNetPlacer,
}

impl SecondNetAdmission {
    /// Create a SecondNet admission controller.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Admission for SecondNetAdmission {
    fn name(&self) -> &'static str {
        "SecondNet"
    }

    fn admit(&mut self, topo: &mut Topology, tag: &Tag) -> Result<Deployed, RejectReason> {
        self.placer
            .place_tag(topo, tag)
            .map(|s| Deployed(Box::new(s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_topology::{mbps, TreeSpec};
    use cm_workloads::apps;

    #[test]
    fn all_admissions_place_and_release() {
        let spec = TreeSpec::small(2, 2, 4, 4, [mbps(1000.0), mbps(2000.0), mbps(4000.0)]);
        let tag = apps::three_tier(3, 3, 2, mbps(50.0), mbps(20.0), mbps(10.0));
        let mut controllers: Vec<Box<dyn Admission>> = vec![
            Box::new(CmAdmission::new()),
            Box::new(OvocAdmission::new()),
            Box::new(VcAdmission::new()),
            Box::new(SecondNetAdmission::new()),
        ];
        for ctl in &mut controllers {
            let mut topo = Topology::build(&spec);
            let d = ctl.admit(&mut topo, &tag).unwrap_or_else(|e| {
                panic!("{} rejected a trivially-fitting tenant: {e}", ctl.name())
            });
            assert_eq!(
                d.placement(&topo)
                    .iter()
                    .map(|(_, c)| c.iter().sum::<u32>())
                    .sum::<u32>(),
                8
            );
            d.release(&mut topo);
            topo.check_invariants().unwrap();
            for l in 0..topo.num_levels() {
                assert_eq!(topo.reserved_at_level(l), (0, 0), "{}", ctl.name());
            }
        }
    }

    #[test]
    fn wcs_is_exposed_through_the_erased_handle() {
        let spec = TreeSpec::small(2, 2, 4, 4, [mbps(1000.0), mbps(2000.0), mbps(4000.0)]);
        let mut topo = Topology::build(&spec);
        let mut cm = CmAdmission::with_config(CmConfig::cm_ha(0.5), "CM+HA");
        let tag = apps::mapreduce(8, mbps(10.0));
        let d = cm.admit(&mut topo, &tag).unwrap();
        let wcs = d.wcs_at_level(&topo, 0);
        assert!(wcs[0].unwrap() >= 0.5);
        assert_eq!(d.tier_sizes(), vec![8]);
    }
}
