//! Ready-made experiment drivers, one per paper table/figure.
//!
//! Each driver returns plain data rows; the `cm-bench` binaries print them.
//! All drivers are seeded and deterministic.

use crate::admission::{Admission, CmAdmission, OvocAdmission};
use crate::events::{run_sim, SimConfig, SimResult};
use crate::metrics::{reprice_by_level, PricedPlacement};
use cm_cluster::Cluster;
use cm_core::cut::CutModel;
use cm_core::model::VocModel;
use cm_core::placement::{CmConfig, CmPlacer, RejectReason};
use cm_topology::{kbps_to_gbps, NodeId, Topology, TreeSpec};
use cm_workloads::TenantPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One row of Table 1: reserved bandwidth (Gbps, out+in) at the server,
/// ToR and aggregation levels.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Algorithm + pricing model label.
    pub label: &'static str,
    /// Reserved Gbps per level `[server, ToR, agg]`.
    pub gbps: [f64; 3],
}

/// Table 1: deploy the pool on an **unlimited-bandwidth** copy of the paper
/// datacenter, arrivals only, until the first slot rejection; report the
/// aggregate reserved bandwidth per level for CM+TAG, the same CM placement
/// re-priced as VOC (CM+VOC), and Oktopus+VOC.
pub fn table1(pool: &TenantPool, seed: u64, bmax_kbps: u64) -> Vec<Table1Row> {
    let pool = pool.scaled_to_bmax(bmax_kbps);
    let spec = TreeSpec::paper_datacenter().unlimited_bandwidth();

    // Fixed arrival sequence shared by both algorithms.
    let mut rng = StdRng::seed_from_u64(seed);
    let sequence: Vec<usize> = (0..20_000)
        .map(|_| rng.random_range(0..pool.len()))
        .collect();

    // CM+TAG, arrivals-only through the lifecycle controller.
    let mut cm_ctl = Cluster::adopt(Topology::build(&spec), CmPlacer::new(CmConfig::cm()));
    let mut cm_admitted: Vec<(cm_cluster::TenantId, usize)> = Vec::new();
    for &idx in &sequence {
        match cm_ctl.admit(&pool.tenants()[idx]) {
            Ok(h) => cm_admitted.push((h.id(), idx)),
            Err(e) => match e.reject_reason() {
                Some(RejectReason::InsufficientSlots) => break,
                _ => unreachable!("bandwidth is unlimited in Table 1"),
            },
        }
    }
    // Price CM's placement under TAG and under VOC.
    type Placements = Vec<(Vec<(NodeId, Vec<u32>)>, usize)>;
    let placements: Placements = cm_admitted
        .iter()
        .map(|(id, idx)| (cm_ctl.placement_of(*id).expect("admitted"), *idx))
        .collect();
    let topo_cm = cm_ctl.topology();
    let vocs: Vec<VocModel> = pool
        .tenants()
        .iter()
        .map(|t| VocModel::from_tag(t))
        .collect();
    let tag_deployments: Vec<PricedPlacement<'_>> = placements
        .iter()
        .map(|(p, idx)| (p.as_slice(), &*pool.tenants()[*idx] as &dyn CutModel))
        .collect();
    let voc_deployments: Vec<PricedPlacement<'_>> = placements
        .iter()
        .map(|(p, idx)| (p.as_slice(), &vocs[*idx] as &dyn CutModel))
        .collect();
    let cm_tag = reprice_by_level(topo_cm, &tag_deployments);
    let cm_voc = reprice_by_level(topo_cm, &voc_deployments);

    // Oktopus+VOC deploys the same sequence on its own unlimited
    // datacenter, through its own controller.
    let mut ov_ctl = Cluster::adopt(Topology::build(&spec), cm_baselines::OvocPlacer::new());
    for &idx in &sequence[..cm_admitted.len().min(sequence.len())] {
        // Same accepted set: capacity is unlimited, so admission is
        // slot-bound and identical across algorithms.
        if ov_ctl.admit(&pool.tenants()[idx]).is_err() {
            break;
        }
    }
    let topo_ov = ov_ctl.topology();
    let ovoc_by_level: Vec<u64> = (0..topo_ov.num_levels())
        .map(|l| {
            let (o, i) = topo_ov.reserved_at_level(l);
            o + i
        })
        .collect();

    let row = |label: &'static str, v: &[u64]| Table1Row {
        label,
        gbps: [kbps_to_gbps(v[0]), kbps_to_gbps(v[1]), kbps_to_gbps(v[2])],
    };
    vec![
        row("CM+TAG", &cm_tag),
        row("CM+VOC", &cm_voc),
        row("OVOC", &ovoc_by_level),
    ]
}

/// A single (x, result) pair of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Sweep coordinate (B_max in Mbps, load %, oversubscription ratio,
    /// required WCS % — depending on the figure).
    pub x: f64,
    /// Full simulation result at that point.
    pub result: SimResult,
}

/// Kind of admission controller for sweep construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algo {
    /// CloudMirror with the given configuration.
    Cm(CmConfig),
    /// CloudMirror with an explicit display label (HA approximations etc.).
    CmLabeled(CmConfig, &'static str),
    /// Improved Oktopus VOC.
    Ovoc,
}

impl Algo {
    /// Display label (the placer's canonical name).
    pub fn label(&self) -> &'static str {
        match self {
            Algo::Cm(cfg) => cfg.label(),
            Algo::CmLabeled(_, label) => label,
            Algo::Ovoc => "OVOC",
        }
    }

    /// Instantiate the admission controller.
    pub fn admission(&self) -> Box<dyn Admission> {
        match self {
            Algo::Cm(cfg) => Box::new(CmAdmission::with_config(*cfg, self.label())),
            Algo::CmLabeled(cfg, label) => Box::new(CmAdmission::with_config(*cfg, label)),
            Algo::Ovoc => Box::new(OvocAdmission::new()),
        }
    }
}

/// One independent experiment cell: a full simulation configuration plus
/// the algorithm to run it with.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The simulation configuration of this cell.
    pub cfg: SimConfig,
    /// The admission algorithm of this cell.
    pub algo: Algo,
}

/// Run every cell and return the results in cell order. Cells are fanned
/// across [`crate::parallel::par_map_indexed`] workers (default:
/// [`crate::parallel::default_threads`]); each cell builds its own
/// topology, RNG, and admission controller, so the results are identical
/// for any thread count — the experiment drivers below all funnel through
/// here, which is what parallelizes every figure harness.
pub fn run_sweep_cells(pool: &TenantPool, cells: Vec<SweepCell>, threads: usize) -> Vec<SimResult> {
    crate::parallel::par_map_indexed(threads, cells, |_, cell| {
        let mut adm = cell.algo.admission();
        run_sim(&cell.cfg, pool, adm.as_mut())
    })
}

/// Figs. 7 & 12 x-axis sweep: vary `B_max` at a fixed load.
pub fn sweep_bmax(
    pool: &TenantPool,
    base: &SimConfig,
    algo: Algo,
    bmax_mbps: &[f64],
) -> Vec<SweepPoint> {
    let cells = bmax_mbps
        .iter()
        .map(|&b| {
            let mut cfg = base.clone();
            cfg.bmax_kbps = (b * 1000.0) as u64;
            SweepCell { cfg, algo }
        })
        .collect();
    let results = run_sweep_cells(pool, cells, crate::parallel::default_threads());
    bmax_mbps
        .iter()
        .zip(results)
        .map(|(&b, result)| SweepPoint { x: b, result })
        .collect()
}

/// Fig. 8: vary load at fixed `B_max`.
pub fn sweep_load(
    pool: &TenantPool,
    base: &SimConfig,
    algo: Algo,
    loads: &[f64],
) -> Vec<SweepPoint> {
    let cells = loads
        .iter()
        .map(|&l| {
            let mut cfg = base.clone();
            cfg.load = l;
            SweepCell { cfg, algo }
        })
        .collect();
    let results = run_sweep_cells(pool, cells, crate::parallel::default_threads());
    loads
        .iter()
        .zip(results)
        .map(|(&l, result)| SweepPoint {
            x: l * 100.0,
            result,
        })
        .collect()
}

/// Fig. 9: vary total topology oversubscription at fixed load and `B_max`.
pub fn sweep_oversubscription(
    pool: &TenantPool,
    base: &SimConfig,
    algo: Algo,
    ratios: &[f64],
) -> Vec<SweepPoint> {
    let cells = ratios
        .iter()
        .map(|&o| {
            let mut cfg = base.clone();
            cfg.spec = TreeSpec::paper_datacenter_with_oversubscription(o);
            SweepCell { cfg, algo }
        })
        .collect();
    let results = run_sweep_cells(pool, cells, crate::parallel::default_threads());
    ratios
        .iter()
        .zip(results)
        .map(|(&o, result)| SweepPoint { x: o, result })
        .collect()
}

/// Fig. 10: micro-benchmark of the CM subroutines plus OVOC for reference.
pub fn ablation(pool: &TenantPool, base: &SimConfig) -> Vec<SimResult> {
    let variants = [
        Algo::Cm(CmConfig::cm()),
        Algo::Cm(CmConfig::coloc_only()),
        Algo::Cm(CmConfig::balance_only()),
        Algo::Ovoc,
    ];
    let cells = variants
        .iter()
        .map(|&algo| SweepCell {
            cfg: base.clone(),
            algo,
        })
        .collect();
    run_sweep_cells(pool, cells, crate::parallel::default_threads())
}

/// Fig. 11: guarantee a required WCS and measure achieved WCS + rejected
/// bandwidth, for CM+HA and an Oktopus extended with the same Eq. 7 cap
/// (we approximate "OVOC+HA" with CM's guaranteed policy on the balance
/// path only, colocation off — Oktopus's own placement has no notion of
/// anti-affinity, and the paper extended it the same way).
pub fn ha_sweep(
    pool: &TenantPool,
    base: &SimConfig,
    rwcs_list: &[f64],
) -> Vec<(f64, SimResult, SimResult)> {
    let ovoc_ha = |r: f64| CmConfig {
        colocate: false,
        balance: false,
        ha: cm_core::placement::HaPolicy::Guaranteed {
            rwcs: r,
            laa_level: 0,
        },
    };
    let cells: Vec<SweepCell> = rwcs_list
        .iter()
        .flat_map(|&r| {
            [
                SweepCell {
                    cfg: base.clone(),
                    algo: Algo::Cm(CmConfig::cm_ha(r)),
                },
                SweepCell {
                    cfg: base.clone(),
                    algo: Algo::CmLabeled(ovoc_ha(r), "OVOC+HA"),
                },
            ]
        })
        .collect();
    let results = run_sweep_cells(pool, cells, crate::parallel::default_threads());
    rwcs_list
        .iter()
        .zip(results.chunks_exact(2))
        .map(|(&r, pair)| (r * 100.0, pair[0].clone(), pair[1].clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_topology::mbps;
    use cm_workloads::{bing_like_pool, mixed_pool};

    fn quick_cfg() -> SimConfig {
        SimConfig {
            seed: 7,
            arrivals: 120,
            load: 0.8,
            td_mean: 100.0,
            bmax_kbps: mbps(300.0),
            spec: TreeSpec::small(2, 4, 8, 8, [mbps(1000.0), mbps(4000.0), mbps(8000.0)]),
            wcs_level: 0,
        }
    }

    #[test]
    fn table1_orders_models_correctly() {
        // The paper's key ordering: CM+TAG ≤ CM+VOC at every level (same
        // placement, pricier model).
        let pool = mixed_pool(5);
        let rows = table1(&pool, 11, mbps(200.0));
        assert_eq!(rows.len(), 3);
        let (tag, voc) = (&rows[0], &rows[1]);
        for l in 0..3 {
            assert!(
                tag.gbps[l] <= voc.gbps[l] + 1e-9,
                "level {l}: TAG {} > VOC {}",
                tag.gbps[l],
                voc.gbps[l]
            );
        }
    }

    #[test]
    fn table1_fills_the_datacenter() {
        let pool = bing_like_pool(42);
        let rows = table1(&pool, 1, mbps(100.0));
        // Some bandwidth must be reserved at every level for the bing pool.
        assert!(rows[0].gbps.iter().all(|&g| g >= 0.0));
        assert!(rows[0].gbps[1] > 0.0, "ToR level must carry traffic");
    }

    #[test]
    fn sweeps_produce_monotone_x() {
        let pool = mixed_pool(5);
        let pts = sweep_bmax(
            &pool,
            &quick_cfg(),
            Algo::Cm(CmConfig::cm()),
            &[100.0, 200.0],
        );
        assert_eq!(pts.len(), 2);
        assert!(pts[0].x < pts[1].x);
    }

    #[test]
    fn ablation_runs_all_variants() {
        let pool = mixed_pool(6);
        let mut cfg = quick_cfg();
        cfg.arrivals = 60;
        let rows = ablation(&pool, &cfg);
        assert_eq!(rows.len(), 4);
        let labels: Vec<&str> = rows.iter().map(|r| r.algo).collect();
        assert_eq!(labels, vec!["CM", "Coloc", "Balance", "OVOC"]);
    }

    #[test]
    fn ha_sweep_achieves_required_wcs() {
        let pool = mixed_pool(7);
        let mut cfg = quick_cfg();
        cfg.arrivals = 80;
        let rows = ha_sweep(&pool, &cfg, &[0.25, 0.5]);
        for (rwcs_pct, cm, _ovoc) in &rows {
            if cm.wcs.components > 0 {
                assert!(
                    cm.wcs.min * 100.0 >= rwcs_pct - 1e-6 - 100.0 / 2.0_f64.max(1.0), // bounded below by Eq. 7 cap with small-tier slack
                );
            }
        }
        // Achieved mean WCS must rise with the requirement.
        assert!(rows[1].1.wcs.mean >= rows[0].1.wcs.mean - 0.05);
    }
}
