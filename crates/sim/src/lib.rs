//! # cm-sim
//!
//! The admission-control simulator behind the paper's evaluation (§5.1).
//!
//! A simulation run replays a Poisson process of tenant arrivals and
//! departures against a datacenter topology and one placement algorithm,
//! measuring what the paper measures:
//!
//! * **rejection rates** — of tenants, of their VMs, and of their aggregate
//!   bandwidth (Figs. 7–10);
//! * **worst-case survivability** (WCS) of deployed components at a chosen
//!   fault-domain level (Figs. 11–12);
//! * **reserved bandwidth per topology level** under different pricing
//!   models for the *same* placement (Table 1).
//!
//! The load is controlled exactly as in the paper:
//! `load = T_s · λ · T_d / total_slots`, with the mean tenant size `T_s`
//! from the pool, fixed mean dwell time `T_d`, and arrival rate `λ` solved
//! from the target load.
//!
//! One generic [`PlacerAdmission`] adapter lifts any `cm-core`
//! [`Placer`](cm_core::placement::Placer) — CloudMirror or baseline — into
//! the event loop, so a single simulator drives them all. The loop itself
//! is a thin driver over the [`cm_cluster::Cluster`] lifecycle controller
//! (arrival = `admit`, departure = `depart`), and the [`lifecycle`] module
//! adds the autoscaling-churn workload (admit → scale out → scale in →
//! depart) on top of the same controller. The [`traffic`] module steps
//! that churn through time with periodic datacenter-wide traffic solves
//! (every live tenant's flows over the physical tree, floors from the
//! enforcement layer).

/// Arrival-driven admission simulation against a placement engine.
pub mod admission;
/// The discrete-event core: clock, queue, and event kinds.
pub mod events;
/// End-to-end experiment drivers behind the paper's figures.
pub mod experiments;
/// Fault injection and recovery: failures, repairs, survivability accounting.
pub mod faults;
/// Tenant lifecycle churn: arrivals, departures, and slot reuse.
pub mod lifecycle;
/// Experiment metrics: acceptance, utilization, latency summaries.
pub mod metrics;
/// Hand-rolled scoped worker pool for sweep parallelism.
pub mod parallel;
/// Workload schedules: arrival processes and tenant mixes.
pub mod schedule;
/// Incremental traffic engine with route caching and flow bundling.
pub mod traffic;

pub use admission::{
    Admission, CmAdmission, Deployed, OvocAdmission, PlacerAdmission, SecondNetAdmission,
    VcAdmission,
};
pub use cm_cluster::{
    Cluster, CmError, Fault, FaultReport, RepairReport, TagSpec, TenantDamage, TenantHandle,
    TenantId,
};
pub use events::{run_sim, SimConfig, SimResult};
pub use faults::{run_churn_faults, FaultChurnConfig, FaultChurnReport};
pub use lifecycle::{run_churn, run_churn_observed, ChurnConfig, ChurnReport, OpLatencies};
pub use metrics::{reprice_by_level, wcs_from_placement, RejectionCounts, WcsByLevel, WcsStats};
pub use parallel::{default_threads, par_map_indexed};
pub use schedule::{build_schedule, run_schedule_concurrent, run_schedule_serial, Schedule};
pub use traffic::{run_churn_traffic, TrafficChurnConfig, TrafficChurnReport, TrafficStep};

/// Debug-build invariant sweep: re-derive a conservation invariant from
/// scratch and panic with the full violation text if it fails. Compiles to
/// nothing in release builds.
///
/// This is the *dynamic* half of the `txn-discipline` convention the
/// static pass (`cargo run -p cm-analyze`) enforces lexically: the static
/// rule keeps every [`cm_topology::Topology`] mutation inside the
/// reservation layer, and this sweep re-derives the ledger those
/// transactions maintain. Both halves report under the same rule name so a
/// failure in either greps to the same entry in `ANALYSIS.md#txn-discipline`.
#[inline]
pub fn debug_invariant_sweep<F>(check: F)
where
    F: FnOnce() -> Result<(), String>,
{
    #[cfg(debug_assertions)]
    if let Err(violation) = check() {
        panic!("txn-discipline (dynamic re-derivation): {violation}");
    }
    #[cfg(not(debug_assertions))]
    let _ = check;
}
