//! Measurement machinery: rejection accounting, WCS statistics, and
//! model repricing of placements (Table 1).

use cm_core::cut::CutModel;
use cm_topology::{Kbps, NodeId, Topology};
use std::collections::HashMap;

/// Rejection accounting over a simulation run (§5.1: "the ratios of
/// rejected tenants' #VMs and aggregate bandwidth relative to those of the
/// total tenant arrivals").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RejectionCounts {
    /// Total tenant arrivals.
    pub arrivals: usize,
    /// Rejected tenant count.
    pub rejected_tenants: usize,
    /// Rejections attributed to slots / to bandwidth.
    pub rejected_for_slots: usize,
    /// Rejections attributed to bandwidth.
    pub rejected_for_bandwidth: usize,
    /// Sum of VM counts over all arrivals.
    pub total_vms: u64,
    /// Sum of VM counts over rejected arrivals.
    pub rejected_vms: u64,
    /// Sum of tenant aggregate bandwidth over all arrivals (kbps).
    pub total_bw_kbps: u128,
    /// Sum over rejected arrivals (kbps).
    pub rejected_bw_kbps: u128,
}

impl RejectionCounts {
    /// Fraction of tenant requests rejected.
    pub fn tenant_rate(&self) -> f64 {
        ratio(self.rejected_tenants as f64, self.arrivals as f64)
    }

    /// Fraction of arriving VMs belonging to rejected tenants.
    pub fn vm_rate(&self) -> f64 {
        ratio(self.rejected_vms as f64, self.total_vms as f64)
    }

    /// Fraction of arriving bandwidth belonging to rejected tenants.
    pub fn bw_rate(&self) -> f64 {
        ratio(self.rejected_bw_kbps as f64, self.total_bw_kbps as f64)
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Aggregated worst-case-survivability statistics across deployed
/// components (tiers of size ≥ 2; singleton tiers cannot survive any
/// failure and are excluded, as are external components).
#[derive(Debug, Clone, PartialEq)]
pub struct WcsStats {
    /// Number of components measured.
    pub components: usize,
    /// Mean WCS.
    pub mean: f64,
    /// Minimum observed WCS (lower error bar of Figs. 11–12).
    pub min: f64,
    /// Maximum observed WCS.
    pub max: f64,
}

impl Default for WcsStats {
    fn default() -> Self {
        WcsStats {
            components: 0,
            mean: 0.0,
            min: f64::NAN,
            max: f64::NAN,
        }
    }
}

/// Incremental accumulator for [`WcsStats`].
#[derive(Debug, Clone, Default)]
pub struct WcsAccumulator {
    sum: f64,
    count: usize,
    min: Option<f64>,
    max: Option<f64>,
}

impl WcsAccumulator {
    /// Record the WCS values of one deployed tenant, given the per-tier
    /// values and tier sizes (singletons and empty tiers skipped).
    pub fn record(&mut self, wcs: &[Option<f64>], sizes: &[u32]) {
        for (w, &n) in wcs.iter().zip(sizes) {
            if n < 2 {
                continue;
            }
            if let Some(v) = w {
                self.sum += v;
                self.count += 1;
                self.min = Some(self.min.map_or(*v, |m| m.min(*v)));
                self.max = Some(self.max.map_or(*v, |m| m.max(*v)));
            }
        }
    }

    /// Finish into summary statistics.
    pub fn finish(&self) -> WcsStats {
        WcsStats {
            components: self.count,
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum / self.count as f64
            },
            min: self.min.unwrap_or(f64::NAN),
            max: self.max.unwrap_or(f64::NAN),
        }
    }
}

/// Per-tier WCS of a placement at one fault-domain level, recomputed from
/// per-server counts: `1 − max_A N^t_A / N^t` over the domains `A` at
/// `level` (0 = server). Matches
/// [`Deployed::wcs_at_level`](cm_core::placement::Deployed::wcs_at_level)
/// and exists so metrics can be derived from a recorded placement (e.g. an
/// [`AdmitRecord`](cm_core::placement::AdmitRecord)) long after the live
/// deployment is gone. `None` for empty/external tiers.
pub fn wcs_from_placement(
    topo: &Topology,
    placement: &[(NodeId, Vec<u32>)],
    tier_sizes: &[u32],
    level: u8,
) -> Vec<Option<f64>> {
    let mut per_domain: HashMap<NodeId, Vec<u32>> = HashMap::new();
    for (server, c) in placement {
        let domain = topo
            .path_to_root(*server)
            .find(|&a| topo.level(a) == level)
            .expect("every server has an ancestor at each level below the root");
        let e = per_domain
            .entry(domain)
            .or_insert_with(|| vec![0; tier_sizes.len()]);
        for (i, &x) in c.iter().enumerate() {
            e[i] += x;
        }
    }
    let mut max_in_domain = vec![0u32; tier_sizes.len()];
    for c in per_domain.values() {
        for (i, &x) in c.iter().enumerate() {
            max_in_domain[i] = max_in_domain[i].max(x);
        }
    }
    tier_sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            if n == 0 {
                None
            } else {
                Some(1.0 - max_in_domain[i] as f64 / n as f64)
            }
        })
        .collect()
}

/// Incremental accumulator for one [`WcsStats`] **per fault-domain level**
/// (0 = server, 1 = ToR, …, up to but excluding the root) — the Figs.
/// 11–12 measurement generalized so survivability is visible at every
/// level a fault can hit, not just the configured one.
#[derive(Debug, Clone)]
pub struct WcsByLevel {
    accs: Vec<WcsAccumulator>,
}

impl WcsByLevel {
    /// One accumulator per fault-domain level of `topo` (every level
    /// below the root; losing the root loses everything).
    pub fn new(topo: &Topology) -> Self {
        WcsByLevel {
            accs: vec![WcsAccumulator::default(); topo.num_levels() - 1],
        }
    }

    /// Record one placement's WCS at every level.
    pub fn record(&mut self, topo: &Topology, placement: &[(NodeId, Vec<u32>)], sizes: &[u32]) {
        for (level, acc) in self.accs.iter_mut().enumerate() {
            acc.record(
                &wcs_from_placement(topo, placement, sizes, level as u8),
                sizes,
            );
        }
    }

    /// Finish into per-level summary statistics, indexed by level.
    pub fn finish(&self) -> Vec<WcsStats> {
        self.accs.iter().map(WcsAccumulator::finish).collect()
    }
}

/// One tenant to re-price: its per-server tier counts plus the pricing
/// model to apply (see [`reprice_by_level`]).
pub type PricedPlacement<'a> = (&'a [(NodeId, Vec<u32>)], &'a dyn CutModel);

/// Re-price a set of placements under an arbitrary model and aggregate the
/// required uplink bandwidth per topology level (outgoing + incoming).
///
/// This implements Table 1's "CM+VOC" row: take the placement produced by
/// CM+TAG and report what it would cost if the tenants were *modeled* with
/// VOC.
pub fn reprice_by_level(topo: &Topology, deployments: &[PricedPlacement<'_>]) -> Vec<Kbps> {
    let mut per_level = vec![0u64; topo.num_levels()];
    for (placement, model) in deployments {
        // Accumulate per-node inside counts bottom-up.
        let mut counts: HashMap<NodeId, Vec<u32>> = HashMap::new();
        for (server, c) in placement.iter() {
            for node in topo.path_to_root(*server) {
                let e = counts
                    .entry(node)
                    .or_insert_with(|| vec![0; model.num_tiers()]);
                for (i, &x) in c.iter().enumerate() {
                    e[i] += x;
                }
            }
        }
        for (node, c) in &counts {
            if *node == topo.root() {
                continue;
            }
            let (out, inc) = model.cut_kbps(c);
            per_level[topo.level(*node) as usize] += out + inc;
        }
    }
    per_level
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::model::{TagBuilder, VocModel};
    use cm_topology::{mbps, TreeSpec};

    #[test]
    fn rejection_rates() {
        let c = RejectionCounts {
            arrivals: 10,
            rejected_tenants: 2,
            rejected_for_slots: 1,
            rejected_for_bandwidth: 1,
            total_vms: 100,
            rejected_vms: 40,
            total_bw_kbps: 1000,
            rejected_bw_kbps: 100,
        };
        assert_eq!(c.tenant_rate(), 0.2);
        assert_eq!(c.vm_rate(), 0.4);
        assert_eq!(c.bw_rate(), 0.1);
        assert_eq!(RejectionCounts::default().bw_rate(), 0.0);
    }

    #[test]
    fn wcs_accumulator_skips_singletons() {
        let mut acc = WcsAccumulator::default();
        acc.record(&[Some(0.5), Some(0.0), None], &[4, 1, 0]);
        acc.record(&[Some(0.75)], &[8]);
        let s = acc.finish();
        assert_eq!(s.components, 2);
        assert!((s.mean - 0.625).abs() < 1e-12);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 0.75);
    }

    #[test]
    fn wcs_from_placement_reports_every_level() {
        let topo = Topology::build(&TreeSpec::small(
            1,
            2,
            2,
            16,
            [mbps(1000.0), mbps(1000.0), mbps(1000.0)],
        ));
        let servers = topo.servers();
        let sizes = [4u32, 4, 0];
        let placement = vec![
            (servers[0], vec![3, 0, 0]),
            (servers[1], vec![1, 2, 0]),
            (servers[2], vec![0, 2, 0]),
        ];
        // Server level: worst domains hold 3/4 and 2/4.
        assert_eq!(
            wcs_from_placement(&topo, &placement, &sizes, 0),
            vec![Some(0.25), Some(0.5), None]
        );
        // Rack level: rack 0 holds all of tier 0 (WCS 0) and half of tier 1.
        assert_eq!(
            wcs_from_placement(&topo, &placement, &sizes, 1),
            vec![Some(0.0), Some(0.5), None]
        );
        // Pod level: the single pod holds everything.
        assert_eq!(
            wcs_from_placement(&topo, &placement, &sizes, 2),
            vec![Some(0.0), Some(0.0), None]
        );
        let mut by_level = WcsByLevel::new(&topo);
        by_level.record(&topo, &placement, &sizes);
        let stats = by_level.finish();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].components, 2);
        assert_eq!(stats[1].min, 0.0);
        assert_eq!(stats[1].max, 0.5);
    }

    #[test]
    fn reprice_tag_vs_voc_ordering() {
        // A Storm-like split placement must price TAG ≤ VOC at every level.
        let topo = Topology::build(&TreeSpec::small(
            1,
            2,
            2,
            16,
            [mbps(1000.0), mbps(1000.0), mbps(1000.0)],
        ));
        let mut b = TagBuilder::new("storm-ish");
        let s1 = b.tier("spout1", 4);
        let b1 = b.tier("bolt1", 4);
        let b2 = b.tier("bolt2", 4);
        let b3 = b.tier("bolt3", 4);
        b.edge(s1, b1, 100, 100).unwrap();
        b.edge(s1, b2, 100, 100).unwrap();
        b.edge(b2, b3, 100, 100).unwrap();
        let tag = b.build().unwrap();
        let voc = VocModel::from_tag(&tag);
        let servers = topo.servers();
        // spout1+bolt1 on rack 0, bolt2+bolt3 on rack 1 (Fig. 3(c)).
        let placement = vec![
            (servers[0], vec![4, 4, 0, 0]),
            (servers[2], vec![0, 0, 4, 4]),
        ];
        let tag_lv = reprice_by_level(&topo, &[(&placement, &tag)]);
        let voc_lv = reprice_by_level(&topo, &[(&placement, &voc)]);
        for (t, v) in tag_lv.iter().zip(&voc_lv) {
            assert!(t <= v);
        }
        // ToR level: only spout1→bolt2 crosses. TAG pays S·B out of rack 0
        // plus S·B into rack 1 = 800. VOC aggregates: rack 0 prices
        // min(4·2B, 4·B+4·B) = 800 out + 400 in, rack 1 symmetrically,
        // totalling 2400 — three times TAG on this split.
        assert_eq!(tag_lv[1], 800);
        assert_eq!(voc_lv[1], 2400);
    }
}
