//! The autoscaling-churn workload: tenants **admit**, **scale out** under
//! load, **scale back in**, occasionally **migrate**, and **depart** — the
//! tenant-lifecycle workload class the paper's §6 sketches ("large-scale
//! variations in load will trigger tenants to scale up or down"), which no
//! pure-admission sweep exercises.
//!
//! [`run_churn`] drives a [`Cluster`] through a seeded, fully deterministic
//! mix of lifecycle operations and reports per-operation-class latency
//! percentiles plus outcome counts; `bench_admission` records it as the
//! `lifecycle_churn` section of `BENCH_placement.json`.

use cm_cluster::{Cluster, TenantId};
use cm_core::model::TierId;
use cm_core::placement::Placer;
use cm_topology::{Kbps, Topology, TreeSpec};
use cm_workloads::TenantPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Configuration of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// RNG seed (tenant choice, op mix, scale deltas).
    pub seed: u64,
    /// The datacenter.
    pub spec: TreeSpec,
    /// Pool scale target (kbps); `0` keeps relative units.
    pub bmax_kbps: Kbps,
    /// Total admissions attempted.
    pub tenants: usize,
    /// Live tenants above which the oldest departs before a new admission
    /// (steady-state churn instead of one-way fill).
    pub target_live: usize,
    /// Scale-out/scale-in cycles attempted after each admission.
    pub scale_cycles: usize,
    /// Migrate one random tenant every this many admissions (0 = never).
    pub migrate_every: usize,
}

impl ChurnConfig {
    /// The default scenario: paper datacenter, bing-like sizing, 90-ish
    /// live tenants with two scale cycles per arrival.
    pub fn paper_default() -> Self {
        ChurnConfig {
            seed: 1,
            spec: TreeSpec::paper_datacenter(),
            bmax_kbps: 800_000,
            tenants: 400,
            target_live: 90,
            scale_cycles: 2,
            migrate_every: 16,
        }
    }
}

/// Latency observations of one lifecycle operation class.
#[derive(Debug, Clone, Default)]
pub struct OpLatencies {
    secs: Vec<f64>,
}

impl OpLatencies {
    fn push(&mut self, s: f64) {
        self.secs.push(s);
    }

    /// Record one observation (seconds). Public so other workload drivers
    /// (the traffic engine's per-step solves) reuse the percentile math.
    pub fn push_secs(&mut self, s: f64) {
        self.push(s);
    }

    /// Number of operations observed.
    pub fn count(&self) -> usize {
        self.secs.len()
    }

    /// Total seconds across the class.
    pub fn total_secs(&self) -> f64 {
        self.secs.iter().sum()
    }

    /// Nearest-rank `q`-quantile in microseconds (`None` when empty).
    pub fn quantile_us(&self, q: f64) -> Option<f64> {
        if self.secs.is_empty() {
            return None;
        }
        let mut sorted = self.secs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1] * 1e6)
    }
}

/// Everything one churn run produces.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Placer display name.
    pub placer: &'static str,
    /// Admissions attempted.
    pub admits_attempted: usize,
    /// Admissions accepted.
    pub admitted: usize,
    /// Scale operations attempted (out + in).
    pub scale_ops: usize,
    /// Scale operations the placer rejected (deployment left untouched).
    pub scale_rejected: usize,
    /// Migrations attempted.
    pub migrates: usize,
    /// Departures executed (steady-state plus final drain).
    pub departs: usize,
    /// Admission latencies.
    pub admit: OpLatencies,
    /// Scale-operation latencies.
    pub scale: OpLatencies,
    /// Departure latencies.
    pub depart: OpLatencies,
    /// Wall-clock seconds of the whole run.
    pub wall_secs: f64,
}

impl ChurnReport {
    /// Lifecycle operations per wall-clock second (admissions + scales +
    /// migrations + departures).
    pub fn ops_per_sec(&self) -> f64 {
        let ops = self.admits_attempted + self.scale_ops + self.migrates + self.departs;
        ops as f64 / self.wall_secs
    }
}

/// Internal (scalable) tiers of a tenant's current TAG.
fn scalable_tiers<P: Placer>(cluster: &Cluster<P>, id: TenantId) -> Vec<TierId> {
    cluster
        .tag_of(id)
        .map(|tag| tag.internal_tiers().collect())
        .unwrap_or_default()
}

/// Run the churn scenario (see the module docs). Deterministic for a given
/// configuration and pool: every decision comes from the seeded RNG and
/// the cluster's typed API.
pub fn run_churn<P: Placer>(cfg: &ChurnConfig, pool: &TenantPool, placer: P) -> ChurnReport {
    run_churn_observed(cfg, pool, placer, |_, _| {})
}

/// [`run_churn`] with an observer called after every arrival's full
/// lifecycle slice (depart + admit + scale cycles + periodic migrate), with
/// the arrival index and the live cluster. The observer cannot mutate the
/// cluster, so the churn decision stream is identical to the unobserved
/// run — this is how the time-stepped traffic driver
/// ([`crate::traffic::run_churn_traffic`]) snapshots the datacenter
/// mid-churn.
pub fn run_churn_observed<P: Placer>(
    cfg: &ChurnConfig,
    pool: &TenantPool,
    placer: P,
    observe: impl FnMut(usize, &Cluster<P>),
) -> ChurnReport {
    run_churn_prepared(cfg, pool, placer, |_| {}, observe)
}

/// [`run_churn_observed`] with a one-shot `prepare` hook called on the
/// freshly built (still empty) cluster before any churn decision — the
/// place to flip cluster-level knobs that must not perturb the decision
/// stream, e.g. [`Cluster::set_traffic_ecmp`] for the traffic driver's
/// multipath runs.
pub fn run_churn_prepared<P: Placer>(
    cfg: &ChurnConfig,
    pool: &TenantPool,
    placer: P,
    prepare: impl FnOnce(&mut Cluster<P>),
    mut observe: impl FnMut(usize, &Cluster<P>),
) -> ChurnReport {
    let pool = if cfg.bmax_kbps > 0 {
        pool.scaled_to_bmax(cfg.bmax_kbps)
    } else {
        pool.clone()
    };
    let mut cluster = Cluster::adopt(Topology::build(&cfg.spec), placer);
    prepare(&mut cluster);
    let placer_name = cluster.placer().name();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = ChurnReport {
        placer: placer_name,
        admits_attempted: 0,
        admitted: 0,
        scale_ops: 0,
        scale_rejected: 0,
        migrates: 0,
        departs: 0,
        admit: OpLatencies::default(),
        scale: OpLatencies::default(),
        depart: OpLatencies::default(),
        wall_secs: 0.0,
    };
    let t_run = Instant::now();
    let mut live: Vec<TenantId> = Vec::new();

    for arrival in 0..cfg.tenants {
        // Steady state: the oldest tenant departs once the target is hit.
        if live.len() >= cfg.target_live.max(1) {
            let id = live.remove(0);
            let t0 = Instant::now();
            cluster.depart(id).expect("live tenant departs");
            report.depart.push(t0.elapsed().as_secs_f64());
            report.departs += 1;
        }

        // Admit.
        let tag = &pool.tenants()[rng.random_range(0..pool.len())];
        report.admits_attempted += 1;
        let t0 = Instant::now();
        let outcome = cluster.admit(tag);
        report.admit.push(t0.elapsed().as_secs_f64());
        if let Ok(handle) = outcome {
            report.admitted += 1;
            live.push(handle.id());
        }

        // Scale out under load, then back in: ±delta on a random internal
        // tier of a random live tenant, per cycle.
        for _ in 0..cfg.scale_cycles {
            if live.is_empty() {
                break;
            }
            let id = live[rng.random_range(0..live.len())];
            let tiers = scalable_tiers(&cluster, id);
            if tiers.is_empty() {
                continue;
            }
            let tier = tiers[rng.random_range(0..tiers.len())];
            let delta = rng.random_range(1..5u32) as i64;
            report.scale_ops += 1;
            let t0 = Instant::now();
            let grown = cluster.scale_tier(id, tier, delta).is_ok();
            report.scale.push(t0.elapsed().as_secs_f64());
            if !grown {
                report.scale_rejected += 1;
                continue;
            }
            report.scale_ops += 1;
            let t0 = Instant::now();
            let shrunk = cluster.scale_tier(id, tier, -delta).is_ok();
            report.scale.push(t0.elapsed().as_secs_f64());
            if !shrunk {
                report.scale_rejected += 1;
            }
        }

        // Periodic defragmentation.
        if cfg.migrate_every > 0 && (arrival + 1) % cfg.migrate_every == 0 && !live.is_empty() {
            let id = live[rng.random_range(0..live.len())];
            report.migrates += 1;
            let _ = cluster.migrate(id);
        }

        observe(arrival, &cluster);
    }

    // Final drain: every remaining tenant departs; the datacenter must end
    // pristine (debug-checked like the admission loop).
    for id in live {
        let t0 = Instant::now();
        cluster.depart(id).expect("live tenant departs");
        report.depart.push(t0.elapsed().as_secs_f64());
        report.departs += 1;
    }
    crate::debug_invariant_sweep(|| {
        cluster.check_invariants()?;
        let in_use = cluster.topology().slots_in_use();
        if in_use != 0 {
            return Err(format!("drained datacenter still holds {in_use} slots"));
        }
        Ok(())
    });

    report.wall_secs = t_run.elapsed().as_secs_f64();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::placement::{CmConfig, CmPlacer};
    use cm_topology::mbps;
    use cm_workloads::mixed_pool;

    fn quick_cfg() -> ChurnConfig {
        ChurnConfig {
            seed: 5,
            spec: TreeSpec::small(2, 4, 8, 8, [mbps(1000.0), mbps(4000.0), mbps(8000.0)]),
            bmax_kbps: mbps(100.0),
            tenants: 60,
            target_live: 12,
            scale_cycles: 2,
            migrate_every: 10,
        }
    }

    #[test]
    fn churn_balances_the_books() {
        let pool = mixed_pool(3);
        let r = run_churn(&quick_cfg(), &pool, CmPlacer::new(CmConfig::cm()));
        assert_eq!(r.admits_attempted, 60);
        assert!(r.admitted > 0);
        assert!(r.scale_ops > 0);
        assert!(r.migrates > 0);
        // Every admitted tenant departed (steady-state or final drain).
        assert_eq!(r.departs, r.admitted);
        assert!(r.admit.quantile_us(0.99).unwrap() >= 0.0);
        // The run's debug asserts verified the topology drained pristine.
    }

    #[test]
    fn churn_is_deterministic_in_decisions() {
        let pool = mixed_pool(3);
        let a = run_churn(&quick_cfg(), &pool, CmPlacer::new(CmConfig::cm()));
        let b = run_churn(&quick_cfg(), &pool, CmPlacer::new(CmConfig::cm()));
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.scale_ops, b.scale_ops);
        assert_eq!(a.scale_rejected, b.scale_rejected);
        assert_eq!(a.departs, b.departs);
    }

    #[test]
    fn churn_drives_baselines_through_the_fallback() {
        let pool = mixed_pool(4);
        let mut cfg = quick_cfg();
        cfg.tenants = 25;
        cfg.scale_cycles = 1;
        let r = run_churn(&cfg, &pool, cm_baselines::OvocPlacer::new());
        assert_eq!(r.placer, "OVOC");
        assert_eq!(r.departs, r.admitted);
    }
}
