//! The time-stepped datacenter traffic workload: lifecycle churn with
//! periodic cluster-wide traffic solves.
//!
//! [`run_churn_traffic`] drives the same deterministic autoscaling-churn
//! scenario as [`crate::lifecycle::run_churn`], but every `solve_every`
//! arrivals it freezes time and steps the cluster's **incremental traffic
//! engine** ([`cm_cluster::Cluster::traffic_step_as`]): tenants whose
//! placement changed since the previous step re-expand their active TAG
//! edges into bundled flows, each bundle is routed over its physical
//! uplink/downlink path (optionally ECMP-split across the core), and one
//! shared weighted max-min network is solved — per-step expand/route/
//! solve/score times, flow counts, guarantee-compliance violations and
//! link utilization are recorded. `bench_admission` writes the result as
//! the `traffic` section of `BENCH_placement.json`, comparing the paper's
//! TAG-patched enforcement against the plain hose-model baseline on
//! identical placements.

use crate::lifecycle::{run_churn_prepared, ChurnConfig, ChurnReport, OpLatencies};
use cm_cluster::{EcmpConfig, GuaranteeModel};
use cm_core::placement::Placer;
use cm_workloads::TenantPool;

/// Configuration of one traffic-churn run.
#[derive(Debug, Clone)]
pub struct TrafficChurnConfig {
    /// The underlying lifecycle churn (datacenter, tenant count, scale
    /// cycles, migrations).
    pub churn: ChurnConfig,
    /// Solve the datacenter network after every this-many arrivals (the
    /// last arrival always solves, so every run has a final snapshot).
    pub solve_every: usize,
    /// Guarantee model enforcing the floors ([`GuaranteeModel::Tag`] = the
    /// paper's patched ElasticSwitch, `Hose` = the §2.2 baseline).
    pub model: GuaranteeModel,
    /// ECMP layout of the traffic engine ([`EcmpConfig::none`] = the
    /// single-path tree routing of the batch solver).
    pub ecmp: EcmpConfig,
}

impl TrafficChurnConfig {
    /// The default scenario: paper datacenter churn with a solve every 25
    /// arrivals under the given model, single-path routing.
    pub fn paper_default(model: GuaranteeModel) -> Self {
        TrafficChurnConfig {
            churn: ChurnConfig::paper_default(),
            solve_every: 25,
            model,
            ecmp: EcmpConfig::none(),
        }
    }
}

/// One traffic snapshot taken mid-churn.
#[derive(Debug, Clone)]
pub struct TrafficStep {
    /// Arrival index the snapshot was taken after.
    pub arrival: usize,
    /// Live tenants at the snapshot.
    pub live_tenants: usize,
    /// VM-pair flows that traversed the network.
    pub cross_flows: usize,
    /// VM-pair flows absorbed by colocation.
    pub colocated_flows: usize,
    /// Pairs whose achieved rate fell short of the TAG intent.
    pub violations: usize,
    /// Tenants with at least one violated pair.
    pub violating_tenants: usize,
    /// Whether the allocation was work-conserving.
    pub work_conserving: bool,
    /// Σ achieved cross-network rate (kbps).
    pub total_rate_kbps: f64,
    /// Largest directional-link utilization.
    pub max_link_utilization: f64,
    /// Seconds spent re-expanding dirty tenants (guarantee partitioning,
    /// bundling, route-cache fills).
    pub expand_secs: f64,
    /// Seconds spent assembling the fluid flow set from cached bundles.
    pub route_secs: f64,
    /// Seconds spent in the fluid max-min solve.
    pub solve_secs: f64,
    /// Seconds of the solve spent in cold (from-scratch) component solves.
    pub solve_cold_secs: f64,
    /// Seconds of the solve spent in accepted warm-started component solves.
    pub solve_warm_secs: f64,
    /// Connected components re-solved this step (churn-touched).
    pub components_dirty: usize,
    /// Connected components in the flow/link graph at this step.
    pub components_total: usize,
    /// Largest core sub-link utilization among ECMP-split links (0 when
    /// routing is single-path).
    pub ecmp_max_utilization: f64,
    /// Mean core sub-link utilization among ECMP-split links.
    pub ecmp_mean_utilization: f64,
    /// Seconds spent scoring achieved rates against TAG intents.
    pub score_secs: f64,
}

impl TrafficStep {
    /// Seconds of everything before the fluid solve (expand + route).
    pub fn build_secs(&self) -> f64 {
        self.expand_secs + self.route_secs
    }

    /// Full per-step engine seconds (expand + route + solve + score).
    pub fn step_secs(&self) -> f64 {
        self.expand_secs + self.route_secs + self.solve_secs + self.score_secs
    }
}

/// Everything one traffic-churn run produces.
#[derive(Debug, Clone)]
pub struct TrafficChurnReport {
    /// Guarantee model the floors were enforced under.
    pub model: GuaranteeModel,
    /// The underlying lifecycle-churn outcome (placer name, op counts,
    /// latencies).
    pub churn: ChurnReport,
    /// One entry per traffic solve, in arrival order.
    pub steps: Vec<TrafficStep>,
}

impl TrafficChurnReport {
    /// Latencies of the fluid max-min solve alone, for percentile queries.
    pub fn solve_latencies(&self) -> OpLatencies {
        let mut lat = OpLatencies::default();
        for s in &self.steps {
            lat.push_secs(s.solve_secs);
        }
        lat
    }

    /// Latencies of the full per-step engine run (expand + route + solve
    /// + score), for percentile queries.
    pub fn step_latencies(&self) -> OpLatencies {
        let mut lat = OpLatencies::default();
        for s in &self.steps {
            lat.push_secs(s.step_secs());
        }
        lat
    }

    /// Latencies of one engine phase, selected by `f` (percentile queries
    /// over the expand/route/score breakdown).
    pub fn phase_latencies(&self, f: impl Fn(&TrafficStep) -> f64) -> OpLatencies {
        let mut lat = OpLatencies::default();
        for s in &self.steps {
            lat.push_secs(f(s));
        }
        lat
    }

    /// Largest cross-network flow count any step solved.
    pub fn flows_max(&self) -> usize {
        self.steps.iter().map(|s| s.cross_flows).max().unwrap_or(0)
    }

    /// Mean cross-network flow count per step.
    pub fn flows_mean(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.cross_flows).sum::<usize>() as f64 / self.steps.len() as f64
    }

    /// Mean churn-dirty component count per solve step.
    pub fn components_dirty_mean(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.components_dirty).sum::<usize>() as f64
            / self.steps.len() as f64
    }

    /// Component count of the final snapshot's flow/link graph.
    pub fn components_total_last(&self) -> usize {
        self.steps.last().map_or(0, |s| s.components_total)
    }

    /// Largest ECMP sub-link utilization seen across all steps.
    pub fn ecmp_max_utilization(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| s.ecmp_max_utilization)
            .fold(0.0, f64::max)
    }

    /// Mean of the per-step mean ECMP sub-link utilizations.
    pub fn ecmp_mean_utilization(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps
            .iter()
            .map(|s| s.ecmp_mean_utilization)
            .sum::<f64>()
            / self.steps.len() as f64
    }

    /// Σ violations over all steps.
    pub fn violations_total(&self) -> usize {
        self.steps.iter().map(|s| s.violations).sum()
    }

    /// Steps whose allocation was work-conserving.
    pub fn work_conserving_steps(&self) -> usize {
        self.steps.iter().filter(|s| s.work_conserving).count()
    }
}

/// Run lifecycle churn with periodic datacenter traffic solves (see the
/// module docs). The churn decision stream is bit-identical to
/// [`crate::lifecycle::run_churn`] with the same [`ChurnConfig`] — the
/// traffic engine only reads the cluster.
pub fn run_churn_traffic<P: Placer>(
    cfg: &TrafficChurnConfig,
    pool: &TenantPool,
    placer: P,
) -> TrafficChurnReport {
    let every = cfg.solve_every.max(1);
    let last = cfg.churn.tenants.saturating_sub(1);
    let mut steps: Vec<TrafficStep> = Vec::new();
    let churn = run_churn_prepared(
        &cfg.churn,
        pool,
        placer,
        |cluster| cluster.set_traffic_ecmp(cfg.ecmp),
        |arrival, cluster| {
            if (arrival + 1) % every != 0 && arrival != last {
                return;
            }
            let r = cluster.traffic_step_as(cfg.model);
            steps.push(TrafficStep {
                arrival,
                live_tenants: cluster.tenant_count(),
                cross_flows: r.cross_flows,
                colocated_flows: r.colocated_flows,
                violations: r.violations,
                violating_tenants: r.violating_tenants(),
                work_conserving: r.work_conserving,
                total_rate_kbps: r.total_rate_kbps,
                max_link_utilization: r.max_link_utilization(),
                expand_secs: r.expand_secs,
                route_secs: r.route_secs,
                solve_secs: r.solve_secs,
                solve_cold_secs: r.solve_cold_secs,
                solve_warm_secs: r.solve_warm_secs,
                components_dirty: r.components_dirty,
                components_total: r.components_total,
                ecmp_max_utilization: r.ecmp_max_utilization,
                ecmp_mean_utilization: r.ecmp_mean_utilization,
                score_secs: r.score_secs,
            });
        },
    );
    TrafficChurnReport {
        model: cfg.model,
        churn,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::placement::{CmConfig, CmPlacer};
    use cm_topology::{mbps, TreeSpec};
    use cm_workloads::mixed_pool;

    fn quick_cfg(model: GuaranteeModel) -> TrafficChurnConfig {
        TrafficChurnConfig {
            churn: ChurnConfig {
                seed: 5,
                spec: TreeSpec::small(2, 4, 8, 8, [mbps(1000.0), mbps(4000.0), mbps(8000.0)]),
                bmax_kbps: mbps(100.0),
                tenants: 40,
                target_live: 10,
                scale_cycles: 1,
                migrate_every: 10,
            },
            solve_every: 10,
            model,
            ecmp: EcmpConfig::none(),
        }
    }

    #[test]
    fn traffic_steps_snapshot_the_churn() {
        let pool = mixed_pool(3);
        let r = run_churn_traffic(
            &quick_cfg(GuaranteeModel::Tag),
            &pool,
            CmPlacer::new(CmConfig::cm()),
        );
        // 40 arrivals, solve every 10 → steps at arrivals 9/19/29/39.
        assert_eq!(r.steps.len(), 4);
        assert_eq!(r.steps.last().unwrap().arrival, 39);
        assert!(r.steps.iter().all(|s| s.live_tenants > 0));
        assert!(r.flows_max() > 0);
        // Every step's allocation must be work-conserving, and Tag-model
        // floors sized by admission meet every intent.
        assert_eq!(r.work_conserving_steps(), r.steps.len());
        assert_eq!(r.violations_total(), 0);
        // The observer does not perturb the churn decisions.
        let plain = crate::lifecycle::run_churn(
            &quick_cfg(GuaranteeModel::Tag).churn,
            &pool,
            CmPlacer::new(CmConfig::cm()),
        );
        assert_eq!(plain.admitted, r.churn.admitted);
        assert_eq!(plain.scale_rejected, r.churn.scale_rejected);
        assert_eq!(plain.departs, r.churn.departs);
    }

    #[test]
    fn hose_model_reports_the_same_flows() {
        let pool = mixed_pool(3);
        let tag = run_churn_traffic(
            &quick_cfg(GuaranteeModel::Tag),
            &pool,
            CmPlacer::new(CmConfig::cm()),
        );
        let hose = run_churn_traffic(
            &quick_cfg(GuaranteeModel::Hose),
            &pool,
            CmPlacer::new(CmConfig::cm()),
        );
        // Identical churn → identical pair populations; only the floors
        // (and hence possibly the achieved split) differ.
        assert_eq!(tag.steps.len(), hose.steps.len());
        for (a, b) in tag.steps.iter().zip(&hose.steps) {
            assert_eq!(a.cross_flows, b.cross_flows);
            assert_eq!(a.colocated_flows, b.colocated_flows);
        }
    }
}
