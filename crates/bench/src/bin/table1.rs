//! Table 1: reserved bandwidth (Gbps) at the server / ToR / aggregation
//! levels for CM+TAG, CM+VOC (same placement, VOC pricing) and OVOC on the
//! bing-like workload — arrivals only, unlimited link capacity, stopping
//! at the first slot rejection.
//!
//! Expected shape (paper values 3209/1006.8/0.7 for CM+TAG etc.):
//! CM+TAG <= CM+VOC at every level; OVOC worst at ToR and aggregation;
//! the TAG advantage small at the server level, large above it.

use cm_bench::print_table;
use cm_sim::experiments::table1;
use cm_workloads::bing_like_pool;

fn main() {
    let pool = bing_like_pool(42);
    let rows = table1(&pool, 1, 800_000);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let base = &rows[0].gbps;
            vec![
                r.label.to_string(),
                format!("{:.1}", r.gbps[0]),
                format!("{:.1}", r.gbps[1]),
                format!("{:.1}", r.gbps[2]),
                format!(
                    "({:.2}) ({:.2}) ({:.2})",
                    safe_ratio(r.gbps[0], base[0]),
                    safe_ratio(r.gbps[1], base[1]),
                    safe_ratio(r.gbps[2], base[2]),
                ),
            ]
        })
        .collect();
    print_table(
        "Table 1: reserved bandwidth (Gbps) for the bing-like workload",
        &["algorithm", "server", "ToR", "agg", "ratio vs CM+TAG"],
        &table,
    );
    println!(
        "\nShape check (paper): VOC pricing exceeds TAG at every level; the gap \
         grows from server to aggregation (paper: 1.02/1.22/2.55 for CM+VOC, \
         0.93/1.29/22.08 for OVOC)."
    );
}

fn safe_ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        if a == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a / b
    }
}
