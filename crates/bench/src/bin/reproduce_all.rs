//! Run every table/figure harness in sequence (the quick configurations;
//! pass `--full` for paper-scale 10,000-arrival sweeps) and print all
//! results. `cargo run -p cm-bench --release --bin reproduce_all`.

use std::process::Command;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let bins = [
        "fig1",
        "fig3_fig4_fig6",
        "table1",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "inference_ami",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        println!("\n{}", "=".repeat(72));
        println!("=== {bin} {}", if full { "(--full)" } else { "(quick)" });
        println!("{}", "=".repeat(72));
        let mut cmd = Command::new(dir.join(bin));
        if full {
            cmd.arg("--full");
        }
        let status = cmd.status().unwrap_or_else(|e| {
            panic!(
                "failed to spawn {bin}: {e} (build with `cargo build --release -p cm-bench` first)"
            )
        });
        assert!(status.success(), "{bin} exited with {status}");
    }
    println!("\nAll experiments completed.");
}
