//! Fig. 10: micro-benchmark of the CM subroutines — full CM
//! (Coloc+Balance), Coloc-only, Balance-only — with OVOC for reference.
//!
//! Expected shape: colocation is the main factor; Balance-only still lands
//! close to OVOC; the full combination is best.

use cm_bench::{pct, print_table, RunMode};
use cm_sim::experiments::ablation;
use cm_workloads::bing_like_pool;

fn main() {
    let mode = RunMode::from_args();
    let pool = bing_like_pool(42);
    let mut cfg = mode.sim_config();
    cfg.bmax_kbps = 1_200_000;
    cfg.load = 0.9;
    let rows: Vec<Vec<String>> = ablation(&pool, &cfg)
        .iter()
        .map(|r| {
            vec![
                match r.algo {
                    "CM" => "Coloc+Balance".to_string(),
                    other => other.to_string(),
                },
                pct(r.rejections.bw_rate()),
                pct(r.rejections.vm_rate()),
            ]
        })
        .collect();
    print_table(
        "Fig. 10: CM subroutine ablation (load 90%, Bmax 1200)",
        &["variant", "rejected BW", "rejected VMs"],
        &rows,
    );
    println!(
        "\nShape check (paper Fig. 10): Coloc+Balance < Coloc < Balance ~ OVOC on \
         rejected bandwidth; colocation is the main factor, balance prevents \
         stranding compute behind saturated uplinks."
    );
}
