//! Figs. 2–6: the paper's motivating examples, regenerated numerically.
//!
//! * Fig. 2/4 — the three-tier web app: hose-model over-reservation on a
//!   cut and the 300:300 congestion failure vs. TAG's 500:100.
//! * Fig. 3 — the Storm app: VOC reserves 2S·B where TAG needs S·B.
//! * Fig. 6 — colocation vs. balanced utilization on a 4-server rack.

use cm_bench::print_table;
use cm_core::cut::CutModel;
use cm_core::model::VocModel;
use cm_core::placement::{CmConfig, CmPlacer};
use cm_enforce::{fig4_throughput, GuaranteeModel};
use cm_topology::{kbps_to_mbps, mbps, Topology, TreeSpec};
use cm_workloads::apps;

fn main() {
    fig2_fig4();
    fig3();
    fig6();
}

fn fig2_fig4() {
    // Fig. 2: web/logic/db, B1=500, B2=100, B3=50 Mbps per VM, 4 VMs each.
    let tag = apps::three_tier(4, 4, 4, mbps(500.0), mbps(100.0), mbps(50.0));
    let vc = VocModel::vc_from_tag(&tag);
    // Deployment of Fig. 2(c): each tier in its own subtree. The cut above
    // the DB tier (link L3) under the hose model reserves B2+B3 per VM
    // even though B3 never leaves the subtree.
    let db_only = vec![0, 0, 4];
    let (tag_out, tag_in) = tag.cut_kbps(&db_only);
    let (vc_out, vc_in) = vc.cut_kbps(&db_only);
    print_table(
        "Fig. 2: bandwidth on the DB subtree uplink (Mbps, out/in)",
        &["model", "out", "in"],
        &[
            vec![
                "TAG (B2 only)".into(),
                format!("{:.0}", kbps_to_mbps(tag_out)),
                format!("{:.0}", kbps_to_mbps(tag_in)),
            ],
            vec![
                "hose (B2+B3 wasted)".into(),
                format!("{:.0}", kbps_to_mbps(vc_out)),
                format!("{:.0}", kbps_to_mbps(vc_in)),
            ],
        ],
    );

    let tag_rates = fig4_throughput(5, 5, GuaranteeModel::Tag);
    let hose_rates = fig4_throughput(5, 5, GuaranteeModel::Hose);
    print_table(
        "Fig. 4: logic VM under simultaneous web+DB bursts (Mbps)",
        &["model", "web->logic", "db->logic"],
        &[
            vec![
                "TAG".into(),
                format!("{:.0}", tag_rates.web_mbps),
                format!("{:.0}", tag_rates.db_mbps),
            ],
            vec![
                "hose".into(),
                format!("{:.0}", hose_rates.web_mbps),
                format!("{:.0}", hose_rates.db_mbps),
            ],
        ],
    );
    println!("\nShape check: TAG holds 500/100; the hose degrades to 300:300.");
}

fn fig3() {
    let s = 10u32;
    let b = mbps(10.0);
    let tag = apps::storm(s, b);
    let voc = VocModel::from_tag(&tag);
    // Fig. 3(c) deployment: {spout1, bolt1} | {bolt2, bolt3}.
    let split = vec![s, s, 0, 0];
    let (tag_out, _) = tag.cut_kbps(&split);
    let (voc_out, _) = voc.cut_kbps(&split);
    print_table(
        "Fig. 3: Storm split across two subtrees — uplink reservation",
        &["model", "reserved (Mbps)", "expected"],
        &[
            vec![
                "TAG".into(),
                format!("{:.0}", kbps_to_mbps(tag_out)),
                "S*B = 100".into(),
            ],
            vec![
                "VOC".into(),
                format!("{:.0}", kbps_to_mbps(voc_out)),
                "2S*B = 200".into(),
            ],
        ],
    );
    println!("\nShape check: VOC reserves twice the actual inter-component traffic.");
}

fn fig6() {
    let tag = apps::fig6_request();
    let mut topo = Topology::build(&TreeSpec::fig6_rack());
    let mut placer = CmPlacer::new(CmConfig::cm());
    match placer.place_tag(&mut topo, &tag) {
        Ok(state) => {
            let rows: Vec<Vec<String>> = state
                .placement(&topo)
                .iter()
                .map(|(server, counts)| {
                    let (up, _) = topo.uplink_used(*server).unwrap();
                    vec![
                        format!("{server}"),
                        format!("A:{} B:{} C:{}", counts[0], counts[1], counts[2]),
                        format!("{:.0}", kbps_to_mbps(up)),
                    ]
                })
                .collect();
            print_table(
                "Fig. 6(d): balanced placement on the 4-server rack (10 Mbps NICs)",
                &["server", "VMs", "NIC reserved (Mbps)"],
                &rows,
            );
            println!(
                "\nShape check: every server pairs one C VM with one low-bandwidth \
                 VM at exactly 10 Mbps — blind colocation (Fig. 6(c)) would have \
                 left C unplaceable."
            );
        }
        Err(e) => println!("Fig. 6 request unexpectedly rejected: {e}"),
    }
}
