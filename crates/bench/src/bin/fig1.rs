//! Fig. 1: bandwidth-to-CPU ratios of cloud workloads vs. datacenter
//! provisioning.
//!
//! This is the paper's motivation figure; the workload points come from
//! the benchmark reports it cites ([18–24]) and the datacenter points from
//! the Facebook datacenter papers [2, 25] and the synthetic topology of
//! [4, 18]. We regenerate the series from those published numbers (kept as
//! annotated constants — there is nothing to simulate).

use cm_bench::print_table;

struct Point {
    name: &'static str,
    kind: &'static str,
    lo_mbps_per_ghz: f64,
    hi_mbps_per_ghz: f64,
    source: &'static str,
}

fn workloads() -> Vec<Point> {
    // Ranges reconstructed from the cited benchmark reports, matching the
    // relative ordering in Fig. 1(a): interactive (blue) similar-or-higher
    // than batch (red).
    vec![
        Point {
            name: "Redis",
            kind: "interactive",
            lo_mbps_per_ghz: 400.0,
            hi_mbps_per_ghz: 6000.0,
            source: "[19] tx/s at 100-1500B",
        },
        Point {
            name: "VoltDB",
            kind: "interactive",
            lo_mbps_per_ghz: 300.0,
            hi_mbps_per_ghz: 4500.0,
            source: "[20] 877k TPS",
        },
        Point {
            name: "Vyatta router",
            kind: "interactive",
            lo_mbps_per_ghz: 800.0,
            hi_mbps_per_ghz: 3000.0,
            source: "[21]",
        },
        Point {
            name: "Ally inspection",
            kind: "interactive",
            lo_mbps_per_ghz: 300.0,
            hi_mbps_per_ghz: 900.0,
            source: "[22]",
        },
        Point {
            name: "HTTP streaming",
            kind: "interactive",
            lo_mbps_per_ghz: 200.0,
            hi_mbps_per_ghz: 700.0,
            source: "[23]",
        },
        Point {
            name: "Wikipedia",
            kind: "interactive",
            lo_mbps_per_ghz: 50.0,
            hi_mbps_per_ghz: 200.0,
            source: "[17] WikiBench",
        },
        Point {
            name: "Cassandra",
            kind: "interactive",
            lo_mbps_per_ghz: 40.0,
            hi_mbps_per_ghz: 150.0,
            source: "[24] Netflix on AWS",
        },
        Point {
            name: "OLTP web",
            kind: "interactive",
            lo_mbps_per_ghz: 30.0,
            hi_mbps_per_ghz: 120.0,
            source: "[12]",
        },
        Point {
            name: "Hadoop",
            kind: "batch",
            lo_mbps_per_ghz: 20.0,
            hi_mbps_per_ghz: 90.0,
            source: "[18]",
        },
        Point {
            name: "Hive",
            kind: "batch",
            lo_mbps_per_ghz: 10.0,
            hi_mbps_per_ghz: 60.0,
            source: "[18]",
        },
    ]
}

fn datacenters() -> Vec<Point> {
    // Provisioned BW:CPU at the server / ToR / aggregation levels
    // (Fig. 1(b)). Server level is well provisioned; ToR/agg fall an order
    // of magnitude short of workload demand due to oversubscription.
    vec![
        Point {
            name: "Facebook DC (server)",
            kind: "server",
            lo_mbps_per_ghz: 300.0,
            hi_mbps_per_ghz: 500.0,
            source: "[2,25]",
        },
        Point {
            name: "Facebook DC (ToR)",
            kind: "ToR",
            lo_mbps_per_ghz: 70.0,
            hi_mbps_per_ghz: 130.0,
            source: "[2,25]",
        },
        Point {
            name: "Facebook DC (agg)",
            kind: "aggregation",
            lo_mbps_per_ghz: 8.0,
            hi_mbps_per_ghz: 16.0,
            source: "[2,25]",
        },
        Point {
            name: "Synthetic DC (server)",
            kind: "server",
            lo_mbps_per_ghz: 250.0,
            hi_mbps_per_ghz: 400.0,
            source: "[4,18]",
        },
        Point {
            name: "Synthetic DC (ToR)",
            kind: "ToR",
            lo_mbps_per_ghz: 50.0,
            hi_mbps_per_ghz: 100.0,
            source: "[4,18]",
        },
        Point {
            name: "Synthetic DC (agg)",
            kind: "aggregation",
            lo_mbps_per_ghz: 6.0,
            hi_mbps_per_ghz: 12.0,
            source: "[4,18]",
        },
        Point {
            name: "Paper eval DC (server)",
            kind: "server",
            lo_mbps_per_ghz: 390.0,
            hi_mbps_per_ghz: 410.0,
            source: "TreeSpec::paper_datacenter",
        },
        Point {
            name: "Paper eval DC (ToR)",
            kind: "ToR",
            lo_mbps_per_ghz: 95.0,
            hi_mbps_per_ghz: 105.0,
            source: "derived: 80G / 800 slots",
        },
        Point {
            name: "Paper eval DC (agg)",
            kind: "aggregation",
            lo_mbps_per_ghz: 11.0,
            hi_mbps_per_ghz: 14.0,
            source: "derived: 80G / 6400 slots",
        },
    ]
}

fn rows(pts: &[Point]) -> Vec<Vec<String>> {
    pts.iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                p.kind.to_string(),
                format!("{:.0}", p.lo_mbps_per_ghz),
                format!("{:.0}", p.hi_mbps_per_ghz),
                p.source.to_string(),
            ]
        })
        .collect()
}

fn main() {
    println!("Fig. 1 — bandwidth-to-CPU ratio (Mbps/GHz), log-scale in the paper");
    print_table(
        "Fig. 1(a): workloads (batch in red, interactive in blue)",
        &["workload", "type", "low", "high", "source"],
        &rows(&workloads()),
    );
    print_table(
        "Fig. 1(b): datacenter provisioning by level",
        &["datacenter", "level", "low", "high", "source"],
        &rows(&datacenters()),
    );
    println!(
        "\nShape check (paper): interactive >= batch demand; DCs provisioned at \
         the server level but 1-2 orders short at ToR/aggregation."
    );
}
