//! Fig. 11: guaranteeing worst-case survivability — achieved WCS and
//! rejected bandwidth vs. the required WCS (LAA = server level), for CM+HA
//! and the Oktopus-style baseline extended with the same Eq. 7 cap.
//!
//! Expected shape: both algorithms achieve the requirement (min WCS ≥
//! RWCS); CM+HA reaches a *higher mean* WCS thanks to balanced resource
//! use; rejected bandwidth grows only slightly with RWCS at the server
//! level (bandwidth is not the bottleneck there).

use cm_bench::{pct, print_table, RunMode};
use cm_sim::experiments::ha_sweep;
use cm_workloads::bing_like_pool;

fn main() {
    let mode = RunMode::from_args();
    let pool = bing_like_pool(42);
    let mut cfg = mode.sim_config();
    cfg.bmax_kbps = 800_000;
    cfg.load = 0.9;
    let rows_raw = ha_sweep(&pool, &cfg, &[0.0, 0.25, 0.5, 0.75]);
    let rows: Vec<Vec<String>> = rows_raw
        .iter()
        .map(|(rwcs, cm, ovoc)| {
            vec![
                format!("{rwcs:.0}%"),
                format!(
                    "{:.1}% [{:.0}-{:.0}]",
                    cm.wcs.mean * 100.0,
                    cm.wcs.min * 100.0,
                    cm.wcs.max * 100.0
                ),
                pct(cm.rejections.bw_rate()),
                format!(
                    "{:.1}% [{:.0}-{:.0}]",
                    ovoc.wcs.mean * 100.0,
                    ovoc.wcs.min * 100.0,
                    ovoc.wcs.max * 100.0
                ),
                pct(ovoc.rejections.bw_rate()),
            ]
        })
        .collect();
    print_table(
        "Fig. 11: guaranteed WCS at the server level (load 90%, Bmax 800)",
        &[
            "required WCS",
            "CM+HA achieved (mean [min-max])",
            "CM+HA rej BW",
            "OVOC+HA achieved",
            "OVOC+HA rej BW",
        ],
        &rows,
    );
    println!(
        "\nShape check (paper Fig. 11): required WCS achieved by both (min >= \
         required); CM+HA's mean exceeds OVOC+HA's; BW rejection rises only \
         mildly with the requirement."
    );
}
