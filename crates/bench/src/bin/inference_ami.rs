//! §3 "Producing TAG Models": inference quality of the clustering pipeline
//! — adjusted mutual information between inferred and ground-truth
//! components over a pool of synthetic tenants with load-balancer skew and
//! background noise.
//!
//! The paper reports a mean AMI of 0.54 over 80 bing applications using
//! Louvain clustering; our traces are synthetic (the real dataset is
//! proprietary), so the absolute score differs with the noise knobs, but
//! the pipeline and metric are the paper's.

use cm_bench::print_table;
use cm_inference::{
    adjusted_mutual_information, feature_similarity, louvain, synthesize_trace, SynthConfig,
};
use cm_workloads::bing_like_pool;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let pool = bing_like_pool(42);
    // Trace synthesis is O(n²·snapshots); cap tenant size for the quick run.
    let cap = if full { 400 } else { 120 };
    let mut rows = Vec::new();
    let mut amis = Vec::new();
    for (i, tag) in pool.tenants().iter().enumerate() {
        if tag.total_vms() > cap || tag.total_vms() < 6 || tag.internal_tiers().count() < 2 {
            continue;
        }
        for noise in [0.05, 0.3] {
            let cfg = SynthConfig {
                seed: 1000 + i as u64,
                snapshots: 16,
                skew: 0.8,
                noise,
            };
            let (trace, truth) = synthesize_trace(tag, &cfg);
            let sim = feature_similarity(&trace);
            let labels = louvain(trace.num_vms(), &sim);
            let ami = adjusted_mutual_information(&labels, &truth);
            if noise == 0.3 {
                amis.push(ami);
                if rows.len() < 12 {
                    rows.push(vec![
                        tag.name().to_string(),
                        tag.total_vms().to_string(),
                        tag.internal_tiers().count().to_string(),
                        format!("{ami:.2}"),
                    ]);
                }
            }
        }
    }
    print_table(
        "TAG inference quality (noisy traces, first 12 tenants shown)",
        &["tenant", "VMs", "tiers", "AMI"],
        &rows,
    );
    let mean = amis.iter().sum::<f64>() / amis.len() as f64;
    println!(
        "\nMean AMI over {} tenants: {mean:.2}  (paper: 0.54 on the real \
         bing dataset — 'substantial commonality ... but also the need for \
         further improvement')",
        amis.len()
    );
}
