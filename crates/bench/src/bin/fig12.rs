//! Fig. 12: comparison of the HA mechanisms across `B_max` — default CM
//! (no HA), CM+HA (guaranteed 50 % WCS) and CM+oppHA (opportunistic).
//!
//! Expected shape: CM+oppHA reaches a mean WCS comparable to CM+HA while
//! rejecting as little bandwidth as plain CM; its error bars span down to
//! ~0 (no guarantee), unlike CM+HA whose minimum is pinned at 50 %.

use cm_bench::{pct, print_table, RunMode};
use cm_core::placement::CmConfig;
use cm_sim::experiments::{sweep_bmax, Algo};
use cm_workloads::bing_like_pool;

fn main() {
    let mode = RunMode::from_args();
    let pool = bing_like_pool(42);
    let bmaxes = [400.0, 800.0, 1200.0];
    let mut cfg = mode.sim_config();
    cfg.load = 0.9;
    let variants = [
        ("CM", Algo::Cm(CmConfig::cm())),
        ("CM+HA", Algo::Cm(CmConfig::cm_ha(0.5))),
        ("CM+oppHA", Algo::Cm(CmConfig::cm_opp_ha())),
    ];
    let sweeps: Vec<_> = variants
        .iter()
        .map(|(_, a)| sweep_bmax(&pool, &cfg, *a, &bmaxes))
        .collect();

    let rows: Vec<Vec<String>> = (0..bmaxes.len())
        .map(|i| {
            let mut row = vec![format!("{:.0}", bmaxes[i])];
            for s in &sweeps {
                let r = &s[i].result;
                row.push(pct(r.rejections.bw_rate()));
                row.push(format!(
                    "{:.0}% [{:.0}-{:.0}]",
                    r.wcs.mean * 100.0,
                    r.wcs.min * 100.0,
                    r.wcs.max * 100.0
                ));
            }
            row
        })
        .collect();
    print_table(
        "Fig. 12: HA mechanisms across Bmax (load 90%)",
        &[
            "Bmax (Mbps)",
            "CM rej BW",
            "CM WCS",
            "CM+HA rej BW",
            "CM+HA WCS",
            "oppHA rej BW",
            "oppHA WCS",
        ],
        &rows,
    );
    println!(
        "\nShape check (paper Fig. 12): CM+oppHA matches CM's (low) rejection \
         while lifting mean WCS towards CM+HA's; CM+HA alone guarantees the \
         50% floor (min never below it); plain CM's WCS is poor."
    );
}
