//! Fig. 8: rejection rates vs. datacenter load at fixed `B_max`.
//!
//! Expected shape: monotone growth with load; OVOC rejects more than CM at
//! every load. The paper fixes `B_max` = 800 Mbps; our synthetic pool
//! shifts the onset upward, so we report 800 and the stressier 1600.

use cm_bench::{pct, print_table, RunMode};
use cm_core::placement::CmConfig;
use cm_sim::experiments::{sweep_load, Algo};
use cm_workloads::bing_like_pool;

fn main() {
    let mode = RunMode::from_args();
    let pool = bing_like_pool(42);
    let loads = [0.1, 0.3, 0.5, 0.7, 0.9, 1.0];
    for bmax in [800_000u64, 1_600_000] {
        let mut cfg = mode.sim_config();
        cfg.bmax_kbps = bmax;
        let cm = sweep_load(&pool, &cfg, Algo::Cm(CmConfig::cm()), &loads);
        let ovoc = sweep_load(&pool, &cfg, Algo::Ovoc, &loads);
        let rows: Vec<Vec<String>> = cm
            .iter()
            .zip(&ovoc)
            .map(|(c, o)| {
                vec![
                    format!("{:.0}", c.x),
                    pct(c.result.rejections.bw_rate()),
                    pct(c.result.rejections.vm_rate()),
                    pct(o.result.rejections.bw_rate()),
                    pct(o.result.rejections.vm_rate()),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 8: rejection vs load, Bmax = {} Mbps", bmax / 1000),
            &["load (%)", "BW CM", "VM CM", "BW OVOC", "VM OVOC"],
            &rows,
        );
    }
    println!(
        "\nShape check (paper Fig. 8): OVOC fails tenants with large demands even \
         at low loads; CM places most of them at every load."
    );
}
