//! Fig. 13: TAG guarantee enforcement on the ElasticSwitch-style runtime —
//! TCP throughput at VM Z as the number of intra-tier senders grows, with
//! the 450 Mbps C1→C2 trunk protected by the TAG patch (and diluted
//! without it).

use cm_bench::print_table;
use cm_enforce::{fig13_throughput, GuaranteeModel};

fn main() {
    let rows: Vec<Vec<String>> = (0..=5)
        .map(|senders| {
            let tag = fig13_throughput(senders, GuaranteeModel::Tag);
            let hose = fig13_throughput(senders, GuaranteeModel::Hose);
            vec![
                senders.to_string(),
                format!("{:.0}", tag.x_to_z_mbps),
                format!("{:.0}", tag.intra_mbps.max(0.0)),
                format!("{:.0}", hose.x_to_z_mbps),
                format!("{:.0}", hose.intra_mbps.max(0.0)),
            ]
        })
        .collect();
    print_table(
        "Fig. 13(b): throughput at VM Z (Mbps), 1 Gbps bottleneck, 10% unreserved",
        &[
            "senders in C2",
            "X->Z (TAG)",
            "intra (TAG)",
            "X->Z (hose)",
            "intra (hose)",
        ],
        &rows,
    );
    println!(
        "\nShape check (paper Fig. 13): with the TAG patch, X->Z never drops \
         below its 450 Mbps guarantee no matter how many intra-tier senders \
         compete; the plain hose dilutes X's share towards 1/(n+1) of Z's \
         aggregate hose."
    );
}
