//! Fig. 7: rejection rates (bandwidth and VM) vs. `B_max`, at 50 % and
//! 90 % load, CM vs OVOC on the bing-like workload over the 32:8:1
//! oversubscribed datacenter.
//!
//! Expected shape: rejection grows with `B_max`; OVOC rejects a multiple
//! of CM's bandwidth. Note on the x-range: our synthetic bing pool shifts
//! the rejection onset to higher `B_max` than the proprietary dataset
//! (see EXPERIMENTS.md), so the sweep extends to 2000 Mbps.

use cm_bench::{pct, print_table, RunMode};
use cm_core::placement::CmConfig;
use cm_sim::experiments::{sweep_bmax, Algo};
use cm_workloads::bing_like_pool;

fn main() {
    let mode = RunMode::from_args();
    let pool = bing_like_pool(42);
    let bmaxes = [400.0, 800.0, 1200.0, 1600.0, 2000.0];
    for load in [0.5, 0.9] {
        let mut cfg = mode.sim_config();
        cfg.load = load;
        let cm = sweep_bmax(&pool, &cfg, Algo::Cm(CmConfig::cm()), &bmaxes);
        let ovoc = sweep_bmax(&pool, &cfg, Algo::Ovoc, &bmaxes);
        let rows: Vec<Vec<String>> = cm
            .iter()
            .zip(&ovoc)
            .map(|(c, o)| {
                vec![
                    format!("{:.0}", c.x),
                    pct(c.result.rejections.bw_rate()),
                    pct(c.result.rejections.vm_rate()),
                    pct(o.result.rejections.bw_rate()),
                    pct(o.result.rejections.vm_rate()),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 7: rejection vs B_max at load {:.0}%", load * 100.0),
            &["Bmax (Mbps)", "BW CM", "VM CM", "BW OVOC", "VM OVOC"],
            &rows,
        );
    }
    println!(
        "\nShape check (paper Fig. 7): OVOC rejects up to ~40% of bandwidth while \
         CM deploys almost all requests; both rise with B_max."
    );
}
