//! Fig. 9: bandwidth rejection rate vs. topology oversubscription
//! (16×–128×) for CM and OVOC.
//!
//! Expected shape: CM is resilient to bandwidth-constrained networks while
//! OVOC degrades quickly as oversubscription grows.

use cm_bench::{pct, print_table, RunMode};
use cm_core::placement::CmConfig;
use cm_sim::experiments::{sweep_oversubscription, Algo};
use cm_workloads::bing_like_pool;

fn main() {
    let mode = RunMode::from_args();
    let pool = bing_like_pool(42);
    let ratios = [16.0, 32.0, 64.0, 128.0];
    let mut cfg = mode.sim_config();
    cfg.bmax_kbps = 1_200_000; // stress the fabric so the sweep separates
    cfg.load = 0.9;
    let cm = sweep_oversubscription(&pool, &cfg, Algo::Cm(CmConfig::cm()), &ratios);
    let ovoc = sweep_oversubscription(&pool, &cfg, Algo::Ovoc, &ratios);
    let rows: Vec<Vec<String>> = cm
        .iter()
        .zip(&ovoc)
        .map(|(c, o)| {
            vec![
                format!("{:.0}x", c.x),
                pct(c.result.rejections.bw_rate()),
                pct(o.result.rejections.bw_rate()),
            ]
        })
        .collect();
    print_table(
        "Fig. 9: rejected bandwidth vs oversubscription (load 90%, Bmax 1200)",
        &["oversubscription", "CM", "OVOC"],
        &rows,
    );
    println!(
        "\nShape check (paper Fig. 9): CM stays low across ratios; OVOC becomes \
         quickly incapable of deploying tenants."
    );
}
