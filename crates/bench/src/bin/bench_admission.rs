//! Admission-throughput macro-benchmark: run the paper-default simulation
//! for every placer and record arrivals/sec plus per-placement latency
//! percentiles into `BENCH_placement.json` — the workspace's performance
//! trajectory artifact.
//!
//! Beyond the six production placers, the benchmark also runs CloudMirror
//! on the pre-descend **linear-scan reference** search
//! ([`SearchStrategy::LinearReference`]), so every report carries its own
//! before/after comparison on the same machine; the `pre_change_baseline`
//! block additionally records the numbers measured at the commit before
//! the descend-search/allocation-free rewrite landed.
//!
//! Modes: default 2,000 arrivals; `--full` the paper's 10,000; `--quick`
//! a 300-arrival CI smoke run. Throughput entries for CloudMirror run
//! `REPS` repetitions and report the median to damp machine noise.

use cm_baselines::{OktopusVcPlacer, OvocPlacer, SecondNetPlacer};
use cm_bench::print_table;
use cm_core::placement::{CmConfig, CmPlacer, HaPolicy, Placer, SearchStrategy};
use cm_enforce::{EcmpConfig, GuaranteeModel};
use cm_race::explore::{explore_exhaustive, Caps, ExploreReport};
use cm_race::schedule::Mutation;
use cm_sim::admission::PlacerAdmission;
use cm_sim::events::run_sim_timed;
use cm_sim::faults::{run_churn_faults, FaultChurnConfig, FaultChurnReport};
use cm_sim::lifecycle::{run_churn, ChurnConfig, ChurnReport};
use cm_sim::schedule::{build_schedule, run_schedule_concurrent, Schedule};
use cm_sim::traffic::{run_churn_traffic, TrafficChurnConfig, TrafficChurnReport};
use cm_sim::SimConfig;
use cm_topology::{gbps, TreeSpec};
use cm_workloads::{bing_like_pool, TenantPool};
use std::fmt::Write as _;
use std::time::Instant;

struct BenchRow {
    name: String,
    arrivals: usize,
    admitted: usize,
    wall_secs: f64,
    admit_secs: f64,
    p50_us: f64,
    p99_us: f64,
}

impl BenchRow {
    fn arrivals_per_sec(&self) -> f64 {
        self.arrivals as f64 / self.wall_secs
    }
}

fn bench_one<P: Placer>(
    make: impl Fn() -> P,
    base: &SimConfig,
    pool: &TenantPool,
    scale: f64,
    reps: usize,
) -> BenchRow {
    let mut cfg = base.clone();
    cfg.arrivals = ((cfg.arrivals as f64 * scale) as usize).max(50);
    let mut rows: Vec<BenchRow> = (0..reps.max(1))
        .map(|_| {
            let placer = make();
            let name = placer.name().to_string();
            let mut adm = PlacerAdmission::from_placer(placer);
            let t0 = Instant::now();
            let (res, timings) = run_sim_timed(&cfg, pool, &mut adm);
            let wall = t0.elapsed().as_secs_f64();
            BenchRow {
                name,
                arrivals: cfg.arrivals,
                admitted: res.rejections.arrivals - res.rejections.rejected_tenants,
                wall_secs: wall,
                admit_secs: timings.total_secs(),
                p50_us: timings.quantile_secs(0.5).unwrap_or(0.0) * 1e6,
                p99_us: timings.quantile_secs(0.99).unwrap_or(0.0) * 1e6,
            }
        })
        .collect();
    rows.sort_by(|a, b| a.wall_secs.partial_cmp(&b.wall_secs).expect("finite"));
    rows.swap_remove(rows.len() / 2) // median by wall time
}

/// Pre-change throughput (arrivals/sec) measured with this same harness at
/// the commit preceding the descend-search + allocation-free hot path
/// (linear `find_lowest_subtree`, deep-cloned models, per-call scratch),
/// on the same bing-like pool and paper datacenter. Only the default
/// (2,000-arrival) and `--full` (10,000-arrival) workloads were measured;
/// `--quick` has no like-for-like baseline and reports none.
fn pre_change_baseline(quick: bool, full: bool) -> Option<&'static [(&'static str, f64)]> {
    if quick {
        None
    } else if full {
        Some(&[
            ("CM", 4609.0),
            ("Coloc", 5157.6),
            ("Balance", 25546.6),
            ("OVOC", 18018.7),
            ("VC", 17207.0),
            ("SecondNet", 669.1),
        ])
    } else {
        Some(&[
            ("CM", 10175.9),
            ("Coloc", 2084.9),
            ("Balance", 26655.3),
            ("OVOC", 23910.0),
            ("VC", 14789.6),
            ("SecondNet", 794.7),
        ])
    }
}

/// One thread-scaling measurement: the concurrent engine driving `threads`
/// workers over a pre-generated schedule.
struct ScalingRow {
    placer: &'static str,
    threads: usize,
    arrivals: usize,
    wall_secs: f64,
}

fn bench_concurrent<P: Placer, F: Fn() -> P + Sync>(
    schedule: &Schedule,
    make: F,
    threads: usize,
) -> ScalingRow {
    let name = make().name();
    let t0 = Instant::now();
    let run = run_schedule_concurrent(schedule, make, threads);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(run.result.rejections.arrivals, schedule.arrivals);
    ScalingRow {
        placer: name,
        threads,
        arrivals: schedule.arrivals,
        wall_secs: wall,
    }
}

/// The thread counts to record: always 1/2/4 (the scaling-curve artifact),
/// extended by `--threads N` when N is larger.
fn thread_counts(max: usize) -> Vec<usize> {
    let mut v: Vec<usize> = [1usize, 2, 4].into_iter().filter(|&t| t <= max).collect();
    if !v.contains(&max) {
        v.push(max);
    }
    v
}

/// The autoscaling-churn scenario (admit → scale out → scale in → depart,
/// with periodic migrations), per placer — the lifecycle workload class the
/// `Cluster` controller opened. Tenant counts scale with the run mode.
fn lifecycle_churn(quick: bool, full: bool, pool: &TenantPool) -> Vec<ChurnReport> {
    let mut cfg = ChurnConfig::paper_default();
    cfg.tenants = if quick {
        80
    } else if full {
        1_200
    } else {
        400
    };
    vec![
        run_churn(&cfg, pool, CmPlacer::new(CmConfig::cm())),
        run_churn(&cfg, pool, OvocPlacer::new()),
    ]
}

/// Fault injection & recovery: the lifecycle churn with a rotating fault
/// schedule (ToR-level domain kill, single-server kill, 50% link
/// degradation) injected every few arrivals and repaired a few arrivals
/// later. CM+HA enforces Eq. 7 at the killed level and must measure zero
/// survivability violations; plain CM is judged against the same bound it
/// never enforced — the gap is what §4.5 buys. Tenant counts scale with
/// the run mode.
fn fault_churn(quick: bool, full: bool, pool: &TenantPool) -> Vec<FaultChurnReport> {
    let mut churn = ChurnConfig::paper_default();
    churn.tenants = if quick {
        80
    } else if full {
        1_200
    } else {
        400
    };
    let cfg = FaultChurnConfig::quick(churn);
    let ha = CmConfig {
        ha: HaPolicy::Guaranteed {
            rwcs: cfg.rwcs,
            laa_level: cfg.domain_level,
        },
        ..CmConfig::default()
    };
    vec![
        run_churn_faults(&cfg, pool, CmPlacer::new(CmConfig::cm())),
        run_churn_faults(&cfg, pool, CmPlacer::named(ha, "CM+HA")),
    ]
}

/// One traffic-bench run plus the scale it ran at (the JSON's `servers`
/// field lets CI apply per-scale step-latency bounds).
struct TrafficRun {
    servers: usize,
    ecmp_ways: u32,
    report: TrafficChurnReport,
}

/// The datacenter traffic workload: lifecycle churn with periodic
/// incremental traffic-engine steps, once under the paper's TAG-patched
/// enforcement and once under the plain hose baseline — identical
/// placements, different floors — on the paper's 2,048-server datacenter,
/// plus a 32,768-server ECMP fat-tree run under the Tag model. Records
/// per-step expand/route/solve/score latency and guarantee-compliance
/// violations.
fn traffic_bench(quick: bool, full: bool, pool: &TenantPool) -> Vec<TrafficRun> {
    let (tenants, solve_every) = if quick {
        (60, 20)
    } else if full {
        (400, 40)
    } else {
        (200, 25)
    };
    let mut runs: Vec<TrafficRun> = [GuaranteeModel::Tag, GuaranteeModel::Hose]
        .into_iter()
        .map(|model| {
            let mut cfg = TrafficChurnConfig::paper_default(model);
            cfg.churn.tenants = tenants;
            cfg.solve_every = solve_every;
            TrafficRun {
                servers: 2048,
                ecmp_ways: 1,
                report: run_churn_traffic(&cfg, pool, CmPlacer::new(CmConfig::cm())),
            }
        })
        .collect();
    // 32k-server fat-tree: 32 pods x 32 racks x 32 servers, 8-way
    // ECMP-hashed core — the scale the incremental engine exists for.
    let mut cfg = TrafficChurnConfig::paper_default(GuaranteeModel::Tag);
    cfg.churn.spec = TreeSpec {
        fanout_top_down: vec![32, 32, 32],
        uplink_kbps: vec![gbps(10.0), gbps(80.0), gbps(320.0)],
        slots_per_server: 25,
    };
    cfg.churn.tenants = tenants;
    cfg.churn.target_live = 180;
    cfg.solve_every = solve_every;
    cfg.ecmp = EcmpConfig::hashed(8);
    runs.push(TrafficRun {
        servers: 32_768,
        ecmp_ways: 8,
        report: run_churn_traffic(&cfg, pool, CmPlacer::new(CmConfig::cm())),
    });
    // 131k-server fat-tree: 32 pods x 64 racks x 64 servers, 8-way
    // ECMP-hashed core — past the paper's scale by 64x, reachable only
    // because churn re-solves just the components it touched.
    let mut cfg = TrafficChurnConfig::paper_default(GuaranteeModel::Tag);
    cfg.churn.spec = TreeSpec {
        fanout_top_down: vec![32, 64, 64],
        uplink_kbps: vec![gbps(10.0), gbps(80.0), gbps(320.0)],
        slots_per_server: 25,
    };
    cfg.churn.tenants = tenants;
    cfg.churn.target_live = 180;
    cfg.solve_every = solve_every;
    cfg.ecmp = EcmpConfig::hashed(8);
    runs.push(TrafficRun {
        servers: 131_072,
        ecmp_ways: 8,
        report: run_churn_traffic(&cfg, pool, CmPlacer::new(CmConfig::cm())),
    });
    runs
}

/// One exhaustively explored model-checking scenario plus its wall time:
/// schedules/sec is the throughput figure the JSON tracks run-over-run.
struct ModelCheckRun {
    report: ExploreReport,
    wall_secs: f64,
}

impl ModelCheckRun {
    fn schedules_per_sec(&self) -> f64 {
        self.report.schedules as f64 / self.wall_secs.max(1e-9)
    }
}

/// Exhaustive 2-worker schedule exploration over every expect-clean
/// cm-race scenario. This is a *throughput* benchmark — correctness is
/// CI's `race` job — but the explored-schedule counts double as a canary:
/// a sync-shim change that adds or removes yield points shows up here as
/// a state-space size shift before any pinned replay id goes stale.
fn model_check_bench(quick: bool) -> Vec<ModelCheckRun> {
    let caps = Caps::default();
    cm_race::scenario::all()
        .into_iter()
        .filter(|s| s.expect_clean)
        // --quick keeps the two cheapest state spaces (the CI smoke run
        // budget); default/full explore everything.
        .filter(|s| !quick || s.name == "samepod2" || s.name == "parmap")
        .map(|scn| {
            let start = Instant::now();
            let report = explore_exhaustive(&scn, 2, Mutation::None, &caps);
            ModelCheckRun {
                report,
                wall_secs: start.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

fn thread_scaling(cfg: &SimConfig, pool: &TenantPool, max_threads: usize) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    let counts = thread_counts(max_threads);
    // The five production placers of the stress suite. SecondNet gets a
    // reduced arrival slice, as in the main table.
    let mut sn_cfg = cfg.clone();
    sn_cfg.arrivals = (cfg.arrivals / 4).max(50);
    let sched = build_schedule(cfg, pool);
    let sn_sched = build_schedule(&sn_cfg, pool);
    for &t in &counts {
        rows.push(bench_concurrent(
            &sched,
            || CmPlacer::new(CmConfig::cm()),
            t,
        ));
    }
    for &t in &counts {
        rows.push(bench_concurrent(
            &sched,
            || CmPlacer::named(CmConfig::cm_ha(0.5), "CM+HA"),
            t,
        ));
    }
    for &t in &counts {
        rows.push(bench_concurrent(&sched, OvocPlacer::new, t));
    }
    for &t in &counts {
        rows.push(bench_concurrent(&sched, OktopusVcPlacer::new, t));
    }
    for &t in &counts {
        rows.push(bench_concurrent(&sn_sched, SecondNetPlacer::new, t));
    }
    rows
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let full = std::env::args().any(|a| a == "--full");
    let args: Vec<String> = std::env::args().collect();
    let max_threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4)
        .max(1);
    let mut cfg = SimConfig::paper_default();
    cfg.arrivals = if quick {
        300
    } else if full {
        10_000
    } else {
        2_000
    };
    let reps = if quick { 1 } else { 3 };
    let pool = bing_like_pool(42);

    // SecondNet is orders of magnitude slower (paper §5.1), so it gets a
    // slice of the arrival count.
    let rows = [
        bench_one(|| CmPlacer::new(CmConfig::cm()), &cfg, &pool, 1.0, reps),
        bench_one(
            || {
                CmPlacer::named(CmConfig::cm(), "CM (linear-scan reference)")
                    .with_search_strategy(SearchStrategy::LinearReference)
            },
            &cfg,
            &pool,
            1.0,
            reps,
        ),
        bench_one(
            || CmPlacer::new(CmConfig::coloc_only()),
            &cfg,
            &pool,
            1.0,
            1,
        ),
        bench_one(
            || CmPlacer::new(CmConfig::balance_only()),
            &cfg,
            &pool,
            1.0,
            1,
        ),
        bench_one(OvocPlacer::new, &cfg, &pool, 1.0, 1),
        bench_one(OktopusVcPlacer::new, &cfg, &pool, 1.0, 1),
        bench_one(SecondNetPlacer::new, &cfg, &pool, 0.05, 1),
    ];

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.arrivals.to_string(),
                r.admitted.to_string(),
                format!("{:.2}", r.wall_secs),
                format!("{:.1}", r.arrivals_per_sec()),
                format!("{:.1}", r.p50_us),
                format!("{:.1}", r.p99_us),
            ]
        })
        .collect();
    print_table(
        "Admission throughput (paper datacenter, bing-like pool)",
        &[
            "placer",
            "arrivals",
            "admitted",
            "wall (s)",
            "arrivals/s",
            "p50 (us)",
            "p99 (us)",
        ],
        &table,
    );

    let cm = &rows[0];
    let cm_ref = &rows[1];
    let baseline = pre_change_baseline(quick, full);
    let baseline_cm = baseline.map(|b| {
        b.iter()
            .find(|(n, _)| *n == "CM")
            .map(|&(_, v)| v)
            .expect("baseline has CM")
    });
    match baseline_cm {
        Some(base) => println!(
            "\nCM admission: {:.0} arrivals/s — {:.2}x vs in-binary linear-scan \
             reference ({:.0}/s), {:.2}x vs pre-change baseline ({:.0}/s).",
            cm.arrivals_per_sec(),
            cm.arrivals_per_sec() / cm_ref.arrivals_per_sec(),
            cm_ref.arrivals_per_sec(),
            cm.arrivals_per_sec() / base,
            base,
        ),
        None => println!(
            "\nCM admission: {:.0} arrivals/s — {:.2}x vs in-binary linear-scan \
             reference ({:.0}/s); no pre-change baseline for --quick.",
            cm.arrivals_per_sec(),
            cm.arrivals_per_sec() / cm_ref.arrivals_per_sec(),
            cm_ref.arrivals_per_sec(),
        ),
    }

    // ------------------------------------------------------------------
    // Thread scaling: the sharded concurrent engine over a pre-generated
    // schedule, per placer, at 1/2/4 (and --threads N) workers.
    // ------------------------------------------------------------------
    let scaling = thread_scaling(&cfg, &pool, max_threads);
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scaling_table: Vec<Vec<String>> = scaling
        .iter()
        .map(|r| {
            vec![
                r.placer.to_string(),
                r.threads.to_string(),
                r.arrivals.to_string(),
                format!("{:.2}", r.wall_secs),
                format!("{:.1}", r.arrivals as f64 / r.wall_secs),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Concurrent admission thread scaling (sharded engine; {hardware_threads} hardware thread(s))"
        ),
        &["placer", "threads", "arrivals", "wall (s)", "arrivals/s"],
        &scaling_table,
    );

    // ------------------------------------------------------------------
    // Lifecycle churn: the admit → scale out → scale in → depart workload
    // over the Cluster controller (exact-incremental scaling for CM, the
    // generic re-place fallback for OVOC).
    // ------------------------------------------------------------------
    let churn = lifecycle_churn(quick, full, &pool);
    let churn_table: Vec<Vec<String>> = churn
        .iter()
        .map(|r| {
            vec![
                r.placer.to_string(),
                format!("{}/{}", r.admitted, r.admits_attempted),
                format!("{}/{}", r.scale_ops - r.scale_rejected, r.scale_ops),
                r.migrates.to_string(),
                format!("{:.1}", r.ops_per_sec()),
                format!("{:.1}", r.admit.quantile_us(0.99).unwrap_or(0.0)),
                format!("{:.1}", r.scale.quantile_us(0.5).unwrap_or(0.0)),
                format!("{:.1}", r.scale.quantile_us(0.99).unwrap_or(0.0)),
            ]
        })
        .collect();
    print_table(
        "Lifecycle churn (Cluster: admit / scale ±n / migrate / depart)",
        &[
            "placer",
            "admitted",
            "scales ok",
            "migrates",
            "ops/s",
            "admit p99 (us)",
            "scale p50 (us)",
            "scale p99 (us)",
        ],
        &churn_table,
    );

    // ------------------------------------------------------------------
    // Fault injection & recovery: the same churn with a rotating fault
    // schedule, CM+HA's measured survivability against plain CM's.
    // ------------------------------------------------------------------
    let faults = fault_churn(quick, full, &pool);
    let fault_table: Vec<Vec<String>> = faults
        .iter()
        .map(|r| {
            vec![
                r.placer.to_string(),
                format!("{}/{}/{}", r.domain_kills, r.server_kills, r.degrades),
                r.vms_lost.to_string(),
                format!("{}/{}", r.tenants_evicted, r.tenants_damaged),
                format!("{}/{}", r.survivability_violations, r.survivability_checks),
                format!("{:.3}", r.worst_survival),
                format!("{}/{}", r.repair_failures, r.repairs),
                format!("{:.2}", r.repair.quantile_us(0.99).unwrap_or(0.0) / 1000.0),
                format!("{:.1}", r.violation_seconds),
            ]
        })
        .collect();
    print_table(
        "Fault injection & recovery (ToR kills / server kills / link degrades mid-churn)",
        &[
            "placer",
            "kills (domain/server/degrade)",
            "VMs lost",
            "evicted/damaged",
            "Eq.7 violations/checks",
            "worst survival",
            "repair fail/ok",
            "repair p99 (ms)",
            "violation-secs",
        ],
        &fault_table,
    );

    // ------------------------------------------------------------------
    // Datacenter traffic engine: every live tenant's flows routed over the
    // physical tree and solved as one shared max-min network, stepped
    // through the churn — TAG-patched enforcement vs the hose baseline.
    // ------------------------------------------------------------------
    let traffic = traffic_bench(quick, full, &pool);
    let traffic_table: Vec<Vec<String>> = traffic
        .iter()
        .map(|t| {
            let r = &t.report;
            let expand = r.phase_latencies(|s| s.expand_secs);
            let route = r.phase_latencies(|s| s.route_secs);
            let solve = r.solve_latencies();
            let score = r.phase_latencies(|s| s.score_secs);
            let step = r.step_latencies();
            vec![
                t.servers.to_string(),
                format!("{:?}", r.model),
                format!("{}x", t.ecmp_ways),
                r.steps.len().to_string(),
                r.flows_max().to_string(),
                format!("{:.2}", expand.quantile_us(0.99).unwrap_or(0.0) / 1000.0),
                format!("{:.2}", route.quantile_us(0.99).unwrap_or(0.0) / 1000.0),
                format!("{:.2}", solve.quantile_us(0.99).unwrap_or(0.0) / 1000.0),
                format!("{:.2}", score.quantile_us(0.99).unwrap_or(0.0) / 1000.0),
                format!("{:.2}", step.quantile_us(0.99).unwrap_or(0.0) / 1000.0),
                format!(
                    "{:.1}/{}",
                    r.components_dirty_mean(),
                    r.components_total_last()
                ),
                r.violations_total().to_string(),
                format!("{}/{}", r.work_conserving_steps(), r.steps.len()),
            ]
        })
        .collect();
    print_table(
        "Datacenter traffic (incremental engine; p99 per phase, ms)",
        &[
            "servers",
            "model",
            "ecmp",
            "steps",
            "flows (max)",
            "expand",
            "route",
            "solve",
            "score",
            "step",
            "comps (dirty/total)",
            "violations",
            "work-conserving",
        ],
        &traffic_table,
    );

    // ------------------------------------------------------------------
    // Model checking: exhaustive 2-worker schedule exploration of the
    // concurrent engine under the cm-race sync shim — state-space size
    // and schedules/sec as tracked quantities.
    // ------------------------------------------------------------------
    let model_check = model_check_bench(quick);
    let model_check_table: Vec<Vec<String>> = model_check
        .iter()
        .map(|m| {
            let r = &m.report;
            vec![
                r.scenario.clone(),
                r.workers.to_string(),
                r.schedules.to_string(),
                r.pruned.to_string(),
                r.max_depth.to_string(),
                if r.complete { "yes" } else { "NO" }.to_string(),
                r.findings.len().to_string(),
                format!("{:.0}", m.schedules_per_sec()),
            ]
        })
        .collect();
    print_table(
        "Model checking (cm-race exhaustive DFS, 2 workers)",
        &[
            "scenario",
            "workers",
            "schedules",
            "pruned",
            "max depth",
            "complete",
            "findings",
            "schedules/sec",
        ],
        &model_check_table,
    );

    // ------------------------------------------------------------------
    // BENCH_placement.json
    // ------------------------------------------------------------------
    let mut json = String::new();
    let mode = if quick {
        "quick"
    } else if full {
        "full"
    } else {
        "default"
    };
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"bench_admission\",");
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(json, "  \"datacenter\": \"paper_2048_servers\",");
    let _ = writeln!(json, "  \"pool\": \"bing_like_seed42\",");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"placer\": \"{}\", \"arrivals\": {}, \"admitted\": {}, \
             \"wall_secs\": {:.4}, \"arrivals_per_sec\": {:.1}, \
             \"admit_secs\": {:.4}, \"p50_us\": {:.2}, \"p99_us\": {:.2}}}{comma}",
            r.name,
            r.arrivals,
            r.admitted,
            r.wall_secs,
            r.arrivals_per_sec(),
            r.admit_secs,
            r.p50_us,
            r.p99_us,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"thread_scaling\": {{");
    let _ = writeln!(json, "    \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(
        json,
        "    \"note\": \"sharded concurrent engine (pod shards, sequence-numbered optimistic commits) over a pre-generated schedule; decisions are identical to the serial engine at every thread count. Scaling beyond 1x requires hardware_threads > 1.\","
    );
    let _ = writeln!(json, "    \"entries\": [");
    for (i, r) in scaling.iter().enumerate() {
        let base = scaling
            .iter()
            .find(|b| b.placer == r.placer && b.threads == 1)
            .expect("1-thread baseline recorded");
        let comma = if i + 1 < scaling.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"placer\": \"{}\", \"threads\": {}, \"arrivals\": {}, \
             \"wall_secs\": {:.4}, \"arrivals_per_sec\": {:.1}, \
             \"speedup_vs_1_thread\": {:.2}}}{comma}",
            r.placer,
            r.threads,
            r.arrivals,
            r.wall_secs,
            r.arrivals as f64 / r.wall_secs,
            base.wall_secs / r.wall_secs,
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"lifecycle_churn\": {{");
    let _ = writeln!(
        json,
        "    \"note\": \"autoscaling churn over the Cluster lifecycle controller: steady-state admits with 2 scale-out/scale-in cycles per arrival and periodic migrations; CM scales exact-incrementally (only delta VMs move), baselines re-place wholesale under a snapshot\","
    );
    let _ = writeln!(json, "    \"entries\": [");
    for (i, r) in churn.iter().enumerate() {
        let comma = if i + 1 < churn.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"placer\": \"{}\", \"admits_attempted\": {}, \"admitted\": {}, \
             \"scale_ops\": {}, \"scale_rejected\": {}, \"migrates\": {}, \"departs\": {}, \
             \"wall_secs\": {:.4}, \"ops_per_sec\": {:.1}, \
             \"admit_p50_us\": {:.2}, \"admit_p99_us\": {:.2}, \
             \"scale_p50_us\": {:.2}, \"scale_p99_us\": {:.2}, \
             \"depart_p99_us\": {:.2}}}{comma}",
            r.placer,
            r.admits_attempted,
            r.admitted,
            r.scale_ops,
            r.scale_rejected,
            r.migrates,
            r.departs,
            r.wall_secs,
            r.ops_per_sec(),
            r.admit.quantile_us(0.5).unwrap_or(0.0),
            r.admit.quantile_us(0.99).unwrap_or(0.0),
            r.scale.quantile_us(0.5).unwrap_or(0.0),
            r.scale.quantile_us(0.99).unwrap_or(0.0),
            r.depart.quantile_us(0.99).unwrap_or(0.0),
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"fault_recovery\": {{");
    let _ = writeln!(
        json,
        "    \"note\": \"lifecycle churn with a rotating fault schedule (ToR-level domain kill, single-server kill, 50% link degrade) injected every few arrivals and repaired a few arrivals later; every domain kill is judged per damaged tier against the paper's Eq. 7 bound (a tier of n VMs admitted at rwcs may lose at most max(1, floor(n*(1-rwcs))) VMs to one domain) — CM+HA enforces the bound at admission and must record zero survivability_violations, plain CM is judged against the same bound it never enforced; violation_seconds sums traffic-guarantee violations measured by the fluid solve over degraded arrivals at one arrival per second; repair latency covers the topology restore plus every tenant re-placement it triggered\","
    );
    let _ = writeln!(json, "    \"entries\": [");
    for (i, r) in faults.iter().enumerate() {
        let comma = if i + 1 < faults.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"placer\": \"{}\", \"admitted\": {}, \"departs\": {}, \
             \"domain_kills\": {}, \"server_kills\": {}, \"degrades\": {}, \
             \"vms_lost\": {}, \"tenants_damaged\": {}, \"tenants_evicted\": {}, \
             \"survivability_checks\": {}, \"survivability_violations\": {}, \
             \"worst_survival\": {:.4}, \"repairs\": {}, \"repair_failures\": {}, \
             \"repair_p50_ms\": {:.3}, \"repair_p99_ms\": {:.3}, \
             \"degraded_arrivals\": {}, \"violation_seconds\": {:.1}, \
             \"wall_secs\": {:.4}}}{comma}",
            r.placer,
            r.admitted,
            r.departs,
            r.domain_kills,
            r.server_kills,
            r.degrades,
            r.vms_lost,
            r.tenants_damaged,
            r.tenants_evicted,
            r.survivability_checks,
            r.survivability_violations,
            r.worst_survival,
            r.repairs,
            r.repair_failures,
            r.repair.quantile_us(0.5).unwrap_or(0.0) / 1000.0,
            r.repair.quantile_us(0.99).unwrap_or(0.0) / 1000.0,
            r.degraded_arrivals,
            r.violation_seconds,
            r.wall_secs,
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"traffic\": {{");
    let _ = writeln!(
        json,
        "    \"note\": \"incremental traffic engine stepped through lifecycle churn: dirty tenants re-expand their TAG edges into bundled flows kept live in a persistent fluid network (expand), one component-scoped guarantee-weighted max-min solve over only the churn-dirty connected components, warm-started from the previous step's per-link water levels with a verified cold fallback (solve = solve_cold + solve_warm), achieved rates scored against TAG intents (score); *_p99_ms are per-phase p99s, step_p99_ms the whole engine step; components_dirty_mean / components_total gauge how much of the graph each step re-solves; ecmp_*_utilization is the residual hash imbalance over ECMP core sub-links; violations count pairs whose achieved rate falls below the TAG-intended guarantee\","
    );
    let _ = writeln!(json, "    \"entries\": [");
    for (i, t) in traffic.iter().enumerate() {
        let r = &t.report;
        let expand = r.phase_latencies(|s| s.expand_secs);
        let route = r.phase_latencies(|s| s.route_secs);
        let solve = r.solve_latencies();
        let score = r.phase_latencies(|s| s.score_secs);
        let step = r.step_latencies();
        let comma = if i + 1 < traffic.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"placer\": \"{}\", \"servers\": {}, \"ecmp_ways\": {}, \
             \"model\": \"{:?}\", \"steps\": {}, \
             \"flows_mean\": {:.1}, \"flows_max\": {}, \
             \"expand_p99_ms\": {:.3}, \"route_p99_ms\": {:.3}, \
             \"solve_p50_ms\": {:.3}, \"solve_p99_ms\": {:.3}, \
             \"solve_cold_p99_ms\": {:.3}, \"solve_warm_p99_ms\": {:.3}, \
             \"components_dirty_mean\": {:.1}, \"components_total\": {}, \
             \"score_p99_ms\": {:.3}, \"step_p99_ms\": {:.3}, \
             \"ecmp_max_utilization\": {:.4}, \"ecmp_mean_utilization\": {:.4}, \
             \"violations\": {}, \"violating_tenants_max\": {}, \
             \"work_conserving_steps\": {}, \"max_link_utilization\": {:.4}}}{comma}",
            r.churn.placer,
            t.servers,
            t.ecmp_ways,
            r.model,
            r.steps.len(),
            r.flows_mean(),
            r.flows_max(),
            expand.quantile_us(0.99).unwrap_or(0.0) / 1000.0,
            route.quantile_us(0.99).unwrap_or(0.0) / 1000.0,
            solve.quantile_us(0.5).unwrap_or(0.0) / 1000.0,
            solve.quantile_us(0.99).unwrap_or(0.0) / 1000.0,
            r.phase_latencies(|s| s.solve_cold_secs)
                .quantile_us(0.99)
                .unwrap_or(0.0)
                / 1000.0,
            r.phase_latencies(|s| s.solve_warm_secs)
                .quantile_us(0.99)
                .unwrap_or(0.0)
                / 1000.0,
            r.components_dirty_mean(),
            r.components_total_last(),
            score.quantile_us(0.99).unwrap_or(0.0) / 1000.0,
            step.quantile_us(0.99).unwrap_or(0.0) / 1000.0,
            r.ecmp_max_utilization(),
            r.ecmp_mean_utilization(),
            r.violations_total(),
            r.steps
                .iter()
                .map(|s| s.violating_tenants)
                .max()
                .unwrap_or(0),
            r.work_conserving_steps(),
            r.steps
                .iter()
                .map(|s| s.max_link_utilization)
                .fold(0.0, f64::max),
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"model_check\": {{");
    let _ = writeln!(
        json,
        "    \"note\": \"cm-race exhaustive DFS with sleep-set pruning over every expect-clean scenario at 2 workers (--quick keeps the two cheapest state spaces); every schedule is checked for serial equivalence, delta-log replay convergence, and topology invariants. schedules counts fully executed interleavings, pruned the sleep-set abandonments; schedules_per_sec is the tracked throughput. A shift in the schedule counts means the sync shim's yield-point structure changed — re-explore before trusting pinned replay ids.\","
    );
    let _ = writeln!(json, "    \"entries\": [");
    for (i, m) in model_check.iter().enumerate() {
        let r = &m.report;
        let comma = if i + 1 < model_check.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"scenario\": \"{}\", \"workers\": {}, \"schedules\": {}, \
             \"pruned\": {}, \"max_depth\": {}, \"complete\": {}, \
             \"findings\": {}, \"wall_secs\": {:.4}, \"schedules_per_sec\": {:.1}}}{comma}",
            r.scenario,
            r.workers,
            r.schedules,
            r.pruned,
            r.max_depth,
            r.complete,
            r.findings.len(),
            m.wall_secs,
            m.schedules_per_sec(),
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"speedup_vs_linear_reference\": {:.2},",
        cm.arrivals_per_sec() / cm_ref.arrivals_per_sec()
    );
    match (baseline, baseline_cm) {
        (Some(baseline), Some(base)) => {
            let _ = writeln!(
                json,
                "  \"speedup_vs_pre_change\": {:.2},",
                cm.arrivals_per_sec() / base
            );
            let _ = writeln!(json, "  \"pre_change_baseline\": {{");
            let _ = writeln!(
                json,
                "    \"note\": \"arrivals/sec measured with this harness at the commit before the descend-search + allocation-free hot path (same machine, same pool, same arrival count)\","
            );
            for (i, (n, v)) in baseline.iter().enumerate() {
                let comma = if i + 1 < baseline.len() { "," } else { "" };
                let _ = writeln!(json, "    \"{n}\": {v:.1}{comma}");
            }
            let _ = writeln!(json, "  }}");
        }
        _ => {
            let _ = writeln!(json, "  \"speedup_vs_pre_change\": null,");
            let _ = writeln!(json, "  \"pre_change_baseline\": null");
        }
    }
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_placement.json", &json).expect("write BENCH_placement.json");
    println!("\nWrote BENCH_placement.json");
}
