//! # cm-bench
//!
//! Reproduction harness: one binary per table/figure of the paper's
//! evaluation (§5) plus Criterion benches for the §5.1 runtime claims.
//!
//! Every binary prints a self-describing table with the paper's expected
//! qualitative shape noted, and accepts `--full` to run at the paper's
//! scale (10,000 arrivals) instead of the faster default. All runs are
//! seeded and deterministic. See `EXPERIMENTS.md` at the workspace root
//! for recorded paper-vs-measured comparisons.

use cm_sim::SimConfig;

/// Command-line knobs shared by the harness binaries.
#[derive(Debug, Clone, Copy)]
pub struct RunMode {
    /// Paper-scale run (10,000 arrivals) instead of the quick default.
    pub full: bool,
}

impl RunMode {
    /// Parse from `std::env::args` (recognizes `--full`).
    pub fn from_args() -> RunMode {
        RunMode {
            full: std::env::args().any(|a| a == "--full"),
        }
    }

    /// Number of tenant arrivals per simulation point.
    pub fn arrivals(&self) -> usize {
        if self.full {
            10_000
        } else {
            3_000
        }
    }

    /// The default simulation configuration for this mode.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::paper_default();
        cfg.arrivals = self.arrivals();
        cfg
    }
}

/// Print a markdown-ish table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cells: Vec<String>| {
        let body: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("| {} |", body.join(" | "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for r in rows {
        line(r.clone());
    }
}

/// Format a rate as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}
