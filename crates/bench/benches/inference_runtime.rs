//! Runtime of the §3 inference pipeline (features + Louvain + AMI) on a
//! 100-VM tenant trace.

use cm_inference::{
    adjusted_mutual_information, feature_similarity, louvain, synthesize_trace, SynthConfig,
};
use cm_workloads::apps;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let tag = apps::three_tier(40, 40, 20, 500, 100, 50);
    let (trace, truth) = synthesize_trace(&tag, &SynthConfig::default());

    c.bench_function("inference/similarity_100vm", |b| {
        b.iter(|| black_box(feature_similarity(black_box(&trace))))
    });
    let sim = feature_similarity(&trace);
    c.bench_function("inference/louvain_100vm", |b| {
        b.iter(|| black_box(louvain(trace.num_vms(), black_box(&sim))))
    });
    let labels = louvain(trace.num_vms(), &sim);
    c.bench_function("inference/ami_100vm", |b| {
        b.iter(|| black_box(adjusted_mutual_information(black_box(&labels), &truth)))
    });
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
