//! §5.1 "Algorithm runtime": CM and Oktopus are comparable (sub-second for
//! hundreds of VMs); SecondNet-style pipe placement is orders of magnitude
//! slower. The paper reports CM (Python) under 200 ms for 100s of VMs and
//! seconds at 1000 VMs; SecondNet "tens of minutes" for large tenants.

use cm_baselines::{OvocPlacer, SecondNetPlacer};
use cm_core::placement::{CmConfig, CmPlacer};
use cm_topology::{Topology, TreeSpec};
use cm_workloads::apps;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A representative TAG of roughly `n` VMs: three tiers plus a DB-style
/// self-loop, sized n/3 each.
fn tenant(n: u32) -> cm_core::Tag {
    let per = (n / 3).max(1);
    apps::three_tier(per, per, n - 2 * per, 200_000, 50_000, 20_000)
}

fn bench_placement(c: &mut Criterion) {
    let spec = TreeSpec::paper_datacenter();
    let mut g = c.benchmark_group("placement_runtime");
    g.sample_size(10);
    for &n in &[57u32, 200, 732] {
        let tag = tenant(n);
        g.bench_with_input(BenchmarkId::new("CM", n), &tag, |b, tag| {
            b.iter_batched(
                || Topology::build(&spec),
                |mut topo| {
                    let mut placer = CmPlacer::new(CmConfig::cm());
                    black_box(placer.place(&mut topo, tag)).ok();
                },
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("OVOC", n), &tag, |b, tag| {
            b.iter_batched(
                || Topology::build(&spec),
                |mut topo| {
                    let mut placer = OvocPlacer::new();
                    black_box(placer.place_tag(&mut topo, tag)).ok();
                },
                criterion::BatchSize::LargeInput,
            )
        });
        // SecondNet at 732 VMs is the paper's "tens of minutes" data point;
        // bench the pipe placer up to 200 VMs.
        if n <= 200 {
            g.bench_with_input(BenchmarkId::new("SecondNet", n), &tag, |b, tag| {
                b.iter_batched(
                    || Topology::build(&spec),
                    |mut topo| {
                        let mut placer = SecondNetPlacer::new();
                        black_box(placer.place_tag(&mut topo, tag)).ok();
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
