//! §5.1 "Algorithm runtime": CM and Oktopus are comparable (sub-second for
//! hundreds of VMs); SecondNet-style pipe placement is orders of magnitude
//! slower. The paper reports CM (Python) under 200 ms for 100s of VMs and
//! seconds at 1000 VMs; SecondNet "tens of minutes" for large tenants.
//!
//! Every algorithm — CM and its ablations, OVOC, VC, SecondNet — runs
//! through the same harness via the unified `Placer` trait, so the numbers
//! are apples-to-apples by construction and a new placer is benchmarked by
//! adding one line to `placers()`.

use cm_baselines::{OktopusVcPlacer, OvocPlacer, SecondNetPlacer};
use cm_core::placement::{CmConfig, CmPlacer, Placer};
use cm_topology::{Topology, TreeSpec};
use cm_workloads::apps;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A representative TAG of roughly `n` VMs: three tiers plus a DB-style
/// self-loop, sized n/3 each.
fn tenant(n: u32) -> cm_core::Tag {
    let per = (n / 3).max(1);
    apps::three_tier(per, per, n - 2 * per, 200_000, 50_000, 20_000)
}

/// Every placement algorithm under benchmark, behind the one trait, paired
/// with the largest tenant it is benched at (`None` = no cap).
fn placers() -> Vec<(Box<dyn Placer>, Option<u32>)> {
    vec![
        (Box::new(CmPlacer::new(CmConfig::cm())), None),
        (Box::new(CmPlacer::new(CmConfig::coloc_only())), None),
        (Box::new(CmPlacer::new(CmConfig::balance_only())), None),
        (Box::new(OvocPlacer::new()), None),
        (Box::new(OktopusVcPlacer::new()), None),
        // SecondNet at 732 VMs is the paper's "tens of minutes" data point;
        // bench the pipe placer only up to 200 VMs.
        (Box::new(SecondNetPlacer::new()), Some(200)),
    ]
}

fn bench_placement(c: &mut Criterion) {
    let spec = TreeSpec::paper_datacenter();
    let mut g = c.benchmark_group("placement_runtime");
    g.sample_size(10);
    for &n in &[57u32, 200, 732] {
        let tag = tenant(n);
        for (mut placer, max_vms) in placers() {
            if max_vms.is_some_and(|cap| n > cap) {
                continue;
            }
            g.bench_with_input(BenchmarkId::new(placer.name(), n), &tag, |b, tag| {
                b.iter_batched(
                    || Topology::build(&spec),
                    |mut topo| {
                        black_box(placer.place(&mut topo, tag)).ok();
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
