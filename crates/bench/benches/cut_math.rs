//! Microbenchmarks of the Eq. 1 / footnote-7 cut pricing — the inner loop
//! of every reservation decision.

use cm_core::cut::CutModel;
use cm_core::model::{PipeModel, VocModel};
use cm_workloads::bing_like_pool;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cuts(c: &mut Criterion) {
    let pool = bing_like_pool(42);
    let tag = pool
        .tenants()
        .iter()
        .max_by_key(|t| t.total_vms())
        .unwrap()
        .clone();
    let voc = VocModel::from_tag(&tag);
    let pipe = PipeModel::from_tag_idealized(&tag);
    // A half-in placement of the 732-VM tenant.
    let tag_inside: Vec<u32> = tag.placeable_counts().iter().map(|&s| s / 2).collect();
    let pipe_inside: Vec<u32> = (0..pipe.num_vms()).map(|i| i % 2).collect();

    c.bench_function("cut/tag_eq1_732vm", |b| {
        b.iter(|| black_box(tag.cut_kbps(black_box(&tag_inside))))
    });
    c.bench_function("cut/voc_footnote7_732vm", |b| {
        b.iter(|| black_box(voc.cut_kbps(black_box(&tag_inside))))
    });
    c.bench_function("cut/pipe_732vm", |b| {
        b.iter(|| black_box(pipe.cut_kbps(black_box(&pipe_inside))))
    });
    c.bench_function("cut/tag_coloc_saving", |b| {
        b.iter(|| black_box(tag.coloc_saving_kbps(black_box(&tag_inside), black_box(&tag_inside))))
    });
}

criterion_group!(benches, bench_cuts);
criterion_main!(benches);
