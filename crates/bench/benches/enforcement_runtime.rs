//! Runtime of one enforcement cycle (GP + fluid RA) for the Fig. 13
//! scenario — what a real ElasticSwitch recomputes every ~100 ms.

use cm_enforce::{fig13_throughput, fig4_throughput, GuaranteeModel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_enforcement(c: &mut Criterion) {
    c.bench_function("enforce/fig13_5senders_tag", |b| {
        b.iter(|| black_box(fig13_throughput(black_box(5), GuaranteeModel::Tag)))
    });
    c.bench_function("enforce/fig4_tag", |b| {
        b.iter(|| {
            black_box(fig4_throughput(
                black_box(5),
                black_box(5),
                GuaranteeModel::Tag,
            ))
        })
    });
}

criterion_group!(benches, bench_enforcement);
criterion_main!(benches);
