//! # cm-race
//!
//! Deterministic schedule exploration and happens-before race detection
//! for the CloudMirror concurrency surface: the optimistic concurrent
//! admission engine (`cm_core::placement::concurrent`) and the sweep
//! worker pool (`cm_sim::parallel`).
//!
//! The static pass (`cm-analyze`) checks what the source *says* about
//! concurrency — lock-order headers, transaction discipline, atomic
//! orderings. This crate checks what the code *does*: it runs the real
//! engine on real threads under the virtualized scheduler from
//! [`cm_core::sync::model`], which grants the processor to exactly one
//! thread at a time and turns every lock, condvar and atomic operation
//! into a recorded, replayable scheduling decision.
//!
//! Three layers:
//!
//! * [`scenario`] — small, fixed workloads (same-pod conflicting
//!   arrivals, churn with departures, capacity rejections, the sweep
//!   pool, a deliberately racy cell) chosen so the interesting protocol
//!   paths are reachable within an exhaustively explorable depth.
//! * [`explore`] — the drivers: exhaustive DFS over scheduling choices
//!   with sleep-set pruning (schedules differing only in the order of
//!   independent operations are explored once), a seeded random-walk
//!   mode for depths beyond exhaustion, and exact replay of a recorded
//!   schedule.
//! * [`hb`] + [`run`] — per-schedule checking: serial equivalence
//!   against [`cm_core::placement::run_events_serial`], delta-log replay
//!   convergence + topology invariants, deadlock/livelock detection, a
//!   vector-clock happens-before race detector, and a lock acquisition
//!   graph for order inversions.
//!
//! Failures are reported as [`cm_analyze::Finding`]s sharing the static
//! pass's rule names (`lock-order`, `txn-discipline`) plus the dynamic
//! ones (`data-race`, `serial-equivalence`), with a **schedule id** as
//! the location. A schedule id like `r1.samepod2.w2.nopc.102` encodes
//! scenario, worker count, engine mutation and the exact branch picks,
//! so `cm-race --replay <id>` reproduces the failing interleaving
//! bit-for-bit. See `ANALYSIS.md` ("Dynamic analysis: cm-race").

/// The exploration drivers: exhaustive DFS, random walk, replay.
pub mod explore;
/// Vector-clock happens-before analysis and the lock acquisition graph.
pub mod hb;
/// One schedule: execute a scenario under a decider and check it.
pub mod run;
/// The fixed model-checking workloads.
pub mod scenario;
/// Schedule identities: replayable names for explored interleavings.
pub mod schedule;

/// Escape a string as a JSON string literal (hand-rolled — no serde in
/// the offline container; shared by the CLI and `bench_admission`'s
/// `model_check` section).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
