//! The fixed model-checking workloads.
//!
//! Exhaustive exploration is exponential in trace depth, so scenarios are
//! deliberately *minimal-but-adversarial*: topologies of a handful of
//! servers and event sequences of 3–4 events, constructed so the
//! interesting protocol paths — same-pod speculation conflicts, departure
//! invalidation, capacity rejections with whole-tree read sets — are all
//! reachable within a depth the DFS covers in seconds. The stress tests
//! cover large random workloads; this crate covers *every interleaving*
//! of small ones.

use cm_core::model::{Tag, TagBuilder};
use cm_core::placement::Event;
use cm_topology::{mbps, Kbps, Topology, TreeSpec};
use std::sync::Arc;

/// How a scenario's body is executed and judged (see [`crate::run`]).
#[derive(Debug, Clone, Copy)]
pub enum Kind {
    /// Run `cm_core::placement::run_events` on `workers` threads and
    /// check serial equivalence, replay convergence and invariants.
    /// `build` constructs the topology and event sequence.
    Engine {
        /// Constructs the starting topology and the event sequence.
        build: fn() -> (Topology, Vec<Event>),
    },
    /// Run `cm_sim::parallel::par_map_indexed` and check the results are
    /// in input order (the pool's determinism contract).
    ParMap {
        /// Worker threads handed to the pool (also the model thread
        /// count after the pool's own clamping).
        threads: usize,
        /// Number of work items.
        items: usize,
    },
    /// Two threads touching an [`cm_core::sync::model::UnsyncCell`]
    /// without a common lock: the race detector's positive control.
    RacyCell,
}

/// One named model-checking workload.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Stable name (appears in schedule ids).
    pub name: &'static str,
    /// One-line description for `--list-scenarios`.
    pub about: &'static str,
    /// Whether an unmutated run must produce zero findings. The racy-cell
    /// scenario sets this to `false`: it *exists* to produce a finding,
    /// so the CI gate skips it and the tests assert the inverse.
    pub expect_clean: bool,
    /// Execution shape.
    pub kind: Kind,
}

impl Scenario {
    /// The number of model threads the scenario registers for `workers`
    /// requested engine workers. Must match the spawn count exactly: the
    /// controller blocks scheduling until all expected threads start.
    pub fn expected_threads(&self, workers: usize) -> usize {
        match self.kind {
            Kind::Engine { .. } => workers.max(1),
            // Mirrors par_map_indexed's internal clamp.
            Kind::ParMap { threads, items } => threads.clamp(1, items.max(1)),
            Kind::RacyCell => 2,
        }
    }
}

/// Uplink speeds generous enough that placement is slot-constrained, so
/// scenario outcomes hinge on the protocol, not on bandwidth admission.
fn wide_links() -> [Kbps; 3] {
    [mbps(1_000.0), mbps(2_000.0), mbps(4_000.0)]
}

/// A single-tier hose tenant: `n` VMs, `rate` per-VM hose bandwidth.
fn hose(n: u32, rate: Kbps) -> Arc<Tag> {
    let mut b = TagBuilder::new("hose");
    let t = b.tier("t", n);
    b.self_loop(t, rate).expect("self loop on a fresh tier");
    Arc::new(b.build().expect("valid single-tier TAG"))
}

/// `samepod2`: 2 pods × 1 rack × 2 servers × 2 slots; three identical
/// 2-VM arrivals. Two workers speculating from the same empty snapshot
/// compute the *same* placement, so every interleaving where a commit
/// lands between a speculation and its turn exercises the pod-conflict
/// validation. This is the scenario the `nopc` mutation gate runs: with
/// validation skipped, the second commit double-books the first server
/// and the run fails serial equivalence *and* replay convergence.
fn samepod2() -> (Topology, Vec<Event>) {
    let topo = Topology::build(&TreeSpec::small(2, 1, 2, 2, wide_links()));
    let events = (0..3).map(|_| Event::Arrive { tag: hose(2, 50) }).collect();
    (topo, events)
}

/// `churn`: same tree as `samepod2`, but the third event departs the
/// first arrival. Departures always invalidate intervening speculation
/// (freed resources are not monotone for the search), so this drives the
/// rollback + at-turn recompute path under every interleaving.
fn churn() -> (Topology, Vec<Event>) {
    let topo = Topology::build(&TreeSpec::small(2, 1, 2, 2, wide_links()));
    let events = vec![
        Event::Arrive { tag: hose(2, 50) },
        Event::Arrive { tag: hose(2, 50) },
        Event::Depart { arrival: 0 },
        Event::Arrive { tag: hose(2, 50) },
    ];
    (topo, events)
}

/// `fillpod`: 2 pods × 1 rack × 1 server × 4 slots; three 4-VM arrivals.
/// The third must be rejected everywhere, and rejections carry a
/// whole-tree read set, so this exercises conservative (`ShardSet::All`)
/// validation and the rejection commit path.
fn fillpod() -> (Topology, Vec<Event>) {
    let topo = Topology::build(&TreeSpec::small(2, 1, 1, 4, wide_links()));
    let events = (0..3).map(|_| Event::Arrive { tag: hose(4, 50) }).collect();
    (topo, events)
}

/// Every scenario, in registry order.
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "samepod2",
            about: "three same-pod arrivals; forces speculation conflicts (the nopc gate)",
            expect_clean: true,
            kind: Kind::Engine { build: samepod2 },
        },
        Scenario {
            name: "churn",
            about: "arrivals with an interleaved departure; drives rollback + recompute",
            expect_clean: true,
            kind: Kind::Engine { build: churn },
        },
        Scenario {
            name: "fillpod",
            about: "capacity exhaustion; rejection paths with whole-tree read sets",
            expect_clean: true,
            kind: Kind::Engine { build: fillpod },
        },
        Scenario {
            name: "parmap",
            about: "cm-sim worker pool over 3 items; determinism + guarded slots",
            expect_clean: true,
            kind: Kind::ParMap {
                threads: 2,
                items: 3,
            },
        },
        Scenario {
            name: "cell",
            about: "unsynchronized shared cell; the race detector's positive control",
            expect_clean: false,
            kind: Kind::RacyCell,
        },
    ]
}

/// Look up a scenario by name.
pub fn find(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_dot_free() {
        let scns = all();
        for (i, a) in scns.iter().enumerate() {
            assert!(!a.name.contains('.'), "dots would break schedule ids");
            for b in &scns[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn engine_scenarios_build_valid_workloads() {
        for s in all() {
            if let Kind::Engine { build } = s.kind {
                let (topo, events) = build();
                topo.check_invariants().expect("fresh topology invariants");
                assert!(!events.is_empty());
            }
        }
    }

    #[test]
    fn find_resolves_registry_names() {
        assert!(find("samepod2").is_some());
        assert!(find("nope").is_none());
    }
}
