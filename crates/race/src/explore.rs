//! The exploration drivers.
//!
//! **Exhaustive DFS with sleep sets.** The controller consults the
//! decider only where ≥ 2 threads are runnable, so the schedule space is
//! a tree of choice points. The explorer walks it depth-first: each run
//! replays a forced prefix (`plan`), extends it greedily (first enabled
//! pick), and records every fresh choice point; backtracking then bumps
//! the deepest point with an untried branch. Sleep sets prune commuting
//! interleavings: after branch `b` of a node is fully explored, `b` goes
//! to *sleep* for the node's remaining branches, and wakes only when a
//! conflicting operation executes (two ops conflict when they touch a
//! common object and one writes —
//! [`Op::conflicts`](cm_core::sync::model::Op::conflicts)). A run whose
//! every
//! enabled thread is asleep is abandoned: any behaviour it could exhibit
//! was already covered in the branch order explored first.
//!
//! **Random walk.** A seeded LCG picks uniformly at every choice point —
//! the probe mode for worker counts whose exhaustive tree is too big.
//! Same checks, fully reproducible from the seed.
//!
//! **Replay.** A [`ScheduleId`](crate::schedule::ScheduleId)'s picks
//! are forced verbatim; divergence
//! (the tree changed under the id) aborts as a prune and is reported as
//! a stale id rather than a wrong result.

// The explorer↔decider channel is the only lock (`shared`); the decider
// side runs under the controller's state lock, the explorer side only
// between runs, so the two never interleave on one thread.
// cm-analyze: lock-order(shared)

use crate::run::{run_schedule, RunOutcome};
use crate::scenario::Scenario;
use crate::schedule::{Mutation, ScheduleId};
use cm_analyze::Finding;
use cm_core::sync::model::{Choice, ChoicePoint, Decider, Op, Tid, TraceEvent};
use std::sync::{Arc, Mutex as StdMutex};

/// Safety caps for exploration (`complete` reports whether they bound
/// the result).
#[derive(Debug, Clone, Copy)]
pub struct Caps {
    /// Maximum runs (explored + pruned) before giving up.
    pub max_runs: usize,
    /// Stop once this many findings have accumulated.
    pub max_findings: usize,
}

impl Default for Caps {
    fn default() -> Caps {
        Caps {
            max_runs: 200_000,
            max_findings: 10,
        }
    }
}

/// Aggregated result of an exploration.
#[derive(Debug)]
pub struct ExploreReport {
    /// Scenario explored.
    pub scenario: String,
    /// Worker count.
    pub workers: usize,
    /// Engine mutation in effect.
    pub mutation: Mutation,
    /// Schedules fully executed and checked.
    pub schedules: usize,
    /// Runs abandoned by sleep-set pruning.
    pub pruned: usize,
    /// Deepest choice-point count seen.
    pub max_depth: usize,
    /// Whether the state space was exhausted (always `false` for walks,
    /// which sample; `false` for DFS only if a cap fired).
    pub complete: bool,
    /// All check failures, schedule ids embedded in each finding's path.
    pub findings: Vec<Finding>,
}

/// One node on the DFS path: the runnable set seen there, the sleep set
/// in force when descending, and the branch currently being explored.
#[derive(Debug, Clone)]
struct PlanStep {
    enabled: Vec<(Tid, Op)>,
    sleep: Vec<(Tid, Op)>,
    pick: usize,
}

/// Decider⇄explorer shared state for one DFS run.
#[derive(Debug, Default)]
struct DfsShared {
    /// Forced prefix (the current DFS path).
    plan: Vec<PlanStep>,
    /// Choice index within this run.
    depth: usize,
    /// Sleep set, filtered live as events execute.
    live_sleep: Vec<(Tid, Op)>,
    /// Choice points first visited this run (beyond the plan).
    fresh: Vec<PlanStep>,
    /// A plan step no longer matches the tree (internal error).
    diverged: bool,
}

struct DfsDecider {
    shared: Arc<StdMutex<DfsShared>>,
}

fn lock<'a>(shared: &'a StdMutex<DfsShared>) -> std::sync::MutexGuard<'a, DfsShared> {
    match shared.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl Decider for DfsDecider {
    fn choose(&mut self, point: &ChoicePoint) -> Choice {
        let mut s = lock(&self.shared);
        let d = s.depth;
        s.depth += 1;
        if d < s.plan.len() {
            if s.plan[d].enabled != point.enabled {
                s.diverged = true;
                return Choice::Abort;
            }
            s.live_sleep = s.plan[d].sleep.clone();
            return Choice::Pick(s.plan[d].pick);
        }
        let entry = s.live_sleep.clone();
        match point.enabled.iter().position(|e| !entry.contains(e)) {
            Some(i) => {
                s.fresh.push(PlanStep {
                    enabled: point.enabled.clone(),
                    sleep: entry,
                    pick: i,
                });
                Choice::Pick(i)
            }
            // Every runnable thread is asleep: all interleavings from
            // here commute with ones already explored.
            None => Choice::Abort,
        }
    }

    fn observe(&mut self, ev: &TraceEvent) {
        let mut s = lock(&self.shared);
        if s.live_sleep.is_empty() {
            return;
        }
        s.live_sleep.retain(|&(t, op)| {
            if ev.tid == t {
                // The sleeper moved past the slept transition.
                !ev.op.is_yield()
            } else {
                // A conflicting op makes the slept order distinguishable
                // again.
                !op.conflicts(ev.op)
            }
        });
    }
}

/// Exhaustively explore every (sleep-set-inequivalent) schedule of
/// `scn` at `workers` threads under `mutation`.
pub fn explore_exhaustive(
    scn: &Scenario,
    workers: usize,
    mutation: Mutation,
    caps: &Caps,
) -> ExploreReport {
    let mut report = ExploreReport {
        scenario: scn.name.to_string(),
        workers,
        mutation,
        schedules: 0,
        pruned: 0,
        max_depth: 0,
        complete: false,
        findings: Vec::new(),
    };
    let mut plan: Vec<PlanStep> = Vec::new();
    loop {
        let shared = Arc::new(StdMutex::new(DfsShared {
            plan: plan.clone(),
            ..DfsShared::default()
        }));
        let out = run_schedule(
            scn,
            workers,
            mutation,
            Box::new(DfsDecider {
                shared: Arc::clone(&shared),
            }),
        );
        let st = std::mem::take(&mut *lock(&shared));
        if st.diverged {
            // A forced prefix stopped matching the tree: the scenario is
            // nondeterministic beyond the schedule, which the model does
            // not support. Surface as incomplete rather than looping.
            report.complete = false;
            return report;
        }
        if out.pruned {
            report.pruned += 1;
        } else {
            report.schedules += 1;
        }
        report.max_depth = report.max_depth.max(st.depth);
        report.findings.extend(out.findings);
        if report.findings.len() >= caps.max_findings
            || report.schedules + report.pruned >= caps.max_runs
        {
            return report;
        }
        // Backtrack: deepest node with an untried, awake branch.
        let mut full = plan;
        full.extend(st.fresh);
        loop {
            let Some(mut last) = full.pop() else {
                report.complete = true;
                return report;
            };
            let explored = last.enabled[last.pick];
            last.sleep.push(explored);
            if let Some(i) = last.enabled.iter().position(|e| !last.sleep.contains(e)) {
                last.pick = i;
                full.push(last);
                break;
            }
        }
        plan = full;
    }
}

/// A fixed-seed multiplicative LCG walk decider (Knuth MMIX constants).
struct WalkDecider {
    state: u64,
}

impl Decider for WalkDecider {
    fn choose(&mut self, point: &ChoicePoint) -> Choice {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        Choice::Pick(((self.state >> 33) as usize) % point.enabled.len())
    }
}

/// Run `count` seeded random-walk schedules. Reproducible: walk `k` of a
/// given seed always takes the same picks.
pub fn random_walks(
    scn: &Scenario,
    workers: usize,
    mutation: Mutation,
    seed: u64,
    count: usize,
    caps: &Caps,
) -> ExploreReport {
    let mut report = ExploreReport {
        scenario: scn.name.to_string(),
        workers,
        mutation,
        schedules: 0,
        pruned: 0,
        max_depth: 0,
        complete: false,
        findings: Vec::new(),
    };
    for k in 0..count {
        let state = seed ^ (k as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let out = run_schedule(scn, workers, mutation, Box::new(WalkDecider { state }));
        report.schedules += 1;
        report.max_depth = report.max_depth.max(out.id.picks.len());
        report.findings.extend(out.findings);
        if report.findings.len() >= caps.max_findings {
            break;
        }
    }
    report
}

/// Force a recorded schedule's picks verbatim.
struct ReplayDecider {
    picks: Vec<usize>,
    next: usize,
}

impl Decider for ReplayDecider {
    fn choose(&mut self, point: &ChoicePoint) -> Choice {
        let Some(&p) = self.picks.get(self.next) else {
            // More choice points than the id recorded: the code changed
            // under the id. Run on deterministically so the caller can
            // still compare, but the pick count will expose it.
            return Choice::Pick(0);
        };
        self.next += 1;
        if p < point.enabled.len() {
            Choice::Pick(p)
        } else {
            Choice::Abort // stale id
        }
    }
}

/// Replay one schedule id. [`RunOutcome::pruned`] (or a pick count in
/// `RunOutcome::id` differing from the requested id) means the id is
/// stale: the yield-point structure changed since it was recorded.
pub fn replay(scn: &Scenario, id: &ScheduleId) -> RunOutcome {
    run_schedule(
        scn,
        id.workers,
        id.mutation,
        Box::new(ReplayDecider {
            picks: id.picks.clone(),
            next: 0,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    fn explore(name: &str, workers: usize, mutation: Mutation) -> ExploreReport {
        let scn = scenario::find(name).expect("scenario exists");
        explore_exhaustive(&scn, workers, mutation, &Caps::default())
    }

    #[test]
    fn parmap_exhausts_cleanly() {
        let r = explore("parmap", 2, Mutation::None);
        assert!(r.complete, "parmap should exhaust");
        assert!(r.schedules > 1, "expected multiple schedules");
        assert!(r.findings.is_empty(), "{:#?}", r.findings);
    }

    // The backtracker skips sleeping sibling branches before a run ever
    // starts, so reduction shows up as branches never taken, not as
    // `pruned` runs — test the filtering rules directly instead.
    #[test]
    fn sleep_entries_wake_on_conflicts_only() {
        let shared = Arc::new(StdMutex::new(DfsShared::default()));
        let mut d = DfsDecider {
            shared: Arc::clone(&shared),
        };
        lock(&shared).live_sleep = vec![(0, Op::Lock(1)), (1, Op::Lock(2))];
        let ev = |step, tid, op| TraceEvent { step, tid, op };
        // An unrelated lock wakes no-one.
        d.observe(&ev(0, 2, Op::Lock(3)));
        assert_eq!(lock(&shared).live_sleep.len(), 2);
        // A conflicting op (same mutex) wakes that mutex's sleeper.
        d.observe(&ev(1, 2, Op::Lock(1)));
        assert_eq!(lock(&shared).live_sleep, vec![(1, Op::Lock(2))]);
        // A sleeper executing its own yield clears its entry.
        d.observe(&ev(2, 1, Op::Lock(2)));
        assert!(lock(&shared).live_sleep.is_empty());
    }

    #[test]
    fn seeded_mutation_is_caught_and_replayable() {
        let scn = scenario::find("samepod2").expect("scenario");
        let r = explore_exhaustive(
            &scn,
            2,
            Mutation::SkipPodConflict,
            &Caps {
                max_findings: 1,
                ..Caps::default()
            },
        );
        assert!(
            !r.findings.is_empty(),
            "the nopc mutation must be caught (explored {} schedules)",
            r.schedules
        );
        // The finding's path is a schedule id that replays to the same
        // failure…
        let id = ScheduleId::parse(&r.findings[0].path).expect("finding path is a schedule id");
        let replayed = replay(&scn, &id);
        assert!(!replayed.pruned, "pinned id must not be stale");
        assert_eq!(replayed.id, id, "replay must take the recorded picks");
        assert!(
            !replayed.findings.is_empty(),
            "replay must reproduce the failure"
        );
        // …and the same picks with the check *enabled* are clean.
        let fixed = ScheduleId {
            mutation: Mutation::None,
            ..id
        };
        let healthy = replay(&scn, &fixed);
        assert!(
            healthy.pruned || healthy.findings.is_empty(),
            "unmutated engine must be clean on those picks: {:#?}",
            healthy.findings
        );
    }

    #[test]
    fn random_walks_are_reproducible() {
        let scn = scenario::find("churn").expect("scenario");
        let caps = Caps::default();
        let a = random_walks(&scn, 2, Mutation::None, 7, 3, &caps);
        let b = random_walks(&scn, 2, Mutation::None, 7, 3, &caps);
        assert_eq!(a.schedules, b.schedules);
        assert!(a.findings.is_empty(), "{:#?}", a.findings);
    }
}
