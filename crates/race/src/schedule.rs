//! Schedule identities.
//!
//! A schedule is the sequence of branch indices taken at every scheduling
//! choice point where more than one thread was runnable (forced steps are
//! not recorded — see [`cm_core::sync::model`]). Together with the
//! scenario name, the worker count and the engine mutation, those picks
//! reproduce a run bit-for-bit, so they make a compact, human-pasteable
//! failure identity:
//!
//! ```text
//! r1.samepod2.w2.nopc.102
//! └┬┘ └──┬───┘ └┬┘ └┬─┘ └┬┘
//!  │  scenario  │ mutation picks, one base-36 digit per choice
//!  │         workers          (`-` for the empty schedule)
//!  └ id format version
//! ```
//!
//! The `v1` prefix is bumped whenever the controller's yield-point set
//! changes, since that silently re-indexes every choice point; a stale id
//! replays as a prune ("schedule diverged"), never as a wrong result.

use std::fmt;

/// A deliberate engine defect (or coverage knob) applied during a run.
/// Mutations are part of the schedule id so a pinned regression replays
/// against the exact engine variant that exposed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The unmodified engine (`ok`).
    None,
    /// Skip the pod-conflict check when validating a speculation
    /// (`nopc`): the seeded protocol bug the CI gate proves the explorer
    /// catches, via `ConcurrentConfig::skip_conflict_validation`.
    SkipPodConflict,
    /// Treat every speculation as invalidated (`finv`): forces the
    /// rollback + at-turn recompute path on every arrival. A coverage
    /// knob, not a bug — runs stay serial-equivalent.
    ForceInvalidate,
}

impl Mutation {
    /// The id-string code for this mutation.
    pub fn code(self) -> &'static str {
        match self {
            Mutation::None => "ok",
            Mutation::SkipPodConflict => "nopc",
            Mutation::ForceInvalidate => "finv",
        }
    }

    /// Parse an id-string code.
    pub fn from_code(code: &str) -> Option<Mutation> {
        match code {
            "ok" => Some(Mutation::None),
            "nopc" => Some(Mutation::SkipPodConflict),
            "finv" => Some(Mutation::ForceInvalidate),
            _ => None,
        }
    }
}

/// A fully-qualified, replayable schedule identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleId {
    /// Scenario name (see [`crate::scenario::all`]).
    pub scenario: String,
    /// Worker/thread count the scenario ran with.
    pub workers: usize,
    /// Engine mutation in effect.
    pub mutation: Mutation,
    /// Branch index taken at each consulted choice point, in order.
    pub picks: Vec<usize>,
}

impl fmt::Display for ScheduleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r1.{}.w{}.{}.",
            self.scenario,
            self.workers,
            self.mutation.code()
        )?;
        if self.picks.is_empty() {
            return write!(f, "-");
        }
        for &p in &self.picks {
            // Runnable sets are bounded by the thread count (≤ a handful),
            // so one base-36 digit per pick always suffices.
            let d = char::from_digit(p.min(35) as u32, 36).expect("pick < 36");
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl ScheduleId {
    /// Parse `r1.<scenario>.w<N>.<mutation>.<picks>`; `None` on any
    /// malformed component (including an unknown format version).
    pub fn parse(s: &str) -> Option<ScheduleId> {
        let mut parts = s.split('.');
        if parts.next()? != "r1" {
            return None;
        }
        let scenario = parts.next()?.to_string();
        let workers: usize = parts.next()?.strip_prefix('w')?.parse().ok()?;
        if workers == 0 {
            return None;
        }
        let mutation = Mutation::from_code(parts.next()?)?;
        let picks_str = parts.next()?;
        if parts.next().is_some() {
            return None;
        }
        let picks = if picks_str == "-" {
            Vec::new()
        } else {
            picks_str
                .chars()
                .map(|c| c.to_digit(36).map(|d| d as usize))
                .collect::<Option<Vec<usize>>>()?
        };
        Some(ScheduleId {
            scenario,
            workers,
            mutation,
            picks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_display_and_parse() {
        let id = ScheduleId {
            scenario: "samepod2".to_string(),
            workers: 2,
            mutation: Mutation::SkipPodConflict,
            picks: vec![1, 0, 2, 11],
        };
        let s = id.to_string();
        assert_eq!(s, "r1.samepod2.w2.nopc.102b");
        assert_eq!(ScheduleId::parse(&s), Some(id));
    }

    #[test]
    fn empty_schedule_uses_a_dash() {
        let id = ScheduleId {
            scenario: "parmap".to_string(),
            workers: 2,
            mutation: Mutation::None,
            picks: Vec::new(),
        };
        let s = id.to_string();
        assert_eq!(s, "r1.parmap.w2.ok.-");
        assert_eq!(ScheduleId::parse(&s), Some(id));
    }

    #[test]
    fn malformed_ids_are_rejected() {
        for bad in [
            "",
            "r2.samepod2.w2.ok.-",
            "r1.samepod2.2.ok.-",
            "r1.samepod2.w0.ok.-",
            "r1.samepod2.w2.zz.-",
            "r1.samepod2.w2.ok.1!2",
            "r1.samepod2.w2.ok.12.3",
            "r1.samepod2.w2.ok",
        ] {
            assert!(ScheduleId::parse(bad).is_none(), "{bad:?} should not parse");
        }
    }
}
