//! One schedule: execute a scenario under a decider, then check it.
//!
//! Every non-pruned run is judged on four axes, each mapped onto a rule
//! name shared with `cm-analyze` so findings render and gate uniformly:
//!
//! | check | rule |
//! |-------|------|
//! | deadlock / step-limit livelock | `lock-order` |
//! | lock acquisition cycles (HB pass) | `lock-order` |
//! | worker panic, replay divergence, broken invariants | `txn-discipline` |
//! | outcomes differ from in-order serial execution | `serial-equivalence` |
//! | unsynchronized conflicting accesses (HB pass) | `data-race` |
//!
//! Findings carry the schedule id as their location, so
//! `cm-race --replay <id>` reproduces any of them deterministically.

// The only lock here is the panic-message mailbox (`LAST_PANIC`), plus the
// racy-cell scenario's counter (`total`); neither ever nests in the other.
// cm-analyze: lock-order(LAST_PANIC < total)

use crate::hb;
use crate::scenario::{Kind, Scenario};
use crate::schedule::{Mutation, ScheduleId};
use cm_analyze::rules::{DATA_RACE, LOCK_ORDER, SERIAL_EQUIVALENCE, TXN_DISCIPLINE};
use cm_analyze::Finding;
use cm_core::placement::{
    replay_outcomes, run_events, run_events_serial, CmConfig, CmPlacer, ConcurrentConfig, Event,
    EventOutcome,
};
use cm_core::sync::model::{
    self, Abort, Controller, Decider, RunTrace, ScheduleAborted, UnsyncCell,
};
use cm_core::sync::{scope, Mutex};
use cm_topology::Topology;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, Mutex as StdMutex, Once};

/// Virtual-clock budget per run; hitting it is reported as a livelock.
/// The deepest scenario uses well under a thousand steps, so the margin
/// is ~20×.
pub const MAX_STEPS: u64 = 20_000;

/// Everything one schedule run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// The replayable identity of the schedule that actually ran.
    pub id: ScheduleId,
    /// The recorded trace.
    pub trace: RunTrace,
    /// Check failures (empty for a healthy schedule).
    pub findings: Vec<Finding>,
    /// The run was abandoned by the decider (sleep-set prune or replay
    /// divergence) — no checks were performed and nothing was explored.
    pub pruned: bool,
}

// Runs in flight (unit tests run schedules concurrently) and the message
// of the first interesting panic during one. Model runs routinely unwind
// worker threads, so the hook stays quiet while any run is active and the
// payload travels via this mailbox instead of stderr.
static ACTIVE_RUNS: StdAtomicUsize = StdAtomicUsize::new(0);
static LAST_PANIC: StdMutex<Option<String>> = StdMutex::new(None);

fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        model::silence_schedule_aborts();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if ACTIVE_RUNS.load(StdOrdering::SeqCst) == 0 {
                prev(info);
                return;
            }
            if info.payload().downcast_ref::<ScheduleAborted>().is_some() {
                return; // routine abort unwind
            }
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            let mut slot = match LAST_PANIC.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if slot.is_none() {
                *slot = Some(msg);
            }
        }));
    });
}

fn take_last_panic() -> String {
    let mut slot = match LAST_PANIC.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    slot.take()
        .unwrap_or_else(|| "panic message unavailable".to_string())
}

struct QuietGuard;

impl QuietGuard {
    fn enter() -> QuietGuard {
        ACTIVE_RUNS.fetch_add(1, StdOrdering::SeqCst);
        QuietGuard
    }
}

impl Drop for QuietGuard {
    fn drop(&mut self) {
        ACTIVE_RUNS.fetch_sub(1, StdOrdering::SeqCst);
    }
}

/// What the scenario body produced (checking needs the inputs too).
enum Body {
    Engine {
        topo: Box<Topology>,
        events: Vec<Event>,
        serial: Vec<EventOutcome>,
        /// `Err` means a worker panicked out of the run.
        outcomes: Result<Vec<EventOutcome>, ()>,
    },
    ParMap {
        /// Whether results came back complete and in input order.
        matched: Result<bool, ()>,
    },
    Cell {
        completed: Result<(), ()>,
    },
}

/// Execute one schedule of `scn` with `workers` model threads under
/// `decider`, then run every check. The decider sees each scheduling
/// choice; the returned [`RunOutcome::id`] records the picks it made.
pub fn run_schedule(
    scn: &Scenario,
    workers: usize,
    mutation: Mutation,
    decider: Box<dyn Decider>,
) -> RunOutcome {
    install_quiet_hook();
    let expected = scn.expected_threads(workers);
    let ctl = Arc::new(Controller::new(expected, MAX_STEPS, decider));
    let body = {
        let _install = model::install(Arc::clone(&ctl));
        let _quiet = QuietGuard::enter();
        execute(scn, workers, mutation)
    };
    let trace = ctl.finish();
    let id = ScheduleId {
        scenario: scn.name.to_string(),
        workers,
        mutation,
        picks: trace.schedule(),
    };
    let pruned = matches!(trace.abort, Some(Abort::Pruned));
    let mut findings = Vec::new();
    if !pruned {
        check(&id, &trace, &body, expected, &mut findings);
    }
    RunOutcome {
        id,
        trace,
        findings,
        pruned,
    }
}

/// Run the scenario body with the controller installed on this thread
/// (so the scoped spawns inside register as model threads).
fn execute(scn: &Scenario, workers: usize, mutation: Mutation) -> Body {
    match scn.kind {
        Kind::Engine { build } => {
            let (topo, events) = build();
            let make = || CmPlacer::new(CmConfig::cm());
            // The serial ground truth involves no shim primitives, so it
            // runs inline on this (unregistered, passthrough) thread.
            let serial = run_events_serial(&topo, &events, 0, make());
            let cfg = ConcurrentConfig {
                threads: workers.max(1),
                shard_level: None,
                wcs_level: 0,
                force_invalidate: mutation == Mutation::ForceInvalidate,
                skip_conflict_validation: mutation == Mutation::SkipPodConflict,
            };
            let outcomes =
                catch_unwind(AssertUnwindSafe(|| run_events(&topo, &events, make, &cfg)))
                    .map_err(|_| ());
            Body::Engine {
                topo: Box::new(topo),
                events,
                serial,
                outcomes,
            }
        }
        Kind::ParMap { threads, items } => {
            let input: Vec<u64> = (0..items as u64).collect();
            let expect: Vec<u64> = input.iter().map(|&x| x * x + 7).collect();
            let matched = catch_unwind(AssertUnwindSafe(|| {
                cm_sim::parallel::par_map_indexed(threads, input.clone(), |_, x| x * x + 7)
                    == expect
            }))
            .map_err(|_| ());
            Body::ParMap { matched }
        }
        Kind::RacyCell => {
            let completed = catch_unwind(AssertUnwindSafe(|| {
                // Constructed under the installed controller so the cell
                // and counter get model object ids.
                let cell = UnsyncCell::new(0u64);
                let total = Mutex::new(0u64);
                scope(|s| {
                    s.spawn(|| {
                        cell.set(cell.get() + 1);
                        *total.lock().expect("counter lock") += 1;
                    });
                    s.spawn(|| {
                        let v = cell.get();
                        *total.lock().expect("counter lock") += v;
                    });
                });
            }))
            .map_err(|_| ());
            Body::Cell { completed }
        }
    }
}

fn finding(
    id: &ScheduleId,
    rule: &'static str,
    line: usize,
    message: String,
    snippet: String,
) -> Finding {
    Finding {
        path: id.to_string(),
        line: line.max(1),
        rule,
        message,
        note: format!("replay deterministically with `cm-race --replay {id}`"),
        snippet,
    }
}

fn check(id: &ScheduleId, trace: &RunTrace, body: &Body, nthreads: usize, out: &mut Vec<Finding>) {
    let end_line = trace.events.len().max(1);
    match &trace.abort {
        Some(Abort::Pruned) => unreachable!("pruned runs are not checked"),
        Some(Abort::Deadlock { blocked }) => {
            let who: Vec<String> = blocked
                .iter()
                .map(|(t, op)| format!("thread {t} on {op:?}"))
                .collect();
            out.push(finding(
                id,
                LOCK_ORDER,
                end_line,
                format!("deadlock: no runnable thread ({})", who.join(", ")),
                "every live thread is blocked on a lock or condvar".to_string(),
            ));
        }
        Some(Abort::StepLimit) => {
            out.push(finding(
                id,
                LOCK_ORDER,
                end_line,
                format!("livelock: virtual clock exceeded {MAX_STEPS} steps"),
                "the schedule never quiesces".to_string(),
            ));
        }
        None => check_body(id, trace, body, out),
    }

    let hb = hb::analyze(&trace.events, nthreads);
    for race in &hb.races {
        out.push(finding(
            id,
            DATA_RACE,
            race.second.step as usize + 1,
            format!(
                "unsynchronized conflicting accesses to {}: thread {} {:?} at step {} vs thread {} {:?} at step {}",
                hb::describe_obj(race.obj),
                race.first.tid,
                race.first.op,
                race.first.step,
                race.second.tid,
                race.second.op,
                race.second.step,
            ),
            format!("{:?}", race.second.op),
        ));
    }
    for cycle in &hb.cycles {
        let chain: Vec<String> = cycle.locks.iter().map(|l| format!("#{l}")).collect();
        out.push(finding(
            id,
            LOCK_ORDER,
            end_line,
            format!(
                "lock acquisition cycle: {} → back to {}",
                chain.join(" → "),
                chain[0]
            ),
            "opposite nesting orders deadlock under the right interleaving".to_string(),
        ));
    }
}

fn check_body(id: &ScheduleId, trace: &RunTrace, body: &Body, out: &mut Vec<Finding>) {
    let end_line = trace.events.len().max(1);
    match body {
        Body::Engine {
            topo,
            events,
            serial,
            outcomes,
        } => match outcomes {
            Err(()) => out.push(finding(
                id,
                TXN_DISCIPLINE,
                end_line,
                format!("engine worker panicked: {}", take_last_panic()),
                "a worker unwound outside any scheduler abort".to_string(),
            )),
            Ok(got) => {
                if got != serial {
                    let first = serial
                        .iter()
                        .zip(got)
                        .position(|(a, b)| a != b)
                        .unwrap_or_else(|| serial.len().min(got.len()));
                    out.push(finding(
                        id,
                        SERIAL_EQUIVALENCE,
                        end_line,
                        format!(
                            "outcomes diverge from serial in-order execution (first at event {first})"
                        ),
                        format!("event {first}"),
                    ));
                }
                let mut replayed = topo.clone();
                match replay_outcomes(&mut replayed, events, got) {
                    Err(e) => out.push(finding(
                        id,
                        TXN_DISCIPLINE,
                        end_line,
                        format!("delta-log replay does not converge: {e}"),
                        "committed deltas over-allocate the topology".to_string(),
                    )),
                    Ok(()) => {
                        if let Err(e) = replayed.check_invariants() {
                            out.push(finding(
                                id,
                                TXN_DISCIPLINE,
                                end_line,
                                format!("topology invariants broken after replay: {e}"),
                                "see Topology::check_invariants".to_string(),
                            ));
                        }
                    }
                }
            }
        },
        Body::ParMap { matched } => match matched {
            Err(()) => out.push(finding(
                id,
                TXN_DISCIPLINE,
                end_line,
                format!("worker pool panicked: {}", take_last_panic()),
                "a pool worker unwound outside any scheduler abort".to_string(),
            )),
            Ok(false) => out.push(finding(
                id,
                SERIAL_EQUIVALENCE,
                end_line,
                "par_map_indexed results are not the in-order map".to_string(),
                "the pool's determinism contract".to_string(),
            )),
            Ok(true) => {}
        },
        Body::Cell { completed } => {
            if completed.is_err() {
                out.push(finding(
                    id,
                    TXN_DISCIPLINE,
                    end_line,
                    format!("racy-cell body panicked: {}", take_last_panic()),
                    "unexpected unwind".to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use cm_core::sync::model::FirstEnabled;

    fn run_first(name: &str, workers: usize, mutation: Mutation) -> RunOutcome {
        let scn = scenario::find(name).expect("scenario exists");
        run_schedule(&scn, workers, mutation, Box::new(FirstEnabled))
    }

    #[test]
    fn first_enabled_engine_schedule_is_clean() {
        let out = run_first("samepod2", 2, Mutation::None);
        assert!(!out.pruned);
        assert!(out.findings.is_empty(), "{:#?}", out.findings);
        assert!(out.trace.abort.is_none());
    }

    #[test]
    fn parmap_first_schedule_is_clean() {
        let out = run_first("parmap", 2, Mutation::None);
        assert!(out.findings.is_empty(), "{:#?}", out.findings);
    }

    #[test]
    fn racy_cell_is_caught_on_any_schedule() {
        let out = run_first("cell", 2, Mutation::None);
        assert!(
            out.findings.iter().any(|f| f.rule == DATA_RACE),
            "expected a data-race finding, got {:#?}",
            out.findings
        );
    }

    #[test]
    fn schedule_id_matches_scenario_and_mutation() {
        let out = run_first("fillpod", 2, Mutation::ForceInvalidate);
        assert!(out.id.to_string().starts_with("r1.fillpod.w2.finv."));
    }
}
