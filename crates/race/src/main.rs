//! `cm-race` — schedule exploration CLI.
//!
//! Modes:
//!
//! * default: exhaustive DFS over every clean-expected scenario (or one,
//!   with `--scenario`) — the CI gate;
//! * `--walk`: seeded random-walk sampling for depths the DFS can't
//!   exhaust;
//! * `--replay <id>`: deterministically re-run one schedule id, e.g. one
//!   pasted from a finding;
//! * `--list-scenarios`: show the registry.
//!
//! Exit codes: `0` success, `1` findings (inverted by
//! `--expect-finding`, which demands at least one finding — the seeded
//! mutation gate), `2` usage or stale-id errors.

use cm_race::explore::{explore_exhaustive, random_walks, replay, Caps, ExploreReport};
use cm_race::json_str;
use cm_race::scenario::{self, Scenario};
use cm_race::schedule::{Mutation, ScheduleId};
use std::process::ExitCode;
use std::time::Instant;

struct Opts {
    json: bool,
    workers: usize,
    scenario: Option<String>,
    mutate: Mutation,
    expect_finding: bool,
    walk: bool,
    seed: u64,
    schedules: usize,
    replay: Option<String>,
    list: bool,
    caps: Caps,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            json: false,
            workers: 2,
            scenario: None,
            mutate: Mutation::None,
            expect_finding: false,
            walk: false,
            seed: 20140817, // CloudMirror's publication date, for a stable default
            schedules: 64,
            replay: None,
            list: false,
            caps: Caps::default(),
        }
    }
}

const USAGE: &str = "\
cm-race: deterministic schedule exploration for the concurrent engine

USAGE:
  cm-race [OPTIONS]                 exhaustive DFS (all clean-expected scenarios)
  cm-race --walk [OPTIONS]          seeded random-walk sampling
  cm-race --replay <SCHEDULE-ID>    re-run one recorded schedule
  cm-race --list-scenarios          show the scenario registry

OPTIONS:
  --scenario <NAME>     explore one scenario instead of the registry
  --workers <N>         engine worker threads (default 2)
  --mutate <CODE>       engine mutation: ok | nopc | finv (default ok)
  --expect-finding      invert the gate: succeed iff findings were produced
  --seed <N>            random-walk seed (default 20140817)
  --schedules <N>       random-walk schedule count (default 64)
  --max-runs <N>        DFS run cap (default 200000)
  --max-findings <N>    stop after this many findings (default 10)
  --json                machine-readable report on stdout
  -h, --help            this text
";

fn parse_args() -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        match a.as_str() {
            "--json" => o.json = true,
            "--expect-finding" => o.expect_finding = true,
            "--walk" => o.walk = true,
            "--list-scenarios" => o.list = true,
            "--scenario" => o.scenario = Some(take("--scenario")?),
            "--replay" => o.replay = Some(take("--replay")?),
            "--workers" => {
                o.workers = take("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects a positive integer".to_string())?;
                if o.workers == 0 || o.workers > 8 {
                    return Err("--workers must be in 1..=8".to_string());
                }
            }
            "--mutate" => {
                let code = take("--mutate")?;
                o.mutate = Mutation::from_code(&code)
                    .ok_or_else(|| format!("unknown mutation {code:?} (ok | nopc | finv)"))?;
            }
            "--seed" => {
                o.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--schedules" => {
                o.schedules = take("--schedules")?
                    .parse()
                    .map_err(|_| "--schedules expects a positive integer".to_string())?;
            }
            "--max-runs" => {
                o.caps.max_runs = take("--max-runs")?
                    .parse()
                    .map_err(|_| "--max-runs expects a positive integer".to_string())?;
            }
            "--max-findings" => {
                o.caps.max_findings = take("--max-findings")?
                    .parse()
                    .map_err(|_| "--max-findings expects a positive integer".to_string())?;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(o)
}

fn report_json(r: &ExploreReport) -> String {
    let findings: Vec<String> = r.findings.iter().map(finding_json).collect();
    format!(
        "{{\"scenario\":{},\"workers\":{},\"mutation\":{},\"schedules\":{},\"pruned\":{},\
         \"max_depth\":{},\"complete\":{},\"findings\":[{}]}}",
        json_str(&r.scenario),
        r.workers,
        json_str(r.mutation.code()),
        r.schedules,
        r.pruned,
        r.max_depth,
        r.complete,
        findings.join(",")
    )
}

fn finding_json(f: &cm_analyze::Finding) -> String {
    format!(
        "{{\"rule\":{},\"schedule\":{},\"step\":{},\"message\":{}}}",
        json_str(f.rule),
        json_str(&f.path),
        f.line,
        json_str(&f.message)
    )
}

fn print_report(r: &ExploreReport, json: bool) {
    if json {
        return; // aggregated by the caller
    }
    let mode = if r.complete { "exhausted" } else { "sampled" };
    eprintln!(
        "cm-race: {} w{} {}: {} schedules ({} pruned), depth ≤ {}, {} — {} finding(s)",
        r.scenario,
        r.workers,
        r.mutation.code(),
        r.schedules,
        r.pruned,
        r.max_depth,
        mode,
        r.findings.len()
    );
    for f in &r.findings {
        eprint!("{}", cm_analyze::diag::render_text(f));
    }
}

fn run_replay(id_str: &str, opts: &Opts) -> ExitCode {
    let Some(id) = ScheduleId::parse(id_str) else {
        eprintln!("cm-race: malformed schedule id {id_str:?}");
        return ExitCode::from(2);
    };
    let Some(scn) = scenario::find(&id.scenario) else {
        eprintln!("cm-race: unknown scenario {:?} in schedule id", id.scenario);
        return ExitCode::from(2);
    };
    let out = replay(&scn, &id);
    if out.pruned || out.id != id {
        eprintln!(
            "cm-race: schedule id is stale (the yield-point structure changed since it \
             was recorded); re-explore to mint a fresh id"
        );
        return ExitCode::from(2);
    }
    if opts.json {
        let findings: Vec<String> = out.findings.iter().map(finding_json).collect();
        println!(
            "{{\"version\":1,\"mode\":\"replay\",\"schedule\":{},\"steps\":{},\"findings\":[{}]}}",
            json_str(&out.id.to_string()),
            out.trace.events.len(),
            findings.join(",")
        );
    } else {
        eprintln!(
            "cm-race: replayed {} ({} steps) — {} finding(s)",
            out.id,
            out.trace.events.len(),
            out.findings.len()
        );
        for f in &out.findings {
            eprint!("{}", cm_analyze::diag::render_text(f));
        }
    }
    gate(!out.findings.is_empty(), opts.expect_finding)
}

/// Map "did we find anything" through the (possibly inverted) gate.
fn gate(found: bool, expect_finding: bool) -> ExitCode {
    if found == expect_finding {
        ExitCode::SUCCESS
    } else if expect_finding {
        eprintln!("cm-race: expected at least one finding, none produced");
        ExitCode::FAILURE
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cm-race: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.list {
        for s in scenario::all() {
            println!(
                "{:10} {}{}",
                s.name,
                s.about,
                if s.expect_clean {
                    ""
                } else {
                    "  [expects findings]"
                }
            );
        }
        return ExitCode::SUCCESS;
    }
    if let Some(id) = &opts.replay {
        return run_replay(id, &opts);
    }

    let scns: Vec<Scenario> = match &opts.scenario {
        Some(name) => match scenario::find(name) {
            Some(s) => vec![s],
            None => {
                eprintln!("cm-race: unknown scenario {name:?} (see --list-scenarios)");
                return ExitCode::from(2);
            }
        },
        None => scenario::all()
            .into_iter()
            .filter(|s| s.expect_clean)
            .collect(),
    };

    let start = Instant::now();
    let mut reports = Vec::new();
    for scn in &scns {
        let r = if opts.walk {
            random_walks(
                scn,
                opts.workers,
                opts.mutate,
                opts.seed,
                opts.schedules,
                &opts.caps,
            )
        } else {
            explore_exhaustive(scn, opts.workers, opts.mutate, &opts.caps)
        };
        print_report(&r, opts.json);
        reports.push(r);
    }
    let elapsed = start.elapsed().as_millis();
    let found = reports.iter().any(|r| !r.findings.is_empty());
    let all_complete = reports.iter().all(|r| r.complete);
    if opts.json {
        let body: Vec<String> = reports.iter().map(report_json).collect();
        println!(
            "{{\"version\":1,\"mode\":{},\"workers\":{},\"mutation\":{},\"elapsed_ms\":{},\
             \"complete\":{},\"reports\":[{}]}}",
            json_str(if opts.walk { "walk" } else { "exhaustive" }),
            opts.workers,
            json_str(opts.mutate.code()),
            elapsed,
            all_complete,
            body.join(",")
        );
    } else {
        eprintln!(
            "cm-race: {} scenario(s), {} schedule(s) total in {elapsed} ms",
            reports.len(),
            reports.iter().map(|r| r.schedules).sum::<usize>()
        );
    }
    gate(found, opts.expect_finding)
}
