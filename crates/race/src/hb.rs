//! Vector-clock happens-before analysis over a recorded model trace.
//!
//! The controller serializes model threads, so a run's trace is a total
//! order — but a *data race* is a property of the synchronization, not of
//! the order: two conflicting data accesses race iff neither happens
//! before the other under the trace's lock/condvar/atomic edges. This
//! module rebuilds that partial order with vector clocks and flags:
//!
//! * **data races** — conflicting accesses to the same object (guarded
//!   data or an [`cm_core::sync::model::UnsyncCell`]) with no
//!   happens-before edge between them, and
//! * **lock-order inversions** — cycles in the lock acquisition graph
//!   (lock `b` taken while `a` is held *and*, somewhere else, `a` while
//!   `b` is held), which deadlock only under the right interleaving; the
//!   graph check catches them on every interleaving.
//!
//! Happens-before edges, all sound for the engine's SeqCst-only usage
//! (`cm-analyze`'s `atomic-ordering` rule keeps it that way):
//! release→acquire per mutex, broadcast→wake per condvar notification,
//! and every atomic op joins (and then updates) its object's clock —
//! conservative sequential consistency.

use cm_core::sync::model::{data_obj_mutex, ObjId, Op, Tid, TraceEvent};
use std::collections::BTreeMap;

/// Two conflicting, happens-before-unordered accesses to one object.
#[derive(Debug, Clone, Copy)]
pub struct Race {
    /// The object both accesses touch.
    pub obj: ObjId,
    /// The earlier access in trace order.
    pub first: TraceEvent,
    /// The later access (the one the finding anchors to).
    pub second: TraceEvent,
}

/// A cycle in the lock acquisition graph, listed in acquisition order
/// (the last element is acquired while the first is held).
#[derive(Debug, Clone)]
pub struct LockCycle {
    /// The locks forming the cycle.
    pub locks: Vec<ObjId>,
}

/// Everything the happens-before pass found in one trace.
#[derive(Debug, Default)]
pub struct HbAnalysis {
    /// Unsynchronized conflicting accesses (first race per object).
    pub races: Vec<Race>,
    /// Lock acquisition cycles (each node set reported once).
    pub cycles: Vec<LockCycle>,
}

/// Human-readable name for a model object id in findings.
pub fn describe_obj(obj: ObjId) -> String {
    match data_obj_mutex(obj) {
        Some(m) => format!("data guarded by mutex #{m}"),
        None => format!("object #{obj}"),
    }
}

type Clock = Vec<u64>;

fn join(into: &mut Clock, other: &Clock) {
    for (a, b) in into.iter_mut().zip(other) {
        *a = (*a).max(*b);
    }
}

#[derive(Debug, Clone, Copy)]
struct Access {
    tid: Tid,
    /// The accessor's own clock component at the access.
    at: u64,
    ev: TraceEvent,
}

#[derive(Debug)]
struct ObjState {
    last_write: Option<Access>,
    /// Last read per thread.
    reads: Vec<Option<Access>>,
    /// One race report per object keeps findings readable.
    reported: bool,
}

/// Run the happens-before pass over a trace with `nthreads` threads.
pub fn analyze(events: &[TraceEvent], nthreads: usize) -> HbAnalysis {
    let mut clocks: Vec<Clock> = vec![vec![0; nthreads]; nthreads];
    let mut release: BTreeMap<ObjId, Clock> = BTreeMap::new();
    let mut atomic: BTreeMap<ObjId, Clock> = BTreeMap::new();
    let mut notify: BTreeMap<u64, Clock> = BTreeMap::new();
    let mut objects: BTreeMap<ObjId, ObjState> = BTreeMap::new();
    let mut held: Vec<Vec<ObjId>> = vec![Vec::new(); nthreads];
    let mut edges: BTreeMap<ObjId, Vec<ObjId>> = BTreeMap::new();
    let mut races = Vec::new();

    for &ev in events {
        let t = ev.tid;
        debug_assert!(t < nthreads, "trace tid out of range");
        // Incoming edges join the thread's clock *before* its own tick.
        match ev.op {
            Op::Lock(m) => {
                if let Some(r) = release.get(&m) {
                    join(&mut clocks[t], &r.clone());
                }
            }
            Op::CvWake { notify_step, .. } => {
                if let Some(n) = notify.get(&notify_step) {
                    join(&mut clocks[t], &n.clone());
                }
            }
            Op::Load(a) | Op::Store(a) | Op::Rmw(a) => {
                if let Some(c) = atomic.get(&a) {
                    join(&mut clocks[t], &c.clone());
                }
            }
            _ => {}
        }
        clocks[t][t] += 1;
        let now = clocks[t][t];
        // Outgoing edges snapshot the clock *after* the tick.
        match ev.op {
            Op::Lock(m) => {
                for &h in &held[t] {
                    let out = edges.entry(h).or_default();
                    if !out.contains(&m) {
                        out.push(m);
                    }
                }
                held[t].push(m);
            }
            Op::Unlock(m) => {
                held[t].retain(|&x| x != m);
                release.insert(m, clocks[t].clone());
            }
            Op::CvWait { lock, .. } => {
                held[t].retain(|&x| x != lock);
                release.insert(lock, clocks[t].clone());
            }
            Op::CvNotifyAll(_) => {
                notify.insert(ev.step, clocks[t].clone());
            }
            Op::Load(a) | Op::Store(a) | Op::Rmw(a) => {
                atomic.insert(a, clocks[t].clone());
            }
            Op::Read(d) | Op::Write(d) => {
                let is_write = matches!(ev.op, Op::Write(_));
                let st = objects.entry(d).or_insert_with(|| ObjState {
                    last_write: None,
                    reads: vec![None; nthreads],
                    reported: false,
                });
                if !st.reported {
                    let mut conflict: Option<Access> = None;
                    if let Some(w) = st.last_write {
                        if w.tid != t && clocks[t][w.tid] < w.at {
                            conflict = Some(w);
                        }
                    }
                    if is_write && conflict.is_none() {
                        for r in st.reads.iter().flatten() {
                            if r.tid != t && clocks[t][r.tid] < r.at {
                                conflict = Some(*r);
                                break;
                            }
                        }
                    }
                    if let Some(prev) = conflict {
                        st.reported = true;
                        races.push(Race {
                            obj: d,
                            first: prev.ev,
                            second: ev,
                        });
                    }
                }
                let access = Access {
                    tid: t,
                    at: now,
                    ev,
                };
                if is_write {
                    st.last_write = Some(access);
                } else {
                    st.reads[t] = Some(access);
                }
            }
            Op::Start | Op::Exit | Op::CvWake { .. } => {}
        }
    }

    HbAnalysis {
        races,
        cycles: find_cycles(&edges),
    }
}

/// All distinct cycles reachable in the acquisition graph, deduplicated
/// by node set. The graph has one node per lock ever nested, so this
/// stays tiny.
fn find_cycles(edges: &BTreeMap<ObjId, Vec<ObjId>>) -> Vec<LockCycle> {
    let mut cycles: Vec<LockCycle> = Vec::new();
    let mut seen_sets: Vec<Vec<ObjId>> = Vec::new();
    for &start in edges.keys() {
        // DFS from each node, tracking the path; a path hit = a cycle.
        let successors = |n: ObjId| edges.get(&n).map(|v| v.as_slice()).unwrap_or(&[]).iter();
        let mut path: Vec<ObjId> = vec![start];
        let mut stack: Vec<std::slice::Iter<'_, ObjId>> = vec![successors(start)];
        while let Some(it) = stack.last_mut() {
            match it.next() {
                None => {
                    path.pop();
                    stack.pop();
                }
                Some(&next) => {
                    if let Some(pos) = path.iter().position(|&n| n == next) {
                        let mut set: Vec<ObjId> = path[pos..].to_vec();
                        set.sort_unstable();
                        if !seen_sets.contains(&set) {
                            seen_sets.push(set);
                            cycles.push(LockCycle {
                                locks: path[pos..].to_vec(),
                            });
                        }
                    } else if path.len() < 16 {
                        path.push(next);
                        stack.push(successors(next));
                    }
                }
            }
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(step: u64, tid: Tid, op: Op) -> TraceEvent {
        TraceEvent { step, tid, op }
    }

    #[test]
    fn guarded_accesses_do_not_race() {
        // t0: lock, write, unlock; t1: lock, write, unlock — ordered by
        // the release→acquire edge.
        let m = 1;
        let d = cm_core::sync::model::data_obj(m);
        let trace = vec![
            ev(0, 0, Op::Lock(m)),
            ev(1, 0, Op::Write(d)),
            ev(2, 0, Op::Unlock(m)),
            ev(3, 1, Op::Lock(m)),
            ev(4, 1, Op::Write(d)),
            ev(5, 1, Op::Unlock(m)),
        ];
        let a = analyze(&trace, 2);
        assert!(a.races.is_empty(), "{:?}", a.races);
        assert!(a.cycles.is_empty());
    }

    #[test]
    fn unguarded_conflicting_accesses_race() {
        let trace = vec![ev(0, 0, Op::Write(9)), ev(1, 1, Op::Read(9))];
        let a = analyze(&trace, 2);
        assert_eq!(a.races.len(), 1);
        assert_eq!(a.races[0].obj, 9);
    }

    #[test]
    fn atomics_order_subsequent_accesses() {
        // t0 writes d then stores flag; t1 loads flag then reads d: the
        // conservative-SC atomic edge orders the accesses.
        let trace = vec![
            ev(0, 0, Op::Write(9)),
            ev(1, 0, Op::Store(2)),
            ev(2, 1, Op::Load(2)),
            ev(3, 1, Op::Read(9)),
        ];
        let a = analyze(&trace, 2);
        assert!(a.races.is_empty(), "{:?}", a.races);
    }

    #[test]
    fn notify_wake_edge_orders_waiter() {
        let m = 1;
        let cv = 2;
        let d = cm_core::sync::model::data_obj(m);
        let trace = vec![
            ev(0, 0, Op::Lock(m)),
            ev(1, 0, Op::CvWait { cv, lock: m }),
            ev(2, 1, Op::Lock(m)),
            ev(3, 1, Op::Write(d)),
            ev(4, 1, Op::Unlock(m)),
            ev(5, 1, Op::CvNotifyAll(cv)),
            ev(6, 0, Op::CvWake { cv, notify_step: 5 }),
            ev(7, 0, Op::Lock(m)),
            ev(8, 0, Op::Read(d)),
            ev(9, 0, Op::Unlock(m)),
        ];
        let a = analyze(&trace, 2);
        assert!(a.races.is_empty(), "{:?}", a.races);
    }

    #[test]
    fn opposite_nesting_is_a_cycle_even_without_deadlocking() {
        let trace = vec![
            ev(0, 0, Op::Lock(1)),
            ev(1, 0, Op::Lock(2)),
            ev(2, 0, Op::Unlock(2)),
            ev(3, 0, Op::Unlock(1)),
            ev(4, 1, Op::Lock(2)),
            ev(5, 1, Op::Lock(1)),
            ev(6, 1, Op::Unlock(1)),
            ev(7, 1, Op::Unlock(2)),
        ];
        let a = analyze(&trace, 2);
        assert_eq!(a.cycles.len(), 1);
        let mut set = a.cycles[0].locks.clone();
        set.sort_unstable();
        assert_eq!(set, vec![1, 2]);
    }

    #[test]
    fn object_descriptions_distinguish_guarded_data() {
        let m = 5;
        assert!(describe_obj(cm_core::sync::model::data_obj(m)).contains("mutex #5"));
        assert!(describe_obj(7).contains("object #7"));
    }
}
