//! Pinned schedule regressions.
//!
//! Each constant below is a schedule id that exposed a real failure when
//! it was first explored. Pinning them here turns one-in-a-thousand
//! interleavings into ordinary named tier-1 tests: the mutated replay
//! must keep reproducing the failure (so the checks cannot silently rot),
//! and the same picks against the unmutated engine must stay clean (so
//! the failure is the mutation's fault, not the schedule's).
//!
//! If the sync shim gains or loses yield points these ids go stale —
//! replay then reports a prune/divergence rather than a wrong verdict,
//! and the fix is to re-explore (`cm-race --scenario samepod2 --workers 2
//! --mutate nopc`) and paste the fresh ids.

use cm_race::explore::replay;
use cm_race::scenario;
use cm_race::schedule::{Mutation, ScheduleId};

/// Both workers speculate from the empty snapshot; worker 1's commit
/// lands while worker 0 waits for its turn. With pod-conflict validation
/// skipped, worker 0 commits its stale same-server placement: the delta
/// log double-books server 5 and the shard replica replay panics with
/// `InsufficientSlots` — caught as `txn-discipline`.
const SAMEPOD2_STALE_COMMIT: &str = "r1.samepod2.w2.nopc.000000000111000";

/// A later interleaving of the same conflict: the double-booking
/// surfaces on the third arrival instead of the second.
const SAMEPOD2_STALE_COMMIT_LATE: &str = "r1.samepod2.w2.nopc.0000000001111000";

fn replay_id(id_str: &str) -> (ScheduleId, Vec<cm_analyze::Finding>) {
    let id = ScheduleId::parse(id_str).expect("pinned id parses");
    let scn = scenario::find(&id.scenario).expect("pinned scenario exists");
    let out = replay(&scn, &id);
    assert!(
        !out.pruned && out.id == id,
        "pinned id {id_str} is stale — the yield-point structure changed; \
         re-explore and update the pinned ids"
    );
    (id, out.findings)
}

fn assert_reproduces_and_heals(id_str: &str) {
    let (id, findings) = replay_id(id_str);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == cm_analyze::rules::TXN_DISCIPLINE),
        "{id_str}: mutated replay no longer reproduces the txn-discipline \
         failure: {findings:#?}"
    );
    // The identical picks with validation enabled must be clean — the
    // defect is the skipped check, not the interleaving.
    let healthy = ScheduleId {
        mutation: Mutation::None,
        ..id
    };
    let scn = scenario::find(&healthy.scenario).expect("scenario");
    let out = replay(&scn, &healthy);
    assert!(
        out.pruned || out.findings.is_empty(),
        "{id_str}: unmutated engine fails on the pinned picks: {:#?}",
        out.findings
    );
}

#[test]
fn samepod2_stale_commit_double_books_a_server() {
    assert_reproduces_and_heals(SAMEPOD2_STALE_COMMIT);
}

#[test]
fn samepod2_stale_commit_on_third_arrival() {
    assert_reproduces_and_heals(SAMEPOD2_STALE_COMMIT_LATE);
}

/// The `finv` coverage knob forces the rollback + at-turn recompute path
/// on every arrival; it is not a bug, so any `finv` schedule must stay
/// clean. First-enabled picks (all zeros) reach the deepest recompute
/// chain.
#[test]
fn forced_invalidation_keeps_serial_equivalence() {
    let id = ScheduleId {
        scenario: "churn".to_string(),
        workers: 2,
        mutation: Mutation::ForceInvalidate,
        picks: Vec::new(),
    };
    let scn = scenario::find("churn").expect("scenario");
    // Empty picks + replay's pick-0 fallback = the first-enabled schedule,
    // whatever its depth; it must run (not prune) and judge clean.
    let out = replay(&scn, &id);
    assert!(!out.pruned, "first-enabled schedule cannot diverge");
    assert!(out.findings.is_empty(), "{:#?}", out.findings);
}
