//! Oktopus virtual-cluster (hose) baseline.
//!
//! The paper evaluated VC — the plain hose model — and found it "always
//! performed worse than VOC and TAG", so its results are omitted from the
//! tables; the implementation is kept for completeness and for the
//! model-comparison property tests.

use cm_core::model::{Tag, VocModel};
use cm_core::placement::{Deployed, PlacementTrace, Placer, RejectReason};
use cm_core::reserve::TenantState;
use cm_topology::Topology;
use std::sync::Arc;

use crate::OvocPlacer;

/// Hose-model placement: the tenant is modeled as a generalized hose
/// ([`VocModel::vc_from_tag`]: every guarantee, intra- and inter-tier,
/// aggregated into one per-VM hose through a single virtual switch) and
/// placed with the Oktopus greedy.
#[derive(Debug, Clone, Default)]
pub struct OktopusVcPlacer {
    inner: OvocPlacer,
}

impl OktopusVcPlacer {
    /// Create a VC placer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploy a TAG tenant priced as a generalized hose.
    pub fn place_tag(
        &mut self,
        topo: &mut Topology,
        tag: &Tag,
    ) -> Result<TenantState<VocModel>, RejectReason> {
        self.inner.place_voc(topo, VocModel::vc_from_tag(tag))
    }
}

impl Placer for OktopusVcPlacer {
    fn name(&self) -> &'static str {
        "VC"
    }

    fn place(&mut self, topo: &mut Topology, tag: &Tag) -> Result<Deployed, RejectReason> {
        self.place_tag(topo, tag).map(Deployed::from)
    }

    fn place_speculative(
        &mut self,
        topo: &mut Topology,
        tag: &Arc<Tag>,
        trace: &mut PlacementTrace,
    ) -> Result<Deployed, RejectReason> {
        trace.reset();
        self.inner
            .place_voc_traced(topo, VocModel::vc_from_tag(tag), Some(trace))
            .map(Deployed::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::model::TagBuilder;
    use cm_topology::{mbps, TreeSpec};

    #[test]
    fn vc_places_but_reserves_at_least_voc() {
        let mut topo = Topology::build(&TreeSpec::small(
            2,
            2,
            4,
            4,
            [mbps(1000.0), mbps(2000.0), mbps(4000.0)],
        ));
        let mut b = TagBuilder::new("app");
        let u = b.tier("u", 6);
        let v = b.tier("v", 6);
        b.sym_edge(u, v, mbps(20.0)).unwrap();
        b.self_loop(v, mbps(30.0)).unwrap();
        let tag = b.build().unwrap();

        let mut vc = OktopusVcPlacer::new();
        let s1 = vc.place_tag(&mut topo, &tag).expect("fits");
        let vc_reserved = s1.total_reserved_kbps();
        s1.check_consistency(&topo).unwrap();

        // Price the same placement under the VOC model: VC folds the hose
        // into the core, so VC's cut dominates VOC's on every link.
        let voc = VocModel::from_tag(&tag);
        let mut voc_price = 0u64;
        for (_, counts) in s1.placement(&topo) {
            let (o, i) = cm_core::CutModel::cut_kbps(&voc, &counts);
            voc_price += o + i;
        }
        assert!(vc_reserved >= voc_price);
    }

    #[test]
    fn vc_rejects_oversized() {
        let mut topo = Topology::build(&TreeSpec::small(
            1,
            1,
            2,
            2,
            [mbps(100.0), mbps(100.0), mbps(100.0)],
        ));
        let mut b = TagBuilder::new("big");
        let u = b.tier("u", 5);
        b.self_loop(u, 1).unwrap();
        let tag = b.build().unwrap();
        let mut vc = OktopusVcPlacer::new();
        assert_eq!(
            vc.place_tag(&mut topo, &tag).err(),
            Some(RejectReason::InsufficientSlots)
        );
    }
}
