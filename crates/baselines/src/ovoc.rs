//! Improved Oktopus VOC placement ("OVOC" in the paper's evaluation).

use cm_core::cut::CutModel;
use cm_core::model::{Tag, VocModel};
use cm_core::placement::{
    search_and_place_traced, Deployed, PlacementTrace, Placer, RejectReason, SearchStrategy,
};
use cm_core::reserve::TenantState;
use cm_core::txn::ReservationTxn;
use cm_topology::{NodeId, Topology};
use std::sync::Arc;

/// Oktopus-style placer for (generalized) VOC models.
///
/// For each tenant it finds the lowest subtree that can hold the whole VOC
/// (localizing inter-cluster traffic — improvement #2 of §5), then places
/// clusters one at a time, largest bandwidth first, each with the classic
/// Oktopus greedy: fill the fullest children first so a cluster occupies as
/// few subtrees as possible. Bandwidth is priced with the exact VOC cut
/// formula (footnote 7) through the shared reservation engine; any
/// reservation failure rolls back the attempt and retries one level higher
/// (improvement #1), both via the shared `search_and_place` loop.
#[derive(Debug, Clone, Default)]
pub struct OvocPlacer {
    _private: (),
}

impl OvocPlacer {
    /// Create an OVOC placer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploy a TAG tenant by modeling it as a generalized VOC
    /// ([`VocModel::from_tag`]) and placing that.
    pub fn place_tag(
        &mut self,
        topo: &mut Topology,
        tag: &Tag,
    ) -> Result<TenantState<VocModel>, RejectReason> {
        self.place_voc(topo, VocModel::from_tag(tag))
    }

    /// Deploy a VOC tenant.
    pub fn place_voc(
        &mut self,
        topo: &mut Topology,
        model: VocModel,
    ) -> Result<TenantState<VocModel>, RejectReason> {
        self.place_voc_traced(topo, model, None)
    }

    pub(crate) fn place_voc_traced(
        &mut self,
        topo: &mut Topology,
        model: VocModel,
        trace: Option<&mut PlacementTrace>,
    ) -> Result<TenantState<VocModel>, RejectReason> {
        let total_vms = model.total_vms();
        let ext = model.external_demand_kbps();

        // Clusters ordered by total bandwidth intensity, heaviest first
        // (Oktopus allocates the most constrained cluster first).
        let mut order: Vec<usize> = (0..model.num_tiers()).collect();
        let weight = |c: usize| {
            let cl = &model.clusters()[c];
            cl.size as u64 * (cl.hose_kbps + cl.core_snd_kbps + cl.core_rcv_kbps)
        };
        order.sort_by_key(|&c| std::cmp::Reverse(weight(c)));

        let mut state = TenantState::new(model);
        // Reusable probe buffer for the exact-cut feasibility check below —
        // the inner loop stays allocation-free at steady state, like the
        // CloudMirror placer's scratch pools.
        let mut counts_buf: Vec<u32> = Vec::new();
        search_and_place_traced(
            topo,
            &mut state,
            total_vms,
            ext,
            0,
            SearchStrategy::default(),
            trace,
            |txn, st| {
                for &c in &order {
                    let size = txn.state().model().tier_size(c);
                    if alloc_cluster(txn, c, size, st, &mut counts_buf) < size {
                        return false;
                    }
                }
                true
            },
        )?;
        Ok(state)
    }
}

impl Placer for OvocPlacer {
    fn name(&self) -> &'static str {
        "OVOC"
    }

    fn place(&mut self, topo: &mut Topology, tag: &Tag) -> Result<Deployed, RejectReason> {
        self.place_tag(topo, tag).map(Deployed::from)
    }

    fn place_speculative(
        &mut self,
        topo: &mut Topology,
        tag: &Arc<Tag>,
        trace: &mut PlacementTrace,
    ) -> Result<Deployed, RejectReason> {
        trace.reset();
        self.place_voc_traced(topo, VocModel::from_tag(tag), Some(trace))
            .map(Deployed::from)
    }
}

/// Place up to `remaining` VMs of cluster `c` under `node`, Oktopus-style:
/// children with the most free slots first, each taking as many VMs as its
/// slots and uplink allow. Returns the number placed; when `node`'s own
/// uplink cannot hold the resulting cut, everything staged under `node` by
/// this call is rolled back and 0 is returned, so the caller tries its
/// remaining children.
fn alloc_cluster(
    txn: &mut ReservationTxn<'_, VocModel>,
    c: usize,
    remaining: u32,
    node: NodeId,
    counts_buf: &mut Vec<u32>,
) -> u32 {
    if remaining == 0 {
        return 0;
    }
    let sp = txn.savepoint();
    let placed = if txn.topo().is_server(node) {
        let k = max_feasible_on_server(txn.topo(), txn.state(), c, remaining, node, counts_buf);
        if k == 0 {
            return 0;
        }
        txn.place(node, c, k).expect("slot availability checked");
        k
    } else {
        let mut children: Vec<NodeId> = txn.topo().children(node).collect();
        // Fullest-feasible-first: prefer children that already hold VMs of
        // this cluster (locality), then most free slots.
        children.sort_by_key(|&ch| {
            (
                std::cmp::Reverse(txn.state().count_of(ch, c)),
                std::cmp::Reverse(txn.topo().subtree_slots_free(ch)),
                ch,
            )
        });
        let mut placed = 0;
        for ch in children {
            if placed == remaining {
                break;
            }
            placed += alloc_cluster(txn, c, remaining - placed, ch, counts_buf);
        }
        placed
    };
    if placed > 0 && txn.sync_uplink(node).is_err() {
        // The whole subtree's staging (including grandchildren syncs) is
        // unwound; the caller moves on to its remaining children. The seed
        // instead left internal nodes under-reserved on the assumption the
        // caller's own sync would also fail — which does not always hold
        // (an aggregation uplink can fit a cut a ToR uplink cannot), and
        // admitted tenants with unreserved guarantees.
        txn.rollback_to(sp);
        return 0;
    }
    placed
}

/// The largest VM count of cluster `c` that fits on `server`, bounded by
/// free slots and by a conservative linear estimate of the uplink cost
/// (hose + per-VM core guarantees). The exact (cheaper) VOC cut is applied
/// by the reservation sync afterwards.
fn max_feasible_on_server(
    topo: &Topology,
    state: &TenantState<VocModel>,
    c: usize,
    remaining: u32,
    server: NodeId,
    counts_buf: &mut Vec<u32>,
) -> u32 {
    let free = topo.slots_free(server);
    let mut k = remaining.min(free);
    if k == 0 {
        return 0;
    }
    let cl = &state.model().clusters()[c];
    let (au, ad) = topo.uplink_avail(server).unwrap_or((u64::MAX, u64::MAX));
    let per_vm_out = cl.hose_kbps + cl.core_snd_kbps;
    let per_vm_in = cl.hose_kbps + cl.core_rcv_kbps;
    if per_vm_out > 0 {
        k = k.min((au / per_vm_out.max(1)).min(u32::MAX as u64) as u32);
    }
    if per_vm_in > 0 {
        k = k.min((ad / per_vm_in.max(1)).min(u32::MAX as u64) as u32);
    }
    // The linear bound can forbid what the exact hose formula allows (e.g.
    // a full cluster on one server costs zero): if the whole remainder fits
    // by slots, test it against the exact cut delta.
    if k < remaining && remaining <= free {
        state.fill_inside_counts(server, counts_buf);
        counts_buf[c] += remaining;
        let (want_out, want_in) = state.model().cut_kbps(counts_buf);
        let (have_out, have_in) = state.reserved_on(server);
        if want_out.saturating_sub(have_out) <= au && want_in.saturating_sub(have_in) <= ad {
            return remaining;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::model::TagBuilder;
    use cm_topology::{mbps, TreeSpec};

    fn topo_small() -> Topology {
        Topology::build(&TreeSpec::small(
            2,
            2,
            4,
            4,
            [mbps(1000.0), mbps(2000.0), mbps(4000.0)],
        ))
    }

    fn storm_tag(s: u32, b: u64) -> Tag {
        let mut t = TagBuilder::new("storm");
        let spout1 = t.tier("spout1", s);
        let bolt1 = t.tier("bolt1", s);
        let bolt2 = t.tier("bolt2", s);
        let bolt3 = t.tier("bolt3", s);
        t.edge(spout1, bolt1, b, b).unwrap();
        t.edge(spout1, bolt2, b, b).unwrap();
        t.edge(bolt2, bolt3, b, b).unwrap();
        t.build().unwrap()
    }

    #[test]
    fn places_and_releases_cleanly() {
        let mut topo = topo_small();
        let mut placer = OvocPlacer::new();
        let tag = storm_tag(3, mbps(10.0));
        let mut state = placer.place_tag(&mut topo, &tag).expect("fits");
        assert_eq!(state.total_placed(&topo), 12);
        state.check_consistency(&topo).unwrap();
        state.clear(&mut topo);
        for l in 0..topo.num_levels() {
            assert_eq!(topo.reserved_at_level(l), (0, 0));
        }
        topo.check_invariants().unwrap();
    }

    #[test]
    fn clusters_are_localized() {
        // Each 4-VM cluster with a strong hose should land on one server
        // (zero hose bandwidth), as Oktopus intends.
        let mut topo = topo_small();
        let mut placer = OvocPlacer::new();
        let mut b = TagBuilder::new("two-hoses");
        let u = b.tier("u", 4);
        let v = b.tier("v", 4);
        b.self_loop(u, mbps(100.0)).unwrap();
        b.self_loop(v, mbps(100.0)).unwrap();
        let tag = b.build().unwrap();
        let state = placer.place_tag(&mut topo, &tag).unwrap();
        let placement = state.placement(&topo);
        for (_, counts) in &placement {
            // No server mixes partial clusters: each holds a full cluster.
            assert!(counts.iter().all(|&c| c == 0 || c == 4));
        }
        assert_eq!(topo.reserved_at_level(0), (0, 0));
    }

    #[test]
    fn rejects_oversized_tenant() {
        let mut topo = topo_small(); // 64 slots
        let mut placer = OvocPlacer::new();
        let mut b = TagBuilder::new("big");
        let u = b.tier("u", 65);
        b.self_loop(u, 1).unwrap();
        let tag = b.build().unwrap();
        assert_eq!(
            placer.place_tag(&mut topo, &tag).err(),
            Some(RejectReason::InsufficientSlots)
        );
        topo.check_invariants().unwrap();
    }

    #[test]
    fn rejects_on_bandwidth_without_leaks() {
        let mut topo = topo_small();
        let mut placer = OvocPlacer::new();
        let mut b = TagBuilder::new("heavy");
        let u = b.tier("u", 20);
        let v = b.tier("v", 20);
        b.sym_edge(u, v, mbps(800.0)).unwrap();
        let tag = b.build().unwrap();
        assert_eq!(
            placer.place_tag(&mut topo, &tag).err(),
            Some(RejectReason::InsufficientBandwidth)
        );
        for l in 0..topo.num_levels() {
            assert_eq!(topo.reserved_at_level(l), (0, 0));
        }
        assert_eq!(topo.subtree_slots_free(topo.root()), 64);
    }

    #[test]
    fn voc_reserves_more_than_tag_for_storm_split() {
        // Deploy the Fig. 3 Storm app with OVOC on a rack that forces a
        // split; the VOC pricing on the cut is 2S·B where TAG would need
        // S·B (tested at the model level in cm-core; here we verify the
        // placer actually pays the VOC price).
        let mut topo = topo_small();
        let mut placer = OvocPlacer::new();
        let tag = storm_tag(8, mbps(5.0)); // 32 VMs: spans ≥ 2 racks
        let state = placer.place_tag(&mut topo, &tag).unwrap();
        state.check_consistency(&topo).unwrap();
        // Aggregate reserved bandwidth must be ≥ what TAG pricing of the
        // same placement would reserve.
        let mut tag_price = 0u64;
        let voc_price: u64 = state.total_reserved_kbps();
        for (server, counts) in state.placement(&topo) {
            let _ = server;
            let (o, i) = cm_core::CutModel::cut_kbps(&tag, &counts);
            tag_price += o + i;
        }
        // (Server-level only, but enough to order the two.)
        assert!(voc_price >= tag_price);
    }
}
