//! SecondNet-style pipe-model placement (§2.2, §5.1).
//!
//! SecondNet (Guo et al., CoNEXT 2010) allocates virtual datacenters
//! specified as VM-to-VM pipes, matching VMs to servers cluster by cluster
//! with a min-cost bipartite matching (O(N³)). We reproduce its essential
//! behaviour with a sequential greedy: VMs are placed in decreasing demand
//! order; each VM descends the tree from the chosen subtree, at every level
//! entering the child that holds the most bandwidth towards its
//! already-placed peers (weighted locality — the matching's objective),
//! breaking ties towards free capacity. Reservations use the exact pipe cut
//! through the shared engine.
//!
//! As in the paper, pipe placement is *fundamentally* more
//! bandwidth-efficient than TAG (idealized pipes reserve less on every cut)
//! but dramatically slower and less flexible — the runtime benches
//! regenerate that comparison.

use cm_core::cut::CutModel;
use cm_core::model::{PipeModel, Tag};
use cm_core::placement::{search_and_place, Deployed, Placer, RejectReason};
use cm_core::reserve::TenantState;
use cm_core::txn::ReservationTxn;
use cm_topology::{NodeId, Topology};
use std::collections::HashSet;

/// Greedy pipe-model placer in the spirit of SecondNet.
#[derive(Debug, Clone, Default)]
pub struct SecondNetPlacer {
    _private: (),
}

impl SecondNetPlacer {
    /// Create a SecondNet-style placer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploy a TAG tenant as idealized pipes
    /// ([`PipeModel::from_tag_idealized`]).
    pub fn place_tag(
        &mut self,
        topo: &mut Topology,
        tag: &Tag,
    ) -> Result<TenantState<PipeModel>, RejectReason> {
        self.place_pipes(topo, PipeModel::from_tag_idealized(tag))
    }

    /// Deploy a pipe-model tenant.
    pub fn place_pipes(
        &mut self,
        topo: &mut Topology,
        model: PipeModel,
    ) -> Result<TenantState<PipeModel>, RejectReason> {
        let n = model.num_vms();
        let total_vms = n as u64;
        let ext = model.external_demand_kbps();

        // Decreasing total-demand order: heavy VMs get first pick.
        let mut order: Vec<u32> = (0..n).collect();
        order.sort_by_key(|&v| {
            let (s, r) = model.vm_demand(v);
            std::cmp::Reverse(s + r)
        });

        let mut state = TenantState::new(model);
        search_and_place(topo, &mut state, total_vms, ext, 0, |txn, st| {
            self.try_place_under(txn, &order, st)
        })?;
        Ok(state)
    }

    /// Assign every VM under `st`; returns false when some VM cannot be
    /// placed (slots or server-uplink bandwidth). Switch-level uplinks are
    /// synced once at the end (deferred, see module docs).
    fn try_place_under(
        &self,
        txn: &mut ReservationTxn<'_, PipeModel>,
        order: &[u32],
        st: NodeId,
    ) -> bool {
        let n = txn.state().model().num_vms() as usize;
        let mut vm_server: Vec<Option<NodeId>> = vec![None; n];
        for &vm in order {
            let mut banned: HashSet<NodeId> = HashSet::new();
            let mut placed = false;
            // A few descent attempts, banning servers whose NIC rejected us.
            for _ in 0..8 {
                let Some(server) =
                    self.descend(txn.topo(), txn.state(), &vm_server, vm, st, &banned)
                else {
                    break;
                };
                let sp = txn.savepoint();
                txn.place(server, vm as usize, 1)
                    .expect("descent only returns servers with a free slot");
                if txn.sync_uplink(server).is_ok() {
                    vm_server[vm as usize] = Some(server);
                    placed = true;
                    break;
                }
                txn.rollback_to(sp);
                banned.insert(server);
            }
            if !placed {
                return false;
            }
        }
        // Deferred switch-level reservations within the subtree.
        self.sync_switches_under(txn, st).is_ok()
    }

    /// Walk from `st` down to a server, choosing at each level the child
    /// with the largest pipe bandwidth towards already-placed peers
    /// (ties: most free slots).
    fn descend(
        &self,
        topo: &Topology,
        state: &TenantState<PipeModel>,
        vm_server: &[Option<NodeId>],
        vm: u32,
        st: NodeId,
        banned: &HashSet<NodeId>,
    ) -> Option<NodeId> {
        // Peers and their weights.
        let model = state.model();
        let mut peers: Vec<(NodeId, u64)> = Vec::new();
        for &(dst, bw) in model.pipes_from(vm) {
            if let Some(s) = vm_server[dst as usize] {
                peers.push((s, bw));
            }
        }
        for &(src, bw) in model.pipes_to(vm) {
            if let Some(s) = vm_server[src as usize] {
                peers.push((s, bw));
            }
        }
        let mut node = st;
        loop {
            if topo.is_server(node) {
                return (topo.slots_free(node) > 0 && !banned.contains(&node)).then_some(node);
            }
            let mut best: Option<(u64, u64, NodeId)> = None; // (affinity, free, child)
            for child in topo.children(node) {
                let free = topo.subtree_slots_free(child);
                if free == 0 {
                    continue;
                }
                if topo.is_server(child) && banned.contains(&child) {
                    continue;
                }
                // Affinity: bandwidth to peers whose server lies under child.
                let affinity: u64 = peers
                    .iter()
                    .filter(|(s, _)| topo.is_ancestor(child, *s))
                    .map(|&(_, bw)| bw)
                    .sum();
                let cand = (affinity, free, child);
                let better = match best {
                    None => true,
                    Some((ba, bf, _)) => affinity > ba || (affinity == ba && free > bf),
                };
                if better {
                    best = Some(cand);
                }
            }
            node = best?.2;
        }
    }

    /// Sync the uplinks of every switch strictly below `st` (and `st`
    /// itself) that hosts part of the tenant.
    fn sync_switches_under(
        &self,
        txn: &mut ReservationTxn<'_, PipeModel>,
        st: NodeId,
    ) -> Result<(), cm_topology::TopologyError> {
        // Gather touched switches bottom-up from the placed servers.
        let mut touched: Vec<NodeId> = Vec::new();
        for (server, _) in txn.state().placement(txn.topo()) {
            for a in txn.topo().path_to_root(server) {
                if a != server && !touched.contains(&a) {
                    touched.push(a);
                }
                if a == st {
                    break;
                }
            }
        }
        touched.sort_by_key(|&x| (txn.topo().level(x), x));
        for x in touched {
            txn.sync_uplink(x)?;
        }
        Ok(())
    }
}

impl Placer for SecondNetPlacer {
    fn name(&self) -> &'static str {
        "SecondNet"
    }

    fn place(&mut self, topo: &mut Topology, tag: &Tag) -> Result<Deployed, RejectReason> {
        self.place_tag(topo, tag).map(Deployed::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::model::TagBuilder;
    use cm_topology::{mbps, TreeSpec};

    fn topo_small() -> Topology {
        Topology::build(&TreeSpec::small(
            2,
            2,
            4,
            4,
            [mbps(1000.0), mbps(2000.0), mbps(4000.0)],
        ))
    }

    fn pair_tag(nu: u32, nv: u32, bw: u64) -> Tag {
        let mut b = TagBuilder::new("pair");
        let u = b.tier("u", nu);
        let v = b.tier("v", nv);
        b.sym_edge(u, v, bw).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn places_pipes_and_releases() {
        let mut topo = topo_small();
        let mut placer = SecondNetPlacer::new();
        let tag = pair_tag(4, 4, mbps(50.0));
        let mut state = placer.place_tag(&mut topo, &tag).expect("fits");
        assert_eq!(state.total_placed(&topo), 8);
        state.check_consistency(&topo).unwrap();
        state.clear(&mut topo);
        for l in 0..topo.num_levels() {
            assert_eq!(topo.reserved_at_level(l), (0, 0));
        }
    }

    #[test]
    fn locality_pulls_communicating_vms_together() {
        // 2+2 VMs with strong mutual pipes should all land under one rack
        // (likely one/two servers), leaving ToR uplinks clean.
        let mut topo = topo_small();
        let mut placer = SecondNetPlacer::new();
        let tag = pair_tag(2, 2, mbps(100.0));
        let state = placer.place_tag(&mut topo, &tag).unwrap();
        let (tor_up, tor_dn) = topo.reserved_at_level(1);
        let _ = state;
        assert_eq!(
            (tor_up, tor_dn),
            (0, 0),
            "pipes should be rack-local under affinity descent"
        );
    }

    #[test]
    fn pipe_reservation_not_above_tag_price() {
        // Idealized pipes are at most as expensive as TAG on every cut;
        // verify at the deployment level.
        let mut topo = topo_small();
        let mut placer = SecondNetPlacer::new();
        let tag = pair_tag(6, 6, mbps(30.0));
        let state = placer.place_tag(&mut topo, &tag).unwrap();
        state.check_consistency(&topo).unwrap();
        // Recompute what TAG would reserve for the same server counts.
        // Pipe tiers are single VMs; we must aggregate them back to TAG
        // tiers: VMs 0..6 are tier u, 6..12 tier v (from_tag ordering).
        let mut tag_total = 0u64;
        let mut pipe_total = 0u64;
        for (server, counts) in state.placement(&topo) {
            let mut tag_counts = vec![0u32; 2];
            for (vm, &c) in counts.iter().enumerate() {
                if c > 0 {
                    tag_counts[if vm < 6 { 0 } else { 1 }] += c;
                }
            }
            let (to, ti) = CutModel::cut_kbps(&tag, &tag_counts);
            tag_total += to + ti;
            let (po, pi) = state.required_cut(server);
            pipe_total += po + pi;
        }
        assert!(pipe_total <= tag_total);
    }

    #[test]
    fn rejects_oversized() {
        let mut topo = topo_small();
        let mut placer = SecondNetPlacer::new();
        let tag = pair_tag(40, 40, 1);
        assert_eq!(
            placer.place_tag(&mut topo, &tag).err(),
            Some(RejectReason::InsufficientSlots)
        );
        topo.check_invariants().unwrap();
    }

    #[test]
    fn rejects_on_bandwidth_without_leaks() {
        let mut topo = topo_small();
        let mut placer = SecondNetPlacer::new();
        // Per-VM pipe demand beyond NIC capacity in aggregate and forced
        // spread (tiers much larger than a server).
        let tag = pair_tag(20, 20, mbps(800.0));
        assert_eq!(
            placer.place_tag(&mut topo, &tag).err(),
            Some(RejectReason::InsufficientBandwidth)
        );
        for l in 0..topo.num_levels() {
            assert_eq!(topo.reserved_at_level(l), (0, 0));
        }
        assert_eq!(topo.subtree_slots_free(topo.root()), 64);
    }
}
