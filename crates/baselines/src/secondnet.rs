//! SecondNet-style pipe-model placement (§2.2, §5.1).
//!
//! SecondNet (Guo et al., CoNEXT 2010) allocates virtual datacenters
//! specified as VM-to-VM pipes, matching VMs to servers cluster by cluster
//! with a min-cost bipartite matching (O(N³)). We reproduce its essential
//! behaviour with a sequential greedy: VMs are placed in decreasing demand
//! order; each VM descends the tree from the chosen subtree, at every level
//! entering the child that holds the most bandwidth towards its
//! already-placed peers (weighted locality — the matching's objective),
//! breaking ties towards free capacity. Reservations use the exact pipe cut
//! through the shared engine.
//!
//! As in the paper, pipe placement is *fundamentally* more
//! bandwidth-efficient than TAG (idealized pipes reserve less on every cut)
//! but dramatically slower and less flexible — the runtime benches
//! regenerate that comparison.
//!
//! ## Performance notes (decision-identical to the original greedy)
//!
//! The matching search used to dominate the p99 admission latency
//! (tens of ms for the biggest tenants). Three observations fix that
//! without changing a single placement decision:
//!
//! * **Affinity by DFS range.** "Peer under this child" is containment of
//!   the peer server's DFS index in the child's contiguous server range —
//!   O(1) instead of an ancestor path walk per peer per child — and peers
//!   outside the chosen child can never contribute affinity deeper down,
//!   so the peer list shrinks as the descent narrows.
//! * **Memoized exact feasibility.** The pipe cut is additive over pipes,
//!   so the reservation delta of putting a VM on server `s` is known in
//!   closed form from its total demand and its directional affinity to the
//!   VMs already on `s`. The old stage → sync → rollback probe per
//!   candidate server becomes an arithmetic check against the cached
//!   uplink availability — same verdict, no transaction traffic.
//! * **Pruned candidate walk.** Banning a server only ever affects the
//!   final server-level choice (higher-level descent reads nothing the ban
//!   changes), so the retry loop collapses into one descent plus a ranked
//!   walk over the final rack's servers, preserving the original
//!   8-attempt cap and tie-breaks exactly.

use cm_core::cut::CutModel;
use cm_core::fasthash::FastMap;
use cm_core::model::{PipeModel, Tag};
use cm_core::placement::{
    search_and_place_traced, Deployed, PlacementTrace, Placer, RejectReason, SearchStrategy,
};
use cm_core::reserve::TenantState;
use cm_core::txn::ReservationTxn;
use cm_topology::{NodeId, Topology};
use std::collections::HashMap;
use std::sync::Arc;

/// A VM's already-placed communication peer: the peer server's DFS index
/// plus the pipe bandwidth in each direction (`out` = placed VM → peer,
/// `in` = peer → placed VM).
#[derive(Debug, Clone, Copy)]
struct Peer {
    dfs: u32,
    out: u64,
    inc: u64,
}

/// Greedy pipe-model placer in the spirit of SecondNet.
#[derive(Debug, Clone, Default)]
pub struct SecondNetPlacer {
    /// TAG → idealized-pipe conversions, keyed by the shared tag's address
    /// (as an integer, never dereferenced). Simulation pools replay the
    /// same handful of tenants for thousands of arrivals, and the dense
    /// conversion (tens of thousands of pipes) used to dominate the p99
    /// admission latency. Each entry holds the keying `Arc<Tag>` itself,
    /// so an address can never be reused for a different tag while its
    /// entry lives; the conversion is deterministic, so cached and fresh
    /// models are identical.
    model_cache: HashMap<usize, (Arc<Tag>, Arc<PipeModel>)>,
}

/// The original greedy's cap on placement attempts per VM.
const MAX_ATTEMPTS: u32 = 8;

/// Entry cap on the conversion cache (well above any pool size; a sweep
/// over many pools in one placer just re-converts).
const MODEL_CACHE_CAP: usize = 1024;

impl SecondNetPlacer {
    /// Create a SecondNet-style placer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploy a TAG tenant as idealized pipes
    /// ([`PipeModel::from_tag_idealized`]).
    pub fn place_tag(
        &mut self,
        topo: &mut Topology,
        tag: &Tag,
    ) -> Result<TenantState<PipeModel>, RejectReason> {
        self.place_pipes(topo, PipeModel::from_tag_idealized(tag))
    }

    /// Deploy a pipe-model tenant.
    pub fn place_pipes(
        &mut self,
        topo: &mut Topology,
        model: PipeModel,
    ) -> Result<TenantState<PipeModel>, RejectReason> {
        self.place_pipes_traced(topo, Arc::new(model), None)
    }

    /// The idealized-pipe model of `tag`, converted once per shared tag
    /// (see the `model_cache` field docs).
    fn cached_model(&mut self, tag: &Arc<Tag>) -> Arc<PipeModel> {
        if self.model_cache.len() >= MODEL_CACHE_CAP {
            self.model_cache.clear();
        }
        self.model_cache
            .entry(Arc::as_ptr(tag) as usize)
            .or_insert_with(|| {
                (
                    Arc::clone(tag),
                    Arc::new(PipeModel::from_tag_idealized(tag)),
                )
            })
            .1
            .clone()
    }

    fn place_pipes_traced(
        &mut self,
        topo: &mut Topology,
        model: Arc<PipeModel>,
        trace: Option<&mut PlacementTrace>,
    ) -> Result<TenantState<PipeModel>, RejectReason> {
        let n = model.num_vms();
        let total_vms = n as u64;
        let ext = model.external_demand_kbps();

        // Decreasing total-demand order: heavy VMs get first pick.
        let mut order: Vec<u32> = (0..n).collect();
        order.sort_by_key(|&v| {
            let (s, r) = model.vm_demand(v);
            std::cmp::Reverse(s + r)
        });

        let mut state = TenantState::new_shared(model);
        search_and_place_traced(
            topo,
            &mut state,
            total_vms,
            ext,
            0,
            SearchStrategy::default(),
            trace,
            |txn, st| self.try_place_under(txn, &order, st),
        )?;
        Ok(state)
    }

    /// Assign every VM under `st`; returns false when some VM cannot be
    /// placed (slots or server-uplink bandwidth). Switch-level uplinks are
    /// synced once at the end (deferred, see module docs): their cuts are
    /// accumulated incrementally from the same closed-form deltas the
    /// descent computes anyway, so the final sync never re-evaluates the
    /// pipe model.
    fn try_place_under(
        &self,
        txn: &mut ReservationTxn<'_, PipeModel>,
        order: &[u32],
        st: NodeId,
    ) -> bool {
        let n = txn.state().model().num_vms() as usize;
        // Per VM: the chosen server's DFS index (node id is recoverable via
        // the topology's server list, but the hot path only needs ranges).
        let mut vm_dfs: Vec<Option<u32>> = vec![None; n];
        let mut peers: Vec<Peer> = Vec::new();
        // Per touched switch: the running pipe cut of the placements so far
        // (telescoped exact deltas; equals `required_cut` at every point).
        let mut pending: FastMap<NodeId, (i64, i64)> = FastMap::default();
        for &vm in order {
            // Gather already-placed peers with directional pipe weights.
            peers.clear();
            let (total_out, total_in) = {
                let model = txn.state().model();
                for &(dst, bw) in model.pipes_from(vm) {
                    if let Some(dfs) = vm_dfs[dst as usize] {
                        peers.push(Peer {
                            dfs,
                            out: bw,
                            inc: 0,
                        });
                    }
                }
                for &(src, bw) in model.pipes_to(vm) {
                    if let Some(dfs) = vm_dfs[src as usize] {
                        peers.push(Peer {
                            dfs,
                            out: 0,
                            inc: bw,
                        });
                    }
                }
                model.vm_demand(vm)
            };
            match self.place_vm(txn, vm, st, &mut peers, (total_out, total_in), &mut pending) {
                Some(server) => vm_dfs[vm as usize] = Some(txn.topo().server_dfs_index(server)),
                None => return false,
            }
        }
        // Deferred switch-level reservations within the subtree, bottom-up
        // in (level, id) order exactly as the original per-server path walk
        // produced them.
        let mut switches: Vec<(u8, NodeId)> =
            pending.keys().map(|&x| (txn.topo().level(x), x)).collect();
        switches.sort_unstable();
        for (_, x) in switches {
            let (o, i) = pending[&x];
            debug_assert!(o >= 0 && i >= 0, "pipe cut cannot be negative");
            if txn.sync_uplink_to(x, (o as u64, i as u64)).is_err() {
                return false;
            }
        }
        true
    }

    /// Place one VM under `st`: descend by affinity to the final rack, then
    /// walk its servers in the greedy's preference order under the original
    /// attempt cap. Returns the server, or `None` when the VM cannot be
    /// placed (which fails the whole subtree attempt, as before).
    fn place_vm(
        &self,
        txn: &mut ReservationTxn<'_, PipeModel>,
        vm: u32,
        st: NodeId,
        peers: &mut Vec<Peer>,
        totals: (u64, u64),
        pending: &mut FastMap<NodeId, (i64, i64)>,
    ) -> Option<NodeId> {
        let mut node = st;
        let mut aff: Vec<(u64, u64)> = Vec::new();
        // The chosen switch path with this VM's directional peer bandwidth
        // under each node — the basis of the exact per-ancestor cut deltas
        // accumulated into `pending` on success.
        let mut path: Vec<(NodeId, u64, u64)> = Vec::new();
        if !txn.topo().is_server(st) {
            let (so, si) = peers
                .iter()
                .fold((0u64, 0u64), |(o, i), p| (o + p.out, i + p.inc));
            path.push((st, so, si));
        }
        // Greedy descent over switch levels: most peer bandwidth below,
        // ties towards free capacity, then first (lowest id) child — the
        // original comparator. Per-child affinities come from one bucketing
        // pass over the peers (children partition the node's DFS server
        // range uniformly), and peers outside the chosen child are dropped:
        // they cannot contribute affinity further down.
        while !txn.topo().is_server(node) && txn.topo().level(node) > 1 {
            bucket_affinities(txn.topo(), node, peers, &mut aff);
            let mut best: Option<(u64, u64, usize, NodeId)> = None;
            for (k, child) in txn.topo().children(node).enumerate() {
                let free = txn.topo().subtree_slots_free(child);
                if free == 0 {
                    continue;
                }
                let affinity = aff[k].0 + aff[k].1;
                let better = match best {
                    None => true,
                    Some((ba, bf, _, _)) => affinity > ba || (affinity == ba && free > bf),
                };
                if better {
                    best = Some((affinity, free, k, child));
                }
            }
            let (_, _, k, child) = best?;
            path.push((child, aff[k].0, aff[k].1));
            let range = txn.topo().server_range(child);
            peers.retain(|p| range.contains(&p.dfs));
            node = child;
        }
        // `node` is now the final rack (or a server, when `st` was one):
        // walk candidate servers in preference order, up to the original
        // cap of placement attempts. Rack children are single servers, so
        // the affinity buckets double as the exact on-server pipe sums the
        // feasibility check needs.
        if txn.topo().is_server(node) {
            let dfs = txn.topo().server_dfs_index(node);
            let mut on = (0u64, 0u64);
            for p in peers.iter().filter(|p| p.dfs == dfs) {
                on.0 += p.out;
                on.1 += p.inc;
            }
            if txn.topo().slots_free(node) == 0 {
                return None;
            }
            let server = self.try_server(txn, vm, node, on, totals)?;
            accumulate_pending(pending, &path, totals);
            return Some(server);
        }
        bucket_affinities(txn.topo(), node, peers, &mut aff);
        let children: Vec<NodeId> = txn.topo().children(node).collect();
        let mut banned = vec![false; children.len()];
        let mut attempts = 0u32;
        while attempts < MAX_ATTEMPTS {
            let mut best: Option<(u64, u64, usize)> = None;
            for (k, &child) in children.iter().enumerate() {
                if banned[k] {
                    continue;
                }
                let free = txn.topo().subtree_slots_free(child);
                if free == 0 {
                    continue;
                }
                let affinity = aff[k].0 + aff[k].1;
                let better = match best {
                    None => true,
                    Some((ba, bf, _)) => affinity > ba || (affinity == ba && free > bf),
                };
                if better {
                    best = Some((affinity, free, k));
                }
            }
            let (_, _, k) = best?;
            attempts += 1;
            if let Some(server) = self.try_server(txn, vm, children[k], aff[k], totals) {
                accumulate_pending(pending, &path, totals);
                return Some(server);
            }
            banned[k] = true;
        }
        None
    }

    /// One placement attempt on a concrete server with known on-server pipe
    /// sums: closed-form feasibility, then stage + exact reservation.
    fn try_server(
        &self,
        txn: &mut ReservationTxn<'_, PipeModel>,
        vm: u32,
        server: NodeId,
        on: (u64, u64),
        totals: (u64, u64),
    ) -> Option<NodeId> {
        let want = self.nic_feasible(txn, server, on, totals)?;
        let sp = txn.savepoint();
        txn.place(server, vm as usize, 1)
            .expect("candidate servers have a free slot");
        if txn.sync_uplink_to(server, want).is_ok() {
            return Some(server);
        }
        // The closed-form check and the staged sync disagree — defensive
        // fallback to the original ban-and-retry, which keeps decisions
        // identical even then.
        debug_assert!(false, "nic_feasible disagreed with sync_uplink_to");
        txn.rollback_to(sp);
        None
    }

    /// Exact closed-form equivalent of the old stage-and-sync probe: would
    /// reserving the pipe cut of (VMs on `server` + this VM) fit the
    /// server's uplink? The pipe cut is additive over pipes, so the delta
    /// is the VM's total demand minus its pipes to VMs already on `server`
    /// (those become internal), minus the reverse-direction pipes that stop
    /// crossing. Returns the post-placement reservation target when it
    /// fits (fed straight to [`ReservationTxn::sync_uplink_to`], skipping
    /// the O(placed × degree) cut recomputation), `None` otherwise.
    fn nic_feasible(
        &self,
        txn: &ReservationTxn<'_, PipeModel>,
        server: NodeId,
        // (this VM → VMs on `server`, VMs on `server` → this VM)
        (on_out, on_in): (u64, u64),
        (total_out, total_in): (u64, u64),
    ) -> Option<(u64, u64)> {
        let (au, ad) = txn
            .topo()
            .uplink_avail(server)
            .expect("servers have an uplink");
        let delta_out = (total_out - on_out) as i64 - on_in as i64;
        let delta_in = (total_in - on_in) as i64 - on_out as i64;
        if delta_out > au as i64 || delta_in > ad as i64 {
            return None;
        }
        let (have_out, have_in) = txn.state().reserved_on(server);
        Some((
            (have_out as i64 + delta_out) as u64,
            (have_in as i64 + delta_in) as u64,
        ))
    }
}

/// Fold one placed VM's exact per-ancestor cut deltas into the pending
/// switch reservations: at each chosen switch, the cut gains the VM's
/// pipes to everything outside that subtree (`total − under`) and loses
/// the reverse-direction pipes that became internal.
fn accumulate_pending(
    pending: &mut FastMap<NodeId, (i64, i64)>,
    path: &[(NodeId, u64, u64)],
    (total_out, total_in): (u64, u64),
) {
    for &(node, under_out, under_in) in path {
        let e = pending.entry(node).or_insert((0, 0));
        e.0 += (total_out - under_out) as i64 - under_in as i64;
        e.1 += (total_in - under_in) as i64 - under_out as i64;
    }
}

/// Per-child `(out, in)` peer-bandwidth sums under `node`, in child order,
/// from one pass over the peers: the children partition the node's DFS
/// server range into equal consecutive blocks (spec-built trees are
/// uniform), so a peer's child index is a subtraction and a division. Falls
/// back to a per-child scan if the partition were ever non-uniform.
fn bucket_affinities(topo: &Topology, node: NodeId, peers: &[Peer], out: &mut Vec<(u64, u64)>) {
    let range = topo.server_range(node);
    let n_children = topo.children(node).len();
    out.clear();
    out.resize(n_children, (0, 0));
    let total = (range.end - range.start) as usize;
    let width = total / n_children;
    // Exact uniformity check: every child's range must start precisely at
    // its stride (divisibility alone would accept e.g. sizes [2, 4]).
    let uniform = width > 0
        && width * n_children == total
        && topo
            .children(node)
            .enumerate()
            .all(|(k, c)| topo.server_range(c).start == range.start + (k * width) as u32);
    if uniform {
        for p in peers {
            if range.contains(&p.dfs) {
                let k = ((p.dfs - range.start) as usize) / width;
                out[k].0 += p.out;
                out[k].1 += p.inc;
            }
        }
    } else {
        for (k, child) in topo.children(node).enumerate() {
            let r = topo.server_range(child);
            for p in peers.iter().filter(|p| r.contains(&p.dfs)) {
                out[k].0 += p.out;
                out[k].1 += p.inc;
            }
        }
    }
}

impl Placer for SecondNetPlacer {
    fn name(&self) -> &'static str {
        "SecondNet"
    }

    fn place(&mut self, topo: &mut Topology, tag: &Tag) -> Result<Deployed, RejectReason> {
        self.place_tag(topo, tag).map(Deployed::from)
    }

    fn place_shared(
        &mut self,
        topo: &mut Topology,
        tag: &Arc<Tag>,
    ) -> Result<Deployed, RejectReason> {
        let model = self.cached_model(tag);
        self.place_pipes_traced(topo, model, None)
            .map(Deployed::from)
    }

    fn place_speculative(
        &mut self,
        topo: &mut Topology,
        tag: &Arc<Tag>,
        trace: &mut PlacementTrace,
    ) -> Result<Deployed, RejectReason> {
        trace.reset();
        let model = self.cached_model(tag);
        self.place_pipes_traced(topo, model, Some(trace))
            .map(Deployed::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::model::TagBuilder;
    use cm_topology::{mbps, TreeSpec};

    fn topo_small() -> Topology {
        Topology::build(&TreeSpec::small(
            2,
            2,
            4,
            4,
            [mbps(1000.0), mbps(2000.0), mbps(4000.0)],
        ))
    }

    fn pair_tag(nu: u32, nv: u32, bw: u64) -> Tag {
        let mut b = TagBuilder::new("pair");
        let u = b.tier("u", nu);
        let v = b.tier("v", nv);
        b.sym_edge(u, v, bw).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn places_pipes_and_releases() {
        let mut topo = topo_small();
        let mut placer = SecondNetPlacer::new();
        let tag = pair_tag(4, 4, mbps(50.0));
        let mut state = placer.place_tag(&mut topo, &tag).expect("fits");
        assert_eq!(state.total_placed(&topo), 8);
        state.check_consistency(&topo).unwrap();
        state.clear(&mut topo);
        for l in 0..topo.num_levels() {
            assert_eq!(topo.reserved_at_level(l), (0, 0));
        }
    }

    #[test]
    fn locality_pulls_communicating_vms_together() {
        // 2+2 VMs with strong mutual pipes should all land under one rack
        // (likely one/two servers), leaving ToR uplinks clean.
        let mut topo = topo_small();
        let mut placer = SecondNetPlacer::new();
        let tag = pair_tag(2, 2, mbps(100.0));
        let state = placer.place_tag(&mut topo, &tag).unwrap();
        let (tor_up, tor_dn) = topo.reserved_at_level(1);
        let _ = state;
        assert_eq!(
            (tor_up, tor_dn),
            (0, 0),
            "pipes should be rack-local under affinity descent"
        );
    }

    #[test]
    fn pipe_reservation_not_above_tag_price() {
        // Idealized pipes are at most as expensive as TAG on every cut;
        // verify at the deployment level.
        let mut topo = topo_small();
        let mut placer = SecondNetPlacer::new();
        let tag = pair_tag(6, 6, mbps(30.0));
        let state = placer.place_tag(&mut topo, &tag).unwrap();
        state.check_consistency(&topo).unwrap();
        // Recompute what TAG would reserve for the same server counts.
        // Pipe tiers are single VMs; we must aggregate them back to TAG
        // tiers: VMs 0..6 are tier u, 6..12 tier v (from_tag ordering).
        let mut tag_total = 0u64;
        let mut pipe_total = 0u64;
        for (server, counts) in state.placement(&topo) {
            let mut tag_counts = vec![0u32; 2];
            for (vm, &c) in counts.iter().enumerate() {
                if c > 0 {
                    tag_counts[if vm < 6 { 0 } else { 1 }] += c;
                }
            }
            let (to, ti) = CutModel::cut_kbps(&tag, &tag_counts);
            tag_total += to + ti;
            let (po, pi) = state.required_cut(server);
            pipe_total += po + pi;
        }
        assert!(pipe_total <= tag_total);
    }

    #[test]
    fn rejects_oversized() {
        let mut topo = topo_small();
        let mut placer = SecondNetPlacer::new();
        let tag = pair_tag(40, 40, 1);
        assert_eq!(
            placer.place_tag(&mut topo, &tag).err(),
            Some(RejectReason::InsufficientSlots)
        );
        topo.check_invariants().unwrap();
    }

    #[test]
    fn rejects_on_bandwidth_without_leaks() {
        let mut topo = topo_small();
        let mut placer = SecondNetPlacer::new();
        // Per-VM pipe demand beyond NIC capacity in aggregate and forced
        // spread (tiers much larger than a server).
        let tag = pair_tag(20, 20, mbps(800.0));
        assert_eq!(
            placer.place_tag(&mut topo, &tag).err(),
            Some(RejectReason::InsufficientBandwidth)
        );
        for l in 0..topo.num_levels() {
            assert_eq!(topo.reserved_at_level(l), (0, 0));
        }
        assert_eq!(topo.subtree_slots_free(topo.root()), 64);
    }

    #[test]
    fn closed_form_feasibility_matches_staged_sync() {
        // Exhaustively compare nic_feasible against the transactional
        // probe it replaces, across a load spectrum that exercises both
        // verdicts.
        let mut topo = Topology::build(&TreeSpec::small(
            1,
            1,
            2,
            8,
            [mbps(10.0), mbps(1000.0), mbps(1000.0)],
        ));
        for bw in [mbps(1.0), mbps(3.0), mbps(6.0), mbps(9.0)] {
            let tag = pair_tag(2, 2, bw);
            let model = PipeModel::from_tag_idealized(&tag);
            let mut state = TenantState::new(model);
            let servers: Vec<NodeId> = topo.servers().to_vec();
            let mut txn = ReservationTxn::begin(&mut topo, &mut state);
            // Place VM 0 on server 0, then check every (vm, server) pair.
            txn.place(servers[0], 0, 1).unwrap();
            txn.sync_uplink(servers[0]).unwrap();
            let placer = SecondNetPlacer::new();
            for vm in [1u32, 2, 3] {
                for &s in &servers {
                    // On-server sums for placing `vm` on `s` (only VM 0 is
                    // placed, on servers[0]).
                    let (mut on_out, mut on_in) = (0u64, 0u64);
                    let (total_out, total_in) = {
                        let model = txn.state().model();
                        if s == servers[0] {
                            for &(dst, bwp) in model.pipes_from(vm) {
                                if dst == 0 {
                                    on_out += bwp;
                                }
                            }
                            for &(src, bwp) in model.pipes_to(vm) {
                                if src == 0 {
                                    on_in += bwp;
                                }
                            }
                        }
                        model.vm_demand(vm)
                    };
                    let predicted =
                        placer.nic_feasible(&txn, s, (on_out, on_in), (total_out, total_in));
                    let sp = txn.savepoint();
                    txn.place(s, vm as usize, 1).unwrap();
                    let actual = txn.sync_uplink(s).is_ok();
                    let actual_want = txn.state().reserved_on(s);
                    txn.rollback_to(sp);
                    assert_eq!(predicted.is_some(), actual, "vm {vm} on {s} at bw {bw}");
                    if let Some(want) = predicted {
                        assert_eq!(want, actual_want, "vm {vm} on {s} at bw {bw}");
                    }
                }
            }
            drop(txn);
            state.clear(&mut topo);
        }
    }
}
