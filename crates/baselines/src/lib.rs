//! # cm-baselines
//!
//! Baseline placement algorithms the paper compares CloudMirror against
//! (§5):
//!
//! * [`OvocPlacer`] — "OVOC": Oktopus-style placement of generalized VOC
//!   models, with the paper's three improvements: it handles `Alloc`
//!   failures (retrying at higher subtrees instead of aborting), it places
//!   all clusters of one VOC under a common subtree to localize
//!   inter-cluster traffic, and it accepts relaxed VOCs with arbitrary
//!   per-cluster sizes, hose bandwidths and core bandwidths.
//! * [`OktopusVcPlacer`] — the virtual-cluster (plain hose) baseline; the
//!   paper found "VC always performed worse than VOC and TAG" and omitted
//!   it, but we keep it runnable.
//! * [`SecondNetPlacer`] — pipe-model placement in the spirit of SecondNet:
//!   VMs are assigned one by one to the server that minimizes
//!   bandwidth-weighted path length to their already-placed peers. The
//!   published algorithm uses min-cost bipartite matching per cluster at
//!   O(N³); our sequential greedy with hierarchical descent preserves its
//!   locality objective and its complexity class — and, as in the paper,
//!   it is orders of magnitude slower than CM/OVOC on large tenants.
//!
//! All placers implement `cm-core`'s unified `Placer` trait and run on its
//! shared engine — the `search_and_place` outer loop and the transactional
//! `ReservationTxn` staging — so capacity safety, rollback semantics and
//! exact cut pricing are identical across algorithms; only *policy*
//! differs. Model-specific entry points (`place_voc`, `place_pipes`)
//! remain available where the typed `TenantState` matters.

mod ovoc;
mod secondnet;
mod vc;

pub use ovoc::OvocPlacer;
pub use secondnet::SecondNetPlacer;
pub use vc::OktopusVcPlacer;
