//! ElasticSwitch-style Guarantee Partitioning, with and without the TAG
//! patch.

use cm_core::model::{Tag, TierId};

/// How VM-pair guarantees are derived from the tenant's abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuaranteeModel {
    /// Plain hose semantics: each VM owns ONE send hose and ONE receive
    /// hose aggregating all of its TAG guarantees (what ElasticSwitch
    /// enforces out of the box — and what fails in Fig. 4).
    Hose,
    /// The TAG patch: a pair charges the specific trunk or self-loop edge
    /// connecting its tiers, so unrelated traffic cannot dilute it.
    Tag,
}

/// A computed per-pair guarantee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairGuarantee {
    /// Index of the sending VM.
    pub src: usize,
    /// Index of the receiving VM.
    pub dst: usize,
    /// Guaranteed kbps for this pair.
    pub kbps: f64,
}

/// Max-min split of a guarantee `g` among entities with the given demands
/// (ElasticSwitch's GP divides a hose guarantee among the VM's active peers
/// by max-min over their demands).
pub fn split_guarantee(g: f64, demands: &[f64]) -> Vec<f64> {
    let n = demands.len();
    if n == 0 {
        return Vec::new();
    }
    let mut share = vec![0.0f64; n];
    let mut active: Vec<usize> = (0..n).collect();
    let mut remaining = g;
    while !active.is_empty() && remaining > 1e-9 {
        let fair = remaining / active.len() as f64;
        // Entities whose demand is below the fair share freeze at demand.
        let (below, rest): (Vec<usize>, Vec<usize>) =
            active.iter().partition(|&&i| demands[i] <= fair + 1e-12);
        if below.is_empty() {
            for &i in &rest {
                share[i] += fair;
            }
            break;
        }
        for &i in &below {
            share[i] = demands[i];
            remaining -= demands[i];
        }
        active = rest;
    }
    share
}

/// GP engine for one tenant: VMs are `(vm index) -> tier` assignments over
/// a TAG.
#[derive(Debug, Clone)]
pub struct Enforcer {
    tag: std::sync::Arc<Tag>,
    vm_tier: Vec<TierId>,
    model: GuaranteeModel,
    /// Dense `(from, to) -> edge index` lookup (`num_tiers²` entries,
    /// `u16::MAX` = no edge), so pair classification is O(1) instead of a
    /// scan over the edge list — [`Enforcer::partition`] classifies every
    /// pair and the datacenter traffic engine feeds it hundreds of
    /// thousands per solve.
    edge_at: Vec<u16>,
}

const NO_EDGE: u16 = u16::MAX;

impl Enforcer {
    /// Create an enforcer for a tenant whose VM `i` belongs to
    /// `vm_tier[i]`.
    pub fn new(tag: Tag, vm_tier: Vec<TierId>, model: GuaranteeModel) -> Self {
        Self::new_shared(std::sync::Arc::new(tag), vm_tier, model)
    }

    /// [`Enforcer::new`] over an already-shared TAG (the controller's
    /// admission path hands tenants around as `Arc<Tag>`; no deep clone).
    pub fn new_shared(
        tag: std::sync::Arc<Tag>,
        vm_tier: Vec<TierId>,
        model: GuaranteeModel,
    ) -> Self {
        let t = tag.num_tiers();
        debug_assert!(
            tag.edges().len() < NO_EDGE as usize,
            "edge table indexes edges as u16 and reserves u16::MAX as the \
             no-edge sentinel"
        );
        let mut edge_at = vec![NO_EDGE; t * t];
        for (i, e) in tag.edges().iter().enumerate() {
            edge_at[e.from.index() * t + e.to.index()] = i as u16;
        }
        Enforcer {
            tag,
            vm_tier,
            model,
            edge_at,
        }
    }

    /// Index of the TAG edge connecting `u -> v`, if any.
    #[inline]
    fn edge_between(&self, u: TierId, v: TierId) -> Option<usize> {
        let t = self.tag.num_tiers();
        match self.edge_at[u.index() * t + v.index()] {
            NO_EDGE => None,
            i => Some(i as usize),
        }
    }

    /// The tenant's TAG.
    pub fn tag(&self) -> &Tag {
        &self.tag
    }

    /// Partition guarantees among the currently-active pairs
    /// (`(src, dst, demand)`), returning one guarantee per pair.
    ///
    /// * `Tag` model: a pair `(s, d)` with `tier(s) = u`, `tier(d) = v`
    ///   charges edge `(u, v)` (trunk if `u ≠ v`, self-loop otherwise):
    ///   `g = min(share of s's S_e among its active dsts in v,
    ///            share of d's R_e among its active srcs in u)`.
    /// * `Hose` model: the same formula but with every VM's guarantees
    ///   collapsed into one aggregate send and one aggregate receive hose
    ///   — which is precisely the information loss of §2.2.
    pub fn partition(&self, pairs: &[(usize, usize, f64)]) -> Vec<PairGuarantee> {
        let mut out = Vec::with_capacity(pairs.len());
        // Sender-side shares.
        let mut src_share = vec![0.0f64; pairs.len()];
        let mut dst_share = vec![0.0f64; pairs.len()];

        // Classify every pair once; the sorts below then compare plain
        // integers instead of re-deriving the edge per comparison.
        let keys: Vec<u32> = pairs
            .iter()
            .map(|&(s, d, _)| self.edge_key(s, d) as u32)
            .collect();

        // Group pairs by (src VM, charged send guarantee) and split.
        let mut order: Vec<u32> = (0..pairs.len() as u32).collect();
        order.sort_by_key(|&i| (pairs[i as usize].0, keys[i as usize]));
        self.split_side(pairs, &keys, &order, true, &mut src_share);
        order.sort_by_key(|&i| (pairs[i as usize].1, keys[i as usize]));
        self.split_side(pairs, &keys, &order, false, &mut dst_share);

        for (i, &(s, d, _)) in pairs.iter().enumerate() {
            out.push(PairGuarantee {
                src: s,
                dst: d,
                kbps: src_share[i].min(dst_share[i]),
            });
        }
        out
    }

    /// The key identifying which guarantee a pair charges: under TAG, the
    /// specific edge; under hose, a single bucket per VM.
    fn edge_key(&self, src: usize, dst: usize) -> usize {
        match self.model {
            GuaranteeModel::Hose => 0,
            GuaranteeModel::Tag => self
                .edge_between(self.vm_tier[src], self.vm_tier[dst])
                .map(|i| i + 1)
                .unwrap_or(0),
        }
    }

    /// The guarantee a pair charges on one side (send or receive).
    fn side_guarantee(&self, src: usize, dst: usize, send: bool) -> f64 {
        match self.model {
            GuaranteeModel::Hose => {
                let vm = if send { src } else { dst };
                let t = self.vm_tier[vm];
                (if send {
                    self.tag.per_vm_snd(t)
                } else {
                    self.tag.per_vm_rcv(t)
                }) as f64
            }
            GuaranteeModel::Tag => self
                .edge_between(self.vm_tier[src], self.vm_tier[dst])
                .map(|i| {
                    let e = &self.tag.edges()[i];
                    (if send { e.snd_kbps } else { e.rcv_kbps }) as f64
                })
                .unwrap_or(0.0),
        }
    }

    /// Split guarantees within groups of pairs sharing one (VM, key)
    /// bucket; `order` must be sorted by that bucket (`keys[i]` caches
    /// `edge_key` for pair `i`).
    fn split_side(
        &self,
        pairs: &[(usize, usize, f64)],
        keys: &[u32],
        order: &[u32],
        send: bool,
        share: &mut [f64],
    ) {
        let mut i = 0;
        while i < order.len() {
            let pi = order[i] as usize;
            let vm = if send { pairs[pi].0 } else { pairs[pi].1 };
            let key = keys[pi];
            let mut j = i;
            while j < order.len() {
                let pj = order[j] as usize;
                let vm_j = if send { pairs[pj].0 } else { pairs[pj].1 };
                if vm_j != vm || keys[pj] != key {
                    break;
                }
                j += 1;
            }
            let group = &order[i..j];
            let g = self.side_guarantee(pairs[pi].0, pairs[pi].1, send);
            let demands: Vec<f64> = group.iter().map(|&p| pairs[p as usize].2).collect();
            let splits = split_guarantee(g, &demands);
            for (&p, s) in group.iter().zip(splits) {
                share[p as usize] = s;
            }
            i = j;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::model::TagBuilder;

    fn fig13_tag(n_senders: u32) -> (Tag, Vec<TierId>) {
        let mut b = TagBuilder::new("fig13");
        let c1 = b.tier("C1", 1);
        let c2 = b.tier("C2", 1 + n_senders);
        b.edge(c1, c2, 450_000, 450_000).unwrap();
        b.self_loop(c2, 450_000).unwrap();
        let tag = b.build().unwrap();
        // VM 0 = X (C1); VM 1 = Z (C2); VMs 2.. = intra senders (C2).
        let mut tiers = vec![c1, c2];
        tiers.extend(std::iter::repeat_n(c2, n_senders as usize));
        (tag, tiers)
    }

    #[test]
    fn split_is_max_min() {
        let s = split_guarantee(900.0, &[100.0, f64::INFINITY, f64::INFINITY]);
        assert!((s[0] - 100.0).abs() < 1e-9);
        assert!((s[1] - 400.0).abs() < 1e-9);
        assert!((s[2] - 400.0).abs() < 1e-9);
        assert!(split_guarantee(100.0, &[]).is_empty());
        let s = split_guarantee(0.0, &[1.0, 2.0]);
        assert_eq!(s, vec![0.0, 0.0]);
    }

    #[test]
    fn tag_patch_isolates_trunk_from_self_loop() {
        let (tag, tiers) = fig13_tag(4);
        let enf = Enforcer::new(tag, tiers, GuaranteeModel::Tag);
        // X→Z plus 4 intra senders → Z, all greedy.
        let mut pairs = vec![(0usize, 1usize, f64::INFINITY)];
        for s in 2..6 {
            pairs.push((s, 1, f64::INFINITY));
        }
        let g = enf.partition(&pairs);
        // X keeps the full 450 Mbps trunk guarantee.
        assert!((g[0].kbps - 450_000.0).abs() < 1e-6, "{:?}", g[0]);
        // The intra senders share Z's 450 Mbps self-loop receive hose.
        let intra: f64 = g[1..].iter().map(|p| p.kbps).sum();
        assert!((intra - 450_000.0).abs() < 1e-3);
    }

    #[test]
    fn plain_hose_dilutes_the_trunk_guarantee() {
        let (tag, tiers) = fig13_tag(4);
        let enf = Enforcer::new(tag, tiers, GuaranteeModel::Hose);
        let mut pairs = vec![(0usize, 1usize, f64::INFINITY)];
        for s in 2..6 {
            pairs.push((s, 1, f64::INFINITY));
        }
        let g = enf.partition(&pairs);
        // Z's aggregate receive hose (900 Mbps) splits equally over 5
        // senders: X gets only 180 Mbps — far below the intended 450.
        assert!((g[0].kbps - 180_000.0).abs() < 1e-3, "{:?}", g[0]);
    }

    #[test]
    fn demand_aware_partitioning_reassigns_idle_shares() {
        let (tag, tiers) = fig13_tag(2);
        let enf = Enforcer::new(tag, tiers, GuaranteeModel::Tag);
        // One intra sender nearly idle: its share shrinks to its demand.
        let pairs = vec![(2usize, 1usize, 10_000.0), (3usize, 1usize, f64::INFINITY)];
        let g = enf.partition(&pairs);
        assert!((g[0].kbps - 10_000.0).abs() < 1e-6);
        assert!((g[1].kbps - 440_000.0).abs() < 1e-3);
    }

    #[test]
    fn unknown_pairs_get_zero_guarantee() {
        // Traffic between tiers with no TAG edge has no guarantee.
        let mut b = TagBuilder::new("t");
        let u = b.tier("u", 1);
        let v = b.tier("v", 1);
        b.edge(u, v, 100, 100).unwrap();
        let tag = b.build().unwrap();
        let enf = Enforcer::new(tag, vec![u, v], GuaranteeModel::Tag);
        // v -> u direction has no edge.
        let g = enf.partition(&[(1, 0, f64::INFINITY)]);
        assert_eq!(g[0].kbps, 0.0);
    }
}
