//! Datacenter-scale traffic engine: every placed tenant's flows over the
//! physical tree, solved as **one** shared fluid network.
//!
//! This is the missing closing of the paper's loop. The enforcement
//! scenarios ([`crate::scenario`]) prove the TAG patch on hand-built
//! 2-link networks; the placement layer reserves worst-case bandwidth but
//! never *runs* traffic. Here the two halves meet:
//!
//! 1. each admitted tenant's live placement is expanded into VM-pair
//!    flows along its active TAG edges (all edge-connected pairs greedy by
//!    default, or an explicit instantaneous communication pattern);
//! 2. each cross-server pair is routed over its real uplink/downlink path
//!    in the physical tree (up from the source server to the lowest common
//!    ancestor, down to the destination — every directional link on the
//!    way is a capacitated fluid link);
//! 3. per-pair **floors** come from the tenant's [`Enforcer`] under its
//!    enforcement model ([`GuaranteeModel::Tag`] = the paper's patched
//!    ElasticSwitch, [`GuaranteeModel::Hose`] = the §2.2 baseline), and
//!    spare capacity is shared guarantee-proportionally;
//! 4. one [`Fluid`] solve over all tenants yields steady-state rates,
//!    which are scored against each pair's **intent** — the guarantee the
//!    TAG semantics promise (always the `Tag`-model partition, whatever
//!    model enforcement runs) — plus link utilization per tree level and a
//!    work-conservation verdict.
//!
//! A Fig. 13/14-style experiment therefore happens *through the placement
//! layer*: admit tenants with a real placer, solve, and watch the hose
//! model's floors dilute on the placed topology while the TAG patch keeps
//! every pair at its intent.

use crate::elastic::{Enforcer, GuaranteeModel};
use crate::fluid::{FlowSpec, Fluid};
use cm_core::model::{Tag, TierId};
use cm_topology::{NodeId, Topology};
use std::sync::Arc;
use std::time::Instant;

/// One tenant's contribution to the datacenter traffic mix.
#[derive(Debug, Clone)]
pub struct TenantTraffic {
    /// Caller-chosen identifier echoed in the report (the cluster layer
    /// passes its `TenantId`).
    pub id: u64,
    /// The tenant's TAG (shared; no deep clone).
    pub tag: Arc<Tag>,
    /// Tier of VM `i`.
    pub vm_tier: Vec<TierId>,
    /// Server hosting VM `i`.
    pub vm_server: Vec<NodeId>,
    /// How this tenant's runtime enforcement derives pair floors.
    pub model: GuaranteeModel,
    /// Instantaneous communication pattern: exactly these `(src, dst)` VM
    /// pairs are active (each greedy). `None` = every TAG-edge-connected
    /// pair sends (the converged all-active worst case).
    pub active: Option<Vec<(usize, usize)>>,
}

/// Expand a per-server placement (`(server, VMs per tier)`, the shape
/// `Deployed::placement` returns) into per-VM `(tier, server)`
/// assignments, server-major then tier-major. This is the **one**
/// canonical VM indexing: the cluster layer's guarantee reports delegate
/// here, so VM indices are interchangeable across every placement-wired
/// API.
pub fn expand_placement(placement: &[(NodeId, Vec<u32>)]) -> (Vec<TierId>, Vec<NodeId>) {
    let mut vm_tier = Vec::new();
    let mut vm_server = Vec::new();
    for (server, counts) in placement {
        for (t, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                vm_tier.push(TierId(t as u16));
                vm_server.push(*server);
            }
        }
    }
    (vm_tier, vm_server)
}

impl TenantTraffic {
    /// Build from a per-server placement via [`expand_placement`].
    pub fn from_placement(
        id: u64,
        tag: Arc<Tag>,
        placement: &[(NodeId, Vec<u32>)],
        model: GuaranteeModel,
    ) -> Self {
        let (vm_tier, vm_server) = expand_placement(placement);
        TenantTraffic {
            id,
            tag,
            vm_tier,
            vm_server,
            model,
            active: None,
        }
    }

    /// Restrict the tenant to an explicit active-pair pattern.
    pub fn with_active(mut self, pairs: Vec<(usize, usize)>) -> Self {
        self.active = Some(pairs);
        self
    }

    /// Append this tenant's active pair list (explicit pattern or every
    /// TAG-edge-connected pair, all greedy) into `out`, reusing `scratch`
    /// across calls. The old `all_pairs`/`pairs` pair allocated a fresh
    /// per-tier index and pair vector for every tenant on every solve; at
    /// datacenter scale that dominated the expansion phase.
    fn pairs_into(&self, scratch: &mut PairScratch, out: &mut Vec<(usize, usize, f64)>) {
        out.clear();
        if let Some(p) = &self.active {
            out.extend(p.iter().map(|&(s, d)| (s, d, f64::INFINITY)));
            return;
        }
        let nt = self.tag.num_tiers();
        if scratch.by_tier.len() < nt {
            scratch.by_tier.resize_with(nt, Vec::new);
        }
        for v in &mut scratch.by_tier[..nt] {
            v.clear();
        }
        for (i, &t) in self.vm_tier.iter().enumerate() {
            scratch.by_tier[t.index()].push(i as u32);
        }
        let by_tier = &scratch.by_tier;
        let total: usize = self
            .tag
            .edges()
            .iter()
            .map(|e| by_tier[e.from.index()].len() * by_tier[e.to.index()].len())
            .sum();
        out.reserve(total);
        for e in self.tag.edges() {
            for &s in &by_tier[e.from.index()] {
                for &d in &by_tier[e.to.index()] {
                    if s != d {
                        out.push((s as usize, d as usize, f64::INFINITY));
                    }
                }
            }
        }
    }
}

/// Pooled scratch for [`TenantTraffic::pairs_into`]: the per-tier VM index
/// is reused across tenants and steps instead of reallocated per call.
#[derive(Debug, Default)]
struct PairScratch {
    by_tier: Vec<Vec<u32>>,
}

/// One VM pair's solved steady state.
#[derive(Debug, Clone, PartialEq)]
pub struct PairFlow {
    /// Tenant the pair belongs to.
    pub tenant: u64,
    /// Sending VM index (tenant-local).
    pub src: usize,
    /// Receiving VM index (tenant-local).
    pub dst: usize,
    /// Enforced floor (kbps) under the tenant's guarantee model.
    pub floor_kbps: f64,
    /// What the TAG semantics promise the pair (kbps) — the compliance
    /// target, independent of which model enforcement runs.
    pub intent_kbps: f64,
    /// Achieved steady-state rate (kbps). Colocated pairs never touch the
    /// network; they are reported at their intent (met by the hypervisor).
    pub rate_kbps: f64,
    /// Whether both VMs share a server (no network path).
    pub colocated: bool,
}

impl PairFlow {
    /// Whether the achieved rate falls short of the TAG intent.
    pub fn violated(&self) -> bool {
        !self.colocated && self.rate_kbps + violation_tol(self.intent_kbps) < self.intent_kbps
    }
}

/// Per-tenant guarantee-compliance summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// The tenant reported on.
    pub id: u64,
    /// VMs placed.
    pub vms: usize,
    /// Active pairs (cross-network + colocated).
    pub pairs: usize,
    /// Pairs that traverse the network.
    pub cross_pairs: usize,
    /// Σ intent over cross-network pairs (kbps).
    pub intent_kbps: f64,
    /// Σ achieved rate over cross-network pairs (kbps).
    pub achieved_kbps: f64,
    /// Cross-network pairs whose rate falls short of their intent.
    pub violations: usize,
    /// Largest single-pair shortfall below intent (kbps).
    pub worst_shortfall_kbps: f64,
}

/// Aggregate utilization of one tree level's directional links.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelUtilization {
    /// Tree level (0 = server NICs).
    pub level: usize,
    /// Directional links at this level (2 per node: up + down).
    pub links: usize,
    /// Mean used/capacity over the level's directional links.
    pub mean_utilization: f64,
    /// Largest used/capacity at the level.
    pub max_utilization: f64,
    /// Directional links at ≥ 99.9 % of capacity.
    pub saturated: usize,
}

/// Everything one datacenter solve produces.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Per-tenant compliance summaries, in input order.
    pub tenants: Vec<TenantSummary>,
    /// Every active pair with its floor, intent and achieved rate.
    pub flows: Vec<PairFlow>,
    /// Link utilization aggregated per tree level.
    pub levels: Vec<LevelUtilization>,
    /// Pairs that traversed the network (fluid flows solved).
    pub cross_flows: usize,
    /// Pairs absorbed by colocation.
    pub colocated_flows: usize,
    /// Σ achieved rate over cross-network pairs (kbps) — the network's
    /// delivered throughput.
    pub total_rate_kbps: f64,
    /// Whether the allocation is work-conserving (no link both unsaturated
    /// and limiting; verified on the solved rates).
    pub work_conserving: bool,
    /// Σ violations over all tenants.
    pub violations: usize,
    /// Flows handed to the fluid solver. The batch solver materializes one
    /// per cross VM pair (= `cross_flows`); the incremental engine bundles
    /// same-class pairs, so this is typically far smaller.
    pub fluid_flows: usize,
    /// Seconds spent expanding placements, partitioning guarantees and
    /// routing paths (`expand_secs + route_secs`).
    pub build_secs: f64,
    /// Seconds expanding tenants into flow classes: for the incremental
    /// engine, only tenants whose placement changed since the last solve
    /// (including their route-cache fills); for the batch solver, all of
    /// `build_secs`.
    pub expand_secs: f64,
    /// Seconds assembling the fluid flow set from the routed bundles
    /// (zero for the batch solver, which interleaves it with expansion).
    pub route_secs: f64,
    /// Seconds spent in the fluid max-min solve itself.
    pub solve_secs: f64,
    /// Seconds of `solve_secs` spent in cold per-component solves. The
    /// batch solver's whole solve is one cold pass, so here it equals
    /// `solve_secs`.
    pub solve_cold_secs: f64,
    /// Seconds of `solve_secs` spent in warm-start attempts and their
    /// verification (zero for the batch solver).
    pub solve_warm_secs: f64,
    /// Connected components the solver re-solved this step (the batch
    /// solver always re-solves everything as one component).
    pub components_dirty: usize,
    /// Connected components among links carrying at least one flow.
    pub components_total: usize,
    /// Largest used/capacity over ECMP sub-links (links split `ways > 1`
    /// ways); 0 when nothing is split. Compared against
    /// `ecmp_mean_utilization` this measures hash-collision imbalance in
    /// the fat-tree core (EqualSplit keeps the two equal by construction).
    pub ecmp_max_utilization: f64,
    /// Mean used/capacity over ECMP sub-links; 0 when nothing is split.
    pub ecmp_mean_utilization: f64,
    /// Seconds scoring solved rates into summaries, levels and violations
    /// (the batch solver folds this into the caller-visible wall time but
    /// reports it as zero).
    pub score_secs: f64,
}

impl TrafficReport {
    /// Tenants with at least one violated pair.
    pub fn violating_tenants(&self) -> usize {
        self.tenants.iter().filter(|t| t.violations > 0).count()
    }

    /// The solved flow for one `(tenant, src, dst)` pair, if active.
    pub fn pair(&self, tenant: u64, src: usize, dst: usize) -> Option<&PairFlow> {
        self.flows
            .iter()
            .find(|f| f.tenant == tenant && f.src == src && f.dst == dst)
    }

    /// Largest `max_utilization` across all levels.
    pub fn max_link_utilization(&self) -> f64 {
        self.levels
            .iter()
            .map(|l| l.max_utilization)
            .fold(0.0, f64::max)
    }
}

/// Shortfalls below this are float noise, not violations.
#[inline]
fn violation_tol(intent: f64) -> f64 {
    1e-3 + 1e-6 * intent.abs()
}

/// Run every tenant's flows over the physical tree and solve the shared
/// weighted max-min network (see the [module docs](self)).
///
/// # Panics
/// Panics if a tenant's `vm_server` names a node that is not a server of
/// `topo`, or an explicit active pair indexes past the tenant's VMs (the
/// cluster layer validates both before calling).
pub fn solve(topo: &Topology, tenants: &[TenantTraffic]) -> TrafficReport {
    let t_build = Instant::now();
    let num_levels = topo.num_levels();

    // One fluid link per direction of every uplink in the tree, at full
    // physical capacity (reservations are admission bookkeeping; the
    // traffic engine models what the wire actually carries).
    let mut net = Fluid::new();
    let mut up_of = vec![usize::MAX; topo.num_nodes()];
    let mut dn_of = vec![usize::MAX; topo.num_nodes()];
    let mut link_level: Vec<usize> = Vec::new();
    for idx in 0..topo.num_nodes() {
        let n = NodeId(idx as u32);
        if let Some((cap_up, cap_dn)) = topo.uplink_capacity(n) {
            up_of[idx] = net.link(cap_up as f64);
            dn_of[idx] = net.link(cap_dn as f64);
            let l = topo.level(n) as usize;
            link_level.push(l);
            link_level.push(l);
        }
    }

    let mut flows: Vec<PairFlow> = Vec::new();
    let mut summaries: Vec<TenantSummary> = Vec::with_capacity(tenants.len());
    // Flows are pushed tenant by tenant; the per-tenant range into `flows`
    // attributes them back positionally (ids need not be unique).
    let mut flow_ranges: Vec<std::ops::Range<usize>> = Vec::with_capacity(tenants.len());
    // Fluid-flow index -> index into `flows`, to write solved rates back.
    let mut fluid_to_pair: Vec<u32> = Vec::new();
    let mut path = Vec::with_capacity(2 * num_levels);
    let mut scratch = PairScratch::default();
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();

    for tenant in tenants {
        tenant.pairs_into(&mut scratch, &mut pairs);
        let pairs = &pairs;
        // Floors under the tenant's enforcement model; intents are always
        // the TAG-model partition (what the abstraction promised).
        let enforcer = Enforcer::new_shared(
            Arc::clone(&tenant.tag),
            tenant.vm_tier.clone(),
            tenant.model,
        );
        let floors = enforcer.partition(pairs);
        let intents = if tenant.model == GuaranteeModel::Tag {
            None // floors already are the intents
        } else {
            let tag_enforcer = Enforcer::new_shared(
                Arc::clone(&tenant.tag),
                tenant.vm_tier.clone(),
                GuaranteeModel::Tag,
            );
            Some(tag_enforcer.partition(pairs))
        };

        let flows_start = flows.len();
        let mut summary = TenantSummary {
            id: tenant.id,
            vms: tenant.vm_tier.len(),
            pairs: pairs.len(),
            cross_pairs: 0,
            intent_kbps: 0.0,
            achieved_kbps: 0.0,
            violations: 0,
            worst_shortfall_kbps: 0.0,
        };
        for (i, &(s, d, demand)) in pairs.iter().enumerate() {
            let floor = floors[i].kbps;
            let intent = intents.as_ref().map(|v| v[i].kbps).unwrap_or(floor);
            let (src_srv, dst_srv) = (tenant.vm_server[s], tenant.vm_server[d]);
            let colocated = src_srv == dst_srv;
            if colocated {
                flows.push(PairFlow {
                    tenant: tenant.id,
                    src: s,
                    dst: d,
                    floor_kbps: floor,
                    intent_kbps: intent,
                    rate_kbps: intent,
                    colocated: true,
                });
                continue;
            }
            summary.cross_pairs += 1;
            summary.intent_kbps += intent;
            path.clear();
            path_links(topo, src_srv, dst_srv, &up_of, &dn_of, &mut path);
            let mut spec = FlowSpec::greedy(path.clone()).with_guarantee(floor);
            spec.demand = demand;
            fluid_to_pair.push(flows.len() as u32);
            net.flow(spec);
            flows.push(PairFlow {
                tenant: tenant.id,
                src: s,
                dst: d,
                floor_kbps: floor,
                intent_kbps: intent,
                rate_kbps: 0.0,
                colocated: false,
            });
        }
        flow_ranges.push(flows_start..flows.len());
        summaries.push(summary);
    }
    let build_secs = t_build.elapsed().as_secs_f64();

    // One shared solve across every tenant (reusing the output vector is
    // moot here — the network is rebuilt per call — but keeps the hot
    // entry point exercised).
    let t_solve = Instant::now();
    let mut rates = Vec::new();
    net.rates_into(&mut rates);
    let solve_secs = t_solve.elapsed().as_secs_f64();
    let work_conserving = net.is_work_conserving(&rates);
    for (fi, &pi) in fluid_to_pair.iter().enumerate() {
        flows[pi as usize].rate_kbps = rates[fi];
    }

    // Score achieved rates against intents, per tenant.
    let mut total_rate_kbps = 0.0;
    let mut violations = 0usize;
    for (s, range) in summaries.iter_mut().zip(&flow_ranges) {
        for f in &flows[range.clone()] {
            if f.colocated {
                continue;
            }
            s.achieved_kbps += f.rate_kbps;
            total_rate_kbps += f.rate_kbps;
            if f.violated() {
                s.violations += 1;
                violations += 1;
                s.worst_shortfall_kbps = s.worst_shortfall_kbps.max(f.intent_kbps - f.rate_kbps);
            }
        }
    }

    // Link utilization per tree level.
    let mut used = vec![0.0f64; net.num_links()];
    for (spec, &r) in net.flows().iter().zip(&rates) {
        for &l in &spec.path {
            used[l] += r;
        }
    }
    let mut levels: Vec<LevelUtilization> = (0..num_levels.saturating_sub(1))
        .map(|level| LevelUtilization {
            level,
            links: 0,
            mean_utilization: 0.0,
            max_utilization: 0.0,
            saturated: 0,
        })
        .collect();
    for (l, &u) in used.iter().enumerate() {
        let cap = net.link_cap(l);
        let util = if cap > 0.0 { u / cap } else { 0.0 };
        let lv = &mut levels[link_level[l]];
        lv.links += 1;
        lv.mean_utilization += util;
        lv.max_utilization = lv.max_utilization.max(util);
        if util >= 0.999 {
            lv.saturated += 1;
        }
    }
    for lv in &mut levels {
        if lv.links > 0 {
            lv.mean_utilization /= lv.links as f64;
        }
    }

    let cross_flows = fluid_to_pair.len();
    let colocated_flows = flows.len() - cross_flows;
    TrafficReport {
        tenants: summaries,
        flows,
        levels,
        cross_flows,
        colocated_flows,
        total_rate_kbps,
        work_conserving,
        violations,
        fluid_flows: cross_flows,
        build_secs,
        expand_secs: build_secs,
        route_secs: 0.0,
        solve_secs,
        solve_cold_secs: solve_secs,
        solve_warm_secs: 0.0,
        components_dirty: 1,
        components_total: 1,
        ecmp_max_utilization: 0.0,
        ecmp_mean_utilization: 0.0,
        score_secs: 0.0,
    }
}

/// Append the directional links of the physical route `src -> dst` (both
/// servers): uplinks from `src` to the lowest common ancestor, then
/// downlinks from the LCA to `dst`.
fn path_links(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    up_of: &[usize],
    dn_of: &[usize],
    out: &mut Vec<usize>,
) {
    debug_assert!(topo.is_server(src) && topo.is_server(dst) && src != dst);
    let dst_idx = topo.server_dfs_index(dst);
    // Ascend until the subtree covers the destination (the root always
    // does, so the walk terminates).
    let mut a = src;
    while !topo.server_range(a).contains(&dst_idx) {
        out.push(up_of[a.index()]);
        a = topo.parent(a).expect("root covers every server"); // cm-analyze: allow(no-unwrap-in-hot-path) -- the root's server range contains every dst, so the walk stops before it
    }
    // Descend: collect the destination-side downlinks bottom-up, then
    // reverse them into path order.
    let mark = out.len();
    let mut b = dst;
    while b != a {
        out.push(dn_of[b.index()]);
        b = topo.parent(b).expect("LCA is above dst"); // cm-analyze: allow(no-unwrap-in-hot-path) -- the loop target `a` is an ancestor of dst by the ascent above
    }
    out[mark..].reverse();
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::model::TagBuilder;
    use cm_topology::{mbps, TreeSpec};

    /// 2 pods × 2 racks × 2 servers, 4 slots each; NICs 1 Gbps.
    fn topo() -> Topology {
        Topology::build(&TreeSpec::small(
            2,
            2,
            2,
            4,
            [mbps(1000.0), mbps(4000.0), mbps(8000.0)],
        ))
    }

    fn two_tier_tag(n_a: u32, n_b: u32, bw_kbps: u64) -> Arc<Tag> {
        let mut b = TagBuilder::new("t");
        let a = b.tier("a", n_a);
        let z = b.tier("b", n_b);
        b.sym_edge(a, z, bw_kbps).unwrap();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn colocated_pairs_bypass_the_network() {
        let topo = topo();
        let s = topo.servers()[0];
        let tag = two_tier_tag(1, 1, 100_000);
        let t = TenantTraffic {
            id: 7,
            tag: Arc::clone(&tag),
            vm_tier: vec![TierId(0), TierId(1)],
            vm_server: vec![s, s],
            model: GuaranteeModel::Tag,
            active: None,
        };
        let r = solve(&topo, &[t]);
        assert_eq!(r.cross_flows, 0);
        assert_eq!(r.colocated_flows, 2); // both directions of the edge
        assert_eq!(r.violations, 0);
        assert!(r.flows.iter().all(|f| f.colocated));
        assert_eq!(r.total_rate_kbps, 0.0);
    }

    #[test]
    fn cross_rack_pair_is_routed_over_six_links() {
        let topo = topo();
        // Servers 0 and last: different pods — path = 3 up + 3 down.
        let s0 = topo.servers()[0];
        let s7 = *topo.servers().last().unwrap();
        let tag = two_tier_tag(1, 1, 100_000);
        let t = TenantTraffic {
            id: 1,
            tag,
            vm_tier: vec![TierId(0), TierId(1)],
            vm_server: vec![s0, s7],
            model: GuaranteeModel::Tag,
            active: Some(vec![(0, 1)]),
        };
        let r = solve(&topo, &[t]);
        assert_eq!(r.cross_flows, 1);
        // The lone greedy flow grabs the whole 1 Gbps NIC bottleneck.
        let f = r.pair(1, 0, 1).unwrap();
        assert!((f.rate_kbps - 1_000_000.0).abs() < 1e-3, "{f:?}");
        assert!(r.work_conserving);
        // NIC level fully utilized on the two servers' links.
        assert!((r.levels[0].max_utilization - 1.0).abs() < 1e-9);
        // The route crosses exactly 2 directional links per level (src-side
        // up + dst-side down at the NIC, ToR and aggregation stages): each
        // level's carried kbps — mean utilization × links × per-link
        // capacity — must equal 2 × rate, pinning the 6-link path.
        let caps = [mbps(1000.0), mbps(4000.0), mbps(8000.0)];
        for (lv, &cap) in r.levels.iter().zip(&caps) {
            let carried = lv.mean_utilization * lv.links as f64 * cap as f64;
            assert!(
                (carried - 2.0 * f.rate_kbps).abs() < 1.0,
                "level {}: carried {carried} kbps, want 2 × {}",
                lv.level,
                f.rate_kbps
            );
        }
    }

    #[test]
    fn two_tenants_share_a_bottleneck_guarantee_proportionally() {
        let topo = topo();
        let s0 = topo.servers()[0];
        let s1 = topo.servers()[1]; // same rack: server NICs + ToR links
        let mk = |id: u64, g_kbps: u64| {
            let tag = two_tier_tag(1, 1, g_kbps);
            TenantTraffic {
                id,
                tag,
                vm_tier: vec![TierId(0), TierId(1)],
                vm_server: vec![s0, s1],
                model: GuaranteeModel::Tag,
                active: Some(vec![(0, 1)]),
            }
        };
        // Guarantees 600 + 200 Mbps over a shared 1 Gbps NIC path: floors
        // granted, spare 200 split 3:1.
        let r = solve(&topo, &[mk(1, 600_000), mk(2, 200_000)]);
        assert_eq!(r.cross_flows, 2);
        let f1 = r.pair(1, 0, 1).unwrap();
        let f2 = r.pair(2, 0, 1).unwrap();
        assert!((f1.rate_kbps - 750_000.0).abs() < 1.0, "{f1:?}");
        assert!((f2.rate_kbps - 250_000.0).abs() < 1.0, "{f2:?}");
        assert_eq!(r.violations, 0);
        assert!(r.work_conserving);
        assert!((r.total_rate_kbps - 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn all_pairs_expansion_matches_tag_edges() {
        let topo = topo();
        let servers = topo.servers();
        let tag = two_tier_tag(2, 2, 50_000);
        let t = TenantTraffic {
            id: 3,
            tag,
            vm_tier: vec![TierId(0), TierId(0), TierId(1), TierId(1)],
            vm_server: vec![servers[0], servers[1], servers[2], servers[3]],
            model: GuaranteeModel::Tag,
            active: None,
        };
        let r = solve(&topo, &[t]);
        // sym_edge = 2 directed edges × 2 src VMs × 2 dst VMs = 8 pairs.
        assert_eq!(r.flows.len(), 8);
        assert_eq!(r.cross_flows, 8);
        assert_eq!(r.violations, 0);
    }
}
