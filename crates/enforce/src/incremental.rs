//! Incremental, component-scoped fluid solver: per-step solve cost
//! proportional to the *churned* part of the network, not the whole of it.
//!
//! Weighted max-min fairness decomposes exactly over the connected
//! components of the flow/link graph: a component's allocation depends
//! only on its own flows and links, never on the rest of the network.
//! [`IncrementalFluid`] exploits that three ways:
//!
//! * **Component partition, maintained incrementally.** Links are the
//!   vertices of a union-find; every flow unions the links on its path.
//!   Flow insertion extends the partition in `O(|path| α)`; removal marks
//!   the partition stale and the next solve rebuilds it from the surviving
//!   flows in `O(links + Σ|path| α)` — cheap next to any solve.
//! * **Dirty-set solving.** Every link on the path of a flow added or
//!   removed since the last solve is *touched*; a component is dirty iff
//!   it contains a touched link. Only dirty components are re-solved;
//!   untouched components keep their previous rates **verbatim**. This is
//!   exact, not approximate: a removed flow touches every link it crossed,
//!   and any surviving flow sharing a link with churn has that link in its
//!   component, so a component with no touched link faced the identical
//!   subproblem last step.
//! * **Localized rounds.** Even an all-dirty step is far cheaper than one
//!   global [`Fluid::rates`] call: each progressive-filling round scans
//!   only the component's links instead of every link in the network, so
//!   total cost is `Σ_c rounds_c × links_c` instead of
//!   `rounds_total × links_total` — orders of magnitude less on a fat-tree
//!   where placement keeps tenants in rack/pod-scoped components.
//!
//! ## Warm start
//!
//! After each solve the component's links record their **water level**:
//! the phase-2 fill at which the link saturated (`∞` if it did not). A
//! dirty component is first attempted *warm*: phase 1 (floors) runs as in
//! the cold solve, then the previously saturated links are processed in
//! ascending water order, each freezing its remaining flows at the fill
//! level its residual capacity supports in closed form — skipping the
//! event-by-event filling loop entirely. The warm result is accepted only
//! if it passes a strict per-component max-min verification (caps,
//! demands, floors, work conservation and the KKT bottleneck condition,
//! with the same tolerances as [`Fluid::verify_max_min`]); any failure —
//! or a structural bail-out such as a negative closed-form level or a
//! greedy flow left unbounded — falls back to the **cold** per-component
//! solve, which replicates the [`Fluid::rates`] arithmetic exactly on the
//! component's local arrays.
//!
//! ## Determinism
//!
//! Cold component solves are canonical: flows are ordered by a
//! caller-supplied `(tenant, sequence)` key and links ascending, so the
//! allocation is a pure function of the surviving flow set — an engine
//! that churned through any history cold-solves bit-identically to a
//! fresh one. Warm solves agree with cold within the verification
//! tolerance (and are discarded otherwise). All solver scratch — rate
//! vectors, per-link indexes, freeze queues — is pooled across steps.

use crate::fluid::{tol, FlowSpec, Fluid};
use std::time::Instant;

/// What one [`IncrementalFluid::solve`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Seconds spent in cold per-component solves (including the phase-1
    /// floor pass of components whose warm attempt was discarded).
    pub cold_secs: f64,
    /// Seconds spent in warm attempts (accepted or discarded) and their
    /// verification.
    pub warm_secs: f64,
    /// Components re-solved this step.
    pub components_dirty: usize,
    /// Connected components among links carrying at least one flow.
    pub components_total: usize,
}

/// A [`Fluid`] network solved component-by-component under churn (see the
/// [module docs](self)). Flows are addressed by **stable ids** that
/// survive the underlying network's swap-removals.
#[derive(Debug)]
pub struct IncrementalFluid {
    net: Fluid,
    /// Stable id → dense flow index (`u32::MAX` when free).
    slots: Vec<u32>,
    /// Free stable ids available for reuse.
    free: Vec<u32>,
    /// Dense flow index → stable id.
    slot_of: Vec<u32>,
    /// Dense flow index → canonical sort key (tenant id, sequence).
    keys: Vec<(u64, u32)>,
    /// Dense flow index → last solved rate.
    rates: Vec<f64>,
    /// Union-find parent per link.
    parent: Vec<u32>,
    /// Links on the path of a flow added/removed since the last solve.
    touched: Vec<bool>,
    touched_links: Vec<u32>,
    /// Per-link water level from the previous solve (`∞` = unsaturated).
    water: Vec<f64>,
    /// A removal invalidated the union-find; rebuild before solving.
    partition_stale: bool,
    /// Test knob: skip warm attempts entirely.
    force_cold: bool,
    scratch: Scratch,
}

/// Pooled solver scratch, reused across steps and components.
#[derive(Debug, Default)]
struct Scratch {
    /// Monotone stamp for the epoch-stamped maps below.
    stamp: u64,
    /// Root link → stamp of the solve that marked it dirty.
    root_dirty: Vec<u64>,
    /// Root link → stamp + component id of the current solve.
    root_comp_stamp: Vec<u64>,
    root_comp_id: Vec<u32>,
    /// Component id → dirty-bucket slot (`u32::MAX` = clean).
    dirty_slots: Vec<u32>,
    /// Dirty-bucket slot → the component's links, ascending.
    comp_links: Vec<Vec<u32>>,
    /// Dense flow index → stamp of the component gather that saw it.
    flow_seen: Vec<u64>,
    /// The dirty component's flows (dense indices, canonical order).
    comp_flows: Vec<u32>,
    /// Global link → local index within the component being solved.
    link_local: Vec<u32>,
    link_stamp: Vec<u64>,
    /// Local link → global link / capacity / member flows (local indices).
    lglobal: Vec<u32>,
    lcaps: Vec<f64>,
    lflows: Vec<Vec<u32>>,
    /// Local per-flow state.
    base: Vec<f64>,
    rate: Vec<f64>,
    warm_rate: Vec<f64>,
    active: Vec<bool>,
    finite: Vec<u32>,
    /// Local per-link state.
    used: Vec<f64>,
    residual: Vec<f64>,
    warm_residual: Vec<f64>,
    wsum: Vec<f64>,
    wcount: Vec<u32>,
    max_fill: Vec<f64>,
    to_freeze: Vec<u32>,
    /// Warm hypothesis: previously saturated links, ascending water level.
    hyp: Vec<(f64, u32)>,
    /// Global per-link usage for the pooled work-conservation check.
    used_global: Vec<f64>,
}

fn find(parent: &mut [u32], mut x: u32) -> u32 {
    // Path halving: every link is found at least once per solve, so the
    // forest stays effectively flat.
    while parent[x as usize] != x {
        let p = parent[x as usize];
        parent[x as usize] = parent[p as usize];
        x = parent[p as usize];
    }
    x
}

fn union(parent: &mut [u32], a: u32, b: u32) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra != rb {
        parent[rb as usize] = ra;
    }
}

impl IncrementalFluid {
    /// Wrap a network whose links are laid out but which carries no flows
    /// yet (the [`crate::route::RouteCache::build`] contract).
    pub fn new(net: Fluid) -> Self {
        assert_eq!(net.num_flows(), 0, "wrap an empty network");
        let nl = net.num_links();
        IncrementalFluid {
            net,
            slots: Vec::new(),
            free: Vec::new(),
            slot_of: Vec::new(),
            keys: Vec::new(),
            rates: Vec::new(),
            parent: (0..nl as u32).collect(),
            touched: vec![false; nl],
            touched_links: Vec::new(),
            water: vec![f64::INFINITY; nl],
            partition_stale: false,
            force_cold: false,
            scratch: Scratch::default(),
        }
    }

    /// The wrapped network (flows in dense order, aligned with
    /// [`IncrementalFluid::rates`]).
    pub fn fluid(&self) -> &Fluid {
        &self.net
    }

    /// Number of live flows.
    pub fn num_flows(&self) -> usize {
        self.net.num_flows()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.net.num_links()
    }

    /// Skip warm attempts and always cold-solve dirty components (test
    /// knob; the differential tests pin warm ≡ cold through it).
    pub fn set_force_cold(&mut self, on: bool) {
        self.force_cold = on;
    }

    /// Add a flow under a canonical `(tenant, sequence)` ordering key;
    /// returns a stable id valid until `remove_flow`/`clear_flows`.
    pub fn add_flow(&mut self, spec: FlowSpec, key: (u64, u32)) -> u32 {
        for k in 0..spec.path.len() {
            let l = spec.path[k];
            if !self.touched[l] {
                self.touched[l] = true;
                self.touched_links.push(l as u32);
            }
            if k > 0 {
                union(&mut self.parent, spec.path[0] as u32, l as u32);
            }
        }
        let dense = self.net.flow(spec) as u32;
        debug_assert_eq!(dense as usize, self.slot_of.len());
        let stable = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = dense;
                s
            }
            None => {
                self.slots.push(dense);
                (self.slots.len() - 1) as u32
            }
        };
        self.slot_of.push(stable);
        self.keys.push(key);
        self.rates.push(0.0);
        stable
    }

    /// Remove the flow behind stable id `id`. Its links are touched (their
    /// component re-solves next step) and the partition is rebuilt lazily.
    pub fn remove_flow(&mut self, id: u32) {
        let dense = self.slots[id as usize] as usize;
        let path_len = self.net.flows()[dense].path.len();
        for k in 0..path_len {
            let l = self.net.flows()[dense].path[k];
            if !self.touched[l] {
                self.touched[l] = true;
                self.touched_links.push(l as u32);
            }
        }
        self.partition_stale = true;
        self.net.remove_flow(dense);
        self.slots[id as usize] = u32::MAX;
        self.free.push(id);
        // Mirror the network's swap-remove on the dense-indexed state.
        self.slot_of.swap_remove(dense);
        self.keys.swap_remove(dense);
        self.rates.swap_remove(dense);
        if dense < self.slot_of.len() {
            self.slots[self.slot_of[dense] as usize] = dense as u32;
        }
    }

    /// Change the capacity of link `l` (fault injection / repair),
    /// touching it so the component whose flows cross it re-solves on the
    /// next [`IncrementalFluid::solve`]. A link no flow crosses affects no
    /// component and is skipped by the solver's dirty marking. Returns
    /// whether the capacity actually changed.
    pub fn set_link_cap(&mut self, l: usize, cap_kbps: f64) -> bool {
        // cm-analyze: allow(float-eq) -- intentional bit-exact "did the stored capacity change at all" dirty check; no arithmetic feeds either side
        if self.net.link_cap(l) == cap_kbps {
            return false;
        }
        self.net.set_link_cap(l, cap_kbps);
        if !self.touched[l] {
            self.touched[l] = true;
            self.touched_links.push(l as u32);
        }
        true
    }

    /// Drop every flow; links, capacities and scratch allocations survive.
    pub fn clear_flows(&mut self) {
        self.net.clear_flows();
        self.slots.clear();
        self.free.clear();
        self.slot_of.clear();
        self.keys.clear();
        self.rates.clear();
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i as u32;
        }
        self.touched.iter_mut().for_each(|t| *t = false);
        self.touched_links.clear();
        self.water.iter_mut().for_each(|w| *w = f64::INFINITY);
        self.partition_stale = false;
    }

    /// Last solved rate of the flow behind stable id `id`.
    pub fn rate_of(&self, id: u32) -> f64 {
        self.rates[self.slots[id as usize] as usize]
    }

    /// The flow behind stable id `id` (callers iterating flows in a
    /// canonical stable-id order rather than dense order, e.g. for
    /// order-independent link-utilization sums).
    pub fn flow_of(&self, id: u32) -> &FlowSpec {
        &self.net.flows()[self.slots[id as usize] as usize]
    }

    /// Last solved rates in dense order (aligned with
    /// `self.fluid().flows()`).
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Whether the last solved allocation is work-conserving
    /// ([`Fluid::is_work_conserving`] semantics, pooled buffers).
    pub fn is_work_conserving(&mut self) -> bool {
        let used = &mut self.scratch.used_global;
        used.clear();
        used.resize(self.net.num_links(), 0.0);
        for (f, &r) in self.net.flows().iter().zip(&self.rates) {
            for &l in &f.path {
                used[l] += r;
            }
        }
        for (l, &u) in used.iter().enumerate() {
            if u > self.net.link_cap(l) + tol(self.net.link_cap(l)) {
                return false;
            }
        }
        let net = &self.net;
        let sat = |l: usize| used[l] >= net.link_cap(l) - tol(net.link_cap(l));
        self.net.flows().iter().zip(&self.rates).all(|(f, &r)| {
            f.path.is_empty()
                || r + tol(f.demand.min(1e12)) >= f.demand
                || f.path.iter().any(|&l| sat(l))
        })
    }

    /// Re-solve every dirty component (warm first, cold on rejection),
    /// keep every clean component's rates verbatim, and return what was
    /// done. See the [module docs](self).
    pub fn solve(&mut self) -> SolveStats {
        if self.partition_stale {
            self.rebuild_partition();
            self.partition_stale = false;
        }
        let nl = self.net.num_links();
        let s = &mut self.scratch;
        s.root_dirty.resize(nl, 0);
        s.root_comp_stamp.resize(nl, 0);
        s.root_comp_id.resize(nl, 0);
        s.flow_seen.clear();
        s.flow_seen.resize(self.net.num_flows(), 0);
        s.link_local.resize(nl, 0);
        s.link_stamp.resize(nl, 0);
        s.stamp += 1;
        let stamp = s.stamp;

        // Mark the dirty roots; flowless touched links (all their flows
        // were removed) just reset their water level.
        for ti in 0..self.touched_links.len() {
            let l = self.touched_links[ti] as usize;
            self.touched[l] = false;
            if self.net.link_flows(l).is_empty() {
                self.water[l] = f64::INFINITY;
            } else {
                let root = find(&mut self.parent, l as u32);
                s.root_dirty[root as usize] = stamp;
            }
        }
        self.touched_links.clear();

        // One ascending link scan assigns component ids and buckets the
        // links of dirty components — the ascending order makes both the
        // component order and each component's link order canonical.
        let mut total = 0usize;
        let mut n_dirty = 0usize;
        s.dirty_slots.clear();
        for l in 0..nl {
            if self.net.link_flows(l).is_empty() {
                continue;
            }
            let root = find(&mut self.parent, l as u32) as usize;
            if s.root_comp_stamp[root] != stamp {
                s.root_comp_stamp[root] = stamp;
                s.root_comp_id[root] = total as u32;
                let slot = if s.root_dirty[root] == stamp {
                    if s.comp_links.len() <= n_dirty {
                        s.comp_links.push(Vec::new());
                    }
                    s.comp_links[n_dirty].clear();
                    n_dirty += 1;
                    (n_dirty - 1) as u32
                } else {
                    u32::MAX
                };
                s.dirty_slots.push(slot);
                total += 1;
            }
            let slot = s.dirty_slots[s.root_comp_id[root] as usize];
            if slot != u32::MAX {
                s.comp_links[slot as usize].push(l as u32);
            }
        }

        let mut stats = SolveStats {
            components_dirty: n_dirty,
            components_total: total,
            ..Default::default()
        };
        for slot in 0..n_dirty {
            solve_component(
                &self.net,
                &mut self.scratch,
                slot,
                &self.keys,
                &mut self.rates,
                &mut self.water,
                self.force_cold,
                &mut stats,
            );
        }
        stats
    }

    /// Rebuild the union-find from the surviving flows (removals cannot
    /// un-union in place).
    fn rebuild_partition(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i as u32;
        }
        for fi in 0..self.net.num_flows() {
            let path_len = self.net.flows()[fi].path.len();
            for k in 1..path_len {
                let a = self.net.flows()[fi].path[0] as u32;
                let b = self.net.flows()[fi].path[k] as u32;
                union(&mut self.parent, a, b);
            }
        }
    }
}

/// Solve one dirty component: gather its flows, try warm (unless forced
/// cold), verify, fall back to the canonical cold solve, then write rates
/// and refresh the component links' water levels.
#[allow(clippy::too_many_arguments)]
fn solve_component(
    net: &Fluid,
    s: &mut Scratch,
    slot: usize,
    keys: &[(u64, u32)],
    rates: &mut [f64],
    water: &mut [f64],
    force_cold: bool,
    stats: &mut SolveStats,
) {
    // Gather the component's flows via its links, dedup by stamp, and
    // sort by the canonical key so the local order is independent of the
    // churn history that built the link lists.
    s.stamp += 1;
    let stamp = s.stamp;
    s.comp_flows.clear();
    for &l in &s.comp_links[slot] {
        for &fi in net.link_flows(l as usize) {
            if s.flow_seen[fi as usize] != stamp {
                s.flow_seen[fi as usize] = stamp;
                s.comp_flows.push(fi);
            }
        }
    }
    s.comp_flows.sort_unstable_by_key(|&fi| keys[fi as usize]);

    // Local link remap (component links are already ascending).
    let nll = s.comp_links[slot].len();
    s.lglobal.clear();
    s.lcaps.clear();
    for (li, &l) in s.comp_links[slot].iter().enumerate() {
        s.link_local[l as usize] = li as u32;
        s.link_stamp[l as usize] = stamp;
        s.lglobal.push(l);
        s.lcaps.push(net.link_cap(l as usize));
    }
    if s.lflows.len() < nll {
        s.lflows.resize_with(nll, Vec::new);
    }
    for lf in &mut s.lflows[..nll] {
        lf.clear();
    }
    // Per-link member lists in canonical flow order: the local summation
    // order is a pure function of the flow set.
    for (i, &fi) in s.comp_flows.iter().enumerate() {
        for &l in &net.flows()[fi as usize].path {
            debug_assert_eq!(s.link_stamp[l], stamp, "flow path leaves its component");
            s.lflows[s.link_local[l] as usize].push(i as u32);
        }
    }

    // Phase 1 (shared by warm and cold): floors capped by demand, scaled
    // down on oversubscribed links — the Fluid::rates arithmetic on the
    // component's local arrays.
    let n = s.comp_flows.len();
    s.base.clear();
    for &fi in &s.comp_flows {
        let f = &net.flows()[fi as usize];
        s.base.push(f.floor.min(f.demand));
    }
    s.used.clear();
    s.used.resize(nll, 0.0);
    loop {
        for li in 0..nll {
            s.used[li] = s.lflows[li].iter().map(|&i| s.base[i as usize]).sum();
        }
        let mut worst: Option<(usize, f64)> = None;
        for (li, &u) in s.used.iter().enumerate() {
            if u > s.lcaps[li] * (1.0 + 1e-9) {
                let scale = s.lcaps[li] / u;
                if worst.is_none_or(|(_, sc)| scale < sc) {
                    worst = Some((li, scale));
                }
            }
        }
        match worst {
            Some((li, scale)) => {
                for &i in &s.lflows[li] {
                    s.base[i as usize] *= scale;
                }
            }
            None => break,
        }
    }
    s.residual.clear();
    s.residual
        .extend(s.lcaps.iter().zip(&s.used).map(|(&c, &u)| (c - u).max(0.0)));

    // Warm attempt from the previous water levels, accepted only if the
    // strict per-component verification passes. The hypothesis is the
    // component's previously saturated links, ascending water level
    // (ties broken by link index for determinism).
    let mut warm_ok = false;
    if !force_cold {
        s.hyp.clear();
        for li in 0..nll {
            let w = water[s.lglobal[li] as usize];
            if w.is_finite() {
                s.hyp.push((w, li as u32));
            }
        }
        s.hyp
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let t = Instant::now();
        warm_ok = warm_solve(net, s, nll);
        if warm_ok {
            warm_ok = verify_component(net, s, nll, true);
        }
        stats.warm_secs += t.elapsed().as_secs_f64();
    }
    if warm_ok {
        s.rate.clear();
        s.rate.extend_from_slice(&s.warm_rate[..n]);
    } else {
        let t = Instant::now();
        cold_solve(net, s, nll);
        stats.cold_secs += t.elapsed().as_secs_f64();
    }

    // Write back global rates and refresh the component's water levels
    // (fill above base at which each link saturated; ∞ if unsaturated).
    for (i, &fi) in s.comp_flows.iter().enumerate() {
        rates[fi as usize] = s.rate[i];
    }
    for li in 0..nll {
        let used: f64 = s.lflows[li].iter().map(|&i| s.rate[i as usize]).sum();
        let gl = s.lglobal[li] as usize;
        water[gl] = if used >= s.lcaps[li] - tol(s.lcaps[li]) {
            let mut lvl = 0.0f64;
            for &i in &s.lflows[li] {
                let i = i as usize;
                let f = &net.flows()[s.comp_flows[i] as usize];
                lvl = lvl.max((s.rate[i] - s.base[i]) / f.weight);
            }
            lvl
        } else {
            f64::INFINITY
        };
    }
}

/// The cold per-component solve: phase 2 of [`Fluid::rates`], replicated
/// with identical constants and event handling on the local arrays
/// (`s.base`/`s.residual` hold the shared phase-1 result).
fn cold_solve(net: &Fluid, s: &mut Scratch, nll: usize) {
    let n = s.comp_flows.len();
    s.rate.clear();
    s.rate.extend_from_slice(&s.base[..n]);
    let spec = |i: usize| &net.flows()[s.comp_flows[i] as usize];
    s.active.clear();
    for i in 0..n {
        s.active.push(s.rate[i] + 1e-9 < spec(i).demand);
    }
    s.wsum.clear();
    s.wsum.resize(nll, 0.0);
    s.wcount.clear();
    s.wcount.resize(nll, 0);
    // residual was consumed by a prior warm attempt's bookkeeping? No —
    // warm works on its own copy; s.residual still holds phase 1's.
    for i in 0..n {
        if s.active[i] {
            let f = spec(i);
            for &l in &f.path {
                let li = s.link_local[l] as usize;
                s.wsum[li] += f.weight;
                s.wcount[li] += 1;
            }
        }
    }
    s.finite.clear();
    for i in 0..n {
        if s.active[i] && spec(i).demand.is_finite() {
            s.finite.push(i as u32);
        }
    }
    let mut remaining = s.active.iter().filter(|&&a| a).count();
    let mut fill = 0.0f64;
    while remaining > 0 {
        let mut t = f64::INFINITY;
        let mut event_link: Option<usize> = None;
        let mut event_flow: Option<u32> = None;
        for (li, &w) in s.wsum.iter().enumerate() {
            if w > 0.0 {
                let tl = s.residual[li] / w;
                if tl < t {
                    t = tl;
                    event_link = Some(li);
                }
            }
        }
        for &i in &s.finite {
            let f = spec(i as usize);
            let tf = (f.demand - (s.rate[i as usize] + f.weight * fill)) / f.weight;
            if tf < t {
                t = tf;
                event_link = None;
                event_flow = Some(i);
            }
        }
        if !t.is_finite() {
            break;
        }
        let t = t.max(0.0);
        fill += t;
        for (li, r) in s.residual.iter_mut().enumerate() {
            if s.wsum[li] > 0.0 {
                *r -= s.wsum[li] * t;
            }
        }
        if let Some(li) = event_link {
            s.residual[li] = 0.0;
        }
        s.to_freeze.clear();
        for (li, r) in s.residual.iter().enumerate().take(nll) {
            if s.wcount[li] > 0 && *r <= 1e-6 {
                for &i in &s.lflows[li] {
                    if s.active[i as usize] {
                        s.to_freeze.push(i);
                    }
                }
            }
        }
        if let Some(i) = event_flow {
            s.to_freeze.push(i);
        }
        for &i in &s.finite {
            let f = spec(i as usize);
            if s.active[i as usize] && s.rate[i as usize] + f.weight * fill + 1e-6 >= f.demand {
                s.to_freeze.push(i);
            }
        }
        let mut frozen = 0usize;
        for k in 0..s.to_freeze.len() {
            let i = s.to_freeze[k] as usize;
            if !s.active[i] {
                continue;
            }
            s.active[i] = false;
            let f = spec(i);
            s.rate[i] = (s.rate[i] + f.weight * fill).min(f.demand);
            for &l in &f.path {
                let li = s.link_local[l] as usize;
                s.wsum[li] -= f.weight;
                s.wcount[li] -= 1;
                if s.wcount[li] == 0 {
                    s.wsum[li] = 0.0;
                }
            }
            remaining -= 1;
            frozen += 1;
        }
        if !s.finite.is_empty() {
            let active = &s.active;
            s.finite.retain(|&i| active[i as usize]);
        }
        debug_assert!(
            frozen > 0,
            "filling round froze no flow: termination invariant broken"
        );
    }
    for i in 0..n {
        if s.active[i] {
            s.rate[i] += spec(i).weight * fill;
        }
    }
}

/// Warm attempt: freeze flows link-by-link in ascending previous water
/// order, computing each link's saturation fill in closed form. Returns
/// `false` on any structural bail-out (the caller then cold-solves).
/// Writes the candidate into `s.warm_rate`; acceptance is decided by
/// [`verify_component`].
fn warm_solve(net: &Fluid, s: &mut Scratch, nll: usize) -> bool {
    let n = s.comp_flows.len();
    let spec = |i: usize| &net.flows()[s.comp_flows[i] as usize];
    // The hypothesis (`s.hyp`) was prepared by `solve_component` from the
    // previous water levels; an empty one means nothing saturated last
    // step, so the closed-form path has nothing to anchor on.
    if s.hyp.is_empty() {
        return n == 0;
    }
    s.warm_rate.clear();
    s.warm_rate.extend_from_slice(&s.base[..n]);
    s.warm_residual.clear();
    s.warm_residual.extend_from_slice(&s.residual[..nll]);
    s.active.clear();
    for i in 0..n {
        // `active` doubles as "unfrozen" here.
        s.active.push(s.warm_rate[i] + 1e-9 < spec(i).demand);
    }
    let mut unfrozen = s.active.iter().filter(|&&a| a).count();
    for hi in 0..s.hyp.len() {
        let li = s.hyp[hi].1 as usize;
        loop {
            let mut frozen_extra = 0.0f64;
            let mut wub = 0.0f64;
            let mut n_unfrozen = 0usize;
            for &i in &s.lflows[li] {
                let i = i as usize;
                if s.active[i] {
                    wub += spec(i).weight;
                    n_unfrozen += 1;
                } else {
                    frozen_extra += s.warm_rate[i] - s.base[i];
                }
            }
            if n_unfrozen == 0 {
                break;
            }
            let t = (s.warm_residual[li] - frozen_extra) / wub;
            if !t.is_finite() || t < -1e-9 {
                return false;
            }
            let t = t.max(0.0);
            // Demand events first: a flow reaching its demand strictly
            // below the link's fill frees weight, raising the fill — so
            // freeze-and-recompute until none remain.
            let mut any_demand = false;
            for k in 0..s.lflows[li].len() {
                let i = s.lflows[li][k] as usize;
                if !s.active[i] {
                    continue;
                }
                let f = spec(i);
                if f.demand.is_finite() && f.demand - s.base[i] < f.weight * t {
                    s.active[i] = false;
                    s.warm_rate[i] = f.demand;
                    unfrozen -= 1;
                    any_demand = true;
                }
            }
            if any_demand {
                continue;
            }
            for k in 0..s.lflows[li].len() {
                let i = s.lflows[li][k] as usize;
                if !s.active[i] {
                    continue;
                }
                let f = spec(i);
                s.active[i] = false;
                s.warm_rate[i] = (s.base[i] + f.weight * t).min(f.demand);
                unfrozen -= 1;
            }
            break;
        }
    }
    // Flows no hypothesis link bounded: finite demands complete at their
    // demand; an unbounded greedy flow means the saturation structure
    // changed — bail to cold.
    if unfrozen > 0 {
        for i in 0..n {
            if !s.active[i] {
                continue;
            }
            let f = spec(i);
            if !f.demand.is_finite() {
                return false;
            }
            s.warm_rate[i] = f.demand;
        }
    }
    true
}

/// Strict per-component max-min verification of the candidate in
/// `s.warm_rate` (or `s.rate` when `warm` is false): caps, demands,
/// floors, work conservation and the KKT bottleneck condition, with
/// [`Fluid::verify_max_min`]'s tolerances.
fn verify_component(net: &Fluid, s: &mut Scratch, nll: usize, warm: bool) -> bool {
    let n = s.comp_flows.len();
    let spec = |i: usize| &net.flows()[s.comp_flows[i] as usize];
    let rate = if warm { &s.warm_rate } else { &s.rate };
    s.used.clear();
    s.used.resize(nll, 0.0);
    for li in 0..nll {
        s.used[li] = s.lflows[li].iter().map(|&i| rate[i as usize]).sum();
    }
    for li in 0..nll {
        if s.used[li] > s.lcaps[li] + tol(s.lcaps[li]) {
            return false;
        }
    }
    for (i, &r) in rate.iter().enumerate().take(n) {
        let f = spec(i);
        if r > f.demand + tol(f.demand.min(1e12)) {
            return false;
        }
        let floor = f.floor.min(f.demand);
        if r + tol(floor) < floor {
            return false;
        }
    }
    let sat = |li: usize| s.used[li] >= s.lcaps[li] - tol(s.lcaps[li]);
    // Work conservation + KKT in one pass over the flows.
    let fill = |i: usize, r: f64| {
        let f = spec(i);
        (r - f.floor.min(f.demand)) / f.weight
    };
    s.max_fill.clear();
    s.max_fill.resize(nll, f64::NEG_INFINITY);
    for (i, &r) in rate.iter().enumerate().take(n) {
        for &l in &spec(i).path {
            let li = s.link_local[l] as usize;
            s.max_fill[li] = s.max_fill[li].max(fill(i, r));
        }
    }
    for (i, &r) in rate.iter().enumerate().take(n) {
        let f = spec(i);
        if f.path.is_empty() || r + tol(f.demand.min(1e12)) >= f.demand {
            continue;
        }
        let mut crosses_sat = false;
        let mut bottlenecked = false;
        for &l in &f.path {
            let li = s.link_local[l] as usize;
            if sat(li) {
                crosses_sat = true;
                if fill(i, r) + 1e-6 * (1.0 + s.max_fill[li].abs()) >= s.max_fill[li] {
                    bottlenecked = true;
                    break;
                }
            }
        }
        if !crosses_sat || !bottlenecked {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build an incremental network over `caps`, returning it plus a
    /// plain `Fluid` sharing the link layout for reference solves.
    fn nets(caps: &[f64]) -> (IncrementalFluid, Fluid) {
        let mut a = Fluid::new();
        let mut b = Fluid::new();
        for &c in caps {
            a.link(c);
            b.link(c);
        }
        (IncrementalFluid::new(a), b)
    }

    fn close(x: f64, y: f64) -> bool {
        (x - y).abs() < 1e-6 * (1.0 + y.abs())
    }

    #[test]
    fn single_component_matches_global_solve() {
        let (mut inc, mut reference) = nets(&[900.0]);
        for k in 0..3 {
            inc.add_flow(FlowSpec::greedy(vec![0]), (1, k));
            reference.flow(FlowSpec::greedy(vec![0]));
        }
        let stats = inc.solve();
        assert_eq!(stats.components_total, 1);
        assert_eq!(stats.components_dirty, 1);
        let want = reference.rates();
        for (got, want) in inc.rates().iter().zip(&want) {
            assert!(close(*got, *want), "{got} vs {want}");
        }
        assert!(inc.is_work_conserving());
    }

    #[test]
    fn disjoint_components_skip_clean_ones() {
        let (mut inc, _) = nets(&[500.0, 500.0]);
        let a = inc.add_flow(FlowSpec::greedy(vec![0]), (1, 0));
        let _b = inc.add_flow(FlowSpec::greedy(vec![1]), (2, 0));
        let s1 = inc.solve();
        assert_eq!(s1.components_total, 2);
        assert_eq!(s1.components_dirty, 2);
        let rate_b_bits = inc.rates()[1].to_bits();
        // Churn only component 0: component 1 is skipped and its rate is
        // reused verbatim.
        inc.remove_flow(a);
        inc.add_flow(FlowSpec::greedy(vec![0]).with_guarantee(100.0), (1, 1));
        let s2 = inc.solve();
        assert_eq!(s2.components_total, 2);
        assert_eq!(s2.components_dirty, 1);
        let b_dense = 0; // b became dense 0 after a's swap-removal
        assert_eq!(inc.rates()[b_dense].to_bits(), rate_b_bits);
        // A no-op solve is all-clean.
        let s3 = inc.solve();
        assert_eq!(s3.components_dirty, 0);
        assert_eq!(s3.components_total, 2);
    }

    #[test]
    fn components_merge_and_split_under_churn() {
        let (mut inc, _) = nets(&[500.0, 500.0, 500.0]);
        inc.add_flow(FlowSpec::greedy(vec![0]), (1, 0));
        inc.add_flow(FlowSpec::greedy(vec![2]), (2, 0));
        assert_eq!(inc.solve().components_total, 2);
        // A spanning flow merges everything into one component.
        let bridge = inc.add_flow(FlowSpec::greedy(vec![0, 1, 2]), (3, 0));
        let s = inc.solve();
        assert_eq!(s.components_total, 1);
        assert_eq!(s.components_dirty, 1);
        // Removing it splits the partition again (lazy rebuild).
        inc.remove_flow(bridge);
        let s = inc.solve();
        assert_eq!(s.components_total, 2);
        assert_eq!(s.components_dirty, 2);
        assert!(inc.is_work_conserving());
    }

    #[test]
    fn warm_and_cold_agree_under_random_churn() {
        // xorshift64* churn over 10 links; every step the incremental
        // solver (warm path allowed) must match a forced-cold twin and a
        // from-scratch global solve within tolerance.
        let mut state = 0x1234_5678_u64;
        let mut next = move |m: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % m
        };
        let caps: Vec<f64> = (0..10).map(|i| 300.0 + 100.0 * i as f64).collect();
        let (mut warm, _) = nets(&caps);
        let (mut cold, _) = nets(&caps);
        cold.set_force_cold(true);
        let mut live: Vec<(u32, u32, FlowSpec)> = Vec::new();
        let mut seq = 0u32;
        for step in 0..300 {
            if !live.is_empty() && next(3) == 0 {
                let k = next(live.len());
                let (wa, co, _) = live.swap_remove(k);
                warm.remove_flow(wa);
                cold.remove_flow(co);
            } else {
                let a = next(caps.len());
                let b = next(caps.len());
                let mut path = vec![a];
                if b != a {
                    path.push(b);
                }
                let mut f = FlowSpec::greedy(path).with_guarantee((step % 4) as f64 * 80.0);
                if step % 5 == 0 {
                    f.demand = 120.0 + (step % 7) as f64 * 60.0;
                }
                seq += 1;
                let key = ((seq % 13) as u64, seq);
                let wa = warm.add_flow(f.clone(), key);
                let co = cold.add_flow(f.clone(), key);
                live.push((wa, co, f));
            }
            if step % 3 != 0 {
                continue; // let churn batch up between solves
            }
            warm.solve();
            cold.solve();
            // Warm ≡ forced-cold, flow by flow (dense orders may differ
            // after swap-removals; compare through the stable ids).
            for &(wa, co, _) in &live {
                let (x, y) = (warm.rate_of(wa), cold.rate_of(co));
                assert!(close(x, y), "step {step}: warm {x} vs cold {y}");
            }
            // And both match a global from-scratch solve.
            let mut fresh = Fluid::new();
            for &c in &caps {
                fresh.link(c);
            }
            for (_, _, f) in &live {
                fresh.flow(f.clone());
            }
            let want = fresh.rates();
            // verify_max_min assumes admissible floors; the random churn
            // can oversubscribe a link's floor sum (phase 1 then scales
            // floors down), so only run the strict verifier when the
            // floors actually fit.
            let mut floor_used = vec![0.0f64; caps.len()];
            for (_, _, f) in &live {
                for &l in &f.path {
                    floor_used[l] += f.floor.min(f.demand);
                }
            }
            if floor_used.iter().zip(&caps).all(|(&u, &c)| u <= c) {
                fresh.verify_max_min(&want).unwrap();
            }
            for (k, (wa, _, _)) in live.iter().enumerate() {
                let x = warm.rate_of(*wa);
                assert!(close(x, want[k]), "step {step}: {x} vs global {}", want[k]);
            }
            assert!(warm.is_work_conserving());
            assert!(cold.is_work_conserving());
        }
    }

    #[test]
    fn clear_flows_resets_everything() {
        let (mut inc, _) = nets(&[400.0, 400.0]);
        inc.add_flow(FlowSpec::greedy(vec![0, 1]), (1, 0));
        inc.solve();
        inc.clear_flows();
        assert_eq!(inc.num_flows(), 0);
        let s = inc.solve();
        assert_eq!(s.components_total, 0);
        let id = inc.add_flow(FlowSpec::greedy(vec![0]), (2, 0));
        inc.solve();
        assert!(close(inc.rate_of(id), 400.0));
    }
}
