//! # cm-enforce
//!
//! Runtime enforcement of TAG bandwidth guarantees (§5.2).
//!
//! The paper's prototype patches ElasticSwitch \[7\] — a distributed
//! hose-guarantee enforcer built from two layers:
//!
//! 1. **Guarantee Partitioning (GP)** divides each VM's hose guarantee
//!    among its currently-active peer VMs (max-min over their demands);
//!    a source-destination pair's guarantee is the minimum of the sender's
//!    and the receiver's shares.
//! 2. **Rate Allocation (RA)** is work-conserving: pairs may exceed their
//!    guarantees to use spare bandwidth, probing TCP-like; in steady state
//!    this approximates guarantee-weighted max-min fairness on the
//!    residual capacity.
//!
//! The TAG patch ("30 lines of code") changes only *which hose* a VM pair
//! charges: instead of one hose per VM, the pair is classified by the TAG
//! edge connecting its tiers (trunk or self-loop). That single change is
//! what isolates tier C1's traffic from C2's intra-tier traffic in Fig. 13
//! — and its absence is why the plain hose model fails in Fig. 4.
//!
//! The physical testbed is replaced by a **fluid-flow simulator**
//! ([`fluid`]): steady-state TCP throughput on a network of capacitated
//! links is max-min fair allocation, which progressive filling computes
//! exactly; ElasticSwitch's converged state is modeled by floors
//! (guarantees) plus guarantee-weighted filling of the spare
//! (see `DESIGN.md` for the substitution argument).
//!
//! [`datacenter`] scales the substitution to the whole datacenter: every
//! admitted tenant's placement expands into VM-pair flows routed over the
//! physical tree and solved as one shared weighted max-min network — the
//! Fig. 13/14 interference experiments *through the placement layer*
//! instead of on synthetic 2-link topologies. [`engine`] makes that solve
//! *incremental*: a persistent [`engine::TrafficEngine`] re-expands only
//! tenants whose placement changed, memoizes server-pair routes in an
//! LCA-keyed [`route::RouteCache`], bundles same-class VM pairs into
//! aggregate flows, and optionally models the fat-tree core as ECMP
//! multipath ([`route::EcmpConfig`]). The fluid solve itself is
//! incremental too: [`incremental::IncrementalFluid`] partitions the
//! flow/link graph into connected components, re-solves only the ones
//! churn touched, and warm-starts each from the previous step's per-link
//! water levels — the step that takes the engine to 100k+-server
//! fat-trees.

/// Tenant traffic reports and per-level utilization accounting.
pub mod datacenter;
/// Elasticity-aware bandwidth headroom for scaling tenants.
pub mod elastic;
/// The enforcement engine: admission of tenant traffic onto physical links.
pub mod engine;
/// Exact progressive-filling max-min fairness solver.
pub mod fluid;
/// Warm-started, component-scoped incremental wrapper around the fluid solver.
pub mod incremental;
/// Physical routing: LCA path derivation and ECMP spreading.
pub mod route;
/// Canned enforcement scenarios reproducing the paper's figures.
pub mod scenario;

pub use datacenter::{LevelUtilization, PairFlow, TenantSummary, TenantTraffic, TrafficReport};
pub use elastic::{split_guarantee, Enforcer, GuaranteeModel, PairGuarantee};
pub use engine::TrafficEngine;
pub use fluid::{FlowSpec, Fluid};
pub use incremental::{IncrementalFluid, SolveStats};
pub use route::{EcmpConfig, EcmpMode, RouteCache};
pub use scenario::{fig13_throughput, fig4_throughput, Fig13Point, Fig4Point};
