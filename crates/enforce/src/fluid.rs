//! Fluid-flow network: max-min fair rate allocation with floors, caps and
//! weights.
//!
//! Steady-state TCP throughput over a capacitated network is classically
//! modeled as (weighted) max-min fairness; progressive filling computes it
//! exactly in the fluid limit. Floors model enforced guarantees (rate
//! limiters never throttle a pair below its guarantee), caps model rate
//! limiters, weights model the guarantee-proportional spare sharing that
//! ElasticSwitch's probing converges to.
//!
//! [`Fluid::rates`] is engineered for datacenter-scale inputs (hundreds of
//! thousands of flows over thousands of links, see [`crate::datacenter`]):
//! it indexes flows per link once and advances a single global fill level,
//! so a whole solve costs `O(Σ|path| + links × rounds)` where every round
//! provably freezes at least one flow. The pre-rewrite `O(flows × links)`
//! scan survives as [`Fluid::rates_reference`] for differential testing.
//! The hot churn path uses [`Fluid::rates_into`] to reuse the output
//! allocation across steps.
//!
//! For solves under *churn* — where most of the network is unchanged
//! between calls — [`crate::incremental::IncrementalFluid`] wraps a
//! `Fluid` and re-solves only the connected components the churn touched,
//! warm-starting each from the previous step's per-link water levels (see
//! that module's docs for the partition and warm-start invariants).

/// One flow: a path over link indices plus its rate-control parameters.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Links the flow traverses (indices into the fluid network's links).
    /// Order is irrelevant; a link must not appear twice.
    pub path: Vec<usize>,
    /// Application demand (kbps; `f64::INFINITY` for a greedy TCP flow).
    pub demand: f64,
    /// Guaranteed floor (kbps) — granted before any fair sharing.
    pub floor: f64,
    /// Weight for sharing capacity beyond the floors.
    pub weight: f64,
}

impl FlowSpec {
    /// A greedy (infinite-demand) flow with no guarantee and unit weight.
    pub fn greedy(path: Vec<usize>) -> Self {
        FlowSpec {
            path,
            demand: f64::INFINITY,
            floor: 0.0,
            weight: 1.0,
        }
    }

    /// Set the guaranteed floor and use it as the sharing weight
    /// (ElasticSwitch shares spare bandwidth in proportion to guarantees).
    /// Only an exactly-zero guarantee keeps a token unit weight so the flow
    /// still participates in the fill; any positive guarantee — however
    /// small — shares spare capacity in exact proportion to it. (The old
    /// `g.max(1.0)` clamp made every sub-kbps guarantee share as if it were
    /// 1 kbps, collapsing unequal small guarantees into equal shares.)
    /// Note the declared discontinuity at zero: a sub-unit guarantee weighs
    /// *less* than the 1.0 token of an unguaranteed flow — guarantees are
    /// kbps-scale in practice, and callers who care can set
    /// [`FlowSpec::weight`] directly.
    pub fn with_guarantee(mut self, g: f64) -> Self {
        self.floor = g;
        self.weight = if g > 0.0 { g } else { 1.0 };
        self
    }
}

/// A fluid network: capacitated links and flows.
///
/// The per-link flow index is **maintained incrementally**: [`Fluid::flow`]
/// registers the new flow on each of its links, [`Fluid::remove_flow`]
/// detaches it in O(|path|), and [`Fluid::clear_flows`] drops every flow
/// while retaining links, capacities and the per-link vectors' allocations.
/// [`Fluid::rates`] therefore starts solving immediately instead of
/// rebuilding the index from scratch on every call — the contract the
/// incremental traffic engine ([`crate::engine`]) relies on when it reuses
/// one network across churn steps.
#[derive(Debug, Clone, Default)]
pub struct Fluid {
    caps: Vec<f64>,
    flows: Vec<FlowSpec>,
    /// `link_flows[l]` = indices of the flows crossing link `l`.
    link_flows: Vec<Vec<u32>>,
    /// `flow_pos[f][k]` = position of flow `f` inside
    /// `link_flows[flows[f].path[k]]`, so removal never scans a link list.
    flow_pos: Vec<Vec<u32>>,
}

impl Fluid {
    /// Create an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a link with the given capacity (kbps); returns its index.
    pub fn link(&mut self, cap_kbps: f64) -> usize {
        assert!(cap_kbps >= 0.0);
        self.caps.push(cap_kbps);
        self.link_flows.push(Vec::new());
        self.caps.len() - 1
    }

    /// Add a flow; returns its index.
    pub fn flow(&mut self, f: FlowSpec) -> usize {
        for (i, &l) in f.path.iter().enumerate() {
            assert!(l < self.caps.len(), "flow references unknown link {l}");
            debug_assert!(
                !f.path[..i].contains(&l),
                "flow path repeats link {l}; paths must be duplicate-free"
            );
        }
        assert!(f.floor >= 0.0 && f.weight > 0.0);
        let id = self.flows.len() as u32;
        let mut pos = Vec::with_capacity(f.path.len());
        for &l in &f.path {
            pos.push(self.link_flows[l].len() as u32);
            self.link_flows[l].push(id);
        }
        self.flow_pos.push(pos);
        self.flows.push(f);
        self.flows.len() - 1
    }

    /// Remove flow `i` in O(|path|): it is detached from every link it
    /// crosses and the **last** flow takes over its index (swap-remove), so
    /// callers tracking flow indices must apply that single rename.
    /// Returns the removed spec.
    pub fn remove_flow(&mut self, i: usize) -> FlowSpec {
        let path_len = self.flows[i].path.len();
        // Detach `i` from its links; each swap-removed hole is patched by
        // fixing the moved flow's cached position for that link.
        for k in 0..path_len {
            let l = self.flows[i].path[k];
            let p = self.flow_pos[i][k] as usize;
            self.link_flows[l].swap_remove(p);
            if p < self.link_flows[l].len() {
                let moved = self.link_flows[l][p] as usize;
                let slot = self.flows[moved]
                    .path
                    .iter()
                    .position(|&ml| ml == l)
                    .expect("indexed flow crosses the link"); // cm-analyze: allow(no-unwrap-in-hot-path) -- link_flows[l] only holds flows whose path contains l (kept in sync on insert/remove)
                self.flow_pos[moved][slot] = p as u32;
            }
        }
        let spec = self.flows.swap_remove(i);
        let _ = self.flow_pos.swap_remove(i);
        // The former last flow now lives at index `i`: update every link
        // list entry that still names it by its old index.
        if i < self.flows.len() {
            for (k, &l) in self.flows[i].path.iter().enumerate() {
                let p = self.flow_pos[i][k] as usize;
                self.link_flows[l][p] = i as u32;
            }
        }
        spec
    }

    /// Drop every flow while keeping all links and their capacities. The
    /// per-link index vectors and the flow vectors keep their allocations,
    /// so a clear-and-refill cycle allocates nothing in steady state.
    pub fn clear_flows(&mut self) {
        self.flows.clear();
        self.flow_pos.clear();
        for lf in &mut self.link_flows {
            lf.clear();
        }
    }

    /// Number of flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.caps.len()
    }

    /// Capacity of link `l` (kbps).
    pub fn link_cap(&self, l: usize) -> f64 {
        self.caps[l]
    }

    /// Change the capacity of link `l` (kbps) — fault injection / repair.
    /// Rates computed before the change are stale; the caller re-solves.
    pub fn set_link_cap(&mut self, l: usize, cap_kbps: f64) {
        assert!(cap_kbps >= 0.0);
        self.caps[l] = cap_kbps;
    }

    /// The flows in insertion order (rate vectors index into this).
    pub fn flows(&self) -> &[FlowSpec] {
        &self.flows
    }

    /// Indices of the flows currently crossing link `l` (arbitrary order;
    /// maintained incrementally by `flow`/`remove_flow`). The incremental
    /// component solver walks these to gather a component's flow set.
    pub fn link_flows(&self, l: usize) -> &[u32] {
        &self.link_flows[l]
    }

    /// Compute the weighted max-min fair allocation with floors.
    ///
    /// Phase 1 grants every flow its floor (capped by demand). Floors are
    /// assumed admissible (the placement layer reserved them); if they
    /// oversubscribe a link, they are scaled down proportionally on that
    /// link — mirroring what a real enforcer's rate limiters would do.
    /// Phase 2 progressively fills the remaining capacity in proportion to
    /// the flows' weights until each flow hits its demand or a saturated
    /// link.
    ///
    /// Termination is exact, not capped: every filling round either
    /// saturates the bottleneck link that produced the round's fill step
    /// (freezing its flows) or freezes the flow that reached its demand, so
    /// the loop runs at most `num_flows` rounds. On exit the allocation is
    /// debug-asserted work-conserving: every flow is demand-capped or
    /// crosses a saturated link.
    pub fn rates(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.rates_into(&mut out);
        out
    }

    /// [`Fluid::rates`] writing into a caller-owned vector (cleared first),
    /// so the per-step output allocation is reused across churn steps. The
    /// arithmetic is identical to `rates` — same order, same constants —
    /// and `rates` delegates here.
    pub fn rates_into(&self, out: &mut Vec<f64>) {
        out.clear();
        let n = self.flows.len();
        if n == 0 {
            return;
        }
        let nl = self.caps.len();
        // The per-link flow index is maintained by `flow`/`remove_flow`/
        // `clear_flows`, so the solve starts immediately — no O(Σ|path|)
        // rebuild per call.
        let link_flows = &self.link_flows;

        // Phase 1: floors capped by demand, defensively scaled on
        // oversubscribed links (worst link first, like the reference).
        out.extend(self.flows.iter().map(|f| f.floor.min(f.demand)));
        let rate = out;
        let mut used = vec![0.0f64; nl];
        loop {
            for (l, u) in used.iter_mut().enumerate() {
                *u = link_flows[l].iter().map(|&i| rate[i as usize]).sum();
            }
            let mut worst: Option<(usize, f64)> = None;
            for (l, &u) in used.iter().enumerate() {
                if u > self.caps[l] * (1.0 + 1e-9) {
                    let scale = self.caps[l] / u;
                    if worst.is_none_or(|(_, s)| scale < s) {
                        worst = Some((l, scale));
                    }
                }
            }
            match worst {
                Some((l, scale)) => {
                    for &i in &link_flows[l] {
                        rate[i as usize] *= scale;
                    }
                }
                None => break,
            }
        }
        let mut residual: Vec<f64> = self
            .caps
            .iter()
            .zip(&used)
            .map(|(&c, &u)| (c - u).max(0.0))
            .collect();

        // Phase 2: weighted progressive filling of the residual, driven by
        // one global fill level. While flow `i` is active its rate is
        // implicitly `rate[i] + weight_i × fill`; only the freeze event
        // materializes it, so a round costs O(links) plus the frozen flows'
        // path lengths — never a sweep over all flows.
        let mut active: Vec<bool> = self
            .flows
            .iter()
            .zip(rate.iter())
            .map(|(f, r)| *r + 1e-9 < f.demand)
            .collect();
        // Active weight sum and active flow count per link. The count going
        // to zero resets the sum to exactly 0.0, so accumulated float error
        // can never leave a ghost positive weight on a drained link.
        let mut wsum = vec![0.0f64; nl];
        let mut wcount = vec![0u32; nl];
        for (i, f) in self.flows.iter().enumerate() {
            if active[i] {
                for &l in &f.path {
                    wsum[l] += f.weight;
                    wcount[l] += 1;
                }
            }
        }
        // Finite-demand active flows (greedy flows never appear here).
        let mut finite: Vec<u32> = self
            .flows
            .iter()
            .enumerate()
            .filter(|&(i, f)| active[i] && f.demand.is_finite())
            .map(|(i, _)| i as u32)
            .collect();
        let mut remaining = active.iter().filter(|&&a| a).count();
        let mut fill = 0.0f64;
        let mut to_freeze: Vec<u32> = Vec::new();
        while remaining > 0 {
            // Next event: the tightest link saturates, or the tightest
            // finite-demand flow reaches its demand.
            let mut t = f64::INFINITY;
            let mut event_link: Option<usize> = None;
            let mut event_flow: Option<u32> = None;
            for (l, &w) in wsum.iter().enumerate() {
                if w > 0.0 {
                    let tl = residual[l] / w;
                    if tl < t {
                        t = tl;
                        event_link = Some(l);
                    }
                }
            }
            for &i in &finite {
                let f = &self.flows[i as usize];
                let tf = (f.demand - (rate[i as usize] + f.weight * fill)) / f.weight;
                if tf < t {
                    t = tf;
                    event_link = None;
                    event_flow = Some(i);
                }
            }
            if !t.is_finite() {
                // Only unconstrained infinite-demand flows remain.
                break;
            }
            let t = t.max(0.0);
            fill += t;
            for (l, r) in residual.iter_mut().enumerate() {
                if wsum[l] > 0.0 {
                    *r -= wsum[l] * t;
                }
            }
            // The event's link lands on exactly zero by construction; pin it
            // there so float error cannot leave it epsilon above the
            // saturation threshold (that would stall the round).
            if let Some(l) = event_link {
                residual[l] = 0.0;
            }
            // Freeze every active flow on a saturated link, the event flow,
            // and any finite flow that reached demand this round.
            to_freeze.clear();
            for (l, r) in residual.iter().enumerate() {
                if wcount[l] > 0 && *r <= 1e-6 {
                    for &i in &link_flows[l] {
                        if active[i as usize] {
                            to_freeze.push(i);
                        }
                    }
                }
            }
            if let Some(i) = event_flow {
                to_freeze.push(i);
            }
            for &i in &finite {
                let f = &self.flows[i as usize];
                if active[i as usize] && rate[i as usize] + f.weight * fill + 1e-6 >= f.demand {
                    to_freeze.push(i);
                }
            }
            let mut frozen = 0usize;
            for &i in &to_freeze {
                let i = i as usize;
                if !active[i] {
                    continue; // reachable via several saturated links
                }
                active[i] = false;
                let f = &self.flows[i];
                rate[i] = (rate[i] + f.weight * fill).min(f.demand);
                for &l in &f.path {
                    wsum[l] -= f.weight;
                    wcount[l] -= 1;
                    if wcount[l] == 0 {
                        wsum[l] = 0.0;
                    }
                }
                remaining -= 1;
                frozen += 1;
            }
            if !finite.is_empty() {
                finite.retain(|&i| active[i as usize]);
            }
            debug_assert!(
                frozen > 0,
                "filling round froze no flow: termination invariant broken"
            );
        }
        // Flows still active hit no capacitated link and no demand: they
        // are unbounded in the fluid limit; report the filled level reached
        // (matches the reference's early exit).
        for (i, f) in self.flows.iter().enumerate() {
            if active[i] {
                rate[i] += f.weight * fill;
            }
        }
        debug_assert!(
            self.is_work_conserving(rate),
            "allocation is not work-conserving"
        );
    }

    /// Whether `rates` is work-conserving: no link exceeds its capacity and
    /// every flow with a nonempty path is either demand-capped or crosses a
    /// saturated link (i.e. no flow could be increased without violating a
    /// constraint). Degenerate flows with empty paths are exempt.
    pub fn is_work_conserving(&self, rates: &[f64]) -> bool {
        assert_eq!(rates.len(), self.flows.len());
        let mut used = vec![0.0f64; self.caps.len()];
        for (f, &r) in self.flows.iter().zip(rates) {
            for &l in &f.path {
                used[l] += r;
            }
        }
        let sat = |l: usize| used[l] >= self.caps[l] - tol(self.caps[l]);
        for (l, &u) in used.iter().enumerate() {
            if u > self.caps[l] + tol(self.caps[l]) {
                return false;
            }
        }
        self.flows.iter().zip(rates).all(|(f, &r)| {
            f.path.is_empty()
                || r + tol(f.demand.min(1e12)) >= f.demand
                || f.path.iter().any(|&l| sat(l))
        })
    }

    /// Verify that `rates` is *the* weighted max-min allocation with floors:
    /// caps respected, demands respected, floors granted (assumes admissible
    /// floors), work conservation, and the KKT bottleneck condition — every
    /// flow below demand crosses a saturated link on which its fill level
    /// `(rate − floor) / weight` is maximal. Returns the first violated
    /// property. Intended for tests ([`Fluid::rates`] itself only
    /// debug-asserts work conservation).
    pub fn verify_max_min(&self, rates: &[f64]) -> Result<(), String> {
        assert_eq!(rates.len(), self.flows.len());
        let mut used = vec![0.0f64; self.caps.len()];
        for (f, &r) in self.flows.iter().zip(rates) {
            for &l in &f.path {
                used[l] += r;
            }
        }
        for (l, &u) in used.iter().enumerate() {
            if u > self.caps[l] + tol(self.caps[l]) {
                return Err(format!("link {l}: used {u} exceeds cap {}", self.caps[l]));
            }
        }
        for (i, (f, &r)) in self.flows.iter().zip(rates).enumerate() {
            if r > f.demand + tol(f.demand.min(1e12)) {
                return Err(format!("flow {i}: rate {r} exceeds demand {}", f.demand));
            }
            let floor = f.floor.min(f.demand);
            if r + tol(floor) < floor {
                return Err(format!("flow {i}: rate {r} below floor {floor}"));
            }
        }
        if !self.is_work_conserving(rates) {
            return Err("allocation is not work-conserving".into());
        }
        // KKT: per saturated link, the largest fill level among its flows.
        let fill = |i: usize| {
            (rates[i] - self.flows[i].floor.min(self.flows[i].demand)) / self.flows[i].weight
        };
        let mut max_fill = vec![f64::NEG_INFINITY; self.caps.len()];
        for (i, f) in self.flows.iter().enumerate() {
            for &l in &f.path {
                max_fill[l] = max_fill[l].max(fill(i));
            }
        }
        for (i, (f, &r)) in self.flows.iter().zip(rates).enumerate() {
            if r + tol(f.demand.min(1e12)) >= f.demand || f.path.is_empty() {
                continue;
            }
            let bottlenecked = f.path.iter().any(|&l| {
                used[l] >= self.caps[l] - tol(self.caps[l])
                    && fill(i) + 1e-6 * (1.0 + max_fill[l].abs()) >= max_fill[l]
            });
            if !bottlenecked {
                return Err(format!(
                    "flow {i}: below demand but holds the max fill level on no \
                     saturated link (not weighted max-min)"
                ));
            }
        }
        Ok(())
    }

    /// The pre-rewrite allocation: per-link `path.contains` scans and a
    /// fixed iteration cap on the filling loop. Kept verbatim as the
    /// differential-test reference for [`Fluid::rates`] — do not use on
    /// large networks (it is `O(flows × links)` per round) and beware that
    /// the iteration cap can exit before the fill completes (the
    /// non-work-conserving bug the rewrite fixes).
    pub fn rates_reference(&self) -> Vec<f64> {
        let n = self.flows.len();
        let mut rate: Vec<f64> = self.flows.iter().map(|f| f.floor.min(f.demand)).collect();

        // Scale floors down on oversubscribed links (defensive; admission
        // normally prevents this).
        let mut residual = self.caps.clone();
        loop {
            let mut worst: Option<(usize, f64)> = None;
            for (l, &cap) in self.caps.iter().enumerate() {
                let used: f64 = self
                    .flows
                    .iter()
                    .zip(&rate)
                    .filter(|(f, _)| f.path.contains(&l))
                    .map(|(_, r)| r)
                    .sum();
                if used > cap * (1.0 + 1e-9) {
                    let scale = cap / used;
                    if worst.is_none_or(|(_, s)| scale < s) {
                        worst = Some((l, scale));
                    }
                }
            }
            match worst {
                Some((l, scale)) => {
                    for (f, r) in self.flows.iter().zip(rate.iter_mut()) {
                        if f.path.contains(&l) {
                            *r *= scale;
                        }
                    }
                }
                None => break,
            }
        }
        for (l, res) in residual.iter_mut().enumerate() {
            let used: f64 = self
                .flows
                .iter()
                .zip(&rate)
                .filter(|(f, _)| f.path.contains(&l))
                .map(|(_, r)| r)
                .sum();
            *res = (*res - used).max(0.0);
        }

        // Phase 2: weighted progressive filling of the residual.
        let mut active: Vec<bool> = self
            .flows
            .iter()
            .zip(&rate)
            .map(|(f, r)| *r + 1e-9 < f.demand)
            .collect();
        for _ in 0..2 * (n + self.caps.len()) + 2 {
            if !active.iter().any(|&a| a) {
                break;
            }
            // Largest uniform fill level t (rate += weight · t).
            let mut t = f64::INFINITY;
            for (l, &res) in residual.iter().enumerate() {
                let w: f64 = self
                    .flows
                    .iter()
                    .zip(&active)
                    .filter(|(f, &a)| a && f.path.contains(&l))
                    .map(|(f, _)| f.weight)
                    .sum();
                if w > 0.0 {
                    t = t.min(res / w);
                }
            }
            for ((f, &a), &r) in self.flows.iter().zip(&active).zip(&rate) {
                if a && f.demand.is_finite() {
                    t = t.min((f.demand - r) / f.weight);
                }
            }
            if !t.is_finite() {
                // Only unconstrained infinite-demand flows remain.
                break;
            }
            let t = t.max(0.0);
            for (i, f) in self.flows.iter().enumerate() {
                if active[i] {
                    rate[i] += f.weight * t;
                    for &l in &f.path {
                        residual[l] -= f.weight * t;
                    }
                }
            }
            // Freeze flows at demand or on saturated links.
            for (i, f) in self.flows.iter().enumerate() {
                if !active[i] {
                    continue;
                }
                let done =
                    rate[i] + 1e-6 >= f.demand || f.path.iter().any(|&l| residual[l] <= 1e-6);
                if done {
                    active[i] = false;
                }
            }
        }
        rate
    }
}

/// Absolute + relative comparison slack for kbps-scale quantities (shared
/// with the incremental component solver's verification pass).
#[inline]
pub(crate) fn tol(magnitude: f64) -> f64 {
    1e-6 + 1e-9 * magnitude.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_link_equal_split() {
        let mut net = Fluid::new();
        let l = net.link(900.0);
        for _ in 0..3 {
            net.flow(FlowSpec::greedy(vec![l]));
        }
        let r = net.rates();
        for &x in &r {
            assert!((x - 300.0).abs() < 1e-6, "{r:?}");
        }
    }

    #[test]
    fn demands_cap_rates() {
        let mut net = Fluid::new();
        let l = net.link(900.0);
        let mut f = FlowSpec::greedy(vec![l]);
        f.demand = 100.0;
        net.flow(f);
        net.flow(FlowSpec::greedy(vec![l]));
        let r = net.rates();
        assert!((r[0] - 100.0).abs() < 1e-6);
        assert!((r[1] - 800.0).abs() < 1e-6, "work conserving: {r:?}");
    }

    #[test]
    fn floors_are_respected() {
        let mut net = Fluid::new();
        let l = net.link(1000.0);
        net.flow(FlowSpec::greedy(vec![l]).with_guarantee(450.0));
        // Five ungranted flows compete for the rest.
        for _ in 0..5 {
            net.flow(FlowSpec::greedy(vec![l]));
        }
        let r = net.rates();
        assert!(r[0] >= 450.0, "guaranteed flow got {}", r[0]);
        let total: f64 = r.iter().sum();
        assert!((total - 1000.0).abs() < 1e-3, "full utilization: {total}");
        net.verify_max_min(&r).unwrap();
    }

    #[test]
    fn weighted_sharing_of_spare() {
        let mut net = Fluid::new();
        let l = net.link(900.0);
        net.flow(FlowSpec::greedy(vec![l]).with_guarantee(400.0));
        net.flow(FlowSpec::greedy(vec![l]).with_guarantee(200.0));
        let r = net.rates();
        // Spare 300 split 2:1 → 600/300.
        assert!((r[0] - 600.0).abs() < 1e-6, "{r:?}");
        assert!((r[1] - 300.0).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn sub_kbps_guarantees_share_proportionally() {
        // The old `g.max(1.0)` weight clamp made both flows share the spare
        // equally; guarantee-proportional weights keep the 2:1 ratio at any
        // magnitude.
        let mut net = Fluid::new();
        let l = net.link(0.9);
        net.flow(FlowSpec::greedy(vec![l]).with_guarantee(0.4));
        net.flow(FlowSpec::greedy(vec![l]).with_guarantee(0.2));
        let r = net.rates();
        assert!((r[0] - 0.6).abs() < 1e-9, "{r:?}");
        assert!((r[1] - 0.3).abs() < 1e-9, "{r:?}");
        net.verify_max_min(&r).unwrap();
    }

    #[test]
    fn zero_guarantee_keeps_token_weight() {
        let mut net = Fluid::new();
        let l = net.link(300.0);
        net.flow(FlowSpec::greedy(vec![l]).with_guarantee(0.0));
        net.flow(FlowSpec::greedy(vec![l]).with_guarantee(0.0));
        let r = net.rates();
        // Two zero-guarantee flows share equally via the token weight.
        assert!((r[0] - 150.0).abs() < 1e-6, "{r:?}");
        assert!((r[1] - 150.0).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn multihop_bottleneck() {
        let mut net = Fluid::new();
        let a = net.link(1000.0);
        let b = net.link(100.0);
        net.flow(FlowSpec::greedy(vec![a, b]));
        net.flow(FlowSpec::greedy(vec![a]));
        let r = net.rates();
        assert!((r[0] - 100.0).abs() < 1e-6);
        assert!((r[1] - 900.0).abs() < 1e-6);
        net.verify_max_min(&r).unwrap();
    }

    #[test]
    fn oversubscribed_floors_scale_down() {
        let mut net = Fluid::new();
        let l = net.link(300.0);
        net.flow(FlowSpec::greedy(vec![l]).with_guarantee(400.0));
        net.flow(FlowSpec::greedy(vec![l]).with_guarantee(200.0));
        let r = net.rates();
        let total: f64 = r.iter().sum();
        assert!(total <= 300.0 + 1e-6);
        assert!(r[0] > r[1], "proportional scale keeps ordering");
    }

    #[test]
    fn empty_network() {
        let net = Fluid::new();
        assert!(net.rates().is_empty());
    }

    /// Build the same flow set two ways — incrementally (with interleaved
    /// removals) and from scratch — and require identical allocations.
    #[test]
    fn incremental_removal_matches_fresh_build() {
        // Deterministic pseudo-random flow shapes over a small link set.
        let mut state = 0x9e37_79b9_u64;
        let mut next = move |m: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m
        };
        let mut net = Fluid::new();
        let links: Vec<usize> = (0..8).map(|i| net.link(500.0 + 100.0 * i as f64)).collect();
        let mk = |a: usize, b: usize, g: f64| {
            let mut path = vec![links[a]];
            if b != a {
                path.push(links[b]);
            }
            FlowSpec::greedy(path).with_guarantee(g)
        };
        let mut live: Vec<FlowSpec> = Vec::new();
        for step in 0..200 {
            if !live.is_empty() && next(3) == 0 {
                let victim = next(net.num_flows());
                let spec = net.remove_flow(victim);
                // remove_flow swap-removes: mirror that on the shadow list.
                let shadow = live.swap_remove(victim);
                assert_eq!(spec.path, shadow.path);
                assert_eq!(spec.floor, shadow.floor);
            } else {
                let f = mk(next(8), next(8), (step % 5) as f64 * 50.0);
                live.push(f.clone());
                net.flow(f);
            }
            // The incremental network must allocate like a network rebuilt
            // from the shadow list. Swap-removal permutes the per-link flow
            // lists, so float summation order differs — tolerance equality,
            // not bit equality (that stronger property belongs to
            // `clear_flows` + in-order re-add, tested separately).
            let mut fresh = Fluid::new();
            for &c in &[500.0, 600.0, 700.0, 800.0, 900.0, 1000.0, 1100.0, 1200.0] {
                fresh.link(c);
            }
            for f in &live {
                fresh.flow(f.clone());
            }
            let a = net.rates();
            let b = fresh.rates();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert!(
                    (x - y).abs() < 1e-6 * (1.0 + y.abs()),
                    "step {step}: {x} vs {y}"
                );
            }
            assert!(net.is_work_conserving(&a));
        }
    }

    #[test]
    fn clear_flows_retains_links_and_resets_state() {
        let mut net = Fluid::new();
        let a = net.link(1000.0);
        let b = net.link(100.0);
        net.flow(FlowSpec::greedy(vec![a, b]));
        net.flow(FlowSpec::greedy(vec![a]));
        let first = net.rates();
        net.clear_flows();
        assert_eq!(net.num_flows(), 0);
        assert_eq!(net.num_links(), 2);
        assert!(net.rates().is_empty());
        // Re-adding the same flows reproduces the original allocation.
        net.flow(FlowSpec::greedy(vec![a, b]));
        net.flow(FlowSpec::greedy(vec![a]));
        let again = net.rates();
        for (x, y) in first.iter().zip(&again) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn remove_last_and_only_flows() {
        let mut net = Fluid::new();
        let l = net.link(900.0);
        net.flow(FlowSpec::greedy(vec![l]));
        net.flow(FlowSpec::greedy(vec![l]).with_guarantee(100.0));
        // Removing the last flow needs no rename.
        net.remove_flow(1);
        assert_eq!(net.num_flows(), 1);
        let r = net.rates();
        assert!((r[0] - 900.0).abs() < 1e-6, "{r:?}");
        // Removing the only flow empties the network.
        net.remove_flow(0);
        assert_eq!(net.num_flows(), 0);
        assert!(net.rates().is_empty());
    }

    #[test]
    fn termination_is_exact_on_a_long_freeze_cascade() {
        // A chain of links with strictly decreasing spare capacity freezes
        // exactly one flow per round — the shape that exhausted the
        // reference implementation's fixed iteration cap when scaled up.
        let mut net = Fluid::new();
        let mut links = Vec::new();
        for i in 0..60 {
            links.push(net.link(1000.0 + 10.0 * i as f64));
        }
        for (i, &l) in links.iter().enumerate() {
            // One private flow per link plus one flow crossing all links.
            net.flow(FlowSpec::greedy(vec![l]).with_guarantee(100.0 + i as f64));
        }
        net.flow(FlowSpec::greedy(links.clone()));
        let r = net.rates();
        assert!(net.is_work_conserving(&r));
        net.verify_max_min(&r).unwrap();
        // And it matches the reference on this instance.
        let reference = net.rates_reference();
        for (a, b) in r.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }
}
