//! Fluid-flow network: max-min fair rate allocation with floors, caps and
//! weights.
//!
//! Steady-state TCP throughput over a capacitated network is classically
//! modeled as (weighted) max-min fairness; progressive filling computes it
//! exactly in the fluid limit. Floors model enforced guarantees (rate
//! limiters never throttle a pair below its guarantee), caps model rate
//! limiters, weights model the guarantee-proportional spare sharing that
//! ElasticSwitch's probing converges to.

/// One flow: a path over link indices plus its rate-control parameters.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Links the flow traverses (indices into the fluid network's links).
    pub path: Vec<usize>,
    /// Application demand (kbps; `f64::INFINITY` for a greedy TCP flow).
    pub demand: f64,
    /// Guaranteed floor (kbps) — granted before any fair sharing.
    pub floor: f64,
    /// Weight for sharing capacity beyond the floors.
    pub weight: f64,
}

impl FlowSpec {
    /// A greedy (infinite-demand) flow with no guarantee and unit weight.
    pub fn greedy(path: Vec<usize>) -> Self {
        FlowSpec {
            path,
            demand: f64::INFINITY,
            floor: 0.0,
            weight: 1.0,
        }
    }

    /// Set the guaranteed floor and use it as the sharing weight
    /// (ElasticSwitch shares spare bandwidth in proportion to guarantees).
    pub fn with_guarantee(mut self, g: f64) -> Self {
        self.floor = g;
        self.weight = g.max(1.0); // zero-guarantee flows keep a token weight
        self
    }
}

/// A fluid network: capacitated links and flows.
#[derive(Debug, Clone, Default)]
pub struct Fluid {
    caps: Vec<f64>,
    flows: Vec<FlowSpec>,
}

impl Fluid {
    /// Create an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a link with the given capacity (kbps); returns its index.
    pub fn link(&mut self, cap_kbps: f64) -> usize {
        assert!(cap_kbps >= 0.0);
        self.caps.push(cap_kbps);
        self.caps.len() - 1
    }

    /// Add a flow; returns its index.
    pub fn flow(&mut self, f: FlowSpec) -> usize {
        for &l in &f.path {
            assert!(l < self.caps.len(), "flow references unknown link {l}");
        }
        assert!(f.floor >= 0.0 && f.weight > 0.0);
        self.flows.push(f);
        self.flows.len() - 1
    }

    /// Number of flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Compute the weighted max-min fair allocation with floors.
    ///
    /// Phase 1 grants every flow its floor (capped by demand). Floors are
    /// assumed admissible (the placement layer reserved them); if they
    /// oversubscribe a link, they are scaled down proportionally on that
    /// link — mirroring what a real enforcer's rate limiters would do.
    /// Phase 2 progressively fills the remaining capacity in proportion to
    /// the flows' weights until each flow hits its demand or a saturated
    /// link.
    pub fn rates(&self) -> Vec<f64> {
        let n = self.flows.len();
        let mut rate: Vec<f64> = self.flows.iter().map(|f| f.floor.min(f.demand)).collect();

        // Scale floors down on oversubscribed links (defensive; admission
        // normally prevents this).
        let mut residual = self.caps.clone();
        loop {
            let mut worst: Option<(usize, f64)> = None;
            for (l, &cap) in self.caps.iter().enumerate() {
                let used: f64 = self
                    .flows
                    .iter()
                    .zip(&rate)
                    .filter(|(f, _)| f.path.contains(&l))
                    .map(|(_, r)| r)
                    .sum();
                if used > cap * (1.0 + 1e-9) {
                    let scale = cap / used;
                    if worst.is_none_or(|(_, s)| scale < s) {
                        worst = Some((l, scale));
                    }
                }
            }
            match worst {
                Some((l, scale)) => {
                    for (f, r) in self.flows.iter().zip(rate.iter_mut()) {
                        if f.path.contains(&l) {
                            *r *= scale;
                        }
                    }
                }
                None => break,
            }
        }
        for (l, res) in residual.iter_mut().enumerate() {
            let used: f64 = self
                .flows
                .iter()
                .zip(&rate)
                .filter(|(f, _)| f.path.contains(&l))
                .map(|(_, r)| r)
                .sum();
            *res = (*res - used).max(0.0);
        }

        // Phase 2: weighted progressive filling of the residual.
        let mut active: Vec<bool> = self
            .flows
            .iter()
            .zip(&rate)
            .map(|(f, r)| *r + 1e-9 < f.demand)
            .collect();
        for _ in 0..2 * (n + self.caps.len()) + 2 {
            if !active.iter().any(|&a| a) {
                break;
            }
            // Largest uniform fill level t (rate += weight · t).
            let mut t = f64::INFINITY;
            for (l, &res) in residual.iter().enumerate() {
                let w: f64 = self
                    .flows
                    .iter()
                    .zip(&active)
                    .filter(|(f, &a)| a && f.path.contains(&l))
                    .map(|(f, _)| f.weight)
                    .sum();
                if w > 0.0 {
                    t = t.min(res / w);
                }
            }
            for ((f, &a), &r) in self.flows.iter().zip(&active).zip(&rate) {
                if a && f.demand.is_finite() {
                    t = t.min((f.demand - r) / f.weight);
                }
            }
            if !t.is_finite() {
                // Only unconstrained infinite-demand flows remain.
                break;
            }
            let t = t.max(0.0);
            for (i, f) in self.flows.iter().enumerate() {
                if active[i] {
                    rate[i] += f.weight * t;
                    for &l in &f.path {
                        residual[l] -= f.weight * t;
                    }
                }
            }
            // Freeze flows at demand or on saturated links.
            for (i, f) in self.flows.iter().enumerate() {
                if !active[i] {
                    continue;
                }
                let done =
                    rate[i] + 1e-6 >= f.demand || f.path.iter().any(|&l| residual[l] <= 1e-6);
                if done {
                    active[i] = false;
                }
            }
        }
        rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_link_equal_split() {
        let mut net = Fluid::new();
        let l = net.link(900.0);
        for _ in 0..3 {
            net.flow(FlowSpec::greedy(vec![l]));
        }
        let r = net.rates();
        for &x in &r {
            assert!((x - 300.0).abs() < 1e-6, "{r:?}");
        }
    }

    #[test]
    fn demands_cap_rates() {
        let mut net = Fluid::new();
        let l = net.link(900.0);
        let mut f = FlowSpec::greedy(vec![l]);
        f.demand = 100.0;
        net.flow(f);
        net.flow(FlowSpec::greedy(vec![l]));
        let r = net.rates();
        assert!((r[0] - 100.0).abs() < 1e-6);
        assert!((r[1] - 800.0).abs() < 1e-6, "work conserving: {r:?}");
    }

    #[test]
    fn floors_are_respected() {
        let mut net = Fluid::new();
        let l = net.link(1000.0);
        net.flow(FlowSpec::greedy(vec![l]).with_guarantee(450.0));
        // Five ungranted flows compete for the rest.
        for _ in 0..5 {
            net.flow(FlowSpec::greedy(vec![l]));
        }
        let r = net.rates();
        assert!(r[0] >= 450.0, "guaranteed flow got {}", r[0]);
        let total: f64 = r.iter().sum();
        assert!((total - 1000.0).abs() < 1e-3, "full utilization: {total}");
    }

    #[test]
    fn weighted_sharing_of_spare() {
        let mut net = Fluid::new();
        let l = net.link(900.0);
        net.flow(FlowSpec::greedy(vec![l]).with_guarantee(400.0));
        net.flow(FlowSpec::greedy(vec![l]).with_guarantee(200.0));
        let r = net.rates();
        // Spare 300 split 2:1 → 600/300.
        assert!((r[0] - 600.0).abs() < 1e-6, "{r:?}");
        assert!((r[1] - 300.0).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn multihop_bottleneck() {
        let mut net = Fluid::new();
        let a = net.link(1000.0);
        let b = net.link(100.0);
        net.flow(FlowSpec::greedy(vec![a, b]));
        net.flow(FlowSpec::greedy(vec![a]));
        let r = net.rates();
        assert!((r[0] - 100.0).abs() < 1e-6);
        assert!((r[1] - 900.0).abs() < 1e-6);
    }

    #[test]
    fn oversubscribed_floors_scale_down() {
        let mut net = Fluid::new();
        let l = net.link(300.0);
        net.flow(FlowSpec::greedy(vec![l]).with_guarantee(400.0));
        net.flow(FlowSpec::greedy(vec![l]).with_guarantee(200.0));
        let r = net.rates();
        let total: f64 = r.iter().sum();
        assert!(total <= 300.0 + 1e-6);
        assert!(r[0] > r[1], "proportional scale keeps ordering");
    }

    #[test]
    fn empty_network() {
        let net = Fluid::new();
        assert!(net.rates().is_empty());
    }
}
