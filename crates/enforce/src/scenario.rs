//! The paper's enforcement experiments as ready-to-run scenarios.

use crate::elastic::{Enforcer, GuaranteeModel};
use crate::fluid::{FlowSpec, Fluid};
use cm_core::model::{TagBuilder, TierId};

/// One point of Fig. 13(b): application-level throughput at VM `Z` with a
/// given number of intra-tier senders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig13Point {
    /// Number of senders in tier C2 (x-axis).
    pub senders: u32,
    /// Throughput of the X→Z flow (Mbps).
    pub x_to_z_mbps: f64,
    /// Aggregate throughput of the C2-internal senders → Z (Mbps).
    pub intra_mbps: f64,
}

/// Fig. 13: VM `Z` (tier C2) receives from `X` (tier C1, guarantee
/// `<450, 450>` Mbps) and from `senders` intra-tier peers (self-loop
/// 450 Mbps); the bottleneck link towards `Z` is 1 Gbps with 10 % left
/// unreserved. Returns the steady-state throughputs under the given
/// guarantee model (`Tag` = the paper's patched ElasticSwitch; `Hose`
/// shows the failure mode).
pub fn fig13_throughput(senders: u32, model: GuaranteeModel) -> Fig13Point {
    let mut b = TagBuilder::new("fig13");
    let c1 = b.tier("C1", 1);
    let c2 = b.tier("C2", 1 + senders);
    b.edge(c1, c2, 450_000, 450_000).expect("valid"); // cm-analyze: allow(no-unwrap-in-hot-path) -- figure scenario with compile-time-constant builder inputs; covered by the scenario tests
    b.self_loop(c2, 450_000).expect("valid"); // cm-analyze: allow(no-unwrap-in-hot-path) -- figure scenario with compile-time-constant builder inputs; covered by the scenario tests
    let tag = b.build().expect("valid TAG"); // cm-analyze: allow(no-unwrap-in-hot-path) -- figure scenario with compile-time-constant builder inputs; covered by the scenario tests
    let mut tiers = vec![c1, c2];
    tiers.extend(std::iter::repeat_n(c2, senders as usize));
    let enforcer = Enforcer::new(tag, tiers, model);

    // Active pairs: X→Z plus each intra sender→Z, all TCP-greedy.
    let mut pairs = vec![(0usize, 1usize, f64::INFINITY)];
    for s in 0..senders {
        pairs.push((2 + s as usize, 1, f64::INFINITY));
    }
    let guarantees = enforcer.partition(&pairs);

    // Physical model: every sender has a 1 Gbps access link; the link into
    // Z is the 1 Gbps bottleneck.
    let mut net = Fluid::new();
    let bottleneck = net.link(1_000_000.0);
    for g in &guarantees {
        let access = net.link(1_000_000.0);
        net.flow(FlowSpec::greedy(vec![access, bottleneck]).with_guarantee(g.kbps));
    }
    let rates = net.rates();
    Fig13Point {
        senders,
        x_to_z_mbps: rates[0] / 1000.0,
        intra_mbps: rates[1..].iter().sum::<f64>() / 1000.0,
    }
}

/// One point of the Fig. 4 congestion scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// Aggregate throughput Web → Logic (Mbps); the tenant intended
    /// 500 Mbps.
    pub web_mbps: f64,
    /// Aggregate throughput DB → Logic (Mbps); intended 100 Mbps.
    pub db_mbps: f64,
}

/// Fig. 4: the business-logic VM is guaranteed 500 Mbps from the web tier
/// and 100 Mbps from the DB tier; its bottleneck link carries exactly
/// 600 Mbps. When both tiers burst simultaneously (`web_senders` +
/// `db_senders` greedy flows), the hose model splits the aggregate
/// 600 Mbps guarantee by max-min across *senders* and fails to protect the
/// web traffic; TAG keeps 500/100.
pub fn fig4_throughput(web_senders: u32, db_senders: u32, model: GuaranteeModel) -> Fig4Point {
    assert!(web_senders > 0 && db_senders > 0);
    let mut b = TagBuilder::new("fig4");
    let web = b.tier("web", web_senders);
    let logic = b.tier("logic", 1);
    let db = b.tier("db", db_senders);
    // Per-VM send guarantees sized so the tier totals are exactly
    // 500 / 100 Mbps. Rounding *up* distributes the remainder of a
    // non-divisor sender count across the tier: every sender's own send
    // guarantee then at least matches its max-min share of the logic VM's
    // exact receive guarantee, so the receive side is the binding minimum
    // and the tier total lands on 500/100 to the bit. (Truncating division
    // silently shrank the totals — e.g. 3 web senders got 3 × 166 666 =
    // 499 998 kbps.)
    b.edge(
        web,
        logic,
        500_000_u64.div_ceil(web_senders as u64),
        500_000,
    )
    .expect("valid"); // cm-analyze: allow(no-unwrap-in-hot-path) -- figure scenario with compile-time-constant builder inputs; covered by the scenario tests
    b.edge(db, logic, 100_000_u64.div_ceil(db_senders as u64), 100_000)
        .expect("valid"); // cm-analyze: allow(no-unwrap-in-hot-path) -- figure scenario with compile-time-constant builder inputs; covered by the scenario tests
                          // DB-DB consistency traffic (B3 of Fig. 2(a)). Under the hose model it
                          // inflates each DB VM's aggregate send hose (Fig. 2(b): B2 + B3), which
                          // is exactly what lets a DB burst towards the logic VM dilute the web
                          // tier's guarantee.
    b.self_loop(db, 100_000).expect("valid"); // cm-analyze: allow(no-unwrap-in-hot-path) -- figure scenario with compile-time-constant builder inputs; covered by the scenario tests
    let tag = b.build().expect("valid TAG"); // cm-analyze: allow(no-unwrap-in-hot-path) -- figure scenario with compile-time-constant builder inputs; covered by the scenario tests

    // VM 0..web_senders = web; then the logic VM; then DB VMs.
    let mut tiers: Vec<TierId> = std::iter::repeat_n(web, web_senders as usize).collect();
    let logic_vm = tiers.len();
    tiers.push(logic);
    tiers.extend(std::iter::repeat_n(db, db_senders as usize));
    let enforcer = Enforcer::new(tag, tiers, model);

    let mut pairs = Vec::new();
    for w in 0..web_senders as usize {
        pairs.push((w, logic_vm, f64::INFINITY));
    }
    for d in 0..db_senders as usize {
        pairs.push((logic_vm + 1 + d, logic_vm, f64::INFINITY));
    }
    let guarantees = enforcer.partition(&pairs);

    // 600 Mbps bottleneck into the logic VM.
    let mut net = Fluid::new();
    let bottleneck = net.link(600_000.0);
    for g in &guarantees {
        let access = net.link(1_000_000.0);
        net.flow(FlowSpec::greedy(vec![access, bottleneck]).with_guarantee(g.kbps));
    }
    let rates = net.rates();
    Fig4Point {
        web_mbps: rates[..web_senders as usize].iter().sum::<f64>() / 1000.0,
        db_mbps: rates[web_senders as usize..].iter().sum::<f64>() / 1000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_tag_protects_x_throughout() {
        // Fig. 13(b): X→Z stays at ≥ 450 Mbps however many intra-tier
        // senders compete.
        for senders in 0..=5 {
            let p = fig13_throughput(senders, GuaranteeModel::Tag);
            assert!(
                p.x_to_z_mbps >= 450.0 - 1e-6,
                "senders={senders}: X→Z = {}",
                p.x_to_z_mbps
            );
            // Work conservation: the bottleneck is fully used.
            assert!(p.x_to_z_mbps + p.intra_mbps > 999.0);
        }
        // With no intra senders X gets the whole bottleneck.
        let p = fig13_throughput(0, GuaranteeModel::Tag);
        assert!(p.x_to_z_mbps > 999.0);
        // Intra traffic saturates near its 450 guarantee + spare share.
        let p5 = fig13_throughput(5, GuaranteeModel::Tag);
        assert!(p5.intra_mbps >= 450.0);
    }

    #[test]
    fn fig13_hose_fails_to_protect_x() {
        // Without the TAG patch, Z's aggregate hose dilutes X's share as
        // intra senders multiply (the §2.2 failure).
        let p = fig13_throughput(5, GuaranteeModel::Hose);
        assert!(
            p.x_to_z_mbps < 450.0,
            "hose should fail, X got {}",
            p.x_to_z_mbps
        );
    }

    #[test]
    fn fig4_tag_keeps_500_100() {
        let p = fig4_throughput(5, 5, GuaranteeModel::Tag);
        assert!((p.web_mbps - 500.0).abs() < 1.0, "web {}", p.web_mbps);
        assert!((p.db_mbps - 100.0).abs() < 1.0, "db {}", p.db_mbps);
    }

    #[test]
    fn fig4_tier_totals_exact_for_non_divisor_senders() {
        // 3 web and 3 db senders: 500 000 and 100 000 kbps do not divide
        // evenly. Truncating per-VM sizing used to drift the tier totals to
        // 499 998 / 99 999 kbps; remainder-aware sizing keeps them exact.
        let p = fig4_throughput(3, 3, GuaranteeModel::Tag);
        assert!(
            (p.web_mbps - 500.0).abs() < 1e-3,
            "web total must be exactly 500 Mbps, got {}",
            p.web_mbps
        );
        assert!(
            (p.db_mbps - 100.0).abs() < 1e-3,
            "db total must be exactly 100 Mbps, got {}",
            p.db_mbps
        );
    }

    #[test]
    fn fig4_hose_splits_300_300() {
        // §2.2: "existing solutions would partition the 600 Mbps hose
        // guarantee by TCP-like max-min fairness and yield 300:300".
        let p = fig4_throughput(5, 5, GuaranteeModel::Hose);
        assert!((p.web_mbps - 300.0).abs() < 1.0, "web {}", p.web_mbps);
        assert!((p.db_mbps - 300.0).abs() < 1.0, "db {}", p.db_mbps);
    }
}
