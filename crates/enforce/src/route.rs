//! LCA-keyed server-pair route cache with ECMP fat-tree multipath.
//!
//! Routing a VM pair over the physical tree is pure topology: the packet
//! climbs from the source server to the pair's lowest common ancestor
//! ([`cm_topology::Topology::lca`]) and descends to the destination. The
//! batch solver recomputed that walk for every VM pair on every step;
//! at datacenter scale the *distinct* server pairs are a tiny fraction of
//! the VM pairs (many tenants, many VMs per server), so [`RouteCache`]
//! memoizes the walk once per `(src server, dst server)` and every flow —
//! of any tenant — reuses it.
//!
//! ## Logical hops vs. fluid links
//!
//! The memo stores **logical hops**, not fluid link ids: each hop is one
//! directional traversal of a node's uplink, encoded as
//! `node_index << 1 | is_up`. Materializing a hop list into concrete
//! [`crate::fluid::Fluid`] link indices is a separate, O(hops) step
//! ([`RouteCache::path_hashed`] / [`RouteCache::path_split`]) because under
//! ECMP one logical hop maps to one of several parallel sub-links.
//!
//! ## ECMP multipath
//!
//! A real fat-tree core is a bundle of equal-cost parallel links, not one
//! fat pipe; modeling it as one pipe lets a single elephant flow borrow the
//! whole bundle and hides incast hot-spotting. [`EcmpConfig`] splits every
//! uplink at tree level ≥ `from_level` into `ways` parallel fluid
//! sub-links of `cap / ways` each, per direction. Two fidelity modes:
//!
//! * [`EcmpMode::HashPerBundle`] — each flow bundle picks **one** sub-link
//!   per hop by a deterministic hash of `(tenant, src server, dst server,
//!   node)`, the fluid analogue of per-flow ECMP hashing: collisions and
//!   the resulting hot sub-links are modeled faithfully.
//! * [`EcmpMode::EqualSplit`] — each bundle is split into `ways` sub-flows,
//!   sub-flow `j` riding sub-link `j` at every ECMP hop (floors and weights
//!   divided evenly): the idealized packet-spraying upper bound.
//!
//! `ways = 1` (the default) reproduces the single-pipe layout of the batch
//! solver exactly — same link order, same capacities, same link count.

use crate::fluid::Fluid;
use cm_core::fasthash::{FastHasher, FastMap};
use cm_topology::{NodeId, Topology};
use std::hash::Hasher;

/// How ECMP splits a flow bundle over parallel sub-links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcmpMode {
    /// One hashed sub-link per hop per bundle (per-flow ECMP semantics).
    HashPerBundle,
    /// `ways` even sub-flows per bundle (packet-spraying semantics).
    EqualSplit,
}

/// ECMP configuration for the fat-tree core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcmpConfig {
    /// Parallel sub-links per direction of every split uplink (≥ 1).
    pub ways: u32,
    /// Lowest tree level whose uplinks are split (0 = server NICs; the
    /// default 1 splits ToR uplinks and above — NICs are physically one
    /// cable).
    pub from_level: u8,
    /// How bundles spread over the sub-links.
    pub mode: EcmpMode,
}

impl EcmpConfig {
    /// Single-pipe routing: no link is split (the batch solver's layout).
    pub fn none() -> Self {
        EcmpConfig {
            ways: 1,
            from_level: 1,
            mode: EcmpMode::HashPerBundle,
        }
    }

    /// Hash-based ECMP with `ways` sub-links from the ToR level up.
    pub fn hashed(ways: u32) -> Self {
        EcmpConfig {
            ways,
            from_level: 1,
            mode: EcmpMode::HashPerBundle,
        }
    }

    /// Equal-split ECMP with `ways` sub-links from the ToR level up.
    pub fn equal_split(ways: u32) -> Self {
        EcmpConfig {
            ways,
            from_level: 1,
            mode: EcmpMode::EqualSplit,
        }
    }

    /// Sub-flows one bundle expands into (`ways` under
    /// [`EcmpMode::EqualSplit`], otherwise 1).
    pub fn sub_flows(&self) -> u32 {
        match self.mode {
            EcmpMode::EqualSplit => self.ways.max(1),
            EcmpMode::HashPerBundle => 1,
        }
    }
}

impl Default for EcmpConfig {
    fn default() -> Self {
        EcmpConfig::none()
    }
}

/// Server-pair route memo + fluid link layout for one topology (see the
/// [module docs](self)).
#[derive(Debug, Clone)]
pub struct RouteCache {
    cfg: EcmpConfig,
    /// First fluid link id of node `n`'s **up** sub-links (`u32::MAX` for
    /// the root, which has no uplink).
    up_base: Vec<u32>,
    /// First fluid link id of node `n`'s **down** sub-links.
    dn_base: Vec<u32>,
    /// Parallel sub-links per direction of node `n`'s uplink.
    ways_of: Vec<u32>,
    /// Tree level of the node owning each fluid link.
    link_level: Vec<u8>,
    /// Whether each fluid link is one of `ways > 1` parallel ECMP
    /// sub-links (the "core sub-links" the imbalance report measures).
    link_split: Vec<bool>,
    /// `(src server << 32 | dst server)` → logical hop list
    /// (`node_index << 1 | is_up` per hop, path order).
    hops: FastMap<u64, Vec<u32>>,
}

impl RouteCache {
    /// Lay out the fluid links for `topo` under `cfg` into the (empty)
    /// network `net` and return the cache. Every uplink of the tree
    /// becomes `ways_of(node)` parallel sub-links per direction, each of
    /// `cap / ways` — up sub-links first, then down, in node order.
    pub fn build(topo: &Topology, cfg: EcmpConfig, net: &mut Fluid) -> Self {
        assert!(cfg.ways >= 1, "ECMP needs at least one sub-link");
        assert_eq!(net.num_links(), 0, "route cache owns the link layout");
        let n = topo.num_nodes();
        let mut up_base = vec![u32::MAX; n];
        let mut dn_base = vec![u32::MAX; n];
        let mut ways_of = vec![1u32; n];
        let mut link_level = Vec::new();
        let mut link_split = Vec::new();
        for idx in 0..n {
            let node = NodeId(idx as u32);
            let Some((cap_up, cap_dn)) = topo.uplink_capacity(node) else {
                continue; // the root has no uplink
            };
            let level = topo.level(node);
            let w = if level >= cfg.from_level { cfg.ways } else { 1 };
            ways_of[idx] = w;
            up_base[idx] = net.num_links() as u32;
            for _ in 0..w {
                net.link(cap_up as f64 / w as f64);
            }
            dn_base[idx] = net.num_links() as u32;
            for _ in 0..w {
                net.link(cap_dn as f64 / w as f64);
            }
            link_level.extend(std::iter::repeat_n(level, 2 * w as usize));
            link_split.extend(std::iter::repeat_n(w > 1, 2 * w as usize));
        }
        RouteCache {
            cfg,
            up_base,
            dn_base,
            ways_of,
            link_level,
            link_split,
            hops: FastMap::default(),
        }
    }

    /// The ECMP configuration the layout was built with.
    pub fn config(&self) -> EcmpConfig {
        self.cfg
    }

    /// Tree level of the node owning fluid link `l`.
    pub fn link_level(&self, l: usize) -> u8 {
        self.link_level[l]
    }

    /// Whether fluid link `l` is an ECMP sub-link (one of `ways > 1`
    /// parallel lanes of a split uplink). The traffic report aggregates
    /// max/mean utilization over exactly these links, so hash-collision
    /// imbalance is measurable against the [`EcmpMode::EqualSplit`] ideal.
    pub fn link_is_split(&self, l: usize) -> bool {
        self.link_split[l]
    }

    /// Fluid links laid out (2 × ways per split uplink).
    pub fn num_links(&self) -> usize {
        self.link_level.len()
    }

    /// The fluid sub-links of node `n`'s uplink as `(up, down)` id ranges
    /// (each `ways_of(n)` long, contiguous), or `None` for the root. This
    /// is the layout inverse a capacity re-sync walks: each sub-link
    /// carries `uplink cap / ways`.
    #[allow(clippy::type_complexity)]
    pub fn links_of(&self, n: NodeId) -> Option<(std::ops::Range<usize>, std::ops::Range<usize>)> {
        let idx = n.index();
        let up = self.up_base[idx];
        if up == u32::MAX {
            return None;
        }
        let w = self.ways_of[idx] as usize;
        let dn = self.dn_base[idx] as usize;
        let up = up as usize;
        Some((up..up + w, dn..dn + w))
    }

    /// Distinct server pairs memoized so far.
    pub fn cached_pairs(&self) -> usize {
        self.hops.len()
    }

    /// The logical hop list of the route `src → dst` (both servers,
    /// distinct), memoized by the pair. Hops ascend from `src` to the LCA
    /// (up hops owned by the ascending nodes) then descend to `dst` (down
    /// hops owned by the destination-side nodes, in path order).
    pub fn hops(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> &[u32] {
        debug_assert!(topo.is_server(src) && topo.is_server(dst) && src != dst);
        let key = (src.0 as u64) << 32 | dst.0 as u64;
        self.hops.entry(key).or_insert_with(|| {
            let meet = topo.lca(src, dst);
            let mut hops = Vec::new();
            let mut a = src;
            while a != meet {
                hops.push(a.0 << 1 | 1);
                a = topo.parent(a).expect("LCA is above src"); // cm-analyze: allow(no-unwrap-in-hot-path) -- lca() returns an ancestor of src, so the walk stops before the root
            }
            let mark = hops.len();
            let mut b = dst;
            while b != meet {
                hops.push(b.0 << 1);
                b = topo.parent(b).expect("LCA is above dst"); // cm-analyze: allow(no-unwrap-in-hot-path) -- lca() returns an ancestor of dst, so the walk stops before the root
            }
            hops[mark..].reverse();
            hops
        })
    }

    /// Whether any hop of this route crosses a split (multi-sub-link)
    /// uplink — if not, every ECMP mode degenerates to the single path.
    pub fn path_is_split(&self, hops: &[u32]) -> bool {
        hops.iter().any(|&h| self.ways_of[(h >> 1) as usize] > 1)
    }

    /// Materialize `hops` into fluid link ids, choosing one hashed
    /// sub-link per split hop ([`EcmpMode::HashPerBundle`]). `seed` should
    /// identify the bundle (see [`flow_seed`]); the same seed always picks
    /// the same sub-links.
    pub fn path_hashed(&self, hops: &[u32], seed: u64, out: &mut Vec<usize>) {
        out.reserve(hops.len());
        for &h in hops {
            let node = (h >> 1) as usize;
            let base = if h & 1 == 1 {
                self.up_base[node]
            } else {
                self.dn_base[node]
            };
            let w = self.ways_of[node];
            let sub = if w > 1 { hop_hash(seed, h) % w } else { 0 };
            out.push((base + sub) as usize);
        }
    }

    /// Materialize `hops` into fluid link ids for sub-flow `j` of an
    /// equal-split bundle ([`EcmpMode::EqualSplit`]): sub-link `j` at every
    /// split hop, the lone sub-link elsewhere.
    pub fn path_split(&self, hops: &[u32], j: u32, out: &mut Vec<usize>) {
        debug_assert!(j < self.cfg.sub_flows().max(1));
        out.reserve(hops.len());
        for &h in hops {
            let node = (h >> 1) as usize;
            let base = if h & 1 == 1 {
                self.up_base[node]
            } else {
                self.dn_base[node]
            };
            let w = self.ways_of[node];
            let sub = if w > 1 { j % w } else { 0 };
            out.push((base + sub) as usize);
        }
    }
}

/// Deterministic bundle seed: identifies the flow bundle the way a switch's
/// ECMP hash identifies a 5-tuple.
pub fn flow_seed(tenant: u64, src: NodeId, dst: NodeId) -> u64 {
    let mut h = FastHasher::default();
    h.write_u64(tenant);
    h.write_u32(src.0);
    h.write_u32(dst.0);
    h.finish()
}

/// Per-hop sub-link choice: independent across hops for one seed.
#[inline]
fn hop_hash(seed: u64, hop: u32) -> u32 {
    let mut h = FastHasher::default();
    h.write_u64(seed);
    h.write_u32(hop);
    (h.finish() >> 32) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_topology::{mbps, TreeSpec};

    fn topo() -> Topology {
        Topology::build(&TreeSpec::small(
            2,
            2,
            4,
            1,
            [mbps(1000.0), mbps(4000.0), mbps(8000.0)],
        ))
    }

    #[test]
    fn single_pipe_layout_matches_batch_solver_convention() {
        let topo = topo();
        let mut net = Fluid::new();
        let rc = RouteCache::build(&topo, EcmpConfig::none(), &mut net);
        // 2 directional links per non-root node, in node order, full caps.
        assert_eq!(net.num_links(), 2 * (topo.num_nodes() - 1));
        assert_eq!(rc.num_links(), net.num_links());
        let mut expect = 0usize;
        for idx in 0..topo.num_nodes() {
            let n = NodeId(idx as u32);
            if let Some((up, dn)) = topo.uplink_capacity(n) {
                assert_eq!(net.link_cap(expect), up as f64);
                assert_eq!(net.link_cap(expect + 1), dn as f64);
                assert_eq!(rc.link_level(expect), topo.level(n));
                expect += 2;
            }
        }
    }

    #[test]
    fn hops_follow_the_lca_route_and_are_memoized() {
        let topo = topo();
        let mut net = Fluid::new();
        let mut rc = RouteCache::build(&topo, EcmpConfig::none(), &mut net);
        let s = topo.servers();
        // Same rack: 1 up + 1 down at the NIC level.
        let h = rc.hops(&topo, s[0], s[1]).to_vec();
        assert_eq!(h, vec![s[0].0 << 1 | 1, s[1].0 << 1]);
        // Cross-pod: 3 up + 3 down, ascending then descending levels.
        let far = *s.last().unwrap();
        let h = rc.hops(&topo, s[0], far).to_vec();
        assert_eq!(h.len(), 6);
        let levels: Vec<u8> = h.iter().map(|&x| topo.level(NodeId(x >> 1))).collect();
        assert_eq!(levels, vec![0, 1, 2, 2, 1, 0]);
        assert!(h[..3].iter().all(|&x| x & 1 == 1), "first half ascends");
        assert!(h[3..].iter().all(|&x| x & 1 == 0), "second half descends");
        // Memoized: two queries, two entries (directional keys).
        rc.hops(&topo, s[0], s[1]);
        rc.hops(&topo, s[0], far);
        assert_eq!(rc.cached_pairs(), 2);
    }

    #[test]
    fn ecmp_splits_core_links_and_preserves_aggregate_capacity() {
        let topo = topo();
        let mut net = Fluid::new();
        let mut rc = RouteCache::build(&topo, EcmpConfig::hashed(4), &mut net);
        // Splitting never changes the aggregate: Σ sub-link caps = Σ uplink
        // caps, both directions.
        let total_cap: f64 = (0..net.num_links()).map(|l| net.link_cap(l)).sum();
        let mut expect_cap = 0.0;
        for idx in 0..topo.num_nodes() {
            if let Some((up, dn)) = topo.uplink_capacity(NodeId(idx as u32)) {
                expect_cap += up as f64 + dn as f64;
            }
        }
        assert!((total_cap - expect_cap).abs() < 1e-6, "capacity preserved");
        let s = topo.servers();
        let far = *s.last().unwrap();
        let tor = topo.parent(s[0]).unwrap();
        let (tor_up, _) = topo.uplink_capacity(tor).unwrap();
        let (nic_up, _) = topo.uplink_capacity(s[0]).unwrap();
        let hops = rc.hops(&topo, s[0], far).to_vec();
        let mut path = Vec::new();
        rc.path_hashed(&hops, flow_seed(9, s[0], far), &mut path);
        assert_eq!(path.len(), 6);
        // NIC hop (level 0, below from_level) stays full capacity; the ToR
        // hop is one of 4 sub-links at a quarter capacity each.
        assert!((net.link_cap(path[0]) - nic_up as f64).abs() < 1e-6);
        assert!((net.link_cap(path[1]) - tor_up as f64 / 4.0).abs() < 1e-6);
        // Determinism: same seed → same sub-links.
        let mut again = Vec::new();
        rc.path_hashed(&hops, flow_seed(9, s[0], far), &mut again);
        assert_eq!(path, again);
    }

    #[test]
    fn equal_split_subflows_are_disjoint_on_split_hops() {
        let topo = topo();
        let mut net = Fluid::new();
        let mut rc = RouteCache::build(&topo, EcmpConfig::equal_split(3), &mut net);
        assert_eq!(rc.config().sub_flows(), 3);
        let s = topo.servers();
        let far = *s.last().unwrap();
        let hops = rc.hops(&topo, s[0], far).to_vec();
        let mut paths: Vec<Vec<usize>> = Vec::new();
        for j in 0..3 {
            let mut p = Vec::new();
            rc.path_split(&hops, j, &mut p);
            paths.push(p);
        }
        // NIC hops (first and last) are shared; the 4 core hops differ
        // pairwise across sub-flows.
        for a in 0..3 {
            for b in (a + 1)..3 {
                assert_eq!(paths[a][0], paths[b][0], "NIC up shared");
                assert_eq!(paths[a][5], paths[b][5], "NIC down shared");
                for (k, &l) in paths[a].iter().enumerate().take(5).skip(1) {
                    assert_ne!(l, paths[b][k], "core hop {k} disjoint");
                }
            }
        }
    }
}
