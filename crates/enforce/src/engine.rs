//! Persistent incremental traffic engine: per-step work proportional to
//! *churn*, not cluster size.
//!
//! [`crate::datacenter::solve`] re-expands every live tenant's VM pairs,
//! re-partitions every guarantee and re-routes every pair on every call —
//! at paper scale ~94 % of a churn step is that redundant rebuild, while
//! the fluid solve itself takes milliseconds. [`TrafficEngine`] keeps the
//! expensive state across steps:
//!
//! * **Per-tenant flow state.** Each tenant's placement expands once into
//!   routed, bundled flow classes; a tenant is re-expanded only when its
//!   `version` changes (the cluster bumps it on scale/migrate/resize) or
//!   the guarantee model switches. Unchanged tenants cost nothing.
//! * **Closed-form guarantee partition.** In the all-pairs (converged
//!   worst-case) pattern every pair of one TAG edge receives the *same*
//!   floor, so the [`crate::elastic::Enforcer`] max-min split collapses to
//!   one division per edge — computed once per re-expansion and reused
//!   across steps (the cached guarantee partition).
//! * **Flow bundling.** All colocation-free VM pairs of one tenant that
//!   share a TAG edge and a `(src server, dst server)` route are one
//!   aggregate [`FlowSpec`] (floors and weights summed). Weighted max-min
//!   treats `m` identical flows and one `m`-weighted aggregate identically,
//!   so per-pair rates are recovered exactly as `rate / m` — the O(VM²)
//!   flow count collapses to O(server pairs).
//! * **Route cache + ECMP.** Server-pair paths come from the LCA-keyed
//!   [`RouteCache`]; under an [`EcmpConfig`] with `ways > 1` core uplinks
//!   are parallel sub-links and bundles are hashed or split across them.
//!
//! The fluid flow set is **persistent**: each bundle's sub-flows live in
//! an [`IncrementalFluid`] across steps, added on (re-)expansion and
//! removed on departure/re-expansion, so a solve re-runs only the
//! connected components churn touched — warm-started from the previous
//! step's water levels — while clean components keep their rates
//! verbatim (see [`crate::incremental`]).
//!
//! Determinism contract: component *cold* solves order flows by the
//! canonical `(tenant id, bundle sub-flow sequence)` key, so a
//! forced-cold engine that churned through any history produces
//! **bit-identical** rates to a fresh engine fed the same final state.
//! With warm starts enabled the rates are tolerance-equal with identical
//! violation verdicts (warm results are verified against the same
//! max-min conditions and discarded on any mismatch); floors and intents
//! stay bit-identical either way. The differential tests pin all three
//! properties.

use crate::datacenter::{LevelUtilization, PairFlow, TenantSummary, TrafficReport};
use crate::elastic::GuaranteeModel;
use crate::fluid::{FlowSpec, Fluid};
use crate::incremental::IncrementalFluid;
use crate::route::{flow_seed, EcmpConfig, EcmpMode, RouteCache};
use cm_core::model::Tag;
use cm_topology::{NodeId, Topology};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// One bundled flow class: every `(src VM, dst VM)` pair of one TAG edge
/// between one ordered server pair. All members share floor, intent, route
/// — and therefore, by symmetry of weighted max-min, the solved rate.
#[derive(Debug, Clone)]
struct Bundle {
    /// First VM index of the sender run (tenant-local, canonical order).
    src: u32,
    /// Sender VMs in the run.
    src_cnt: u32,
    /// First VM index of the receiver run.
    dst: u32,
    /// Receiver VMs in the run.
    dst_cnt: u32,
    /// Per-pair enforced floor (kbps).
    floor: f64,
    /// Per-pair TAG intent (kbps).
    intent: f64,
    /// Aggregate floor per sub-flow (`members × floor / paths`).
    sub_floor: f64,
    /// Aggregate weight per sub-flow.
    sub_weight: f64,
    /// Fluid link paths: one entry per sub-flow (1, or `ways` under
    /// [`EcmpMode::EqualSplit`] when the route crosses a split link).
    paths: Vec<Vec<usize>>,
}

impl Bundle {
    #[inline]
    fn members(&self) -> u32 {
        self.src_cnt * self.dst_cnt
    }
}

/// Pairs absorbed by colocation: both runs on one server; each pair runs
/// at its intent (hypervisor-local, never touches the network).
#[derive(Debug, Clone)]
struct CoClass {
    src: u32,
    src_cnt: u32,
    dst: u32,
    dst_cnt: u32,
    /// Same run on both sides (self-loop edge within one server): the
    /// `src == dst` diagonal is excluded.
    diagonal: bool,
    floor: f64,
    intent: f64,
}

impl CoClass {
    #[inline]
    fn members(&self) -> u32 {
        self.src_cnt * self.dst_cnt - if self.diagonal { self.src_cnt } else { 0 }
    }
}

/// Cached expanded/routed state of one tenant.
#[derive(Debug, Clone)]
struct EngineTenant {
    /// Placement version this expansion reflects.
    version: u64,
    vms: usize,
    /// Active pairs (cross + colocated).
    pairs: usize,
    cross_pairs: usize,
    colocated_pairs: usize,
    /// Σ intent over cross pairs (kbps).
    intent_kbps: f64,
    bundles: Vec<Bundle>,
    colocated: Vec<CoClass>,
    /// Stable fluid-flow ids of the tenant's live sub-flows, one per
    /// `(bundle, path)` in bundle order — removed on re-expansion or
    /// departure.
    flow_ids: Vec<u32>,
}

/// The persistent incremental engine (see the [module docs](self)).
#[derive(Debug)]
pub struct TrafficEngine {
    model: GuaranteeModel,
    route: RouteCache,
    net: IncrementalFluid,
    num_levels: usize,
    /// Ascending-id order gives every report a canonical tenant order.
    tenants: BTreeMap<u64, EngineTenant>,
    /// Expansion seconds accumulated by `upsert_tenant` since the last
    /// solve (the dirty-set work of the step).
    pending_expand: f64,
    /// Pooled per-link usage buffer for the scoring pass.
    used_scratch: Vec<f64>,
}

impl TrafficEngine {
    /// Create an engine over `topo` — the same `Topology` must be passed
    /// to every later call — with the given enforcement model and ECMP
    /// layout.
    pub fn new(topo: &Topology, model: GuaranteeModel, ecmp: EcmpConfig) -> Self {
        let mut net = Fluid::new();
        let route = RouteCache::build(topo, ecmp, &mut net);
        TrafficEngine {
            model,
            route,
            net: IncrementalFluid::new(net),
            num_levels: topo.num_levels(),
            tenants: BTreeMap::new(),
            pending_expand: 0.0,
            used_scratch: Vec::new(),
        }
    }

    /// Force every dirty component to cold-solve (test knob for the
    /// warm-vs-cold differential tests).
    pub fn set_force_cold(&mut self, on: bool) {
        self.net.set_force_cold(on);
    }

    /// The engine's persistent fluid network — current flow set and
    /// last-solve rates, exposed for differential tests against a
    /// from-scratch global [`crate::fluid::Fluid::rates`] solve.
    pub fn network(&self) -> &IncrementalFluid {
        &self.net
    }

    /// The enforcement model floors are derived under.
    pub fn model(&self) -> GuaranteeModel {
        self.model
    }

    /// The ECMP configuration the link layout was built with.
    pub fn ecmp(&self) -> EcmpConfig {
        self.route.config()
    }

    /// Switch the enforcement model. Floors are placement-dependent state,
    /// so every cached tenant is dropped; the next sync re-expands them
    /// (their versions read as unknown).
    pub fn set_model(&mut self, model: GuaranteeModel) {
        if model != self.model {
            self.model = model;
            self.tenants.clear();
            self.net.clear_flows();
        }
    }

    /// Re-read every uplink capacity from `topo` into the fluid layout —
    /// the fault-injection hook. A degraded (or restored) uplink updates
    /// all its ECMP sub-links to `cap / ways`, dirtying exactly the
    /// components whose flows cross them; everything else keeps its warm
    /// state. Returns how many fluid links changed capacity.
    ///
    /// Flows of VMs *lost* to a fault are dropped separately, by the
    /// version-diffed re-expansion (`upsert_tenant`) after the evacuation
    /// shrank the placement.
    pub fn sync_link_caps(&mut self, topo: &Topology) -> usize {
        let mut changed = 0;
        for idx in 0..topo.num_nodes() {
            let n = NodeId(idx as u32);
            let Some((cap_up, cap_dn)) = topo.uplink_capacity(n) else {
                continue;
            };
            let Some((up, dn)) = self.route.links_of(n) else {
                continue;
            };
            let w = up.len() as f64;
            for l in up {
                changed += usize::from(self.net.set_link_cap(l, cap_up as f64 / w));
            }
            for l in dn {
                changed += usize::from(self.net.set_link_cap(l, cap_dn as f64 / w));
            }
        }
        changed
    }

    /// The placement version tenant `id` was last expanded at, if cached.
    pub fn version_of(&self, id: u64) -> Option<u64> {
        self.tenants.get(&id).map(|t| t.version)
    }

    /// Tenants currently cached.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Drop every cached tenant `keep` rejects (departures), removing
    /// their fluid flows — which dirties exactly the components those
    /// flows crossed.
    pub fn retain_tenants(&mut self, mut keep: impl FnMut(u64) -> bool) {
        let net = &mut self.net;
        self.tenants.retain(|&id, t| {
            let k = keep(id);
            if !k {
                for &fid in &t.flow_ids {
                    net.remove_flow(fid);
                }
            }
            k
        });
    }

    /// Expand (or re-expand) tenant `id` at placement `placement` (the
    /// `(server, VMs per tier)` shape `Deployed::placement` returns, in
    /// ascending server order — the canonical VM indexing of
    /// [`crate::datacenter::expand_placement`]). No-op if the cached
    /// version already matches.
    pub fn upsert_tenant(
        &mut self,
        topo: &Topology,
        id: u64,
        version: u64,
        tag: &Arc<Tag>,
        placement: &[(NodeId, Vec<u32>)],
    ) {
        if self.tenants.get(&id).is_some_and(|t| t.version == version) {
            return;
        }
        let t = Instant::now();
        if let Some(old) = self.tenants.remove(&id) {
            for &fid in &old.flow_ids {
                self.net.remove_flow(fid);
            }
        }
        let mut expanded = expand_tenant(
            self.model,
            tag,
            placement,
            topo,
            &mut self.route,
            version,
            id,
        );
        // Materialize the bundles' sub-flows into the persistent network
        // under the canonical `(tenant, sequence)` key the component
        // solver orders by.
        let mut seq = 0u32;
        for b in &expanded.bundles {
            for p in &b.paths {
                let mut spec = FlowSpec::greedy(p.clone());
                spec.floor = b.sub_floor;
                spec.weight = b.sub_weight;
                expanded.flow_ids.push(self.net.add_flow(spec, (id, seq)));
                seq += 1;
            }
        }
        self.tenants.insert(id, expanded);
        self.pending_expand += t.elapsed().as_secs_f64();
    }

    /// Solve the current state: summary-only (`flows` empty) — the hot
    /// churn-step path.
    pub fn solve(&mut self, topo: &Topology) -> TrafficReport {
        self.solve_inner(topo, false)
    }

    /// Solve and materialize every per-pair [`PairFlow`] (the
    /// `traffic_report` path; O(VM pairs) to write out).
    pub fn solve_detailed(&mut self, topo: &Topology) -> TrafficReport {
        self.solve_inner(topo, true)
    }

    fn solve_inner(&mut self, topo: &Topology, detailed: bool) -> TrafficReport {
        debug_assert_eq!(topo.num_levels(), self.num_levels);
        let expand_secs = self.pending_expand;
        self.pending_expand = 0.0;

        // The fluid flow set is persistent (maintained by
        // `upsert_tenant`/`retain_tenants`); nothing to rebuild here.
        let fluid_flows = self.net.num_flows();
        let route_secs = 0.0;

        let t_solve = Instant::now();
        let stats = self.net.solve();
        let solve_secs = t_solve.elapsed().as_secs_f64();

        // Score phase: walk each tenant's bundles through its stable flow
        // ids, recovering per-pair rates as aggregate / members.
        let t_score = Instant::now();
        let work_conserving = self.net.is_work_conserving();
        let mut summaries = Vec::with_capacity(self.tenants.len());
        let mut flows: Vec<PairFlow> = Vec::new();
        let mut cross_flows = 0usize;
        let mut colocated_flows = 0usize;
        let mut total_rate_kbps = 0.0;
        let mut violations = 0usize;
        for (&id, tenant) in &self.tenants {
            let mut cursor = 0usize;
            let mut summary = TenantSummary {
                id,
                vms: tenant.vms,
                pairs: tenant.pairs,
                cross_pairs: tenant.cross_pairs,
                intent_kbps: tenant.intent_kbps,
                achieved_kbps: 0.0,
                violations: 0,
                worst_shortfall_kbps: 0.0,
            };
            if detailed {
                for c in &tenant.colocated {
                    for s in c.src..c.src + c.src_cnt {
                        for d in c.dst..c.dst + c.dst_cnt {
                            if c.diagonal && s == d {
                                continue;
                            }
                            flows.push(PairFlow {
                                tenant: id,
                                src: s as usize,
                                dst: d as usize,
                                floor_kbps: c.floor,
                                intent_kbps: c.intent,
                                rate_kbps: c.intent,
                                colocated: true,
                            });
                        }
                    }
                }
            }
            for b in &tenant.bundles {
                let mut aggregate = 0.0;
                for _ in 0..b.paths.len() {
                    aggregate += self.net.rate_of(tenant.flow_ids[cursor]);
                    cursor += 1;
                }
                let m = b.members();
                let per_pair = aggregate / m as f64;
                summary.achieved_kbps += aggregate;
                total_rate_kbps += aggregate;
                if per_pair + violation_tol(b.intent) < b.intent {
                    summary.violations += m as usize;
                    violations += m as usize;
                    summary.worst_shortfall_kbps =
                        summary.worst_shortfall_kbps.max(b.intent - per_pair);
                }
                if detailed {
                    for s in b.src..b.src + b.src_cnt {
                        for d in b.dst..b.dst + b.dst_cnt {
                            flows.push(PairFlow {
                                tenant: id,
                                src: s as usize,
                                dst: d as usize,
                                floor_kbps: b.floor,
                                intent_kbps: b.intent,
                                rate_kbps: per_pair,
                                colocated: false,
                            });
                        }
                    }
                }
            }
            debug_assert_eq!(cursor, tenant.flow_ids.len());
            cross_flows += tenant.cross_pairs;
            colocated_flows += tenant.colocated_pairs;
            summaries.push(summary);
        }

        // Link utilization per tree level, from the bundled flows; ECMP
        // sub-links additionally feed the hash-imbalance aggregate.
        let used = &mut self.used_scratch;
        used.clear();
        used.resize(self.net.num_links(), 0.0);
        // Accumulate in canonical (tenant, flow-seq) order — dense order is
        // permuted by swap-removals under churn, and a permuted float sum
        // would break the forced-cold bit-equality contract.
        for tenant in self.tenants.values() {
            for &fid in &tenant.flow_ids {
                let r = self.net.rate_of(fid);
                for &l in &self.net.flow_of(fid).path {
                    used[l] += r;
                }
            }
        }
        let mut levels: Vec<LevelUtilization> = (0..self.num_levels.saturating_sub(1))
            .map(|level| LevelUtilization {
                level,
                links: 0,
                mean_utilization: 0.0,
                max_utilization: 0.0,
                saturated: 0,
            })
            .collect();
        let mut ecmp_max_utilization = 0.0f64;
        let mut ecmp_sum_utilization = 0.0f64;
        let mut ecmp_links = 0usize;
        for (l, &u) in used.iter().enumerate() {
            let cap = self.net.fluid().link_cap(l);
            let util = if cap > 0.0 { u / cap } else { 0.0 };
            let lv = &mut levels[self.route.link_level(l) as usize];
            lv.links += 1;
            lv.mean_utilization += util;
            lv.max_utilization = lv.max_utilization.max(util);
            if util >= 0.999 {
                lv.saturated += 1;
            }
            if self.route.link_is_split(l) {
                ecmp_max_utilization = ecmp_max_utilization.max(util);
                ecmp_sum_utilization += util;
                ecmp_links += 1;
            }
        }
        for lv in &mut levels {
            if lv.links > 0 {
                lv.mean_utilization /= lv.links as f64;
            }
        }
        let ecmp_mean_utilization = if ecmp_links > 0 {
            ecmp_sum_utilization / ecmp_links as f64
        } else {
            0.0
        };
        let score_secs = t_score.elapsed().as_secs_f64();

        TrafficReport {
            tenants: summaries,
            flows,
            levels,
            cross_flows,
            colocated_flows,
            total_rate_kbps,
            work_conserving,
            violations,
            fluid_flows,
            build_secs: expand_secs + route_secs,
            expand_secs,
            route_secs,
            solve_secs,
            solve_cold_secs: stats.cold_secs,
            solve_warm_secs: stats.warm_secs,
            components_dirty: stats.components_dirty,
            components_total: stats.components_total,
            ecmp_max_utilization,
            ecmp_mean_utilization,
            score_secs,
        }
    }
}

/// Shortfalls below this are float noise, not violations (mirrors
/// `datacenter::violation_tol`).
#[inline]
fn violation_tol(intent: f64) -> f64 {
    1e-3 + 1e-6 * intent.abs()
}

/// The closed-form all-pairs guarantee split: `Enforcer::partition` on a
/// group of `cnt` greedy (infinite-demand) peers performs exactly one
/// max-min round handing each `g / cnt` — unless `g` is below the split's
/// activation epsilon, in which case every share stays zero. Replicated
/// bit-exactly (same single IEEE division, same `1e-9` gate).
#[inline]
fn even_share(g: f64, cnt: u32) -> f64 {
    if cnt > 0 && g > 1e-9 {
        g / cnt as f64
    } else {
        0.0
    }
}

/// Expand one tenant's placement into bundled flow classes with
/// closed-form class floors (see the [module docs](self)).
fn expand_tenant(
    model: GuaranteeModel,
    tag: &Arc<Tag>,
    placement: &[(NodeId, Vec<u32>)],
    topo: &Topology,
    route: &mut RouteCache,
    version: u64,
    id: u64,
) -> EngineTenant {
    let nt = tag.num_tiers();
    let edges = tag.edges();

    // Placed VMs per tier, and each placement entry's per-tier VM index
    // runs under the canonical server-major, tier-major indexing.
    let mut n = vec![0u32; nt];
    let mut runs: Vec<(NodeId, Vec<(u32, u32)>)> = Vec::with_capacity(placement.len());
    let mut idx = 0u32;
    for (server, counts) in placement {
        debug_assert_eq!(counts.len(), nt);
        let mut per_tier = Vec::with_capacity(nt);
        for (t, &c) in counts.iter().enumerate() {
            n[t] += c;
            per_tier.push((idx, c));
            idx += c;
        }
        runs.push((*server, per_tier));
    }
    let vms = idx as usize;

    // Closed-form class floors per directed TAG edge. Intents are always
    // the Tag-model partition; floors follow the enforcement model.
    let peer_cnt = |e: &cm_core::model::TagEdge| {
        let excl = u32::from(e.is_self_loop());
        let snd_peers = n[e.to.index()].saturating_sub(excl); // dsts per src
        let rcv_peers = n[e.from.index()].saturating_sub(excl); // srcs per dst
        (snd_peers, rcv_peers)
    };
    let mut intents = Vec::with_capacity(edges.len());
    for e in edges {
        let (snd_peers, rcv_peers) = peer_cnt(e);
        intents.push(
            even_share(e.snd_kbps as f64, snd_peers).min(even_share(e.rcv_kbps as f64, rcv_peers)),
        );
    }
    let floors: Vec<f64> = match model {
        GuaranteeModel::Tag => intents.clone(),
        GuaranteeModel::Hose => {
            // Under plain hose semantics a VM's single send (receive) hose
            // splits over its edge-connected peers across ALL edges.
            let mut snd_peers_of = vec![0u32; nt];
            let mut rcv_peers_of = vec![0u32; nt];
            for e in edges {
                let (snd_peers, rcv_peers) = peer_cnt(e);
                snd_peers_of[e.from.index()] += snd_peers;
                rcv_peers_of[e.to.index()] += rcv_peers;
            }
            edges
                .iter()
                .map(|e| {
                    let u = e.from;
                    let v = e.to;
                    even_share(tag.per_vm_snd(u) as f64, snd_peers_of[u.index()]).min(even_share(
                        tag.per_vm_rcv(v) as f64,
                        rcv_peers_of[v.index()],
                    ))
                })
                .collect()
        }
    };

    let cfg = route.config();
    let mut tenant = EngineTenant {
        version,
        vms,
        pairs: 0,
        cross_pairs: 0,
        colocated_pairs: 0,
        intent_kbps: 0.0,
        bundles: Vec::new(),
        colocated: Vec::new(),
        flow_ids: Vec::new(),
    };
    let mut path = Vec::new();
    for (ei, e) in edges.iter().enumerate() {
        let (u, v) = (e.from.index(), e.to.index());
        if n[u] == 0 || n[v] == 0 {
            continue;
        }
        let (floor, intent) = (floors[ei], intents[ei]);
        for (src_server, src_tiers) in &runs {
            let (src_server, (src, src_cnt)) = (*src_server, src_tiers[u]);
            if src_cnt == 0 {
                continue;
            }
            for (dst_server, dst_tiers) in &runs {
                let (dst_server, (dst, dst_cnt)) = (*dst_server, dst_tiers[v]);
                if dst_cnt == 0 {
                    continue;
                }
                if src_server == dst_server {
                    let co = CoClass {
                        src,
                        src_cnt,
                        dst,
                        dst_cnt,
                        diagonal: u == v,
                        floor,
                        intent,
                    };
                    let m = co.members() as usize;
                    tenant.pairs += m;
                    tenant.colocated_pairs += m;
                    if m > 0 {
                        tenant.colocated.push(co);
                    }
                    continue;
                }
                let hops = route.hops(topo, src_server, dst_server).to_vec();
                let mut paths: Vec<Vec<usize>> = Vec::new();
                if cfg.mode == EcmpMode::EqualSplit && route.path_is_split(&hops) {
                    for j in 0..cfg.sub_flows() {
                        path.clear();
                        route.path_split(&hops, j, &mut path);
                        paths.push(path.clone());
                    }
                } else {
                    path.clear();
                    route.path_hashed(&hops, flow_seed(id, src_server, dst_server), &mut path);
                    paths.push(path.clone());
                }
                let m = (src_cnt * dst_cnt) as f64;
                let k = paths.len() as f64;
                let w = if floor > 0.0 { floor } else { 1.0 };
                let b = Bundle {
                    src,
                    src_cnt,
                    dst,
                    dst_cnt,
                    floor,
                    intent,
                    sub_floor: m * floor / k,
                    sub_weight: m * w / k,
                    paths,
                };
                tenant.pairs += b.members() as usize;
                tenant.cross_pairs += b.members() as usize;
                tenant.intent_kbps += intent * b.members() as f64;
                tenant.bundles.push(b);
            }
        }
    }
    tenant
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::{self, TenantTraffic};
    use crate::elastic::Enforcer;
    use cm_core::model::{TagBuilder, TierId};
    use cm_topology::{mbps, TreeSpec};

    fn topo() -> Topology {
        Topology::build(&TreeSpec::small(
            2,
            2,
            2,
            4,
            [mbps(1000.0), mbps(4000.0), mbps(8000.0)],
        ))
    }

    /// Deterministic xorshift for test-local randomness.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self, m: u64) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0 % m
        }
    }

    /// Random small TAG: 2–4 tiers, random trunks and self-loops.
    fn random_tag(rng: &mut Rng) -> Arc<Tag> {
        loop {
            let mut b = TagBuilder::new("rand");
            let nt = 2 + rng.next(3) as usize;
            let tiers: Vec<TierId> = (0..nt)
                .map(|i| b.tier(format!("t{i}"), 1 + rng.next(4) as u32))
                .collect();
            let mut added = 0;
            for u in 0..nt {
                for v in 0..nt {
                    if rng.next(3) != 0 {
                        continue;
                    }
                    let bw = 1000 * (1 + rng.next(50));
                    let ok = if u == v {
                        b.self_loop(tiers[u], bw).is_ok()
                    } else {
                        b.edge(tiers[u], tiers[v], bw, 1000 * (1 + rng.next(50)))
                            .is_ok()
                    };
                    if ok {
                        added += 1;
                    }
                }
            }
            if added > 0 {
                if let Ok(tag) = b.build() {
                    return Arc::new(tag);
                }
            }
        }
    }

    /// Scatter a TAG's VMs over servers: returns the canonical placement
    /// shape (ascending server order, per-tier counts).
    fn random_placement(rng: &mut Rng, tag: &Tag, servers: &[NodeId]) -> Vec<(NodeId, Vec<u32>)> {
        let nt = tag.num_tiers();
        let mut counts: std::collections::BTreeMap<NodeId, Vec<u32>> = Default::default();
        for t in tag.internal_tiers() {
            let size = tag.tier(t).size;
            for _ in 0..size {
                let s = servers[rng.next(servers.len() as u64) as usize];
                counts.entry(s).or_insert_with(|| vec![0; nt])[t.index()] += 1;
            }
        }
        counts.into_iter().collect()
    }

    /// The closed-form class floors must equal `Enforcer::partition`
    /// bit-exactly, for both models, across random TAGs and placements.
    #[test]
    fn closed_form_floors_match_enforcer_partition_exactly() {
        let topo = topo();
        let servers = topo.servers();
        let mut rng = Rng(0xC0FFEE);
        for _ in 0..60 {
            let tag = random_tag(&mut rng);
            let placement = random_placement(&mut rng, &tag, servers);
            for model in [GuaranteeModel::Tag, GuaranteeModel::Hose] {
                let mut engine = TrafficEngine::new(&topo, model, EcmpConfig::none());
                engine.upsert_tenant(&topo, 1, 1, &tag, &placement);
                let report = engine.solve_detailed(&topo);

                let tt = TenantTraffic::from_placement(1, Arc::clone(&tag), &placement, model);
                let enforcer = Enforcer::new_shared(Arc::clone(&tag), tt.vm_tier.clone(), model);
                let pairs: Vec<(usize, usize, f64)> = {
                    // Reconstruct the all-pairs list the enforcer sees.
                    let mut by_tier: Vec<Vec<usize>> = vec![Vec::new(); tag.num_tiers()];
                    for (i, &t) in tt.vm_tier.iter().enumerate() {
                        by_tier[t.index()].push(i);
                    }
                    let mut out = Vec::new();
                    for e in tag.edges() {
                        for &s in &by_tier[e.from.index()] {
                            for &d in &by_tier[e.to.index()] {
                                if s != d {
                                    out.push((s, d, f64::INFINITY));
                                }
                            }
                        }
                    }
                    out
                };
                let reference = enforcer.partition(&pairs);
                assert_eq!(report.flows.len(), pairs.len());
                for g in &reference {
                    let f = report
                        .pair(1, g.src, g.dst)
                        .unwrap_or_else(|| panic!("engine missing pair ({}, {})", g.src, g.dst));
                    assert_eq!(
                        f.floor_kbps.to_bits(),
                        g.kbps.to_bits(),
                        "floor mismatch for ({}, {}): engine {} vs enforcer {}",
                        g.src,
                        g.dst,
                        f.floor_kbps,
                        g.kbps
                    );
                }
            }
        }
    }

    /// Bundling exactness: the engine's per-pair rates, violations and
    /// aggregates match the unbundled batch solver within float tolerance,
    /// across random tenant mixes — including the oversubscribed-floor
    /// regime where phase-1 scaling kicks in.
    #[test]
    fn bundled_solve_matches_batch_solver() {
        let topo = topo();
        let servers = topo.servers();
        let mut rng = Rng(0xBEEF);
        for round in 0..20 {
            let model = if round % 2 == 0 {
                GuaranteeModel::Tag
            } else {
                GuaranteeModel::Hose
            };
            let mut engine = TrafficEngine::new(&topo, model, EcmpConfig::none());
            let mut tenants = Vec::new();
            for id in 0..3u64 {
                let tag = random_tag(&mut rng);
                let placement = random_placement(&mut rng, &tag, servers);
                engine.upsert_tenant(&topo, id, 1, &tag, &placement);
                tenants.push(TenantTraffic::from_placement(id, tag, &placement, model));
            }
            let got = engine.solve_detailed(&topo);
            let want = datacenter::solve(&topo, &tenants);
            assert_report_close(&got, &want, &format!("round {round}"));
        }
    }

    /// Oversubscribed floors (phase-1 scaling, the `R < F` recovery
    /// regime): many high-guarantee pairs squeezed through one NIC.
    #[test]
    fn bundling_is_exact_under_oversubscribed_floors() {
        // 1-slot topology is too small; use the 4-slot default and pile
        // two fat tiers onto two servers so floors exceed the NIC.
        let topo = topo();
        let servers = topo.servers();
        let mut b = TagBuilder::new("fat");
        let a = b.tier("a", 4);
        let z = b.tier("z", 4);
        // 4×4 pairs × 500 Mbps floors ≫ the 1 Gbps NIC.
        b.sym_edge(a, z, mbps(2000.0)).unwrap();
        let tag = Arc::new(b.build().unwrap());
        let placement = vec![(servers[0], vec![4, 0]), (servers[7], vec![0, 4])];
        let mut engine = TrafficEngine::new(&topo, GuaranteeModel::Tag, EcmpConfig::none());
        engine.upsert_tenant(&topo, 5, 1, &tag, &placement);
        let got = engine.solve_detailed(&topo);
        let want = datacenter::solve(
            &topo,
            &[TenantTraffic::from_placement(
                5,
                Arc::clone(&tag),
                &placement,
                GuaranteeModel::Tag,
            )],
        );
        // Floors oversubscribe: phase-1 scaling must have engaged.
        let f = want.pair(5, 0, 4).unwrap();
        assert!(f.rate_kbps < f.floor_kbps, "scaling regime not reached");
        assert_report_close(&got, &want, "oversubscribed");
        // And the whole thing collapsed to 2 aggregate fluid flows
        // (one per direction) from 32 VM pairs.
        assert_eq!(got.cross_flows, 32);
        assert_eq!(got.fluid_flows, 2);
    }

    /// Incremental re-expansion under churn, compared against a fresh
    /// engine fed the final state. With `force_cold` the component solves
    /// are canonical and the rates must be **bit-identical**; with warm
    /// starts enabled they are tolerance-equal with identical violation
    /// verdicts. Floors are bit-identical either way.
    fn churned_vs_fresh(force_cold: bool) {
        let topo = topo();
        let servers = topo.servers();
        let mut rng = Rng(7);
        let mut engine = TrafficEngine::new(&topo, GuaranteeModel::Tag, EcmpConfig::none());
        engine.set_force_cold(force_cold);
        type Entry = (u64, Arc<Tag>, Vec<(NodeId, Vec<u32>)>);
        let mut state: BTreeMap<u64, Entry> = BTreeMap::new();
        for step in 0..40 {
            let id = rng.next(6);
            if state.contains_key(&id) && rng.next(3) == 0 {
                state.remove(&id);
            } else {
                let tag = random_tag(&mut rng);
                let placement = random_placement(&mut rng, &tag, servers);
                let version = step as u64 + 1;
                state.insert(id, (version, Arc::clone(&tag), placement));
            }
            engine.retain_tenants(|id| state.contains_key(&id));
            for (&id, (version, tag, placement)) in &state {
                engine.upsert_tenant(&topo, id, *version, tag, placement);
            }
            let got = engine.solve_detailed(&topo);

            let mut fresh = TrafficEngine::new(&topo, GuaranteeModel::Tag, EcmpConfig::none());
            fresh.set_force_cold(force_cold);
            for (&id, (version, tag, placement)) in &state {
                fresh.upsert_tenant(&topo, id, *version, tag, placement);
            }
            let want = fresh.solve_detailed(&topo);
            assert_eq!(got.flows.len(), want.flows.len(), "step {step}");
            for (a, b) in got.flows.iter().zip(&want.flows) {
                assert_eq!(a.tenant, b.tenant);
                assert_eq!((a.src, a.dst), (b.src, b.dst));
                if force_cold {
                    assert_eq!(a.rate_kbps.to_bits(), b.rate_kbps.to_bits(), "step {step}");
                } else {
                    assert!(
                        (a.rate_kbps - b.rate_kbps).abs() < 1e-6 * (1.0 + b.rate_kbps.abs()),
                        "step {step}: {} vs {}",
                        a.rate_kbps,
                        b.rate_kbps
                    );
                }
                assert_eq!(a.floor_kbps.to_bits(), b.floor_kbps.to_bits());
            }
            assert_eq!(got.violations, want.violations, "step {step}");
            assert_eq!(got.work_conserving, want.work_conserving, "step {step}");
            if force_cold {
                assert_eq!(
                    got.total_rate_kbps.to_bits(),
                    want.total_rate_kbps.to_bits()
                );
            } else {
                assert!(
                    (got.total_rate_kbps - want.total_rate_kbps).abs()
                        < 1e-6 * (1.0 + want.total_rate_kbps),
                    "step {step}"
                );
            }
        }
    }

    #[test]
    fn churned_engine_is_bit_equal_to_fresh_engine_when_cold() {
        churned_vs_fresh(true);
    }

    #[test]
    fn churned_engine_matches_fresh_engine_with_warm_starts() {
        churned_vs_fresh(false);
    }

    /// ECMP: equal-split over `ways` symmetric sub-links reproduces the
    /// single-pipe allocation; hashed mode stays work-conserving and
    /// cannot beat the split total under incast.
    #[test]
    fn ecmp_modes_behave() {
        let topo = topo();
        let servers = topo.servers();
        // Cross-pod incast: 4 senders (one per remote rack pair) into one
        // receiver, all crossing the core.
        let mut b = TagBuilder::new("incast");
        let snd = b.tier("snd", 4);
        let rcv = b.tier("rcv", 1);
        b.edge(snd, rcv, mbps(500.0), mbps(2000.0)).unwrap();
        let tag = Arc::new(b.build().unwrap());
        let placement = vec![
            (servers[4], vec![2, 0]),
            (servers[5], vec![2, 0]),
            (servers[0], vec![0, 1]),
        ];
        let rate_for = |cfg: EcmpConfig| {
            let mut e = TrafficEngine::new(&topo, GuaranteeModel::Tag, cfg);
            e.upsert_tenant(&topo, 1, 1, &tag, &placement);
            let r = e.solve(&topo);
            assert!(r.work_conserving, "{cfg:?}");
            r.total_rate_kbps
        };
        let single = rate_for(EcmpConfig::none());
        let split = rate_for(EcmpConfig::equal_split(4));
        let hashed = rate_for(EcmpConfig::hashed(4));
        // Packet spraying over symmetric quarters = one fat pipe.
        assert!(
            (split - single).abs() < 1e-3 * (1.0 + single),
            "split {split} vs single {single}"
        );
        // Hash collisions can only hurt, never help.
        assert!(hashed <= split + 1e-6 * (1.0 + split), "hashed {hashed}");
    }

    /// Capacity sync after a fault: an engine that degrades links in
    /// place (dirtying only the touched components) matches a fresh
    /// engine built over the degraded topology, and restoring the links
    /// returns the original rates.
    #[test]
    fn sync_link_caps_matches_fresh_engine_on_degraded_topology() {
        let mut topo = topo();
        let servers = topo.servers();
        let mut rng = Rng(0xFA17);
        let mut engine = TrafficEngine::new(&topo, GuaranteeModel::Tag, EcmpConfig::none());
        let mut state = Vec::new();
        for id in 0..4u64 {
            let tag = random_tag(&mut rng);
            let placement = random_placement(&mut rng, &tag, servers);
            engine.upsert_tenant(&topo, id, 1, &tag, &placement);
            state.push((id, tag, placement));
        }
        // Plus one deterministic cross-rack pair pinned through the first
        // rack's uplink, so the kill below provably strands traffic.
        let mut b = TagBuilder::new("canary");
        let a = b.tier("a", 1);
        let z = b.tier("z", 1);
        b.edge(a, z, mbps(100.0), mbps(100.0)).unwrap();
        let canary = Arc::new(b.build().unwrap());
        let canary_placement = vec![(servers[0], vec![1, 0]), (servers[2], vec![0, 1])];
        engine.upsert_tenant(&topo, 9, 1, &canary, &canary_placement);
        state.push((9, canary, canary_placement));
        let healthy = engine.solve_detailed(&topo);
        let canary_before = healthy.tenants.iter().find(|t| t.id == 9).unwrap();
        assert_eq!(canary_before.violations, 0);
        assert!(canary_before.achieved_kbps > 0.0);

        // Kill one rack uplink and halve another: the live engine syncs in
        // place; the reference engine is built over the degraded tree.
        let tors: Vec<NodeId> = (0..topo.num_nodes() as u32)
            .map(NodeId)
            .filter(|&n| topo.level(n) == 1)
            .collect();
        topo.degrade_link(tors[0], 0.0).unwrap();
        topo.degrade_link(tors[2], 0.5).unwrap();
        let changed = engine.sync_link_caps(&topo);
        assert!(changed > 0, "two degraded uplinks must change fluid caps");
        let got = engine.solve_detailed(&topo);
        let mut fresh = TrafficEngine::new(&topo, GuaranteeModel::Tag, EcmpConfig::none());
        for (id, tag, placement) in &state {
            fresh.upsert_tenant(&topo, *id, 1, tag, placement);
        }
        let want = fresh.solve_detailed(&topo);
        assert_report_close(&got, &want, "degraded");
        // The canary straddles the dead uplink: its traffic is provably
        // stranded, and the solve must measure that as a violation.
        let canary_after = got.tenants.iter().find(|t| t.id == 9).unwrap();
        assert!(canary_after.violations > 0, "dead rack violates the canary");
        assert!(
            canary_after.achieved_kbps < 1e-6,
            "no path around a tree link"
        );
        assert!(got.violations > healthy.violations, "dead rack violates");

        // Restore: back to the healthy rates (same solver state shape).
        topo.restore_link(tors[0]).unwrap();
        topo.restore_link(tors[2]).unwrap();
        assert!(engine.sync_link_caps(&topo) > 0);
        let back = engine.solve_detailed(&topo);
        assert_report_close(&back, &healthy, "restored");
        // And a no-op sync touches nothing.
        assert_eq!(engine.sync_link_caps(&topo), 0);
    }

    /// Model switching drops cached tenants so floors re-derive.
    #[test]
    fn set_model_invalidates_cached_tenants() {
        let topo = topo();
        let servers = topo.servers();
        let mut rng = Rng(99);
        let tag = random_tag(&mut rng);
        let placement = random_placement(&mut rng, &tag, servers);
        let mut engine = TrafficEngine::new(&topo, GuaranteeModel::Tag, EcmpConfig::none());
        engine.upsert_tenant(&topo, 1, 1, &tag, &placement);
        assert_eq!(engine.version_of(1), Some(1));
        engine.set_model(GuaranteeModel::Hose);
        assert_eq!(engine.version_of(1), None);
        engine.upsert_tenant(&topo, 1, 1, &tag, &placement);
        let hose = engine.solve_detailed(&topo);
        let want = datacenter::solve(
            &topo,
            &[TenantTraffic::from_placement(
                1,
                Arc::clone(&tag),
                &placement,
                GuaranteeModel::Hose,
            )],
        );
        assert_report_close(&hose, &want, "post-switch");
    }

    /// Compare an engine report against a batch-solver report: same pair
    /// set, tolerance-equal rates/floors/intents, equal violations and
    /// work-conservation, tolerance-equal aggregates.
    fn assert_report_close(got: &TrafficReport, want: &TrafficReport, ctx: &str) {
        assert_eq!(got.flows.len(), want.flows.len(), "{ctx}: pair count");
        assert_eq!(got.cross_flows, want.cross_flows, "{ctx}");
        assert_eq!(got.colocated_flows, want.colocated_flows, "{ctx}");
        for w in &want.flows {
            let g = got
                .pair(w.tenant, w.src, w.dst)
                .unwrap_or_else(|| panic!("{ctx}: missing pair {w:?}"));
            let close = |a: f64, b: f64| (a - b).abs() < 1e-6 * (1.0 + b.abs());
            assert!(
                close(g.floor_kbps, w.floor_kbps),
                "{ctx}: floor {g:?} vs {w:?}"
            );
            assert!(
                close(g.intent_kbps, w.intent_kbps),
                "{ctx}: intent {g:?} vs {w:?}"
            );
            assert!(
                close(g.rate_kbps, w.rate_kbps),
                "{ctx}: rate {g:?} vs {w:?}"
            );
            assert_eq!(g.colocated, w.colocated, "{ctx}");
        }
        assert_eq!(got.violations, want.violations, "{ctx}");
        assert_eq!(got.work_conserving, want.work_conserving, "{ctx}");
        assert!(
            (got.total_rate_kbps - want.total_rate_kbps).abs()
                < 1e-6 * (1.0 + want.total_rate_kbps),
            "{ctx}: total {} vs {}",
            got.total_rate_kbps,
            want.total_rate_kbps
        );
        for (g, w) in got.levels.iter().zip(&want.levels) {
            assert_eq!(g.links, w.links, "{ctx}");
            assert!(
                (g.mean_utilization - w.mean_utilization).abs() < 1e-6,
                "{ctx}: level {} mean {} vs {}",
                g.level,
                g.mean_utilization,
                w.mean_utilization
            );
        }
    }
}
