//! Differential property test for [`IncrementalFluid`]: random add/remove
//! churn sequences with interleaved solves, checked three ways every
//! solve —
//!
//! 1. the warm-started solver against a forced-cold twin driven through
//!    the identical churn (same stable ids, so the comparison survives
//!    swap-removals),
//! 2. both against a from-scratch global [`Fluid::rates`] over the same
//!    surviving flow set,
//! 3. the invariants themselves: work conservation always, and the full
//!    max-min definition ([`Fluid::verify_max_min`]) whenever the floors
//!    are admissible (the verifier assumes per-link floor sums fit).

use cm_enforce::{FlowSpec, Fluid, IncrementalFluid};
use proptest::prelude::*;

/// One churn op against the incremental solver.
#[derive(Debug, Clone)]
enum Op {
    /// Add a flow crossing this link bitmask, with this demand class and
    /// guarantee.
    Add {
        path_mask: u64,
        demand: Option<f64>,
        guarantee: f64,
    },
    /// Remove the k-th (mod live count) surviving flow.
    Remove(usize),
    /// Solve both twins and run the differential checks.
    Solve,
}

#[derive(Debug, Clone)]
struct ChurnRecipe {
    caps: Vec<f64>,
    ops: Vec<Op>,
}

fn arb_op(links: usize) -> impl Strategy<Value = Op> {
    (
        0u8..8,
        1u64..(1 << links as u64),
        0u8..3,
        10.0f64..500.0,
        0.0f64..300.0,
        0usize..64,
    )
        .prop_map(|(which, path_mask, kind, demand, guarantee, k)| {
            match which {
                // Half the stream adds flows, a quarter removes, a
                // quarter solves-and-checks.
                0..=3 => Op::Add {
                    path_mask,
                    demand: match kind {
                        0 => None,
                        1 => Some(demand),
                        _ => Some(demand.min(guarantee * 0.5 + 1.0)),
                    },
                    guarantee,
                },
                4..=5 => Op::Remove(k),
                _ => Op::Solve,
            }
        })
}

fn arb_churn() -> impl Strategy<Value = ChurnRecipe> {
    (2usize..7).prop_flat_map(|links| {
        (
            prop::collection::vec(50.0f64..2000.0, links..=links),
            prop::collection::vec(arb_op(links), 4..40),
        )
            .prop_map(|(caps, ops)| ChurnRecipe { caps, ops })
    })
}

fn close(x: f64, y: f64) -> bool {
    (x - y).abs() <= 1e-6 * (1.0 + y.abs())
}

/// Solve both twins and run every differential check against the
/// surviving flow set.
fn check_solve(
    warm: &mut IncrementalFluid,
    cold: &mut IncrementalFluid,
    live: &[(u32, u32, FlowSpec)],
    caps: &[f64],
) {
    warm.solve();
    cold.solve();
    for &(wa, ca, _) in live {
        let (x, y) = (warm.rate_of(wa), cold.rate_of(ca));
        prop_assert!(close(x, y), "warm {} vs forced-cold {}", x, y);
    }
    // Global from-scratch reference over the surviving set.
    let mut fresh = Fluid::new();
    for &c in caps {
        fresh.link(c);
    }
    for (_, _, spec) in live {
        fresh.flow(spec.clone());
    }
    let want = fresh.rates();
    for (k, (wa, _, _)) in live.iter().enumerate() {
        let x = warm.rate_of(*wa);
        prop_assert!(close(x, want[k]), "warm {} vs global {}", x, want[k]);
    }
    prop_assert!(warm.is_work_conserving());
    prop_assert!(cold.is_work_conserving());
    // The strict verifier assumes admissible floors; only run it when the
    // per-link floor sums actually fit.
    let mut floor_used = vec![0.0f64; caps.len()];
    for (_, _, f) in live {
        for &l in &f.path {
            floor_used[l] += f.floor.min(f.demand);
        }
    }
    if floor_used.iter().zip(caps).all(|(&u, &c)| u <= c) {
        fresh
            .verify_max_min(&want)
            .unwrap_or_else(|e| panic!("global verify: {e}"));
    }
}

/// Run the churn over both twins, checking after every solve.
fn run(recipe: &ChurnRecipe) {
    let mut base = Fluid::new();
    for &c in &recipe.caps {
        base.link(c);
    }
    let mut warm = IncrementalFluid::new(base.clone());
    let mut cold = IncrementalFluid::new(base);
    cold.set_force_cold(true);
    // Surviving flows: (warm id, cold id, spec); ids match between twins
    // because both see the identical add/remove sequence.
    let mut live: Vec<(u32, u32, FlowSpec)> = Vec::new();
    let mut seq = 0u32;
    for op in &recipe.ops {
        match op {
            Op::Add {
                path_mask,
                demand,
                guarantee,
            } => {
                let path: Vec<usize> = (0..recipe.caps.len())
                    .filter(|l| path_mask & (1 << l) != 0)
                    .collect();
                let mut spec = FlowSpec::greedy(path).with_guarantee(*guarantee);
                if let Some(d) = demand {
                    spec.demand = *d;
                }
                seq += 1;
                let key = ((seq % 7) as u64, seq);
                let wa = warm.add_flow(spec.clone(), key);
                let ca = cold.add_flow(spec.clone(), key);
                prop_assert_eq!(wa, ca, "twins must hand out identical stable ids");
                live.push((wa, ca, spec));
            }
            Op::Remove(k) => {
                if live.is_empty() {
                    continue;
                }
                let (wa, ca, _) = live.swap_remove(k % live.len());
                warm.remove_flow(wa);
                cold.remove_flow(ca);
            }
            Op::Solve => check_solve(&mut warm, &mut cold, &live, &recipe.caps),
        }
    }
    // Always end on a checked solve so trailing churn is covered.
    check_solve(&mut warm, &mut cold, &live, &recipe.caps);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Warm-started and forced-cold incremental solves agree with each
    /// other and with a from-scratch global solve across random churn.
    #[test]
    fn warm_matches_forced_cold_and_global(recipe in arb_churn()) {
        run(&recipe);
    }
}
