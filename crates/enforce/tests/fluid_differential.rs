//! Differential property test: the rewritten indexed [`Fluid::rates`]
//! against the pre-rewrite implementation ([`Fluid::rates_reference`],
//! kept verbatim), on random networks.
//!
//! Weighted max-min with floors has a *unique* solution, so the two
//! algorithms must agree wherever the reference is correct; on top of the
//! comparison, every allocation the new solver produces is checked against
//! the definition itself — floors respected, caps respected, work
//! conserving, and the weighted-fairness KKT condition (every flow below
//! demand holds the maximal fill level on some saturated link).

use cm_enforce::{FlowSpec, Fluid};
use proptest::prelude::*;

/// Recipe for one random flow: which links it crosses (as a bitmask over
/// the network's links), its demand class and its guarantee.
#[derive(Debug, Clone)]
struct FlowRecipe {
    path_mask: u64,
    /// Demand in kbps; `None` = greedy.
    demand: Option<f64>,
    guarantee: f64,
}

#[derive(Debug, Clone)]
struct NetRecipe {
    caps: Vec<f64>,
    flows: Vec<FlowRecipe>,
}

fn arb_net() -> impl Strategy<Value = NetRecipe> {
    (2usize..7, 1usize..14).prop_flat_map(|(links, flows)| {
        (
            prop::collection::vec(50.0f64..2000.0, links..=links),
            prop::collection::vec(
                (
                    1u64..(1 << links as u64),
                    0u8..3,
                    10.0f64..500.0,
                    0.0f64..300.0,
                ),
                flows..=flows,
            ),
        )
            .prop_map(|(caps, raw)| NetRecipe {
                caps,
                flows: raw
                    .into_iter()
                    .map(|(path_mask, kind, demand, guarantee)| FlowRecipe {
                        path_mask,
                        // Mix of greedy flows (the common case), moderate
                        // finite demands, and demands below the guarantee.
                        demand: match kind {
                            0 => None,
                            1 => Some(demand),
                            _ => Some(demand.min(guarantee * 0.5 + 1.0)),
                        },
                        guarantee,
                    })
                    .collect(),
            })
    })
}

/// Instantiate the recipe. When `admissible` is set, guarantees are scaled
/// down so that per-link floor sums fit the capacities (the regime the
/// placement layer establishes); otherwise raw floors may oversubscribe
/// and exercise the defensive scaling path.
fn build(recipe: &NetRecipe, admissible: bool) -> Fluid {
    let mut scale = 1.0f64;
    if admissible {
        for (l, &cap) in recipe.caps.iter().enumerate() {
            let floor_sum: f64 = recipe
                .flows
                .iter()
                .filter(|f| f.path_mask & (1 << l) != 0)
                .map(|f| f.guarantee)
                .sum();
            if floor_sum > cap {
                scale = scale.min(0.95 * cap / floor_sum);
            }
        }
    }
    let mut net = Fluid::new();
    let links: Vec<usize> = recipe.caps.iter().map(|&c| net.link(c)).collect();
    for f in &recipe.flows {
        let path: Vec<usize> = links
            .iter()
            .enumerate()
            .filter(|&(l, _)| f.path_mask & (1 << l) != 0)
            .map(|(_, &id)| id)
            .collect();
        let mut spec = FlowSpec::greedy(path).with_guarantee(f.guarantee * scale);
        if let Some(d) = f.demand {
            spec.demand = d;
        }
        net.flow(spec);
    }
    net
}

fn assert_close(a: &[f64], b: &[f64], what: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= 1e-6 * (1.0 + y.abs()),
            "{what}: flow {i}: indexed {x} vs reference {y}\n  indexed: {a:?}\n  reference: {b:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Admissible floors: the reference is exact here, so the indexed
    /// solver must match it AND satisfy the full max-min definition.
    #[test]
    fn indexed_matches_reference_and_is_max_min(recipe in arb_net()) {
        let net = build(&recipe, true);
        let rates = net.rates();
        let reference = net.rates_reference();
        assert_close(&rates, &reference, "admissible floors");
        net.verify_max_min(&rates).unwrap_or_else(|e| {
            panic!("verify failed: {e}\n  recipe: {recipe:?}\n  rates: {rates:?}")
        });
        prop_assert!(net.is_work_conserving(&rates));
    }

    /// Oversubscribed floors exercise the defensive proportional-scaling
    /// phase; the two implementations share it and must still agree, and
    /// capacities must never be exceeded.
    #[test]
    fn oversubscribed_floors_still_agree(recipe in arb_net()) {
        let net = build(&recipe, false);
        let rates = net.rates();
        let reference = net.rates_reference();
        assert_close(&rates, &reference, "oversubscribed floors");
        // Caps hold even when floors had to be scaled down.
        let mut used = vec![0.0f64; net.num_links()];
        for (f, &r) in net.flows().iter().zip(&rates) {
            for &l in &f.path {
                used[l] += r;
            }
        }
        for (l, &u) in used.iter().enumerate() {
            prop_assert!(
                u <= net.link_cap(l) * (1.0 + 1e-6) + 1e-6,
                "link {l}: {u} > cap {}", net.link_cap(l)
            );
        }
        prop_assert!(net.is_work_conserving(&rates));
    }
}
