//! # cm-cluster
//!
//! The unified tenant-lifecycle controller: one typed front door for the
//! whole closed loop the paper describes — TAGs are **admitted** onto a
//! datacenter by a placement algorithm, **enforced** at runtime, and
//! **evolve** (scale out under load, scale back in, migrate, depart) until
//! they leave.
//!
//! [`Cluster`] owns a [`Topology`] and any [`Placer`] and keys every live
//! tenant by a [`TenantId`]:
//!
//! * [`Cluster::admit`] deploys a [`TagSpec`] and returns a
//!   [`TenantHandle`];
//! * [`Cluster::scale_tier`] / [`Cluster::resize_tier`] resize one tier of
//!   a *live* deployment by ±n VMs through
//!   [`Placer::place_incremental`] — exact incremental for CloudMirror
//!   (only the delta VMs move, every touched link repriced under the
//!   resized TAG), a snapshot-guarded wholesale re-place for baselines;
//! * [`Cluster::migrate`] re-places a tenant from scratch (defragmentation
//!   after churn), all-or-nothing: the old placement is restored exactly if
//!   the re-admission fails;
//! * [`Cluster::depart`] releases everything the tenant holds;
//! * [`Cluster::inject_fault`] / [`Cluster::repair`] make survivability a
//!   measured quantity: kill a server, a whole fault domain, or degrade a
//!   link ([`Fault`]); lost VMs are evacuated from their tenants' ledgers
//!   (stranded reservations reclaimed exactly, [`FaultReport`]) and
//!   [`Cluster::repair_tenant`] later re-places only what was lost;
//! * queries: [`Cluster::utilization`], [`Cluster::placement_of`], and
//!   [`Cluster::guarantee_report`], which wires the placement into the
//!   enforcement layer's guarantee partitioning (`cm-enforce`) — per
//!   VM-pair guarantees under the TAG patch (or the plain-hose model, for
//!   the §2.2 comparison), classified by whether they cross the network;
//! * traffic: [`Cluster::traffic_report`] (detailed) and
//!   [`Cluster::traffic_step`] (summary-only, the hot churn path) solve
//!   every live tenant's flows over the physical tree through an embedded
//!   persistent [`TrafficEngine`] that re-expands only tenants whose
//!   placement changed ([`Cluster::set_traffic_ecmp`] selects multipath
//!   core routing).
//!
//! Every operation is transactional: on `Err` the topology and the tenant
//! are exactly as before. The error surface is one type, [`CmError`]
//! (`std::error::Error`; [`RejectReason`] and
//! [`cm_topology::TopologyError`] fold in), so callers can `?` across
//! crate boundaries.
//!
//! ## Example
//!
//! ```
//! use cm_cluster::{Cluster, CmError, TenantId};
//! use cm_core::model::TagBuilder;
//! use cm_core::placement::{CmConfig, CmPlacer};
//! use cm_core::TierId;
//! use cm_topology::{mbps, TreeSpec};
//!
//! fn main() -> Result<(), CmError> {
//!     // A small datacenter run by the CloudMirror placer.
//!     let spec = TreeSpec::small(2, 2, 4, 4, [mbps(1000.0), mbps(2000.0), mbps(4000.0)]);
//!     let mut cluster = Cluster::new(&spec, CmPlacer::new(CmConfig::cm()));
//!
//!     // Admit a two-tier application.
//!     let mut b = TagBuilder::new("shop");
//!     let web = b.tier("web", 4);
//!     let db = b.tier("db", 2);
//!     b.sym_edge(web, db, mbps(100.0)).unwrap();
//!     let tenant = cluster.admit(b.build().unwrap())?;
//!
//!     // Scale the web tier out by 2 VMs, then back in by 1.
//!     assert_eq!(cluster.scale_tier(tenant.id(), web, 2)?, 6);
//!     assert_eq!(cluster.scale_tier(tenant.id(), web, -1)?, 5);
//!
//!     // Inspect what the tenant holds and what it is guaranteed.
//!     assert_eq!(cluster.utilization().slots_in_use, 7);
//!     let report = cluster.guarantee_report(tenant.id())?;
//!     assert!(report.total_kbps() > 0.0);
//!
//!     // Defragment, then depart: the datacenter ends pristine.
//!     cluster.migrate(tenant.id())?;
//!     cluster.depart(tenant.id())?;
//!     assert_eq!(cluster.utilization().slots_in_use, 0);
//!     let ghost = TenantId::from_raw(99);
//!     assert_eq!(cluster.scale_tier(ghost, TierId(0), 1).unwrap_err(),
//!                CmError::UnknownTenant(ghost));
//!     Ok(())
//! }
//! ```

use cm_core::model::{Tag, TierId};
use cm_core::placement::{place_incremental_replace, Deployed, Placer};
use cm_topology::{Kbps, NodeId, Topology, TreeSpec};
use std::collections::BTreeMap;
use std::sync::Arc;

// Re-exported so downstream callers need only this crate for lifecycle
// work (`CmError` folds `RejectReason` in; `GuaranteeModel` selects the
// report's hose classification; the traffic-report types come back from
// [`Cluster::traffic_report`]).
pub use cm_core::placement::RejectReason;
pub use cm_enforce::datacenter::{
    LevelUtilization, PairFlow, TenantSummary, TenantTraffic, TrafficReport,
};
pub use cm_enforce::{EcmpConfig, EcmpMode, GuaranteeModel};

use cm_enforce::TrafficEngine;
use std::cell::{Cell, RefCell, RefMut};

mod error;
mod report;

pub use error::CmError;
pub use report::{GuaranteeReport, PairReport, Utilization};

/// Opaque identifier of a tenant inside one [`Cluster`]. Ids are assigned
/// monotonically at admission and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(u64);

impl TenantId {
    /// Construct an id from its raw value (tests, external registries).
    pub fn from_raw(raw: u64) -> TenantId {
        TenantId(raw)
    }

    /// The raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// A tenant specification handed to [`Cluster::admit`]: the TAG, shared.
/// Converts from `Tag`, `Arc<Tag>`, and `&Arc<Tag>`, so both one-off
/// callers and pools of pre-built `Arc<Tag>`s (the simulator's hot path)
/// admit without a deep clone beyond the unavoidable first wrap.
#[derive(Debug, Clone)]
pub struct TagSpec(Arc<Tag>);

impl TagSpec {
    /// The shared TAG inside the spec.
    pub fn tag(&self) -> &Arc<Tag> {
        &self.0
    }
}

impl From<Tag> for TagSpec {
    fn from(tag: Tag) -> TagSpec {
        TagSpec(Arc::new(tag))
    }
}

impl From<Arc<Tag>> for TagSpec {
    fn from(tag: Arc<Tag>) -> TagSpec {
        TagSpec(tag)
    }
}

impl From<&Arc<Tag>> for TagSpec {
    fn from(tag: &Arc<Tag>) -> TagSpec {
        TagSpec(Arc::clone(tag))
    }
}

/// What [`Cluster::admit`] returns: the assigned id plus the admitted TAG.
/// A handle is plain data — cloning or dropping it does not affect the
/// deployment; the cluster keeps the authoritative registry.
#[derive(Debug, Clone)]
pub struct TenantHandle {
    id: TenantId,
    tag: Arc<Tag>,
}

impl TenantHandle {
    /// The tenant's id (the key for every lifecycle call).
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The tenant's TAG **at admission**. After a
    /// [`Cluster::scale_tier`] the authoritative (resized) model is
    /// [`Cluster::tag_of`].
    pub fn tag(&self) -> &Arc<Tag> {
        &self.tag
    }
}

/// A failure (or, symmetrically, a repair target) injected into the
/// running datacenter by [`Cluster::inject_fault`] / [`Cluster::repair`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// One server dies: its free slots leave every placement aggregate and
    /// the VMs on it are lost (evacuated from their tenants' ledgers).
    Server(NodeId),
    /// A whole fault domain dies — the paper's §4.5 failure unit: the
    /// subtree root's uplink drops to zero capacity and every server below
    /// it fails.
    Domain(NodeId),
    /// A soft failure: `node`'s uplink degrades to `fraction` of nominal
    /// capacity in both directions. Placements survive (reservations made
    /// before the fault are honoured in the ledger), but headroom for new
    /// work shrinks and the traffic layer routes against the reduced caps.
    DegradeLink {
        /// The node whose uplink degrades.
        node: NodeId,
        /// Remaining capacity as a fraction of nominal, in `[0, 1]`.
        fraction: f64,
    },
}

/// Per-tenant damage from one [`Cluster::inject_fault`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantDamage {
    /// The damaged tenant.
    pub tenant: TenantId,
    /// Tier sizes immediately before this fault's evacuation.
    pub pre_sizes: Vec<u32>,
    /// Worst-case survivability per tier of the pre-fault placement,
    /// measured at the tree level of the fault domain
    /// (`1 − max_A N^t_A / N^t`, §4.5) — the survivability this fault was
    /// *guaranteed* not to undercut. `None` for unplaced tiers.
    pub pre_wcs: Vec<Option<f64>>,
    /// VMs lost per tier (indexed like the TAG's tiers).
    pub lost: Vec<u32>,
    /// Total VMs lost.
    pub lost_vms: u64,
    /// Stranded bandwidth reclaimed by the evacuation, kbps (summed over
    /// both directions of every touched link).
    pub reclaimed_kbps: Kbps,
    /// Whether the whole deployment was evicted rather than kept as a
    /// surviving fragment (a tier lost all its VMs, or — for the
    /// fixed-hose baselines — the shrunken placement no longer satisfied
    /// the unshrunken model).
    pub evicted: bool,
}

/// What one [`Cluster::inject_fault`] did to the datacenter: the substrate
/// change plus the per-tenant evacuation ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// The fault injected.
    pub fault: Fault,
    /// Servers newly failed by this fault (empty for a pure link degrade).
    pub failed_servers: Vec<NodeId>,
    /// Total VMs lost across all tenants.
    pub lost_vms: u64,
    /// Total stranded bandwidth reclaimed, kbps.
    pub reclaimed_kbps: Kbps,
    /// Per-tenant damage, ascending tenant id.
    pub tenants: Vec<TenantDamage>,
}

/// What one [`Cluster::repair`] did: the substrate restoration plus the
/// outcome of re-placing every damaged tenant's lost VMs.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairReport {
    /// The fault repaired.
    pub fault: Fault,
    /// Servers brought back by this repair.
    pub restored_servers: Vec<NodeId>,
    /// Tenants whose lost VMs were fully re-placed (ascending id).
    pub repaired: Vec<TenantId>,
    /// Tenants still damaged after this repair (capacity still gone —
    /// typically another fault is active), with the error each hit.
    pub degraded: Vec<(TenantId, CmError)>,
}

/// Repair bookkeeping for one damaged tenant: what to grow back to.
struct FaultRecord {
    /// The authoritative TAG the moment the *first* fault hit the tenant —
    /// the repair target. Overlapping faults keep the original.
    pre_fault_tag: Arc<Tag>,
    /// Whether the deployment was evicted wholesale (repair re-admits from
    /// scratch instead of regrowing a fragment).
    evicted: bool,
}

struct TenantEntry {
    tag: Arc<Tag>,
    deployed: Deployed,
    /// Placement version, bumped on every successful placement-changing
    /// operation (scale, resize, migrate). The embedded traffic engine
    /// diffs these to find the dirty set — tenants whose cached flow
    /// state must be re-expanded.
    version: u64,
}

/// The single admission front door shared by [`Cluster::admit`] and the
/// legacy borrowed-topology adapters (`cm-sim`'s `PlacerAdmission` delegates
/// here), so there is exactly one place where a TAG turns into a live
/// deployment.
pub fn admit_with<P: Placer + ?Sized>(
    topo: &mut Topology,
    placer: &mut P,
    tag: &Arc<Tag>,
) -> Result<Deployed, RejectReason> {
    placer.place_shared(topo, tag)
}

/// The unified tenant-lifecycle controller (see the [module docs](self)).
pub struct Cluster<P: Placer> {
    topo: Topology,
    placer: P,
    tenants: BTreeMap<TenantId, TenantEntry>,
    next_id: u64,
    /// Damage ledger: every tenant that lost VMs to a fault and has not
    /// been fully repaired (or departed) since.
    faults: BTreeMap<TenantId, FaultRecord>,
    /// Bumped on every [`Cluster::inject_fault`] / [`Cluster::repair`];
    /// the embedded traffic engine diffs it to re-sync link capacities.
    fault_epoch: u64,
    guarantee_model: GuaranteeModel,
    /// ECMP layout for the embedded traffic engine.
    traffic_ecmp: EcmpConfig,
    /// Persistent incremental traffic engine, built lazily on the first
    /// traffic query and kept in sync via tenant version diffing.
    /// `RefCell` keeps the traffic queries `&self` (they are logically
    /// reads; the engine mutation is cache maintenance) — the `Cluster`
    /// is a single-threaded controller, so losing `Sync` costs nothing.
    traffic: RefCell<Option<TrafficEngine>>,
    /// The `fault_epoch` the engine's link capacities last reflected.
    traffic_fault_epoch: Cell<u64>,
}

impl<P: Placer> Cluster<P> {
    /// Build a fresh datacenter from `spec` and run it with `placer`.
    pub fn new(spec: &TreeSpec, placer: P) -> Self {
        Self::adopt(Topology::build(spec), placer)
    }

    /// Take control of an existing topology (which may already carry
    /// deployments made outside the cluster; those are simply not in the
    /// registry and never touched).
    pub fn adopt(topo: Topology, placer: P) -> Self {
        Cluster {
            topo,
            placer,
            tenants: BTreeMap::new(),
            next_id: 0,
            faults: BTreeMap::new(),
            fault_epoch: 0,
            guarantee_model: GuaranteeModel::Tag,
            traffic_ecmp: EcmpConfig::none(),
            traffic: RefCell::new(None),
            traffic_fault_epoch: Cell::new(0),
        }
    }

    /// Select the guarantee model used by [`Cluster::guarantee_report`]
    /// (default: [`GuaranteeModel::Tag`], the paper's patch; `Hose`
    /// reproduces the §2.2 dilution for comparison).
    pub fn with_guarantee_model(mut self, model: GuaranteeModel) -> Self {
        self.guarantee_model = model;
        self
    }

    /// Switch the guarantee model of future [`Cluster::guarantee_report`]s
    /// in place.
    pub fn set_guarantee_model(&mut self, model: GuaranteeModel) {
        self.guarantee_model = model;
    }

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Admit a tenant: deploy its TAG through the placer. On success the
    /// tenant is live (registered under the returned handle's id) until
    /// [`Cluster::depart`]; on rejection the datacenter is untouched.
    pub fn admit(&mut self, spec: impl Into<TagSpec>) -> Result<TenantHandle, CmError> {
        let TagSpec(tag) = spec.into();
        let deployed = admit_with(&mut self.topo, &mut self.placer, &tag)?;
        let id = TenantId(self.next_id);
        self.next_id += 1;
        self.tenants.insert(
            id,
            TenantEntry {
                tag: Arc::clone(&tag),
                deployed,
                version: 1,
            },
        );
        Ok(TenantHandle { id, tag })
    }

    /// Release everything the tenant holds (slots and bandwidth). The id
    /// becomes invalid; it is never reused.
    pub fn depart(&mut self, id: TenantId) -> Result<(), CmError> {
        let entry = self.tenants.remove(&id).ok_or(CmError::UnknownTenant(id))?;
        self.faults.remove(&id);
        entry.deployed.release(&mut self.topo);
        Ok(())
    }

    /// Resize `tier` of a live tenant by `delta` VMs (±n). Returns the new
    /// tier size. Guarantees per VM are unchanged — only the tier count
    /// moves (§3: "per-VM bandwidth guarantees Se and Re typically do not
    /// need to change when tier sizes are changed by scaling"). On `Err`
    /// the deployment is exactly as before. Tenants with unrepaired fault
    /// damage are rejected with [`CmError::Damaged`] — their deployment
    /// can disagree with the admitted model, so there is no consistent
    /// base to scale from.
    pub fn scale_tier(&mut self, id: TenantId, tier: TierId, delta: i64) -> Result<u32, CmError> {
        self.check_undamaged(id)?;
        let entry = self
            .tenants
            .get_mut(&id)
            .ok_or(CmError::UnknownTenant(id))?;
        check_tier(id, &entry.tag, tier)?;
        let current = entry.tag.tier(tier).size;
        let target = match (current as i64).checked_add(delta) {
            Some(t) if (1..=u32::MAX as i64).contains(&t) => t as u32,
            _ => {
                return Err(CmError::InvalidScale {
                    tenant: id,
                    tier,
                    current,
                    delta,
                })
            }
        };
        resize_entry(&mut self.topo, &mut self.placer, entry, tier, target)?;
        Ok(target)
    }

    /// [`Cluster::scale_tier`] with an absolute target size.
    pub fn resize_tier(
        &mut self,
        id: TenantId,
        tier: TierId,
        new_size: u32,
    ) -> Result<(), CmError> {
        self.check_undamaged(id)?;
        let entry = self
            .tenants
            .get_mut(&id)
            .ok_or(CmError::UnknownTenant(id))?;
        check_tier(id, &entry.tag, tier)?;
        if new_size == 0 {
            return Err(CmError::InvalidScale {
                tenant: id,
                tier,
                current: entry.tag.tier(tier).size,
                delta: -(entry.tag.tier(tier).size as i64),
            });
        }
        resize_entry(&mut self.topo, &mut self.placer, entry, tier, new_size)
    }

    /// Re-place the tenant from scratch with the placer's current view of
    /// the datacenter (defragmentation after churn). All-or-nothing under a
    /// savepoint: if the fresh placement fails, the old one is restored
    /// bit-for-bit and the error is returned. Tenants with unrepaired
    /// fault damage are rejected with [`CmError::Damaged`]: migrating a
    /// damaged fragment at full model size would be a silent repair with
    /// none of [`Cluster::repair_tenant`]'s accounting.
    pub fn migrate(&mut self, id: TenantId) -> Result<(), CmError> {
        self.check_undamaged(id)?;
        let entry = self
            .tenants
            .get_mut(&id)
            .ok_or(CmError::UnknownTenant(id))?;
        // The engine's snapshot → release → re-place → restore-on-failure
        // sequence, shared with the generic scaling fallback so the two
        // all-or-nothing restore paths cannot diverge.
        cm_core::placement::place_incremental_replace(
            &mut self.placer,
            &mut self.topo,
            &mut entry.deployed,
            &entry.tag,
        )?;
        entry.version += 1;
        Ok(())
    }

    /// Depart every live tenant (deterministic id order). The datacenter
    /// ends with nothing this cluster deployed still held.
    pub fn release_all(&mut self) {
        let tenants = std::mem::take(&mut self.tenants);
        self.faults.clear();
        for (_, entry) in tenants {
            entry.deployed.release(&mut self.topo);
        }
    }

    // ------------------------------------------------------------------
    // Fault injection & recovery
    // ------------------------------------------------------------------

    /// Inject a fault into the running datacenter: apply the substrate
    /// change, then evacuate every tenant that had VMs on newly failed
    /// servers — lost VMs leave their ledgers and stranded reservations
    /// are reclaimed exactly, so surviving placement and admission
    /// decisions never see dead capacity. Damage is recorded per tenant
    /// (the pre-fault TAG is the repair target) until
    /// [`Cluster::repair_tenant`] regrows it.
    ///
    /// CloudMirror deployments shrink their TAG to the surviving tier
    /// sizes (evacuation is then infallible — every cut price is monotone
    /// non-increasing); a tier losing *all* its VMs evicts the tenant
    /// wholesale. The fixed-hose baselines keep their admitted model, so
    /// an evacuation that no longer satisfies it also evicts.
    ///
    /// # Panics
    ///
    /// [`Fault::DegradeLink`] with `fraction` outside `[0, 1]`.
    pub fn inject_fault(&mut self, fault: Fault) -> Result<FaultReport, CmError> {
        let (failed_servers, domain_level) = match fault {
            Fault::Server(s) => {
                // cm-analyze: allow(txn-discipline) -- fault injection mutates the substrate, not a reservation
                let newly = if self.topo.fail_server(s)? {
                    vec![s]
                } else {
                    Vec::new()
                };
                (newly, 0u8)
            }
            Fault::Domain(n) => {
                let level = self.topo.level(n);
                (self.topo.fail_domain(n)?, level) // cm-analyze: allow(txn-discipline) -- fault injection mutates the substrate, not a reservation
            }
            Fault::DegradeLink { node, fraction } => {
                self.topo.degrade_link(node, fraction)?; // cm-analyze: allow(txn-discipline) -- fault injection mutates the substrate, not a reservation
                (Vec::new(), 0u8)
            }
        };
        self.fault_epoch += 1;
        let mut tenants = Vec::new();
        if !failed_servers.is_empty() {
            for (&id, entry) in self.tenants.iter_mut() {
                let pre = Arc::clone(&entry.tag);
                let pre_wcs = entry.deployed.wcs_at_level(&self.topo, domain_level);
                let pre_sizes = entry.deployed.tier_sizes();
                let Some(ev) = entry.deployed.evacuate_failed(&mut self.topo) else {
                    continue;
                };
                // A CloudMirror deployment shrank its model during the
                // evacuation; the registry tag follows, so guarantee
                // reports and the traffic engine describe only the
                // surviving VMs.
                if let Some(s) = entry.deployed.tag_state() {
                    entry.tag = s.model_arc();
                }
                entry.version += 1;
                let record = self.faults.entry(id).or_insert(FaultRecord {
                    pre_fault_tag: pre,
                    evicted: false,
                });
                record.evicted |= ev.evicted;
                tenants.push(TenantDamage {
                    tenant: id,
                    pre_sizes,
                    pre_wcs,
                    lost: ev.lost,
                    lost_vms: ev.lost_vms,
                    reclaimed_kbps: ev.reclaimed_kbps,
                    evicted: ev.evicted,
                });
            }
        }
        Ok(FaultReport {
            fault,
            failed_servers,
            lost_vms: tenants.iter().map(|t| t.lost_vms).sum(),
            reclaimed_kbps: tenants.iter().map(|t| t.reclaimed_kbps).sum(),
            tenants,
        })
    }

    /// Undo a fault: restore the substrate (bit-exact — nominal capacities
    /// come back from the spec, a restored server re-publishes exactly its
    /// unused slots), then attempt [`Cluster::repair_tenant`] for *every*
    /// damaged tenant in ascending id order. Tenants whose capacity is
    /// still gone (another fault active, or the datacenter filled up while
    /// degraded) stay recorded and are returned as `degraded`.
    pub fn repair(&mut self, fault: Fault) -> Result<RepairReport, CmError> {
        let restored_servers = match fault {
            Fault::Server(s) => {
                // cm-analyze: allow(txn-discipline) -- bit-exact substrate repair, not a reservation
                if self.topo.restore_server(s)? {
                    vec![s]
                } else {
                    Vec::new()
                }
            }
            Fault::Domain(n) => self.topo.restore_domain(n)?, // cm-analyze: allow(txn-discipline) -- bit-exact substrate repair, not a reservation
            Fault::DegradeLink { node, .. } => {
                self.topo.restore_link(node)?; // cm-analyze: allow(txn-discipline) -- bit-exact substrate repair, not a reservation
                Vec::new()
            }
        };
        self.fault_epoch += 1;
        let mut repaired = Vec::new();
        let mut degraded = Vec::new();
        for id in self.faults.keys().copied().collect::<Vec<_>>() {
            match self.repair_tenant(id) {
                Ok(()) => repaired.push(id),
                Err(e) => degraded.push((id, e)),
            }
        }
        Ok(RepairReport {
            fault,
            restored_servers,
            repaired,
            degraded,
        })
    }

    /// Re-place exactly the VMs a damaged tenant lost, growing it back to
    /// its recorded pre-fault TAG:
    ///
    /// * an evicted tenant is re-admitted from scratch under the pre-fault
    ///   TAG;
    /// * a surviving CloudMirror fragment regrows each shrunk tier through
    ///   [`Placer::place_incremental`] — only the lost VMs move, every
    ///   touched link is repriced under the regrown TAG;
    /// * a surviving baseline fragment is re-placed wholesale under a
    ///   snapshot guard (restored exactly on failure).
    ///
    /// On success the damage record is cleared. On
    /// [`CmError::RepairFailed`] the deployment is left in its consistent
    /// degraded state (for the tier-by-tier path, tiers regrown before the
    /// failing one stay regrown) and the record is kept, so the repair can
    /// be retried when capacity returns.
    pub fn repair_tenant(&mut self, id: TenantId) -> Result<(), CmError> {
        let record = self.faults.get(&id).ok_or(CmError::NothingToRepair(id))?;
        let pre = Arc::clone(&record.pre_fault_tag);
        let evicted = record.evicted;
        let entry = self
            .tenants
            .get_mut(&id)
            .ok_or(CmError::UnknownTenant(id))?;
        if evicted || entry.deployed.total_placed(&self.topo) == 0 {
            let deployed = self
                .placer
                .place_shared(&mut self.topo, &pre)
                .map_err(|reason| CmError::RepairFailed { tenant: id, reason })?;
            let old = std::mem::replace(&mut entry.deployed, deployed);
            old.release(&mut self.topo);
            entry.tag = entry
                .deployed
                .tag_state()
                .map(|s| s.model_arc())
                .unwrap_or(pre);
            entry.version += 1;
        } else if entry.deployed.tag_state().is_some() {
            for t in 0..pre.num_tiers() {
                let tier = TierId(t as u16);
                if pre.tier(tier).external {
                    continue;
                }
                let want = pre.tier(tier).size;
                if entry.tag.tier(tier).size >= want {
                    continue;
                }
                resize_entry(&mut self.topo, &mut self.placer, entry, tier, want).map_err(|e| {
                    match e {
                        CmError::Rejected(reason) => CmError::RepairFailed { tenant: id, reason },
                        other => other,
                    }
                })?;
            }
        } else {
            place_incremental_replace(&mut self.placer, &mut self.topo, &mut entry.deployed, &pre)
                .map_err(|reason| CmError::RepairFailed { tenant: id, reason })?;
            entry.version += 1;
        }
        self.faults.remove(&id);
        Ok(())
    }

    /// Tenants currently carrying fault damage (lost VMs not yet
    /// re-placed), ascending.
    pub fn faulted_tenants(&self) -> impl Iterator<Item = TenantId> + '_ {
        self.faults.keys().copied()
    }

    /// Guard for incremental lifecycle ops: a damaged tenant's deployment
    /// can disagree with its admitted model, so scale/migrate refuse until
    /// [`Cluster::repair_tenant`] reconciles them.
    fn check_undamaged(&self, id: TenantId) -> Result<(), CmError> {
        if self.faults.contains_key(&id) {
            return Err(CmError::Damaged(id));
        }
        Ok(())
    }

    /// The recorded pre-fault TAG of a damaged tenant — what
    /// [`Cluster::repair_tenant`] will grow it back to.
    pub fn pre_fault_tag(&self, id: TenantId) -> Option<&Arc<Tag>> {
        self.faults.get(&id).map(|r| &r.pre_fault_tag)
    }

    /// Monotonic counter bumped by every [`Cluster::inject_fault`] and
    /// [`Cluster::repair`].
    pub fn fault_epoch(&self) -> u64 {
        self.fault_epoch
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// The per-server placement of a live tenant: `(server, VMs per tier)`,
    /// sorted by server id.
    pub fn placement_of(&self, id: TenantId) -> Result<Vec<(NodeId, Vec<u32>)>, CmError> {
        let entry = self.tenants.get(&id).ok_or(CmError::UnknownTenant(id))?;
        Ok(entry.deployed.placement(&self.topo))
    }

    /// The authoritative (possibly rescaled) TAG of a live tenant.
    pub fn tag_of(&self, id: TenantId) -> Option<&Arc<Tag>> {
        self.tenants.get(&id).map(|e| &e.tag)
    }

    /// The deployment handle of a live tenant (placement, reservations,
    /// WCS queries).
    pub fn deployed(&self, id: TenantId) -> Option<&Deployed> {
        self.tenants.get(&id).map(|e| &e.deployed)
    }

    /// Datacenter-wide utilization: slots in use, tenants live, and
    /// reserved vs. capacity bandwidth per tree level.
    pub fn utilization(&self) -> Utilization {
        let levels = self.topo.num_levels();
        Utilization {
            tenants: self.tenants.len(),
            slots_total: self.topo.subtree_slots_total(self.topo.root()),
            slots_in_use: self.topo.slots_in_use(),
            reserved_by_level: (0..levels)
                .map(|l| self.topo.reserved_at_level(l))
                .collect(),
            capacity_by_level: (0..levels)
                .map(|l| self.topo.capacity_at_level(l))
                .collect(),
        }
    }

    /// Wire a live tenant's placement into the enforcement layer: expand
    /// the placement into per-VM tier/server assignments, partition the
    /// TAG's guarantees among all communicating VM pairs (every pair
    /// greedy — the converged worst case), and classify each pair by
    /// whether it crosses the network. See [`GuaranteeReport`].
    pub fn guarantee_report(&self, id: TenantId) -> Result<GuaranteeReport, CmError> {
        let entry = self.tenants.get(&id).ok_or(CmError::UnknownTenant(id))?;
        Ok(report::build_report(
            id,
            &entry.tag,
            &entry.deployed.placement(&self.topo),
            self.guarantee_model,
            None,
        ))
    }

    /// [`Cluster::guarantee_report`] for a known instantaneous
    /// communication pattern: only the given `(src VM, dst VM)` pairs are
    /// active (each greedy). Guarantee partitioning is demand-aware, so a
    /// concentrated pattern — Fig. 13's lone receiver — yields very
    /// different per-pair shares than the all-pairs default. VM indices
    /// follow the report's `vm_tier` / `vm_server` order; stale indices
    /// (after a scale-in, say) or self-pairs are an
    /// [`CmError::InvalidPair`].
    pub fn guarantee_report_active(
        &self,
        id: TenantId,
        active: &[(usize, usize)],
    ) -> Result<GuaranteeReport, CmError> {
        let entry = self.tenants.get(&id).ok_or(CmError::UnknownTenant(id))?;
        let placement = entry.deployed.placement(&self.topo);
        let vms = placement
            .iter()
            .map(|(_, c)| c.iter().sum::<u32>() as usize)
            .sum::<usize>();
        if let Some(&(src, dst)) = active
            .iter()
            .find(|&&(s, d)| s >= vms || d >= vms || s == d)
        {
            return Err(CmError::InvalidPair {
                tenant: id,
                src,
                dst,
                vms,
            });
        }
        Ok(report::build_report(
            id,
            &entry.tag,
            &placement,
            self.guarantee_model,
            Some(active),
        ))
    }

    /// Run **every** live tenant's flows over the physical tree and solve
    /// one shared weighted max-min network
    /// ([`cm_enforce::datacenter::solve`]): active TAG edges expand into
    /// VM-pair flows, each pair is routed over its real uplink/downlink
    /// path, floors come from the cluster's guarantee model, and achieved
    /// rates are scored against the TAG-intended guarantees. This is the
    /// paper's end-to-end claim — placement *plus* enforcement — as one
    /// queryable artifact.
    pub fn traffic_report(&self) -> TrafficReport {
        self.traffic_report_as(self.guarantee_model)
    }

    /// [`Cluster::traffic_report`] under an explicit guarantee model (run
    /// `Hose` against `Tag` on the same placements to reproduce the
    /// Fig. 13/14 dilution through the placement layer).
    ///
    /// Served by the embedded incremental [`TrafficEngine`]: only tenants
    /// whose placement changed since the last traffic query are
    /// re-expanded and re-routed.
    pub fn traffic_report_as(&self, model: GuaranteeModel) -> TrafficReport {
        self.sync_traffic_engine(model).solve_detailed(&self.topo)
    }

    /// The hot churn-step variant of [`Cluster::traffic_report`]:
    /// identical totals, violations, and level utilization, but the
    /// report's per-pair `flows` list is left empty — at datacenter scale
    /// that list dominates the step cost and observers polling every step
    /// rarely read it.
    pub fn traffic_step(&self) -> TrafficReport {
        self.traffic_step_as(self.guarantee_model)
    }

    /// [`Cluster::traffic_step`] under an explicit guarantee model.
    pub fn traffic_step_as(&self, model: GuaranteeModel) -> TrafficReport {
        self.sync_traffic_engine(model).solve(&self.topo)
    }

    /// Select the ECMP layout used by the embedded traffic engine
    /// (default: [`EcmpConfig::none`], single-path routing identical to
    /// the batch solver). Changing the layout rebuilds the engine on the
    /// next traffic query.
    pub fn set_traffic_ecmp(&mut self, ecmp: EcmpConfig) {
        if self.traffic_ecmp != ecmp {
            self.traffic_ecmp = ecmp;
            *self.traffic.borrow_mut() = None;
        }
    }

    /// Force every dirty component of the embedded engine's fluid solver
    /// to cold-solve (skipping warm starts). Differential-test knob: the
    /// forced-cold engine is bit-identical to a from-scratch one.
    pub fn set_traffic_force_cold(&mut self, on: bool) {
        self.sync_traffic_engine(self.guarantee_model)
            .set_force_cold(on);
    }

    /// Run `f` against the embedded (synced) traffic engine — read-only
    /// access for differential tests that compare the engine's fluid
    /// network against a from-scratch solve.
    pub fn with_traffic_engine<R>(&self, f: impl FnOnce(&TrafficEngine) -> R) -> R {
        f(&self.sync_traffic_engine(self.guarantee_model))
    }

    /// Bring the embedded engine in sync with the live registry: create it
    /// on first use, switch its guarantee model, re-sync link capacities
    /// if a fault or repair landed since the last query, drop departed
    /// tenants, and re-expand exactly the tenants whose placement version
    /// moved.
    fn sync_traffic_engine(&self, model: GuaranteeModel) -> RefMut<'_, TrafficEngine> {
        let mut slot = self.traffic.borrow_mut();
        let engine =
            slot.get_or_insert_with(|| TrafficEngine::new(&self.topo, model, self.traffic_ecmp));
        engine.set_model(model);
        if self.traffic_fault_epoch.get() != self.fault_epoch {
            // Degraded/restored uplinks shrink/restore their fluid
            // sub-links in place, dirtying only the components they carry
            // (a freshly built engine read the current caps already and
            // syncs zero links).
            engine.sync_link_caps(&self.topo);
            self.traffic_fault_epoch.set(self.fault_epoch);
        }
        engine.retain_tenants(|id| self.tenants.contains_key(&TenantId(id)));
        for (id, entry) in &self.tenants {
            if engine.version_of(id.raw()) != Some(entry.version) {
                let placement = entry.deployed.placement(&self.topo);
                engine.upsert_tenant(&self.topo, id.raw(), entry.version, &entry.tag, &placement);
            }
        }
        RefMut::map(slot, |s| s.as_mut().expect("engine just ensured")) // cm-analyze: allow(no-unwrap-in-hot-path) -- the Option is filled unconditionally above; RefMut::map cannot propagate an error
    }

    /// [`Cluster::traffic_report`] with explicit instantaneous
    /// communication patterns: tenants named in `active` send on exactly
    /// those `(src VM, dst VM)` pairs (each greedy); every other live
    /// tenant defaults to all edge-connected pairs. VM indices follow the
    /// reports' server-major order; stale indices or self-pairs are a
    /// [`CmError::InvalidPair`], unknown tenants a
    /// [`CmError::UnknownTenant`].
    pub fn traffic_report_active(
        &self,
        active: &[(TenantId, Vec<(usize, usize)>)],
    ) -> Result<TrafficReport, CmError> {
        let mut tenants = self.collect_traffic(self.guarantee_model);
        for (id, pairs) in active {
            if !self.tenants.contains_key(id) {
                return Err(CmError::UnknownTenant(*id));
            }
            let t = tenants
                .iter_mut()
                .find(|t| t.id == id.raw())
                .ok_or(CmError::UnknownTenant(*id))?;
            let vms = t.vm_tier.len();
            if let Some(&(src, dst)) = pairs.iter().find(|&&(s, d)| s >= vms || d >= vms || s == d)
            {
                return Err(CmError::InvalidPair {
                    tenant: *id,
                    src,
                    dst,
                    vms,
                });
            }
            t.active = Some(pairs.clone());
        }
        Ok(cm_enforce::datacenter::solve(&self.topo, &tenants))
    }

    /// Every live tenant's placement expanded into a [`TenantTraffic`]
    /// (ascending id order, so reports are deterministic). Uses the same
    /// [`report::expand_placement`] as the guarantee reports, so VM
    /// indices in traffic patterns and guarantee reports can never
    /// diverge.
    fn collect_traffic(&self, model: GuaranteeModel) -> Vec<TenantTraffic> {
        self.tenants
            .iter()
            .map(|(id, entry)| {
                let placement = entry.deployed.placement(&self.topo);
                let (vm_tier, vm_server) = report::expand_placement(&placement);
                TenantTraffic {
                    id: id.raw(),
                    tag: Arc::clone(&entry.tag),
                    vm_tier,
                    vm_server,
                    model,
                    active: None,
                }
            })
            .collect()
    }

    /// Number of live tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Whether no tenant is live.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Ids of all live tenants, ascending.
    pub fn tenant_ids(&self) -> impl Iterator<Item = TenantId> + '_ {
        self.tenants.keys().copied()
    }

    /// The datacenter substrate.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The placement algorithm.
    pub fn placer(&self) -> &P {
        &self.placer
    }

    /// Mutable access to the placement algorithm (search-strategy toggles,
    /// ...).
    pub fn placer_mut(&mut self) -> &mut P {
        &mut self.placer
    }

    /// Exhaustive self-check, for tests: topology invariants plus every
    /// live tenant's ledger against a from-scratch recomputation.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.topo.check_invariants()?;
        for (id, entry) in &self.tenants {
            entry
                .deployed
                .check_consistency(&self.topo)
                .map_err(|e| format!("{id}: {e}"))?;
        }
        for id in self.faults.keys() {
            if !self.tenants.contains_key(id) {
                return Err(format!("fault record for non-live {id}"));
            }
        }
        Ok(())
    }
}

/// Scaling targets must name an existing, internal (placeable) tier.
fn check_tier(id: TenantId, tag: &Tag, tier: TierId) -> Result<(), CmError> {
    if tier.index() >= tag.num_tiers() || tag.tier(tier).external {
        return Err(CmError::UnknownTier { tenant: id, tier });
    }
    Ok(())
}

/// The one resize path behind [`Cluster::scale_tier`] and
/// [`Cluster::resize_tier`] (entry fetched and tier validated by the
/// caller; `new_size >= 1`).
fn resize_entry<P: Placer>(
    topo: &mut Topology,
    placer: &mut P,
    entry: &mut TenantEntry,
    tier: TierId,
    new_size: u32,
) -> Result<(), CmError> {
    if new_size == entry.tag.tier(tier).size {
        return Ok(());
    }
    let new_tag = Arc::new(entry.tag.resized(tier, new_size));
    placer.place_incremental(topo, &mut entry.deployed, &new_tag, tier, new_size)?;
    // The deployment's own model is authoritative where it keeps the TAG
    // (CloudMirror); for translated models the resized TAG is.
    entry.tag = entry
        .deployed
        .tag_state()
        .map(|s| s.model_arc())
        .unwrap_or(new_tag);
    entry.version += 1;
    Ok(())
}

impl<P: Placer> std::fmt::Debug for Cluster<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("placer", &self.placer.name())
            .field("tenants", &self.tenants.len())
            .field("slots_in_use", &self.topo.slots_in_use())
            .finish()
    }
}

#[cfg(test)]
mod tests;
