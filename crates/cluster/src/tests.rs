use crate::{Cluster, CmError, TenantId};
use cm_baselines::{OktopusVcPlacer, OvocPlacer, SecondNetPlacer};
use cm_core::model::{Tag, TagBuilder};
use cm_core::placement::{CmConfig, CmPlacer};
use cm_core::TierId;
use cm_enforce::GuaranteeModel;
use cm_topology::{mbps, TreeSpec};

fn small_spec() -> TreeSpec {
    TreeSpec::small(2, 2, 4, 4, [mbps(1000.0), mbps(2000.0), mbps(4000.0)])
}

fn web_db(web: u32, db: u32) -> Tag {
    let mut b = TagBuilder::new("webdb");
    let w = b.tier("web", web);
    let d = b.tier("db", db);
    b.sym_edge(w, d, mbps(50.0)).unwrap();
    b.self_loop(d, mbps(10.0)).unwrap();
    b.build().unwrap()
}

fn assert_pristine<P: cm_core::placement::Placer>(cluster: &Cluster<P>) {
    let topo = cluster.topology();
    assert_eq!(topo.slots_in_use(), 0);
    for l in 0..topo.num_levels() {
        assert_eq!(topo.reserved_at_level(l), (0, 0));
    }
    topo.check_invariants().unwrap();
}

#[test]
fn admit_scale_migrate_depart_roundtrip() {
    let mut cluster = Cluster::new(&small_spec(), CmPlacer::new(CmConfig::cm()));
    let h = cluster.admit(web_db(4, 2)).unwrap();
    assert_eq!(cluster.tenant_count(), 1);
    assert_eq!(cluster.utilization().slots_in_use, 6);

    let web = TierId(0);
    assert_eq!(cluster.scale_tier(h.id(), web, 3).unwrap(), 7);
    assert_eq!(cluster.utilization().slots_in_use, 9);
    assert_eq!(cluster.tag_of(h.id()).unwrap().tier(web).size, 7);
    cluster.check_invariants().unwrap();

    assert_eq!(cluster.scale_tier(h.id(), web, -5).unwrap(), 2);
    assert_eq!(cluster.utilization().slots_in_use, 4);
    cluster.check_invariants().unwrap();

    cluster.migrate(h.id()).unwrap();
    cluster.check_invariants().unwrap();
    assert_eq!(cluster.utilization().slots_in_use, 4);

    cluster.depart(h.id()).unwrap();
    assert!(cluster.is_empty());
    assert_pristine(&cluster);
}

#[test]
fn lifecycle_errors_are_typed() {
    let mut cluster = Cluster::new(&small_spec(), CmPlacer::new(CmConfig::cm()));
    let ghost = TenantId::from_raw(7);
    assert_eq!(
        cluster.depart(ghost).unwrap_err(),
        CmError::UnknownTenant(ghost)
    );
    let h = cluster.admit(web_db(2, 2)).unwrap();
    // Unknown tier.
    assert!(matches!(
        cluster.scale_tier(h.id(), TierId(9), 1).unwrap_err(),
        CmError::UnknownTier { .. }
    ));
    // Scaling to zero is a depart, not a scale.
    assert!(matches!(
        cluster.scale_tier(h.id(), TierId(0), -2).unwrap_err(),
        CmError::InvalidScale { .. }
    ));
    // Ids are not reused after depart.
    cluster.depart(h.id()).unwrap();
    assert_eq!(
        cluster.depart(h.id()).unwrap_err(),
        CmError::UnknownTenant(h.id())
    );
    let h2 = cluster.admit(web_db(2, 2)).unwrap();
    assert_ne!(h2.id(), h.id());
}

#[test]
fn stale_active_pairs_and_overflow_deltas_are_typed_errors() {
    let mut cluster = Cluster::new(&small_spec(), CmPlacer::new(CmConfig::cm()));
    let h = cluster.admit(web_db(4, 2)).unwrap();
    // 6 VMs placed: index 6 and self-pairs are invalid, not panics.
    assert!(matches!(
        cluster
            .guarantee_report_active(h.id(), &[(0, 6)])
            .unwrap_err(),
        CmError::InvalidPair { vms: 6, .. }
    ));
    assert!(matches!(
        cluster
            .guarantee_report_active(h.id(), &[(2, 2)])
            .unwrap_err(),
        CmError::InvalidPair { .. }
    ));
    assert!(cluster.guarantee_report_active(h.id(), &[(0, 5)]).is_ok());
    // Extreme deltas overflow to InvalidScale, in every build profile.
    assert!(matches!(
        cluster.scale_tier(h.id(), TierId(0), i64::MAX).unwrap_err(),
        CmError::InvalidScale { .. }
    ));
    assert!(matches!(
        cluster.scale_tier(h.id(), TierId(0), i64::MIN).unwrap_err(),
        CmError::InvalidScale { .. }
    ));
}

#[test]
fn rejection_keeps_cluster_untouched() {
    let mut cluster = Cluster::new(&small_spec(), CmPlacer::new(CmConfig::cm()));
    // 2×2×4 servers × 4 slots = 64 slots; 65 VMs cannot fit.
    let err = cluster.admit(web_db(63, 2)).unwrap_err();
    assert_eq!(
        err.reject_reason(),
        Some(cm_core::placement::RejectReason::InsufficientSlots)
    );
    assert!(cluster.is_empty());
    assert_pristine(&cluster);
}

#[test]
fn scale_failure_is_all_or_nothing() {
    let mut cluster = Cluster::new(&small_spec(), CmPlacer::new(CmConfig::cm()));
    let h = cluster.admit(web_db(4, 2)).unwrap();
    let before = cluster.placement_of(h.id()).unwrap();
    let before_res = cluster.deployed(h.id()).unwrap().reservations();
    // Growing the web tier past the datacenter's 64 slots must fail…
    let err = cluster.scale_tier(h.id(), TierId(0), 200).unwrap_err();
    assert!(matches!(err, CmError::Rejected(_)));
    // …and leave the deployment (and its pricing) exactly as it was.
    assert_eq!(cluster.placement_of(h.id()).unwrap(), before);
    assert_eq!(cluster.deployed(h.id()).unwrap().reservations(), before_res);
    assert_eq!(cluster.tag_of(h.id()).unwrap().tier(TierId(0)).size, 4);
    cluster.check_invariants().unwrap();
    cluster.depart(h.id()).unwrap();
    assert_pristine(&cluster);
}

#[test]
fn migrate_failure_restores_the_old_placement() {
    // Fill the datacenter so a migration cannot find room while the
    // tenant's own resources are the only spare ones — the re-place may
    // succeed into exactly the released space or fail; force failure by
    // occupying everything else with an un-departable neighbour and asking
    // for a placer that cannot colocate.
    let spec = TreeSpec::small(1, 1, 2, 4, [mbps(100.0), mbps(100.0), mbps(100.0)]);
    let mut cluster = Cluster::new(&spec, SecondNetPlacer::new());
    let h = cluster.admit(web_db(4, 2)).unwrap();
    let before = cluster.placement_of(h.id()).unwrap();
    let before_res = cluster.deployed(h.id()).unwrap().reservations();
    // SecondNet re-places the same tenant into the space it just released
    // (or fails); either way the books must balance.
    match cluster.migrate(h.id()) {
        Ok(()) => {}
        Err(_) => {
            assert_eq!(cluster.placement_of(h.id()).unwrap(), before);
            assert_eq!(cluster.deployed(h.id()).unwrap().reservations(), before_res);
        }
    }
    cluster.check_invariants().unwrap();
    cluster.depart(h.id()).unwrap();
    assert_pristine(&cluster);
}

#[test]
fn baselines_scale_via_the_replace_fallback() {
    // OVOC, VC and SecondNet have no incremental path; scaling goes
    // through the generic snapshot → re-place → restore fallback and must
    // conserve resources in both directions.
    let specs = small_spec();
    fn drive<P: cm_core::placement::Placer>(placer: P, spec: &TreeSpec) {
        let mut cluster = Cluster::new(spec, placer);
        let name = cluster.placer().name();
        let h = cluster.admit(web_db(4, 2)).unwrap();
        cluster
            .scale_tier(h.id(), TierId(0), 2)
            .unwrap_or_else(|e| panic!("{name}: grow failed: {e}"));
        assert_eq!(cluster.utilization().slots_in_use, 8, "{name}");
        assert_eq!(cluster.tag_of(h.id()).unwrap().tier(TierId(0)).size, 6);
        cluster
            .scale_tier(h.id(), TierId(0), -3)
            .unwrap_or_else(|e| panic!("{name}: shrink failed: {e}"));
        assert_eq!(cluster.utilization().slots_in_use, 5, "{name}");
        cluster.check_invariants().unwrap();
        cluster.depart(h.id()).unwrap();
        assert_pristine(&cluster);
    }
    drive(OvocPlacer::new(), &specs);
    drive(OktopusVcPlacer::new(), &specs);
    drive(SecondNetPlacer::new(), &specs);
}

#[test]
fn guarantee_report_classifies_colocation() {
    let mut cluster = Cluster::new(&small_spec(), CmPlacer::new(CmConfig::cm()));
    let h = cluster.admit(web_db(4, 2)).unwrap();
    let report = cluster.guarantee_report(h.id()).unwrap();
    assert_eq!(report.model, GuaranteeModel::Tag);
    assert_eq!(report.vm_tier.len(), 6);
    assert_eq!(report.vm_server.len(), 6);
    // web↔db trunk both ways (4×2×2 pairs) + db self-loop (2×1 ordered).
    assert_eq!(report.pairs.len(), 4 * 2 * 2 + 2);
    // The trunk guarantee is fully partitioned: each direction sums to
    // min(senders' aggregate, receivers' aggregate) = 4·50 and 2·50… the
    // edge totals are bounded by the smaller side.
    assert!(report.total_kbps() > 0.0);
    assert_eq!(
        report.total_kbps(),
        report.cross_network_kbps() + report.colocated_kbps()
    );
    // The placement-wired view: pairs on one server are classified as
    // colocated exactly when the placer put both ends together.
    for p in &report.pairs {
        assert_eq!(
            p.crosses_network,
            report.vm_server[p.src] != report.vm_server[p.dst]
        );
    }
    // The hose model reports the same pairs, differently partitioned.
    cluster.set_guarantee_model(GuaranteeModel::Hose);
    let hose = cluster.guarantee_report(h.id()).unwrap();
    assert_eq!(hose.model, GuaranteeModel::Hose);
    assert_eq!(hose.pairs.len(), report.pairs.len());
}

#[test]
fn traffic_report_solves_all_live_tenants() {
    let mut cluster = Cluster::new(&small_spec(), CmPlacer::new(CmConfig::cm()));
    let a = cluster.admit(web_db(4, 2)).unwrap();
    let b = cluster.admit(web_db(2, 2)).unwrap();
    let r = cluster.traffic_report();
    assert_eq!(r.tenants.len(), 2);
    assert_eq!(r.tenants[0].id, a.id().raw());
    assert_eq!(r.tenants[1].id, b.id().raw());
    // web↔db both ways + db self-loop pairs, per tenant.
    assert_eq!(r.tenants[0].pairs, 4 * 2 * 2 + 2);
    assert_eq!(r.tenants[1].pairs, 2 * 2 * 2 + 2);
    assert_eq!(r.flows.len(), r.cross_flows + r.colocated_flows);
    // TAG floors are sized by admission, so the Tag model meets every
    // intent on the placed topology.
    assert_eq!(r.violations, 0);
    assert!(r.work_conserving);
    // Cross-network pairs must at least achieve their floors.
    for f in &r.flows {
        if !f.colocated {
            assert!(
                f.rate_kbps + 1e-3 >= f.floor_kbps,
                "pair {}→{} got {} < floor {}",
                f.src,
                f.dst,
                f.rate_kbps,
                f.floor_kbps
            );
        }
    }
    // The same placements under hose enforcement re-partition the floors
    // but keep the identical pair population.
    let hose = cluster.traffic_report_as(GuaranteeModel::Hose);
    assert_eq!(hose.flows.len(), r.flows.len());
    assert_eq!(hose.cross_flows, r.cross_flows);

    // Active-pattern validation is typed, like the guarantee reports.
    assert!(matches!(
        cluster
            .traffic_report_active(&[(a.id(), vec![(0, 99)])])
            .unwrap_err(),
        CmError::InvalidPair { .. }
    ));
    let ghost = TenantId::from_raw(99);
    assert!(matches!(
        cluster
            .traffic_report_active(&[(ghost, vec![(0, 1)])])
            .unwrap_err(),
        CmError::UnknownTenant(_)
    ));
    // A concrete pattern restricts the named tenant only.
    let focused = cluster
        .traffic_report_active(&[(a.id(), vec![(0, 5)])])
        .unwrap();
    assert_eq!(focused.tenants[0].pairs, 1);
    assert_eq!(focused.tenants[1].pairs, 2 * 2 * 2 + 2);
}

#[test]
fn traffic_vm_indexing_matches_guarantee_reports() {
    // The standalone `TenantTraffic::from_placement` constructor must
    // expand placements in exactly the server-major/tier-major order the
    // cluster's reports (and `collect_traffic`) use — VM indices in active
    // patterns are interchangeable between the two APIs.
    let mut cluster = Cluster::new(&small_spec(), CmPlacer::new(CmConfig::cm()));
    let h = cluster.admit(web_db(5, 3)).unwrap();
    let report = cluster.guarantee_report(h.id()).unwrap();
    let placement = cluster.placement_of(h.id()).unwrap();
    let traffic = crate::TenantTraffic::from_placement(
        h.id().raw(),
        std::sync::Arc::clone(cluster.tag_of(h.id()).unwrap()),
        &placement,
        GuaranteeModel::Tag,
    );
    assert_eq!(traffic.vm_tier, report.vm_tier);
    assert_eq!(traffic.vm_server, report.vm_server);
}

#[test]
fn utilization_tracks_levels() {
    let mut cluster = Cluster::new(&small_spec(), CmPlacer::new(CmConfig::cm()));
    let u0 = cluster.utilization();
    assert_eq!(u0.slots_total, 64);
    assert_eq!(u0.slot_fraction(), 0.0);
    let h = cluster.admit(web_db(8, 4)).unwrap();
    let u1 = cluster.utilization();
    assert_eq!(u1.slots_in_use, 12);
    assert_eq!(u1.tenants, 1);
    assert!(u1.slot_fraction() > 0.0);
    assert_eq!(u1.reserved_by_level.len(), cluster.topology().num_levels());
    cluster.depart(h.id()).unwrap();
    assert_eq!(cluster.utilization().slot_fraction(), 0.0);
}

#[test]
fn server_fault_evacuates_and_repair_regrows() {
    // CM+HA spreads each tier over multiple servers (Eq. 7), so killing
    // one server always leaves a surviving fragment — the repair rides
    // the exact per-tier incremental regrow path.
    let mut cluster = Cluster::new(&small_spec(), CmPlacer::new(CmConfig::cm_ha(0.5)));
    let h = cluster.admit(web_db(4, 2)).unwrap();
    let victim = cluster.placement_of(h.id()).unwrap()[0].0;
    let report = cluster.inject_fault(crate::Fault::Server(victim)).unwrap();
    assert_eq!(report.failed_servers, vec![victim]);
    assert!(report.lost_vms > 0);
    assert!(report.reclaimed_kbps > 0);
    assert_eq!(report.tenants.len(), 1);
    assert_eq!(report.tenants[0].tenant, h.id());
    assert!(!report.tenants[0].evicted);
    cluster.check_invariants().unwrap();
    // The damage is recorded; the registry tag shrank to the survivors.
    assert_eq!(cluster.faulted_tenants().collect::<Vec<_>>(), vec![h.id()]);
    assert_eq!(
        cluster.pre_fault_tag(h.id()).unwrap().tier(TierId(0)).size,
        4
    );
    let surviving = 6 - report.lost_vms;
    let placed = cluster
        .deployed(h.id())
        .unwrap()
        .total_placed(cluster.topology());
    assert_eq!(placed, surviving);
    let shrunk = cluster.tag_of(h.id()).unwrap();
    assert_eq!(
        (shrunk.tier(TierId(0)).size + shrunk.tier(TierId(1)).size) as u64,
        surviving
    );
    // The failed server's whole capacity reads as in-use until restored;
    // the survivors account for the rest.
    assert_eq!(cluster.utilization().slots_in_use, surviving + 4);
    // Re-injecting the same fault is a no-op.
    let again = cluster.inject_fault(crate::Fault::Server(victim)).unwrap();
    assert!(again.failed_servers.is_empty() && again.tenants.is_empty());

    let fixed = cluster.repair(crate::Fault::Server(victim)).unwrap();
    assert_eq!(fixed.restored_servers, vec![victim]);
    assert_eq!(fixed.repaired, vec![h.id()]);
    assert!(fixed.degraded.is_empty());
    assert_eq!(cluster.faulted_tenants().count(), 0);
    assert_eq!(cluster.tag_of(h.id()).unwrap().tier(TierId(0)).size, 4);
    assert_eq!(cluster.tag_of(h.id()).unwrap().tier(TierId(1)).size, 2);
    assert_eq!(cluster.utilization().slots_in_use, 6);
    cluster.check_invariants().unwrap();
    cluster.depart(h.id()).unwrap();
    assert_pristine(&cluster);
}

#[test]
fn domain_kill_evicts_and_repair_readmits() {
    // One rack: killing its ToR domain takes every VM of a rack-local
    // tenant, so the evacuation is a wholesale eviction and the repair a
    // fresh re-admission of the recorded pre-fault TAG.
    let mut cluster = Cluster::new(&small_spec(), CmPlacer::new(CmConfig::cm()));
    let h = cluster.admit(web_db(4, 2)).unwrap();
    let server = cluster.placement_of(h.id()).unwrap()[0].0;
    let tor = cluster.topology().parent(server).unwrap();
    let report = cluster.inject_fault(crate::Fault::Domain(tor)).unwrap();
    assert_eq!(report.failed_servers.len(), 4);
    cluster.check_invariants().unwrap();
    if report.lost_vms == 6 {
        // The whole deployment died with the rack; the dead rack's 16
        // slots read as in-use until the domain is restored.
        assert!(report.tenants[0].evicted);
        assert_eq!(cluster.utilization().slots_in_use, 16);
        assert_eq!(
            cluster
                .deployed(h.id())
                .unwrap()
                .total_placed(cluster.topology()),
            0
        );
    }
    // Guarantee queries stay well-typed on the damaged tenant.
    let _ = cluster.guarantee_report(h.id()).unwrap();
    let fixed = cluster.repair(crate::Fault::Domain(tor)).unwrap();
    assert_eq!(fixed.repaired, vec![h.id()]);
    assert_eq!(cluster.utilization().slots_in_use, 6);
    assert_eq!(cluster.tag_of(h.id()).unwrap().tier(TierId(0)).size, 4);
    cluster.check_invariants().unwrap();
    cluster.depart(h.id()).unwrap();
    assert_pristine(&cluster);
}

#[test]
fn repair_without_capacity_is_a_typed_failure_and_retryable() {
    // A full 2-server rack: failing one server strands more VMs than the
    // survivor can absorb, so repairing before the server returns is a
    // RepairFailed that leaves the fragment intact and retryable.
    let spec = TreeSpec::small(1, 1, 2, 6, [mbps(1000.0), mbps(2000.0), mbps(4000.0)]);
    let mut cluster = Cluster::new(&spec, CmPlacer::new(CmConfig::cm()));
    let h = cluster.admit(web_db(6, 6)).unwrap();
    assert_eq!(cluster.utilization().slots_in_use, 12);
    let victim = cluster.placement_of(h.id()).unwrap()[0].0;
    let report = cluster.inject_fault(crate::Fault::Server(victim)).unwrap();
    assert_eq!(report.lost_vms, 6);
    let err = cluster.repair_tenant(h.id()).unwrap_err();
    assert!(matches!(err, CmError::RepairFailed { tenant, .. } if tenant == h.id()));
    assert!(err.reject_reason().is_some());
    cluster.check_invariants().unwrap();
    // Still recorded; a repair after capacity returns succeeds.
    assert_eq!(cluster.faulted_tenants().count(), 1);
    let fixed = cluster.repair(crate::Fault::Server(victim)).unwrap();
    assert_eq!(fixed.repaired, vec![h.id()]);
    assert_eq!(cluster.utilization().slots_in_use, 12);
    cluster.check_invariants().unwrap();
    // Repairing a healthy tenant is typed too.
    assert_eq!(
        cluster.repair_tenant(h.id()).unwrap_err(),
        CmError::NothingToRepair(h.id())
    );
    cluster.depart(h.id()).unwrap();
    assert_pristine(&cluster);
}

#[test]
fn degraded_link_blocks_admission_until_restored() {
    let mut cluster = Cluster::new(&small_spec(), CmPlacer::new(CmConfig::cm()));
    let h = cluster.admit(web_db(4, 2)).unwrap();
    // Soft-fail every rack uplink: existing reservations survive, no VMs
    // are lost, but a bandwidth-hungry newcomer no longer fits.
    let tors: Vec<_> = cluster.topology().nodes_at_level(1).to_vec();
    for &tor in &tors {
        let report = cluster
            .inject_fault(crate::Fault::DegradeLink {
                node: tor,
                fraction: 0.0,
            })
            .unwrap();
        assert_eq!(report.lost_vms, 0);
        assert!(report.tenants.is_empty());
    }
    cluster.check_invariants().unwrap();
    assert_eq!(cluster.faulted_tenants().count(), 0);
    let mut b = TagBuilder::new("hungry");
    let t = b.tier("t", 16);
    b.self_loop(t, mbps(400.0)).unwrap();
    let hungry = b.build().unwrap();
    let err = cluster.admit(hungry.clone()).unwrap_err();
    assert!(matches!(err, CmError::Rejected(_)));
    for &tor in &tors {
        cluster
            .repair(crate::Fault::DegradeLink {
                node: tor,
                fraction: 0.0,
            })
            .unwrap();
    }
    cluster.check_invariants().unwrap();
    let h2 = cluster.admit(hungry).unwrap();
    cluster.depart(h2.id()).unwrap();
    cluster.depart(h.id()).unwrap();
    assert_pristine(&cluster);
}

#[test]
fn baseline_fragments_repair_via_replace() {
    for (name, run) in [("ovoc", 0usize), ("vc", 1), ("secondnet", 2)] {
        fn drive<P: cm_core::placement::Placer>(placer: P, name: &str) {
            let mut cluster = Cluster::new(&small_spec(), placer);
            let h = cluster.admit(web_db(4, 2)).unwrap();
            let victim = cluster.placement_of(h.id()).unwrap()[0].0;
            let report = cluster.inject_fault(crate::Fault::Server(victim)).unwrap();
            assert!(report.lost_vms > 0, "{name}");
            cluster.check_invariants().unwrap();
            let fixed = cluster.repair(crate::Fault::Server(victim)).unwrap();
            assert_eq!(fixed.repaired, vec![h.id()], "{name}: {:?}", fixed.degraded);
            assert_eq!(cluster.utilization().slots_in_use, 6, "{name}");
            // The pre-fault model is authoritative again.
            assert_eq!(cluster.tag_of(h.id()).unwrap().tier(TierId(0)).size, 4);
            cluster.check_invariants().unwrap();
            cluster.depart(h.id()).unwrap();
            assert_pristine(&cluster);
        }
        match run {
            0 => drive(OvocPlacer::new(), name),
            1 => drive(OktopusVcPlacer::new(), name),
            _ => drive(SecondNetPlacer::new(), name),
        }
    }
}

/// Degrading links mid-flight must flow into the traffic engine via the
/// fault-epoch guard: the next report measures the dead links (violations),
/// and repair restores the healthy verdicts without rebuilding the engine.
#[test]
fn traffic_report_measures_degraded_links_and_recovers() {
    let mut cluster = Cluster::new(&small_spec(), CmPlacer::new(CmConfig::cm()));
    // 20 slots > one 16-slot rack, so some web<->db pairs cross a ToR uplink.
    let h = cluster.admit(web_db(12, 8)).unwrap();
    let healthy = cluster.traffic_report();
    assert_eq!(
        healthy.violations, 0,
        "admitted guarantees hold when healthy"
    );
    assert!(healthy.total_rate_kbps > 0.0);

    // Kill every ToR uplink: all cross-rack traffic is stranded.
    let tors: Vec<_> = cluster.topology().nodes_at_level(1).to_vec();
    for &t in &tors {
        let report = cluster
            .inject_fault(crate::Fault::DegradeLink {
                node: t,
                fraction: 0.0,
            })
            .unwrap();
        assert_eq!(report.lost_vms, 0, "degrade loses no VMs");
        assert!(report.failed_servers.is_empty());
    }
    let degraded = cluster.traffic_report();
    assert!(
        degraded.violations > 0,
        "stranded cross-rack floors violate"
    );
    assert!(degraded.total_rate_kbps < healthy.total_rate_kbps);

    // Repair restores the caps and the verdicts; no placement was damaged.
    for &t in &tors {
        let report = cluster
            .repair(crate::Fault::DegradeLink {
                node: t,
                fraction: 0.0,
            })
            .unwrap();
        assert!(report.repaired.is_empty() && report.degraded.is_empty());
    }
    let restored = cluster.traffic_report();
    assert_eq!(restored.violations, 0);
    assert!((restored.total_rate_kbps - healthy.total_rate_kbps).abs() < 1.0);
    cluster.check_invariants().unwrap();
    cluster.depart(h.id()).unwrap();
    assert_pristine(&cluster);
}

#[test]
fn departing_a_damaged_tenant_clears_its_record() {
    let mut cluster = Cluster::new(&small_spec(), CmPlacer::new(CmConfig::cm()));
    let h = cluster.admit(web_db(4, 2)).unwrap();
    let victim = cluster.placement_of(h.id()).unwrap()[0].0;
    cluster.inject_fault(crate::Fault::Server(victim)).unwrap();
    assert_eq!(cluster.faulted_tenants().count(), 1);
    // A damaged deployment can disagree with its model: incremental
    // lifecycle ops are refused until repair reconciles them.
    assert_eq!(
        cluster.scale_tier(h.id(), TierId(0), 1).unwrap_err(),
        CmError::Damaged(h.id())
    );
    assert_eq!(
        cluster.migrate(h.id()).unwrap_err(),
        CmError::Damaged(h.id())
    );
    cluster.depart(h.id()).unwrap();
    assert_eq!(cluster.faulted_tenants().count(), 0);
    cluster.repair(crate::Fault::Server(victim)).unwrap();
    assert_pristine(&cluster);
}

#[test]
fn release_all_empties_the_cluster() {
    let mut cluster = Cluster::new(&small_spec(), CmPlacer::new(CmConfig::cm()));
    for _ in 0..4 {
        cluster.admit(web_db(2, 1)).unwrap();
    }
    assert_eq!(cluster.tenant_count(), 4);
    cluster.release_all();
    assert!(cluster.is_empty());
    assert_pristine(&cluster);
}
