//! The unified lifecycle error surface.

use crate::TenantId;
use cm_core::model::TierId;
use cm_core::placement::RejectReason;
use cm_topology::TopologyError;

/// Everything a [`crate::Cluster`] lifecycle operation can fail with, in
/// one type implementing [`std::error::Error`] — callers `?` across crate
/// boundaries instead of matching three per-crate error enums.
/// [`RejectReason`] (placement) and [`TopologyError`] (substrate) fold in
/// via `From`, and remain inspectable through
/// [`CmError::reject_reason`] / [`std::error::Error::source`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmError {
    /// The placer could not deploy (or re-deploy, or grow) the tenant.
    Rejected(RejectReason),
    /// No live tenant has this id (never admitted, or already departed).
    UnknownTenant(TenantId),
    /// The tier does not exist in the tenant's TAG, or is an external
    /// component (which has no placeable VMs to scale).
    UnknownTier {
        /// The tenant addressed.
        tenant: TenantId,
        /// The offending tier id.
        tier: TierId,
    },
    /// A scale request would take the tier size out of range (below 1 VM:
    /// use [`crate::Cluster::depart`] instead of scaling to zero).
    InvalidScale {
        /// The tenant addressed.
        tenant: TenantId,
        /// The tier addressed.
        tier: TierId,
        /// The tier's current size.
        current: u32,
        /// The requested delta.
        delta: i64,
    },
    /// An active-pair list referenced VM indices outside the tenant's
    /// placement (or a self-pair) — stale after a scale-in, typically.
    InvalidPair {
        /// The tenant addressed.
        tenant: TenantId,
        /// The offending pair's source VM index.
        src: usize,
        /// The offending pair's destination VM index.
        dst: usize,
        /// VMs the tenant currently has placed.
        vms: usize,
    },
    /// A raw substrate operation failed (surfaced by custom controllers
    /// built on the same error type; `Cluster` itself stages all mutations
    /// transactionally and reports `Rejected` instead).
    Topology(TopologyError),
    /// A lifecycle operation (scale, migrate) addressed a tenant with
    /// unrepaired fault damage. Damaged deployments can disagree with
    /// their admitted model (an evicted tenant has no VMs at all), so
    /// incremental ops have no consistent base;
    /// [`crate::Cluster::repair_tenant`] first.
    Damaged(TenantId),
    /// [`crate::Cluster::repair_tenant`] was asked to repair a tenant that
    /// carries no fault damage (never hit by a fault, or already repaired).
    NothingToRepair(TenantId),
    /// A repair could not re-place a tenant's lost VMs — the capacity is
    /// still gone (another fault active, or the datacenter filled up while
    /// degraded). The deployment is left in its consistent degraded state;
    /// retry after more capacity returns.
    RepairFailed {
        /// The tenant whose repair failed.
        tenant: TenantId,
        /// Why the re-placement of the lost VMs was rejected.
        reason: RejectReason,
    },
}

impl CmError {
    /// The placement-level rejection, when that is what this error is.
    pub fn reject_reason(&self) -> Option<RejectReason> {
        match self {
            CmError::Rejected(r) => Some(*r),
            CmError::RepairFailed { reason, .. } => Some(*reason),
            _ => None,
        }
    }
}

impl std::fmt::Display for CmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmError::Rejected(r) => write!(f, "placement rejected: {r}"),
            CmError::UnknownTenant(id) => write!(f, "{id} is not live in this cluster"),
            CmError::UnknownTier { tenant, tier } => {
                write!(f, "{tenant} has no scalable tier {tier}")
            }
            CmError::InvalidScale {
                tenant,
                tier,
                current,
                delta,
            } => write!(
                f,
                "{tenant} tier {tier}: scaling {current} VMs by {delta:+} leaves no tier"
            ),
            CmError::InvalidPair {
                tenant,
                src,
                dst,
                vms,
            } => write!(
                f,
                "{tenant}: active pair ({src}, {dst}) invalid for {vms} placed VMs"
            ),
            CmError::Topology(e) => write!(f, "topology operation failed: {e}"),
            CmError::Damaged(id) => {
                write!(f, "{id} has unrepaired fault damage; repair it first")
            }
            CmError::NothingToRepair(id) => {
                write!(f, "{id} has no fault damage to repair")
            }
            CmError::RepairFailed { tenant, reason } => {
                write!(f, "{tenant}: repair could not re-place lost VMs: {reason}")
            }
        }
    }
}

impl std::error::Error for CmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CmError::Rejected(r) => Some(r),
            CmError::Topology(e) => Some(e),
            CmError::RepairFailed { reason, .. } => Some(reason),
            _ => None,
        }
    }
}

impl From<RejectReason> for CmError {
    fn from(r: RejectReason) -> CmError {
        CmError::Rejected(r)
    }
}

impl From<TopologyError> for CmError {
    fn from(e: TopologyError) -> CmError {
        CmError::Topology(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_chain_reaches_the_reject_reason() {
        let e: CmError = RejectReason::InsufficientBandwidth.into();
        assert_eq!(e.reject_reason(), Some(RejectReason::InsufficientBandwidth));
        let src = std::error::Error::source(&e).expect("has a source");
        assert_eq!(src.to_string(), "insufficient bandwidth");
        assert!(e.to_string().contains("insufficient bandwidth"));
    }

    #[test]
    fn question_mark_works_across_error_types() {
        fn lifecycle() -> Result<(), CmError> {
            Err(RejectReason::InsufficientSlots)?
        }
        fn substrate() -> Result<(), CmError> {
            Err(TopologyError::InsufficientBandwidth {
                node: cm_topology::NodeId(3),
            })?
        }
        assert!(matches!(lifecycle().unwrap_err(), CmError::Rejected(_)));
        assert!(matches!(substrate().unwrap_err(), CmError::Topology(_)));
    }
}
