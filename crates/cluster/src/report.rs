//! Cluster queries: utilization summaries and enforcement-wired guarantee
//! reports.

use crate::TenantId;
use cm_core::model::{Tag, TierId};
use cm_enforce::{Enforcer, GuaranteeModel};
use cm_topology::{Kbps, NodeId};
use std::sync::Arc;

/// Datacenter-wide resource usage (see [`crate::Cluster::utilization`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Utilization {
    /// Live tenants.
    pub tenants: usize,
    /// Total VM slots in the datacenter.
    pub slots_total: u64,
    /// VM slots currently allocated.
    pub slots_in_use: u64,
    /// Reserved (out, in) kbps summed over the uplinks of each level,
    /// index 0 = server NICs.
    pub reserved_by_level: Vec<(Kbps, Kbps)>,
    /// One-directional capacity summed over the uplinks of each level.
    pub capacity_by_level: Vec<Kbps>,
}

impl Utilization {
    /// Fraction of VM slots in use, `0.0..=1.0`.
    pub fn slot_fraction(&self) -> f64 {
        if self.slots_total == 0 {
            0.0
        } else {
            self.slots_in_use as f64 / self.slots_total as f64
        }
    }

    /// Fraction of level `l`'s bandwidth reserved (mean of the out and in
    /// directions). `None` for the root level (no uplinks).
    pub fn bandwidth_fraction(&self, level: usize) -> Option<f64> {
        let cap = *self.capacity_by_level.get(level)?;
        if cap == 0 {
            return None;
        }
        let (o, i) = self.reserved_by_level[level];
        Some((o + i) as f64 / (2 * cap) as f64)
    }
}

/// One VM pair's enforced guarantee (see [`GuaranteeReport`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PairReport {
    /// Sending VM index (into the report's `vm_tier` / `vm_server`).
    pub src: usize,
    /// Receiving VM index.
    pub dst: usize,
    /// Guaranteed kbps for this pair under the report's model.
    pub kbps: f64,
    /// Whether the pair crosses a server boundary (colocated pairs need no
    /// network reservation; their guarantee is met by the hypervisor).
    pub crosses_network: bool,
}

/// The placement-wired enforcement view of one tenant: its guarantees
/// partitioned among all communicating VM pairs (ElasticSwitch GP with or
/// without the TAG patch), with each VM pinned to the server the placer
/// chose. This is the §5.2 controller hand-off — "the controller knows
/// every placement change" — as a queryable artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct GuaranteeReport {
    /// The tenant reported on.
    pub tenant: TenantId,
    /// Guarantee model used ([`GuaranteeModel::Tag`] = the paper's patch).
    pub model: GuaranteeModel,
    /// Tier of VM `i`.
    pub vm_tier: Vec<TierId>,
    /// Server hosting VM `i`.
    pub vm_server: Vec<NodeId>,
    /// Per-pair guarantees, all pairs greedy (the converged worst case).
    pub pairs: Vec<PairReport>,
}

impl GuaranteeReport {
    /// Total guaranteed kbps across all pairs.
    pub fn total_kbps(&self) -> f64 {
        self.pairs.iter().map(|p| p.kbps).sum()
    }

    /// Guaranteed kbps that actually needs the network (pairs spanning
    /// servers) — what runtime enforcement must protect.
    pub fn cross_network_kbps(&self) -> f64 {
        self.pairs
            .iter()
            .filter(|p| p.crosses_network)
            .map(|p| p.kbps)
            .sum()
    }

    /// Guaranteed kbps absorbed by colocation (pairs on one server) — the
    /// bandwidth the placer's `Colocate` step saved the network.
    pub fn colocated_kbps(&self) -> f64 {
        self.total_kbps() - self.cross_network_kbps()
    }
}

/// Expand a per-server placement into per-VM `(tier, server)` assignments
/// — a thin delegate to the traffic engine's canonical
/// [`cm_enforce::datacenter::expand_placement`], so guarantee reports and
/// traffic reports agree on VM indexing by construction.
pub(crate) fn expand_placement(placement: &[(NodeId, Vec<u32>)]) -> (Vec<TierId>, Vec<NodeId>) {
    cm_enforce::datacenter::expand_placement(placement)
}

/// Expand a placement into per-VM assignments and partition the TAG's
/// guarantees among the communicating pairs: every edge-connected pair
/// greedy when `active` is `None`, or exactly the given `(src, dst)` pairs
/// (each greedy) when the caller knows the instantaneous communication
/// pattern — guarantee partitioning is demand-aware, so a concentrated
/// pattern (Fig. 13's lone receiver) yields very different shares than
/// all-pairs load.
pub(crate) fn build_report(
    tenant: TenantId,
    tag: &Arc<Tag>,
    placement: &[(NodeId, Vec<u32>)],
    model: GuaranteeModel,
    active: Option<&[(usize, usize)]>,
) -> GuaranteeReport {
    let (vm_tier, vm_server) = expand_placement(placement);

    let mut raw_pairs: Vec<(usize, usize, f64)> = Vec::new();
    match active {
        Some(pairs) => {
            // Validated by `Cluster::guarantee_report_active` before the
            // call (stale indices are a typed `CmError::InvalidPair`).
            for &(s, d) in pairs {
                debug_assert!(s < vm_tier.len() && d < vm_tier.len() && s != d);
                raw_pairs.push((s, d, f64::INFINITY));
            }
        }
        None => {
            // Every pair connected by a TAG edge, all greedy: the steady
            // state the enforcement scenarios converge to when every flow
            // has demand.
            for e in tag.edges() {
                for (s, &st) in vm_tier.iter().enumerate() {
                    if st != e.from {
                        continue;
                    }
                    for (d, &dt) in vm_tier.iter().enumerate() {
                        if dt != e.to || s == d {
                            continue;
                        }
                        raw_pairs.push((s, d, f64::INFINITY));
                    }
                }
            }
        }
    }

    let enforcer = Enforcer::new_shared(Arc::clone(tag), vm_tier.clone(), model);
    let pairs = enforcer
        .partition(&raw_pairs)
        .into_iter()
        .map(|g| PairReport {
            src: g.src,
            dst: g.dst,
            kbps: g.kbps,
            crosses_network: vm_server[g.src] != vm_server[g.dst],
        })
        .collect();

    GuaranteeReport {
        tenant,
        model,
        vm_tier,
        vm_server,
        pairs,
    }
}
