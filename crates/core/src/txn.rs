//! Transactional staging of placement and reservation changes.
//!
//! Every placement algorithm mutates the same two ledgers — VM slots on the
//! [`Topology`](cm_topology::Topology) and per-uplink bandwidth in a [`TenantState`](crate::reserve::TenantState) — and every
//! algorithm needs the same guarantee: *a failed attempt leaves both
//! exactly as they were*. The seed implementations each hand-rolled that
//! (placement maps, `rollback_map`, "re-sync affected links" loops);
//! [`ReservationTxn`] replaces all of them with one undo log.
//!
//! A transaction borrows the topology and the tenant state for its whole
//! lifetime, so every mutation inside the attempt is forced through it:
//!
//! * [`ReservationTxn::place`] / [`ReservationTxn::unplace`] stage slot and
//!   subtree-count deltas;
//! * [`ReservationTxn::sync_uplink`] / [`ReservationTxn::sync_path_to_root`]
//!   stage bandwidth deltas (recording the exact prior reservation);
//! * [`ReservationTxn::replace_model`] stages a model swap with repricing.
//!
//! [`ReservationTxn::commit`] keeps everything; dropping the transaction
//! without committing — or [`ReservationTxn::rollback_to`] a
//! [`Savepoint`] — replays the log in reverse, restoring both ledgers
//! bit-for-bit. Reverse replay can never fail: each inverse step returns
//! the system to a state it already occupied, so every capacity check that
//! could reject it has already passed once.
//!
//! Savepoints make the recursive placers cheap to express: `Alloc` takes a
//! savepoint per subtree, and a failed child unwinds only its own staging
//! while siblings keep theirs.

use crate::cut::CutModel;
use crate::reserve::{PlacementEntry, TenantState};
use cm_topology::{Kbps, NodeId, Topology, TopologyError};
use std::sync::Arc;

/// A position in a transaction's undo log; see
/// [`ReservationTxn::savepoint`].
#[must_use]
pub struct Savepoint(usize);

/// An open transaction over one tenant's placement and reservations.
pub struct ReservationTxn<'a, M: CutModel> {
    topo: &'a mut Topology,
    state: &'a mut TenantState<M>,
    log: Vec<TxnOp<M>>,
    committed: bool,
}

enum TxnOp<M> {
    /// Inverse: unplace the entry.
    Place(PlacementEntry),
    /// Inverse: re-place the entry.
    Unplace(PlacementEntry),
    /// Inverse: restore `prev` on `node`'s uplink.
    Reserve { node: NodeId, prev: (Kbps, Kbps) },
    /// Inverse: restore the previous model (with repricing). The snapshot
    /// is a shared handle, so logging it never deep-clones the model.
    Model(Arc<M>),
}

impl<'a, M: CutModel> ReservationTxn<'a, M> {
    /// Open a transaction. Until [`ReservationTxn::commit`], dropping it
    /// rolls back every staged change.
    pub fn begin(topo: &'a mut Topology, state: &'a mut TenantState<M>) -> Self {
        ReservationTxn {
            topo,
            state,
            log: Vec::new(),
            committed: false,
        }
    }

    /// Read access to the topology for placement decisions.
    pub fn topo(&self) -> &Topology {
        self.topo
    }

    /// Read access to the tenant state for placement decisions.
    pub fn state(&self) -> &TenantState<M> {
        self.state
    }

    /// Mark the current log position; a later
    /// [`ReservationTxn::rollback_to`] unwinds to exactly here.
    pub fn savepoint(&self) -> Savepoint {
        Savepoint(self.log.len())
    }

    /// Stage `count` VMs of `tier` onto `server` (slots plus subtree
    /// counts; no bandwidth). Fails without side effects when the server
    /// lacks free slots.
    pub fn place(&mut self, server: NodeId, tier: usize, count: u32) -> Result<(), TopologyError> {
        if count == 0 {
            return Ok(());
        }
        self.state.place(self.topo, server, tier, count)?;
        self.log.push(TxnOp::Place(PlacementEntry {
            server,
            tier,
            count,
        }));
        Ok(())
    }

    /// Stage several tiers onto one server at once (one slot allocation,
    /// one path walk; see [`TenantState::place_many`]). The undo log keeps
    /// one entry per chunk, so savepoints and rollbacks behave exactly as
    /// with chunk-wise [`ReservationTxn::place`] calls.
    pub fn place_many(
        &mut self,
        server: NodeId,
        chunks: &[(usize, u32)],
    ) -> Result<(), TopologyError> {
        self.state.place_many(self.topo, server, chunks)?;
        for &(tier, count) in chunks {
            if count > 0 {
                self.log.push(TxnOp::Place(PlacementEntry {
                    server,
                    tier,
                    count,
                }));
            }
        }
        Ok(())
    }

    /// Stage the removal of `count` VMs of `tier` from `server`. Panics on
    /// accounting bugs, like [`TenantState::unplace`].
    pub fn unplace(&mut self, server: NodeId, tier: usize, count: u32) {
        if count == 0 {
            return;
        }
        self.state.unplace(self.topo, server, tier, count);
        self.log.push(TxnOp::Unplace(PlacementEntry {
            server,
            tier,
            count,
        }));
    }

    /// Stage a reservation sync of `node`'s uplink to the model's cut price
    /// of the staged counts (the pseudocode's `ReserveBW` for one link).
    /// Fails without side effects when the uplink lacks capacity.
    pub fn sync_uplink(&mut self, node: NodeId) -> Result<(), TopologyError> {
        let prev = self.state.reserved_on(node);
        self.state.sync_uplink(self.topo, node)?;
        if self.state.reserved_on(node) != prev {
            self.log.push(TxnOp::Reserve { node, prev });
        }
        Ok(())
    }

    /// [`ReservationTxn::sync_uplink`] with a caller-computed target
    /// reservation (see [`TenantState::sync_uplink_exact`]): identical
    /// staging and undo-log behaviour, minus the model's cut evaluation.
    pub fn sync_uplink_to(
        &mut self,
        node: NodeId,
        want: (Kbps, Kbps),
    ) -> Result<(), TopologyError> {
        let prev = self.state.reserved_on(node);
        self.state.sync_uplink_exact(self.topo, node, want)?;
        if self.state.reserved_on(node) != prev {
            self.log.push(TxnOp::Reserve { node, prev });
        }
        Ok(())
    }

    /// Stage reservation syncs for every uplink from `node` (inclusive) to
    /// the root. On failure the links already synced *by this call* are
    /// unwound, leaving the transaction where it was.
    pub fn sync_path_to_root(&mut self, node: NodeId) -> Result<(), TopologyError> {
        let sp = self.savepoint();
        let path: Vec<NodeId> = self.topo.path_to_root(node).collect();
        for n in path {
            if let Err(e) = self.sync_uplink(n) {
                self.rollback_to(sp);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Stage a model swap, repricing every touched link under the new
    /// model (see [`TenantState::replace_model`]). Fails without side
    /// effects when some link cannot fit its new price.
    pub fn replace_model(&mut self, new_model: Arc<M>) -> Result<(), TopologyError> {
        let old = self.state.model_arc();
        self.state.replace_model(self.topo, new_model)?;
        self.log.push(TxnOp::Model(old));
        Ok(())
    }

    /// Unwind every change staged after `sp`, restoring both ledgers to
    /// their state at the savepoint. Returns the placements that were
    /// undone (removals staged with [`ReservationTxn::unplace`] are
    /// reverted too, but not reported), so callers can restore demand
    /// counters.
    pub fn rollback_to(&mut self, sp: Savepoint) -> Vec<PlacementEntry> {
        let mut undone = Vec::new();
        while self.log.len() > sp.0 {
            let op = self.log.pop().expect("log length checked");
            if let Some(e) = Self::undo(self.topo, self.state, op) {
                undone.push(e);
            }
        }
        undone
    }

    /// Keep every staged change.
    pub fn commit(mut self) {
        self.committed = true;
    }

    /// Apply the inverse of one op. Returns the entry when the op was a
    /// placement (for demand-counter restoration).
    fn undo(
        topo: &mut Topology,
        state: &mut TenantState<M>,
        op: TxnOp<M>,
    ) -> Option<PlacementEntry> {
        match op {
            TxnOp::Place(e) => {
                state.unplace(topo, e.server, e.tier, e.count);
                Some(e)
            }
            TxnOp::Unplace(e) => {
                state
                    .place(topo, e.server, e.tier, e.count)
                    .expect("slots staged free by the forward op");
                None
            }
            TxnOp::Reserve { node, prev } => {
                state.force_reserve(topo, node, prev);
                None
            }
            TxnOp::Model(old) => {
                // The previous model's prices were feasible when the swap
                // was staged, but a link degraded since admission may sit
                // below them — force-sync restores the exact prior ledger.
                state.force_replace_model(topo, old);
                None
            }
        }
    }
}

impl<M: CutModel> Drop for ReservationTxn<'_, M> {
    fn drop(&mut self) {
        if self.committed {
            return;
        }
        while let Some(op) = self.log.pop() {
            Self::undo(self.topo, self.state, op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Tag, TagBuilder};
    use cm_topology::{mbps, TreeSpec};

    fn small_topo() -> Topology {
        Topology::build(&TreeSpec::small(
            2,
            2,
            2,
            4,
            [mbps(1000.0), mbps(1000.0), mbps(1000.0)],
        ))
    }

    fn hose_tag(n: u32, sr: Kbps) -> Tag {
        let mut b = TagBuilder::new("hose");
        let t = b.tier("t", n);
        b.self_loop(t, sr).unwrap();
        b.build().unwrap()
    }

    fn level_snapshot(topo: &Topology) -> Vec<(Kbps, Kbps)> {
        (0..topo.num_levels())
            .map(|l| topo.reserved_at_level(l))
            .collect()
    }

    #[test]
    fn commit_keeps_staged_changes() {
        let mut topo = small_topo();
        let mut st = TenantState::new(hose_tag(4, 100));
        let s = topo.servers()[0];
        {
            let mut txn = ReservationTxn::begin(&mut topo, &mut st);
            txn.place(s, 0, 2).unwrap();
            txn.sync_uplink(s).unwrap();
            txn.commit();
        }
        assert_eq!(topo.uplink_used(s), Some((200, 200)));
        assert_eq!(st.total_placed(&topo), 2);
    }

    #[test]
    fn drop_without_commit_rolls_back_everything() {
        let mut topo = small_topo();
        let snapshot = level_snapshot(&topo);
        let mut st = TenantState::new(hose_tag(4, 100));
        let s0 = topo.servers()[0];
        let s1 = topo.servers()[1];
        {
            let mut txn = ReservationTxn::begin(&mut topo, &mut st);
            txn.place(s0, 0, 2).unwrap();
            txn.place(s1, 0, 1).unwrap();
            txn.sync_uplink(s0).unwrap();
            txn.sync_uplink(s1).unwrap();
            let tor = txn.topo().parent(s0).unwrap();
            txn.sync_uplink(tor).unwrap();
            // No commit: the drop must unwind all five ops.
        }
        assert_eq!(level_snapshot(&topo), snapshot);
        assert_eq!(st.total_placed(&topo), 0);
        assert_eq!(topo.slots_free(s0), 4);
        assert_eq!(topo.slots_free(s1), 4);
        topo.check_invariants().unwrap();
    }

    #[test]
    fn savepoint_rollback_is_partial_and_reports_placements() {
        let mut topo = small_topo();
        let mut st = TenantState::new(hose_tag(6, 100));
        let s0 = topo.servers()[0];
        let s1 = topo.servers()[1];
        let mut txn = ReservationTxn::begin(&mut topo, &mut st);
        txn.place(s0, 0, 2).unwrap();
        txn.sync_uplink(s0).unwrap();
        let sp = txn.savepoint();
        txn.place(s1, 0, 1).unwrap();
        txn.sync_uplink(s1).unwrap();
        let undone = txn.rollback_to(sp);
        assert_eq!(
            undone,
            vec![PlacementEntry {
                server: s1,
                tier: 0,
                count: 1
            }]
        );
        // s0's staging survives, s1's is gone.
        assert_eq!(txn.state().count_of(s0, 0), 2);
        assert_eq!(txn.state().count_of(s1, 0), 0);
        assert_eq!(txn.topo().uplink_used(s1), Some((0, 0)));
        txn.commit();
        assert_eq!(st.total_placed(&topo), 2);
        st.clear(&mut topo);
    }

    #[test]
    fn sync_path_failure_leaves_txn_where_it_was() {
        // ToR uplink too small: the path sync must fail and unwind only its
        // own partial syncs.
        let mut topo = Topology::build(&TreeSpec::small(
            1,
            2,
            2,
            4,
            [mbps(1000.0), mbps(50.0), mbps(1000.0)],
        ));
        let mut st = TenantState::new(hose_tag(4, mbps(100.0)));
        let s = topo.servers()[0];
        let mut txn = ReservationTxn::begin(&mut topo, &mut st);
        txn.place(s, 0, 2).unwrap();
        assert!(txn.sync_path_to_root(s).is_err());
        // The placement is still staged; no reservation survived.
        assert_eq!(txn.state().count_of(s, 0), 2);
        assert_eq!(txn.topo().uplink_used(s), Some((0, 0)));
        drop(txn);
        assert_eq!(st.total_placed(&topo), 0);
        topo.check_invariants().unwrap();
    }

    #[test]
    fn unplace_is_reverted_on_rollback() {
        let mut topo = small_topo();
        let mut st = TenantState::new(hose_tag(4, 100));
        let s = topo.servers()[0];
        {
            let mut txn = ReservationTxn::begin(&mut topo, &mut st);
            txn.place(s, 0, 4).unwrap();
            txn.sync_uplink(s).unwrap();
            txn.commit();
        }
        {
            let mut txn = ReservationTxn::begin(&mut topo, &mut st);
            txn.unplace(s, 0, 2);
            txn.sync_uplink(s).unwrap();
            // Dropped uncommitted: the two VMs come back.
        }
        assert_eq!(st.total_placed(&topo), 4);
        assert_eq!(topo.slots_free(s), 0);
        st.check_consistency(&topo).unwrap();
        st.clear(&mut topo);
    }

    #[test]
    fn replace_model_is_reverted_on_rollback() {
        let mut topo = small_topo();
        let mut st = TenantState::new(hose_tag(4, 100));
        let s = topo.servers()[0];
        {
            let mut txn = ReservationTxn::begin(&mut topo, &mut st);
            txn.place(s, 0, 2).unwrap();
            txn.sync_uplink(s).unwrap();
            txn.commit();
        }
        assert_eq!(topo.uplink_used(s), Some((200, 200)));
        {
            let mut txn = ReservationTxn::begin(&mut topo, &mut st);
            txn.replace_model(Arc::new(hose_tag(4, 300))).unwrap();
            assert_eq!(txn.topo().uplink_used(s), Some((600, 600)));
            // Dropped uncommitted: prices return to the old model's.
        }
        assert_eq!(topo.uplink_used(s), Some((200, 200)));
        assert_eq!(st.model().self_loop_of(crate::model::TierId(0)), Some(100));
        st.clear(&mut topo);
    }

    #[test]
    fn interleaved_ops_restore_exactly() {
        // A dense interleaving of places, syncs and a savepoint rollback,
        // then a full drop: the topology must be bit-identical to the
        // start.
        let mut topo = small_topo();
        let before: Vec<_> = topo
            .servers()
            .iter()
            .map(|&s| (topo.slots_free(s), topo.uplink_used(s)))
            .collect();
        let mut st = TenantState::new(hose_tag(8, 77));
        {
            let mut txn = ReservationTxn::begin(&mut topo, &mut st);
            let servers: Vec<NodeId> = txn.topo().servers().to_vec();
            for (i, &s) in servers.iter().take(4).enumerate() {
                txn.place(s, 0, 1 + (i as u32 % 2)).unwrap();
                txn.sync_path_to_root(s).unwrap();
            }
            let sp = txn.savepoint();
            txn.place(servers[5], 0, 2).unwrap();
            txn.sync_path_to_root(servers[5]).unwrap();
            txn.rollback_to(sp);
        }
        let after: Vec<_> = topo
            .servers()
            .iter()
            .map(|&s| (topo.slots_free(s), topo.uplink_used(s)))
            .collect();
        assert_eq!(before, after);
        topo.check_invariants().unwrap();
    }
}
