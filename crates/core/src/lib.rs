//! # cm-core
//!
//! Core of the CloudMirror reproduction ("Application-Driven Bandwidth
//! Guarantees in Datacenters", SIGCOMM 2014): the **Tenant Application
//! Graph** abstraction, the bandwidth-cut mathematics, and the CloudMirror
//! **VM placement algorithm** with its high-availability extensions.
//!
//! ## Quick start
//!
//! ```
//! use cm_core::model::TagBuilder;
//! use cm_core::placement::{CmConfig, CmPlacer, Placer};
//! use cm_topology::{mbps, Topology, TreeSpec};
//!
//! // Describe the application (Fig. 2(a)): web/logic/db with inter-tier
//! // guarantees and a db-internal hose.
//! let mut b = TagBuilder::new("shop");
//! let web = b.tier("web", 6);
//! let logic = b.tier("logic", 6);
//! let db = b.tier("db", 4);
//! b.sym_edge(web, logic, mbps(500.0)).unwrap();
//! b.sym_edge(logic, db, mbps(100.0)).unwrap();
//! b.self_loop(db, mbps(50.0)).unwrap();
//! let tag = b.build().unwrap();
//!
//! // Deploy it on a small datacenter.
//! let mut topo = Topology::build(&TreeSpec::small(
//!     2, 2, 4, 4, [mbps(1000.0), mbps(2000.0), mbps(4000.0)],
//! ));
//! let mut placer = CmPlacer::new(CmConfig::cm());
//! let deployed = placer.place(&mut topo, &tag).expect("fits");
//! assert_eq!(deployed.total_placed(&topo), 16);
//!
//! // ... and release it.
//! deployed.release(&mut topo);
//! ```
//!
//! Every algorithm in the workspace — CloudMirror and the Oktopus/SecondNet
//! baselines — implements the same [`placement::Placer`] trait and returns
//! the same [`placement::Deployed`] handle, so simulators, experiment
//! drivers and benches are written once against the trait.
//!
//! ## Modules
//!
//! * [`model`] — TAG, generalized VOC, VC and pipe models.
//! * [`cut`] — the [`cut::CutModel`] trait: Eq. 1 / footnote 7 cut pricing.
//! * [`coloc`] — the colocation-saving conditions (Eqs. 2–6).
//! * [`reserve`] — per-tenant placement + bandwidth reservation ledger.
//! * [`txn`] — transactional staging over the ledger: savepoints, commit,
//!   exact rollback.
//! * [`placement`] — the unified [`placement::Placer`] engine, the
//!   CloudMirror placer (Algorithm 1, §4.5 HA), and the sharded
//!   concurrent admission engine ([`placement::run_events`]): pod-level
//!   shards, speculative placement with read-set traces, and a
//!   sequence-numbered optimistic commit protocol that keeps decisions
//!   bit-identical to serial admission at any thread count.

/// Anti-colocation constraint tracking across fault domains.
pub mod coloc;
/// Min-cut bandwidth model over the tenant virtual network.
pub mod cut;
/// Small deterministic hash primitives for placement tie-breaking.
pub mod fasthash;
/// The tenant-side abstraction: TAG virtual networks and their components.
pub mod model;
/// Placement engines: baseline search, CloudMirror, and the concurrent admitter.
pub mod placement;
/// The sanctioned reservation layer: every `Topology` mutation flows through here.
pub mod reserve;
/// Synchronization shim: std passthrough, or the model scheduler under `model`.
pub mod sync;
/// Undo-logged reservation transactions with all-or-nothing rollback.
pub mod txn;

pub use cut::CutModel;
pub use model::{Tag, TagBuilder, TierId};
pub use placement::{CmConfig, CmPlacer, Deployed, Evacuation, HaPolicy, Placer, RejectReason};
pub use reserve::TenantState;
pub use txn::{ReservationTxn, Savepoint};
