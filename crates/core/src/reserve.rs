//! Per-tenant reservation engine.
//!
//! The engine tracks, for one tenant, (a) which servers hold how many VMs of
//! each tier and (b) how much bandwidth is reserved on every uplink for the
//! tenant. Reservations follow **recompute-from-set** semantics: the amount
//! a tenant needs on a link is *defined* as its model's cut price
//! ([`crate::cut::CutModel::cut_kbps`]) of the VM multiset currently below
//! that link, and [`TenantState::sync_uplink`] applies the delta between
//! that definition and what is currently reserved.
//!
//! This matters because the cut formulas are non-additive: placing the
//! second half of a hose tier under a subtree *reduces* the requirement on
//! its uplink (Eq. 2). Delta-based bookkeeping of individual placements
//! would drift; recompute semantics are exact by construction and make
//! deallocation trivially correct.
//!
//! The engine deliberately knows nothing about placement policy; it is
//! shared by the CloudMirror placer and every baseline in `cm-baselines`.
//! Placers do not mutate it directly: all staged changes go through
//! [`crate::txn::ReservationTxn`], which layers savepoints and exact
//! commit/rollback on top of the primitives here.

use crate::cut::CutModel;
use crate::fasthash::FastMap;
use cm_topology::{Kbps, NodeId, Topology, TopologyError};
use std::sync::Arc;

/// One entry of a placement map: `count` VMs of `tier` on `server`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementEntry {
    /// The server the VMs were placed on.
    pub server: NodeId,
    /// Tier index within the tenant's model.
    pub tier: usize,
    /// Number of VMs placed.
    pub count: u32,
}

/// All placement and reservation state of a single deployed (or
/// in-deployment) tenant.
///
/// Dropping a `TenantState` without calling [`TenantState::clear`] leaks the
/// tenant's slots and bandwidth in the topology, so deployed tenants must be
/// kept (e.g. by the simulator's registry) until released.
#[derive(Debug, Clone)]
pub struct TenantState<M: CutModel> {
    /// Shared, immutable model: clones of the state (and the transaction
    /// undo log's model snapshots) are pointer copies, so the placement hot
    /// path never deep-clones a tenant's network description.
    model: Arc<M>,
    /// Per touched node: VM count per tier inside that node's subtree.
    counts: FastMap<NodeId, Vec<u32>>,
    /// Per touched uplink (keyed by the lower node): reserved (out, in).
    reserved: FastMap<NodeId, (Kbps, Kbps)>,
}

impl<M: CutModel> TenantState<M> {
    /// Start tracking a tenant with the given network model.
    pub fn new(model: M) -> Self {
        Self::new_shared(Arc::new(model))
    }

    /// Start tracking a tenant with an already-shared network model
    /// (no deep clone).
    pub fn new_shared(model: Arc<M>) -> Self {
        TenantState {
            model,
            counts: FastMap::default(),
            reserved: FastMap::default(),
        }
    }

    /// The tenant's network model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The tenant's network model as a shared handle (cheap to clone).
    pub fn model_arc(&self) -> Arc<M> {
        Arc::clone(&self.model)
    }

    /// VM counts per tier inside `node`'s subtree (all zeros if untouched).
    pub fn inside_counts(&self, node: NodeId) -> std::borrow::Cow<'_, [u32]> {
        match self.counts.get(&node) {
            Some(v) => std::borrow::Cow::Borrowed(v),
            None => std::borrow::Cow::Owned(vec![0u32; self.model.num_tiers()]),
        }
    }

    /// VMs of `tier` inside `node`'s subtree.
    pub fn count_of(&self, node: NodeId, tier: usize) -> u32 {
        self.counts.get(&node).map_or(0, |v| v[tier])
    }

    /// The stored per-tier counts inside `node`'s subtree, if the tenant
    /// has touched it (`None` means all zeros) — the borrow-only form of
    /// [`TenantState::inside_counts`].
    #[inline]
    pub fn inside_counts_ref(&self, node: NodeId) -> Option<&[u32]> {
        self.counts.get(&node).map(|v| v.as_slice())
    }

    /// Whether this tenant has no VM inside `node`'s subtree.
    pub fn is_untouched(&self, node: NodeId) -> bool {
        self.counts
            .get(&node)
            .is_none_or(|v| v.iter().all(|&c| c == 0))
    }

    /// Fill `out` (cleared first) with the VM counts per tier inside
    /// `node`'s subtree — the allocation-free form of
    /// [`TenantState::inside_counts`] for callers with a reusable buffer.
    pub fn fill_inside_counts(&self, node: NodeId, out: &mut Vec<u32>) {
        out.clear();
        match self.counts.get(&node) {
            Some(v) => out.extend_from_slice(v),
            None => out.resize(self.model.num_tiers(), 0),
        }
    }

    /// Total VMs placed so far.
    pub fn total_placed(&self, topo: &Topology) -> u64 {
        self.counts
            .get(&topo.root())
            .map_or(0, |v| v.iter().map(|&c| c as u64).sum())
    }

    /// The final placement: per server, VM count per tier. Sorted by server
    /// id for determinism. Servers the tenant has fully vacated (rolled
    /// back during placement, or emptied by a scale-in) are omitted — the
    /// ledger keeps their zeroed entries internally, but they are not part
    /// of the placement.
    pub fn placement(&self, topo: &Topology) -> Vec<(NodeId, Vec<u32>)> {
        let mut v: Vec<(NodeId, Vec<u32>)> = self
            .counts
            .iter()
            .filter(|(&n, c)| topo.is_server(n) && c.iter().any(|&x| x > 0))
            .map(|(&n, c)| (n, c.clone()))
            .collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// Place `count` VMs of `tier` on `server`: allocates slots and updates
    /// the per-subtree counts along the path to the root. Does **not**
    /// reserve bandwidth — call [`TenantState::sync_uplink`] for the links
    /// whose reservations should reflect the new counts.
    pub fn place(
        &mut self,
        topo: &mut Topology,
        server: NodeId,
        tier: usize,
        count: u32,
    ) -> Result<(), TopologyError> {
        if count == 0 {
            return Ok(());
        }
        topo.alloc_slots(server, count)?;
        let t = self.model.num_tiers();
        for node in topo.path_to_root(server) {
            let c = self.counts.entry(node).or_insert_with(|| vec![0; t]);
            c[tier] += count;
        }
        Ok(())
    }

    /// Batched [`TenantState::place`]: stage several tiers onto one server
    /// with a single slot allocation and one path walk. All-or-nothing:
    /// fails (without side effects) when the server lacks slots for the
    /// total.
    pub fn place_many(
        &mut self,
        topo: &mut Topology,
        server: NodeId,
        chunks: &[(usize, u32)],
    ) -> Result<(), TopologyError> {
        let total: u32 = chunks.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return Ok(());
        }
        topo.alloc_slots(server, total)?;
        let t = self.model.num_tiers();
        for node in topo.path_to_root(server) {
            let c = self.counts.entry(node).or_insert_with(|| vec![0; t]);
            for &(tier, count) in chunks {
                c[tier] += count;
            }
        }
        Ok(())
    }

    /// Reverse of [`TenantState::place`]. Panics on accounting bugs
    /// (unplacing more than was placed), since that can only arise from a
    /// caller error and continuing would corrupt the ledger.
    pub fn unplace(&mut self, topo: &mut Topology, server: NodeId, tier: usize, count: u32) {
        if count == 0 {
            return;
        }
        topo.release_slots(server, count)
            .expect("unplace: slot release underflow");
        for node in topo.path_to_root(server) {
            let c = self
                .counts
                .get_mut(&node)
                .expect("unplace: node has no counts");
            assert!(c[tier] >= count, "unplace: tier count underflow");
            c[tier] -= count;
        }
    }

    /// The bandwidth this tenant requires on `node`'s uplink, per the model's
    /// cut price of the VMs currently below it.
    pub fn required_cut(&self, node: NodeId) -> (Kbps, Kbps) {
        match self.counts.get(&node) {
            Some(c) => self.model.cut_kbps(c),
            None => (0, 0),
        }
    }

    /// Currently reserved bandwidth on `node`'s uplink for this tenant.
    pub fn reserved_on(&self, node: NodeId) -> (Kbps, Kbps) {
        self.reserved.get(&node).copied().unwrap_or((0, 0))
    }

    /// Bring the reservation on `node`'s uplink in line with
    /// [`TenantState::required_cut`] (the pseudocode's `ReserveBW` for a
    /// single link). No-op on the root. Fails without side effects when the
    /// uplink lacks capacity for an increase.
    pub fn sync_uplink(&mut self, topo: &mut Topology, node: NodeId) -> Result<(), TopologyError> {
        if node == topo.root() {
            return Ok(());
        }
        let (want_out, want_in) = self.required_cut(node);
        let (have_out, have_in) = self.reserved_on(node);
        let d_out = want_out as i64 - have_out as i64;
        let d_in = want_in as i64 - have_in as i64;
        if d_out == 0 && d_in == 0 {
            return Ok(());
        }
        topo.adjust_uplink(node, d_out, d_in)?;
        if want_out == 0 && want_in == 0 {
            self.reserved.remove(&node);
        } else {
            self.reserved.insert(node, (want_out, want_in));
        }
        Ok(())
    }

    /// [`TenantState::sync_uplink`] when the caller has already computed
    /// the required cut in closed form: applies the delta to `want`
    /// without re-evaluating the model. `want` **must** equal what
    /// [`TenantState::required_cut`] would return — debug builds assert
    /// it; the SecondNet placer uses this because the pipe cut's
    /// additivity makes the per-server delta O(peers) instead of
    /// O(placed × degree).
    pub fn sync_uplink_exact(
        &mut self,
        topo: &mut Topology,
        node: NodeId,
        want: (Kbps, Kbps),
    ) -> Result<(), TopologyError> {
        if node == topo.root() {
            return Ok(());
        }
        debug_assert_eq!(
            want,
            self.required_cut(node),
            "closed-form cut disagrees with the model at {node}"
        );
        let (want_out, want_in) = want;
        let (have_out, have_in) = self.reserved_on(node);
        let d_out = want_out as i64 - have_out as i64;
        let d_in = want_in as i64 - have_in as i64;
        if d_out == 0 && d_in == 0 {
            return Ok(());
        }
        topo.adjust_uplink(node, d_out, d_in)?;
        if want_out == 0 && want_in == 0 {
            self.reserved.remove(&node);
        } else {
            self.reserved.insert(node, (want_out, want_in));
        }
        Ok(())
    }

    /// Set the reservation on a link to an exact prior value (rollback
    /// helper for [`crate::txn::ReservationTxn`]; decreases or restores
    /// always succeed). Uses the topology's force path so that restoring a
    /// reservation held before a link was degraded cannot fail.
    pub(crate) fn force_reserve(&mut self, topo: &mut Topology, node: NodeId, want: (Kbps, Kbps)) {
        let (have_out, have_in) = self.reserved_on(node);
        let d_out = want.0 as i64 - have_out as i64;
        let d_in = want.1 as i64 - have_in as i64;
        if d_out == 0 && d_in == 0 {
            return;
        }
        topo.force_adjust_uplink(node, d_out, d_in)
            .expect("rollback to previous reservation must succeed");
        if want == (0, 0) {
            self.reserved.remove(&node);
        } else {
            self.reserved.insert(node, want);
        }
    }

    /// Release everything this tenant holds: all bandwidth reservations and
    /// all VM slots. The state is empty (reusable) afterwards.
    ///
    /// Releases drain the ledgers directly — reservations and per-server
    /// slot totals are returned wholesale instead of unwinding entry by
    /// entry along every root path, and nothing is allocated.
    pub fn clear(&mut self, topo: &mut Topology) {
        for (n, (out, inc)) in self.reserved.drain() {
            topo.adjust_uplink(n, -(out as i64), -(inc as i64))
                .expect("releasing a held reservation cannot fail");
        }
        for (n, c) in self.counts.drain() {
            if topo.is_server(n) {
                let held: u32 = c.iter().sum();
                if held > 0 {
                    topo.release_slots(n, held)
                        .expect("releasing held slots cannot fail");
                }
            }
        }
    }

    /// Re-apply this ledger's slots and reservations to a topology they
    /// were just released from — the inverse of [`TenantState::clear`] for
    /// a snapshot taken before the release. Because every resource being
    /// re-acquired was freed by that release (and nothing else ran in
    /// between), none of the acquisitions can fail; the all-or-nothing
    /// lifecycle operations (`migrate`, the generic re-place fallback of
    /// `Placer::place_incremental`) rely on this to restore a tenant
    /// exactly after a failed re-placement.
    pub(crate) fn reapply(&self, topo: &mut Topology) {
        for (&n, c) in &self.counts {
            if topo.is_server(n) {
                let held: u32 = c.iter().sum();
                if held > 0 {
                    topo.alloc_slots(n, held)
                        .expect("snapshot slots were just released");
                }
            }
        }
        for (&n, &(out, inc)) in &self.reserved {
            topo.force_adjust_uplink(n, out as i64, inc as i64)
                .expect("snapshot reservations were just released");
        }
    }

    /// Total bandwidth reserved by this tenant across all links (out + in).
    pub fn total_reserved_kbps(&self) -> Kbps {
        self.reserved.values().map(|&(o, i)| o + i).sum()
    }

    /// Every uplink reservation held by this tenant, sorted by node id for
    /// determinism. The concurrent engine serializes these into commit
    /// records so worker replicas can replay an admission without the
    /// placer.
    pub fn reservations(&self) -> Vec<(NodeId, (Kbps, Kbps))> {
        let mut v: Vec<(NodeId, (Kbps, Kbps))> =
            self.reserved.iter().map(|(&n, &r)| (n, r)).collect();
        v.sort_by_key(|&(n, _)| n);
        v
    }

    /// Every node with a count entry (including entries rolled back to
    /// all-zero), unsorted. Used to enumerate a tenant's touched switches
    /// without materializing the placement map.
    pub fn touched_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.counts.keys().copied()
    }

    /// Swap the tenant's model and re-sync every touched link to the new
    /// model's cut prices (the §6 auto-scaling primitive: a resized TAG has
    /// different `min()` caps, so reservations must be repriced even where
    /// no VM moved). On failure (a link cannot fit a higher new price) the
    /// old model and all old reservations are restored exactly.
    ///
    /// The new model must have the same tier layout (`num_tiers`) and sizes
    /// no smaller than the currently placed counts.
    pub fn replace_model(
        &mut self,
        topo: &mut Topology,
        new_model: Arc<M>,
    ) -> Result<(), TopologyError> {
        assert_eq!(
            new_model.num_tiers(),
            self.model.num_tiers(),
            "replace_model cannot change the tier layout"
        );
        if let Some(root_counts) = self.counts.get(&topo.root()) {
            for (t, &c) in root_counts.iter().enumerate() {
                assert!(
                    c <= new_model.tier_size(t),
                    "tier {t} holds {c} VMs but the new model allows {}",
                    new_model.tier_size(t)
                );
            }
        }
        let old_model = std::mem::replace(&mut self.model, new_model);
        let old_reserved = self.reserved.clone();
        let mut links: Vec<NodeId> = self.counts.keys().copied().collect();
        links.sort_by_key(|&n| (topo.level(n), n));
        for (i, &n) in links.iter().enumerate() {
            if n == topo.root() {
                continue;
            }
            if let Err(e) = self.sync_uplink(topo, n) {
                // Restore: already-synced links back to old values, model
                // back to the old one.
                for &m in &links[..i] {
                    if m == topo.root() {
                        continue;
                    }
                    let prev = old_reserved.get(&m).copied().unwrap_or((0, 0));
                    self.force_reserve(topo, m, prev);
                }
                self.model = old_model;
                return Err(e);
            }
        }
        Ok(())
    }

    /// [`TenantState::replace_model`] for restore paths that must not
    /// fail: swaps the model and force-syncs every touched link to the new
    /// prices, bypassing capacity ceilings. Only for returning to a state
    /// the ledgers already held (transaction undo of a model swap on a
    /// possibly-degraded topology).
    pub(crate) fn force_replace_model(&mut self, topo: &mut Topology, new_model: Arc<M>) {
        assert_eq!(
            new_model.num_tiers(),
            self.model.num_tiers(),
            "force_replace_model cannot change the tier layout"
        );
        self.model = new_model;
        let mut links: Vec<NodeId> = self.counts.keys().copied().collect();
        links.sort_by_key(|&n| (topo.level(n), n));
        for n in links {
            if n == topo.root() {
                continue;
            }
            let want = self.required_cut(n);
            self.force_reserve(topo, n, want);
        }
    }

    /// Worst-case survivability per tier at `level` (§4.5): the smallest
    /// fraction of a tier's VMs that survive the failure of any single
    /// subtree at that level, `1 − max_A N^t_A / N^t`. Returns one entry per
    /// tier with at least one VM (`None` for empty/external tiers).
    pub fn wcs_at_level(&self, topo: &Topology, level: u8) -> Vec<Option<f64>> {
        let t = self.model.num_tiers();
        let mut max_in_domain = vec![0u32; t];
        for (&node, c) in &self.counts {
            if topo.level(node) == level {
                for (i, &x) in c.iter().enumerate() {
                    max_in_domain[i] = max_in_domain[i].max(x);
                }
            }
        }
        (0..t)
            .map(|i| {
                let n = self.model.tier_size(i);
                if n == 0 {
                    None
                } else {
                    Some(1.0 - max_in_domain[i] as f64 / n as f64)
                }
            })
            .collect()
    }

    /// Check the tenant's ledger against a from-scratch recomputation:
    /// every touched link's reservation must equal the model's cut price of
    /// the counts below it, and counts must be consistent bottom-up.
    /// Intended for tests.
    pub fn check_consistency(&self, topo: &Topology) -> Result<(), String> {
        for (&node, c) in &self.counts {
            if node != topo.root() {
                let want = self.model.cut_kbps(c);
                let have = self.reserved_on(node);
                // A zero-requirement node may simply be absent from
                // `reserved`; otherwise they must match.
                if want != have {
                    return Err(format!(
                        "link {node}: reserved {have:?} != required {want:?}"
                    ));
                }
            }
            if !topo.is_server(node) {
                let mut sum = vec![0u32; c.len()];
                for ch in topo.children(node) {
                    if let Some(cc) = self.counts.get(&ch) {
                        for (i, &x) in cc.iter().enumerate() {
                            sum[i] += x;
                        }
                    }
                }
                if &sum != c {
                    return Err(format!("node {node}: child counts do not sum"));
                }
            }
        }
        for &n in self.reserved.keys() {
            if !self.counts.contains_key(&n) {
                return Err(format!("link {n} reserved without counts"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Tag, TagBuilder};
    use cm_topology::{mbps, TreeSpec};

    fn small_topo() -> Topology {
        // 2 pods × 2 racks × 2 servers, 4 slots, 1 Gbps everywhere.
        Topology::build(&TreeSpec::small(
            2,
            2,
            2,
            4,
            [mbps(1000.0), mbps(1000.0), mbps(1000.0)],
        ))
    }

    fn hose_tag(n: u32, sr: Kbps) -> Tag {
        let mut b = TagBuilder::new("hose");
        let t = b.tier("t", n);
        b.self_loop(t, sr).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn place_updates_counts_along_path() {
        let mut topo = small_topo();
        let mut st = TenantState::new(hose_tag(4, 100));
        let s = topo.servers()[0];
        st.place(&mut topo, s, 0, 2).unwrap();
        assert_eq!(st.count_of(s, 0), 2);
        let tor = topo.parent(s).unwrap();
        assert_eq!(st.count_of(tor, 0), 2);
        assert_eq!(st.count_of(topo.root(), 0), 2);
        assert_eq!(topo.slots_free(s), 2);
        assert_eq!(st.total_placed(&topo), 2);
    }

    #[test]
    fn sync_reserves_cut_price() {
        let mut topo = small_topo();
        let mut st = TenantState::new(hose_tag(4, 100));
        let s = topo.servers()[0];
        st.place(&mut topo, s, 0, 2).unwrap();
        st.sync_uplink(&mut topo, s).unwrap();
        // Hose: min(2, 2)*100 = 200 both ways.
        assert_eq!(topo.uplink_used(s), Some((200, 200)));
        assert_eq!(st.reserved_on(s), (200, 200));
        // After syncing the full path the ledger is globally consistent.
        for n in topo.path_to_root(s).collect::<Vec<_>>() {
            st.sync_uplink(&mut topo, n).unwrap();
        }
        st.check_consistency(&topo).unwrap();
    }

    #[test]
    fn sync_shrinks_when_second_half_arrives() {
        let mut topo = small_topo();
        let mut st = TenantState::new(hose_tag(4, 100));
        let s = topo.servers()[0];
        st.place(&mut topo, s, 0, 2).unwrap();
        st.sync_uplink(&mut topo, s).unwrap();
        assert_eq!(topo.uplink_used(s), Some((200, 200)));
        // Second half lands on the same server: requirement drops to zero.
        st.place(&mut topo, s, 0, 2).unwrap();
        st.sync_uplink(&mut topo, s).unwrap();
        assert_eq!(topo.uplink_used(s), Some((0, 0)));
        st.check_consistency(&topo).unwrap();
    }

    #[test]
    fn clear_releases_all_resources() {
        let mut topo = small_topo();
        let mut st = TenantState::new(hose_tag(6, 100));
        let servers: Vec<NodeId> = topo.servers().to_vec();
        st.place(&mut topo, servers[0], 0, 2).unwrap();
        st.place(&mut topo, servers[3], 0, 2).unwrap();
        st.place(&mut topo, servers[5], 0, 2).unwrap();
        for &s in &servers[..6] {
            let path: Vec<NodeId> = topo.path_to_root(s).collect();
            for n in path {
                st.sync_uplink(&mut topo, n).unwrap();
            }
        }
        assert!(st.total_reserved_kbps() > 0);
        st.clear(&mut topo);
        assert_eq!(st.total_reserved_kbps(), 0);
        for l in 0..topo.num_levels() {
            assert_eq!(topo.reserved_at_level(l), (0, 0));
        }
        assert_eq!(topo.subtree_slots_free(topo.root()), 8 * 4);
        topo.check_invariants().unwrap();
    }

    #[test]
    fn wcs_reflects_worst_single_failure() {
        let mut topo = small_topo();
        let mut st = TenantState::new(hose_tag(4, 100));
        let s0 = topo.servers()[0];
        let s1 = topo.servers()[1];
        st.place(&mut topo, s0, 0, 3).unwrap();
        st.place(&mut topo, s1, 0, 1).unwrap();
        let wcs = st.wcs_at_level(&topo, 0);
        // Losing s0 kills 3/4 of the tier: WCS = 0.25.
        assert_eq!(wcs[0], Some(0.25));
        // At ToR level both servers share a ToR: WCS = 0.
        let wcs_tor = st.wcs_at_level(&topo, 1);
        assert_eq!(wcs_tor[0], Some(0.0));
    }

    #[test]
    fn sync_failure_leaves_no_partial_state() {
        let mut topo = Topology::build(&TreeSpec::small(
            1,
            1,
            2,
            8,
            [mbps(100.0), mbps(1000.0), mbps(1000.0)],
        ));
        let mut st = TenantState::new(hose_tag(8, mbps(100.0)));
        let s = topo.servers()[0];
        st.place(&mut topo, s, 0, 4).unwrap();
        // Requirement: min(4,4)*100 = 400 Mbps > 100 Mbps NIC.
        assert!(st.sync_uplink(&mut topo, s).is_err());
        assert_eq!(topo.uplink_used(s), Some((0, 0)));
        assert_eq!(st.reserved_on(s), (0, 0));
    }
}
