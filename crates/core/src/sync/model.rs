//! Virtualized synchronization: a loom-style cooperative scheduler.
//!
//! Compiled only under the `model` feature. The shim types here mirror the
//! `std::sync` API the engine uses, but when the calling thread is
//! *registered* with a [`Controller`](crate::sync::model::Controller)
//! every operation becomes a **yield
//! point**: the thread parks, the controller picks which registered thread
//! runs next (consulting a [`Decider`](crate::sync::model::Decider)
//! whenever more than one is
//! runnable), and exactly one model thread executes at a time. The
//! controller stamps every operation with a virtual clock tick and records
//! it in an operation trace that the `cm-race` crate feeds to its
//! happens-before race detector and schedule explorer.
//!
//! Threads that are *not* registered (anything outside a model run, even
//! with the feature on) fall through to the real `std` primitives, so the
//! feature can be enabled workspace-wide without perturbing ordinary code.
//!
//! ## Scheduling model
//!
//! * Yield points: `Mutex::lock`, `Condvar::wait` (two stages: release,
//!   re-acquire), `Condvar::notify_all`, every `AtomicUsize` op, and
//!   thread start. Releases (`MutexGuard` drop) and data accesses through
//!   a guard are recorded as *effects* of the running thread but do not
//!   yield — a transition spans from one yield point to the next.
//! * The decider is consulted only when two or more threads are runnable;
//!   forced steps are taken silently. The sequence of consulted choices
//!   is the schedule: replaying the same picks reproduces the run
//!   bit-for-bit.
//! * If no thread is runnable but live threads remain the run aborts as a
//!   deadlock; a [`Decider`](crate::sync::model::Decider) may also
//!   abort a run early (sleep-set pruning, replay divergence). Aborted
//!   runs unwind every model thread with a
//!   [`ScheduleAborted`](crate::sync::model::ScheduleAborted) panic
//!   payload.
//!
//! Object identities are assigned in creation order per controller, so a
//! given scenario names the same mutex/condvar/atomic identically across
//! runs — sleep sets and replay IDs depend on this.

// `state` is the controller's own lock; `inner` is the std mutex wrapped
// by every model `Mutex`. They are never held together: scheduler calls
// (`yield_op`, `cv_wait`, `release`) return before the wrapped mutex is
// touched, and controller internals never call back into shim types.
// cm-analyze: lock-order(state < inner)

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, LockResult, Mutex as StdMutex, PoisonError};

/// Model thread id: the index assigned at spawn registration order.
pub type Tid = usize;

/// Model object id: assigned sequentially per controller at construction.
pub type ObjId = u64;

/// High bit tags the *data protected by* mutex `m` (distinct from the
/// lock object itself in conflict and race analysis).
const DATA_BIT: ObjId = 1 << 63;

/// The object id for the data guarded by mutex `m`.
pub fn data_obj(m: ObjId) -> ObjId {
    m | DATA_BIT
}

/// Whether `id` is a guarded-data object, and if so for which mutex.
pub fn data_obj_mutex(id: ObjId) -> Option<ObjId> {
    if id & DATA_BIT != 0 {
        Some(id & !DATA_BIT)
    } else {
        None
    }
}

/// One instrumented operation. Yield-point ops are scheduled by the
/// controller; effect ops are recorded as part of the running thread's
/// current transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Thread's first schedulable step after registration.
    Start,
    /// Mutex acquisition (yield point).
    Lock(ObjId),
    /// Mutex release (effect).
    Unlock(ObjId),
    /// Condvar wait: atomically releases `lock` (yield point).
    CvWait {
        /// The condvar being waited on.
        cv: ObjId,
        /// The mutex released while waiting and re-acquired on wake.
        lock: ObjId,
    },
    /// Condvar broadcast (yield point).
    CvNotifyAll(ObjId),
    /// A waiter woken by the broadcast recorded at `notify_step`
    /// (effect, attributed to the woken thread).
    CvWake {
        /// The condvar that was broadcast.
        cv: ObjId,
        /// Virtual-clock step of the `CvNotifyAll` that woke us.
        notify_step: u64,
    },
    /// Atomic read-modify-write (yield point).
    Rmw(ObjId),
    /// Atomic load (yield point).
    Load(ObjId),
    /// Atomic store (yield point).
    Store(ObjId),
    /// Data read through a lock guard or [`UnsyncCell`] (effect).
    Read(ObjId),
    /// Data write through a lock guard or [`UnsyncCell`] (effect).
    Write(ObjId),
    /// Thread exit (effect).
    Exit,
}

impl Op {
    /// The objects this op touches, each tagged write (`true`) or read.
    fn footprint(self) -> [Option<(ObjId, bool)>; 2] {
        match self {
            Op::Start | Op::Exit => [None, None],
            Op::Lock(m) | Op::Unlock(m) => [Some((m, true)), None],
            Op::CvWait { cv, lock } => [Some((cv, true)), Some((lock, true))],
            Op::CvNotifyAll(cv) | Op::CvWake { cv, .. } => [Some((cv, true)), None],
            Op::Rmw(a) | Op::Store(a) => [Some((a, true)), None],
            Op::Load(a) => [Some((a, false)), None],
            Op::Read(d) => [Some((d, false)), None],
            Op::Write(d) => [Some((d, true)), None],
        }
    }

    /// Whether two ops conflict: they touch a common object and at least
    /// one side writes it. Independent (non-conflicting) ops commute, so
    /// schedules differing only in their order are equivalent — the basis
    /// for sleep-set pruning in the explorer.
    pub fn conflicts(self, other: Op) -> bool {
        self.footprint().iter().flatten().any(|&(a, wa)| {
            other
                .footprint()
                .iter()
                .flatten()
                .any(|&(b, wb)| a == b && (wa || wb))
        })
    }

    /// Whether this op kind parks the thread at a scheduling point.
    pub fn is_yield(self) -> bool {
        matches!(
            self,
            Op::Start
                | Op::Lock(_)
                | Op::CvWait { .. }
                | Op::CvNotifyAll(_)
                | Op::Rmw(_)
                | Op::Load(_)
                | Op::Store(_)
        )
    }
}

/// One recorded operation with its virtual-clock step and thread.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Virtual clock: 0-based, one tick per recorded op.
    pub step: u64,
    /// The thread the op is attributed to.
    pub tid: Tid,
    /// The operation.
    pub op: Op,
}

/// A scheduling decision offered to the [`Decider`]: every runnable
/// thread with its pending op, in ascending tid order.
#[derive(Debug, Clone)]
pub struct ChoicePoint {
    /// Runnable `(tid, pending op)` pairs, ascending by tid.
    pub enabled: Vec<(Tid, Op)>,
}

/// A decider's verdict at a choice point.
#[derive(Debug, Clone, Copy)]
pub enum Choice {
    /// Run `enabled[i]`.
    Pick(usize),
    /// Abandon the run (recorded as [`Abort::Pruned`]).
    Abort,
}

/// One recorded branch: what was runnable and which index was taken.
#[derive(Debug, Clone)]
pub struct ChoiceRecord {
    /// The runnable set at this point (as shown to the decider).
    pub enabled: Vec<(Tid, Op)>,
    /// Index into `enabled` that was taken.
    pub chosen: usize,
}

/// Why a run was cut short.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Abort {
    /// The decider abandoned the run (pruning or replay divergence).
    Pruned,
    /// No runnable thread but live threads remain; `blocked` lists them
    /// with the op each is stuck on.
    Deadlock {
        /// The stuck threads and their pending ops.
        blocked: Vec<(Tid, Op)>,
    },
    /// The virtual-clock budget was exhausted (livelock guard).
    StepLimit,
}

/// Everything the controller recorded about one run.
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    /// Every recorded op in virtual-clock order.
    pub events: Vec<TraceEvent>,
    /// Every consulted scheduling choice, in order.
    pub choices: Vec<ChoiceRecord>,
    /// Why the run aborted, if it did not run to quiescence.
    pub abort: Option<Abort>,
}

impl RunTrace {
    /// The taken branch indices — the replayable schedule.
    pub fn schedule(&self) -> Vec<usize> {
        self.choices.iter().map(|c| c.chosen).collect()
    }
}

/// A scheduling policy: consulted at every choice point, shown every
/// recorded event (for online sleep-set filtering).
pub trait Decider: Send {
    /// Pick which runnable thread moves, or abort the run.
    fn choose(&mut self, point: &ChoicePoint) -> Choice;
    /// Observe a recorded event (called for every trace event, in order).
    fn observe(&mut self, _event: &TraceEvent) {}
}

/// The trivial decider: always runs the lowest-tid runnable thread.
pub struct FirstEnabled;

impl Decider for FirstEnabled {
    fn choose(&mut self, _point: &ChoicePoint) -> Choice {
        Choice::Pick(0)
    }
}

/// Panic payload used to unwind model threads when a run aborts. The
/// explorer treats these panics as control flow, not failures.
#[derive(Debug)]
pub struct ScheduleAborted;

/// Install a process-wide panic hook that silences [`ScheduleAborted`]
/// unwinds (they are routine during exploration); all other panics go to
/// the previously installed hook. Idempotent.
pub fn silence_schedule_aborts() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ScheduleAborted>().is_none() {
                prev(info);
            }
        }));
    });
}

#[derive(Debug, Clone, PartialEq)]
enum Status {
    NotStarted,
    /// Parked at a yield point with this op pending.
    Pending(Op),
    /// Granted the processor; executing until the next yield point.
    Running,
    /// Parked in `Condvar::wait` until a broadcast re-arms it.
    Waiting {
        cv: ObjId,
        lock: ObjId,
    },
    Exited,
}

struct CtlState {
    threads: Vec<Status>,
    registered: usize,
    started: usize,
    expected: usize,
    current: Option<Tid>,
    mutex_owner: BTreeMap<ObjId, Tid>,
    next_obj: ObjId,
    steps: u64,
    max_steps: u64,
    events: Vec<TraceEvent>,
    choices: Vec<ChoiceRecord>,
    abort: Option<Abort>,
    decider: Box<dyn Decider>,
}

/// The cooperative scheduler: owns the run state, the decider, and the
/// trace. One controller drives exactly one run; the explorer constructs
/// a fresh one per schedule.
pub struct Controller {
    state: StdMutex<CtlState>,
    cv: StdCondvar,
}

impl Controller {
    /// A controller expecting `expected` model threads to register. The
    /// first scheduling decision is made only once all of them have
    /// started, so spawn order cannot leak into the schedule. `max_steps`
    /// bounds the virtual clock (livelock guard).
    pub fn new(expected: usize, max_steps: u64, decider: Box<dyn Decider>) -> Controller {
        Controller {
            state: StdMutex::new(CtlState {
                threads: vec![Status::NotStarted; expected],
                registered: 0,
                started: 0,
                expected,
                current: None,
                mutex_owner: BTreeMap::new(),
                next_obj: 1,
                steps: 0,
                max_steps,
                events: Vec::new(),
                choices: Vec::new(),
                abort: None,
                decider,
            }),
            cv: StdCondvar::new(),
        }
    }

    /// Take the recorded trace (leaves the controller drained). Call
    /// after every model thread has joined.
    pub fn finish(&self) -> RunTrace {
        let mut st = self.lock_state();
        RunTrace {
            events: std::mem::take(&mut st.events),
            choices: std::mem::take(&mut st.choices),
            abort: st.abort.clone(),
        }
    }

    /// Poison-tolerant state lock: an aborting run unwinds threads whose
    /// guards still interact with the controller, and bookkeeping must
    /// keep working through that.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, CtlState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn alloc_obj(&self) -> ObjId {
        let mut st = self.lock_state();
        let id = st.next_obj;
        st.next_obj += 1;
        id
    }

    fn register_thread(&self) -> Tid {
        let mut st = self.lock_state();
        let tid = st.registered;
        assert!(
            tid < st.expected,
            "model scope spawned more threads than the controller expects \
             ({} registered, {} expected)",
            tid + 1,
            st.expected
        );
        st.registered += 1;
        tid
    }

    /// Record `op` at the next virtual-clock step. Never panics: it is
    /// called from guard drops during unwinding.
    fn record(st: &mut CtlState, tid: Tid, op: Op) {
        let ev = TraceEvent {
            step: st.steps,
            tid,
            op,
        };
        st.steps += 1;
        st.decider.observe(&ev);
        st.events.push(ev);
    }

    /// Apply the state effect of a granted yield-point op and record it.
    fn commit_op(st: &mut CtlState, tid: Tid, op: Op) {
        match op {
            Op::Lock(m) => {
                debug_assert!(!st.mutex_owner.contains_key(&m), "lock granted while held");
                st.mutex_owner.insert(m, tid);
                Self::record(st, tid, op);
            }
            Op::CvWait { lock, .. } => {
                debug_assert_eq!(st.mutex_owner.get(&lock), Some(&tid));
                st.mutex_owner.remove(&lock);
                Self::record(st, tid, op);
            }
            Op::CvNotifyAll(cv) => {
                Self::record(st, tid, op);
                let notify_step = st.steps - 1;
                for waiter in 0..st.threads.len() {
                    if let Status::Waiting { cv: wcv, lock } = st.threads[waiter] {
                        if wcv == cv {
                            st.threads[waiter] = Status::Pending(Op::Lock(lock));
                            Self::record(st, waiter, Op::CvWake { cv, notify_step });
                        }
                    }
                }
            }
            _ => Self::record(st, tid, op),
        }
    }

    fn op_enabled(st: &CtlState, op: Op) -> bool {
        match op {
            Op::Lock(m) => !st.mutex_owner.contains_key(&m),
            _ => true,
        }
    }

    /// If no thread holds the processor, pick the next one. Called with
    /// the state lock held; never panics (runs inside guard drops).
    fn schedule(&self, st: &mut CtlState) {
        if st.abort.is_some() {
            self.cv.notify_all();
            return;
        }
        if st.current.is_some() || st.started < st.expected {
            return;
        }
        let enabled: Vec<(Tid, Op)> = st
            .threads
            .iter()
            .enumerate()
            .filter_map(|(t, s)| match *s {
                Status::Pending(op) if Self::op_enabled(st, op) => Some((t, op)),
                _ => None,
            })
            .collect();
        if enabled.is_empty() {
            let blocked: Vec<(Tid, Op)> = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(t, s)| match *s {
                    Status::Pending(op) => Some((t, op)),
                    Status::Waiting { cv, lock } => Some((t, Op::CvWait { cv, lock })),
                    _ => None,
                })
                .collect();
            if !blocked.is_empty() {
                st.abort = Some(Abort::Deadlock { blocked });
            }
            self.cv.notify_all();
            return;
        }
        let chosen = if enabled.len() == 1 {
            0
        } else {
            let point = ChoicePoint {
                enabled: enabled.clone(),
            };
            match st.decider.choose(&point) {
                Choice::Pick(i) if i < enabled.len() => {
                    st.choices.push(ChoiceRecord {
                        enabled: enabled.clone(),
                        chosen: i,
                    });
                    i
                }
                // An out-of-range pick is a decider bug; treat it like an
                // explicit prune rather than panicking with the lock held.
                Choice::Pick(_) | Choice::Abort => {
                    st.abort = Some(Abort::Pruned);
                    self.cv.notify_all();
                    return;
                }
            }
        };
        st.current = Some(enabled[chosen].0);
        self.cv.notify_all();
    }

    /// Park until this thread is granted the processor. Unwinds with
    /// [`ScheduleAborted`] if the run aborts while parked.
    fn wait_granted<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, CtlState>,
        tid: Tid,
    ) -> std::sync::MutexGuard<'a, CtlState> {
        loop {
            if st.abort.is_some() {
                drop(st);
                std::panic::panic_any(ScheduleAborted);
            }
            if st.current == Some(tid) {
                return st;
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Full yield-point protocol: park with `op` pending, wait for the
    /// grant, apply the effect, resume running.
    fn yield_op(&self, tid: Tid, op: Op) {
        let mut st = self.lock_state();
        if st.abort.is_none() && st.steps >= st.max_steps {
            st.abort = Some(Abort::StepLimit);
        }
        st.threads[tid] = Status::Pending(op);
        if st.current == Some(tid) {
            st.current = None;
        }
        self.schedule(&mut st);
        st = self.wait_granted(st, tid);
        Self::commit_op(&mut st, tid, op);
        st.threads[tid] = Status::Running;
    }

    /// The two-stage condvar wait: yield to release the lock, park as a
    /// waiter, then (once a broadcast re-arms us) compete to re-acquire.
    fn cv_wait(&self, tid: Tid, cv: ObjId, lock: ObjId) {
        let op = Op::CvWait { cv, lock };
        let mut st = self.lock_state();
        st.threads[tid] = Status::Pending(op);
        if st.current == Some(tid) {
            st.current = None;
        }
        self.schedule(&mut st);
        st = self.wait_granted(st, tid);
        Self::commit_op(&mut st, tid, op);
        st.threads[tid] = Status::Waiting { cv, lock };
        st.current = None;
        self.schedule(&mut st);
        st = self.wait_granted(st, tid);
        Self::commit_op(&mut st, tid, Op::Lock(lock));
        st.threads[tid] = Status::Running;
    }

    /// Record a non-yield effect of the running thread.
    fn effect(&self, tid: Tid, op: Op) {
        let mut st = self.lock_state();
        Self::record(&mut st, tid, op);
    }

    /// Mutex release: bookkeeping only, the thread keeps running.
    fn release(&self, tid: Tid, m: ObjId) {
        let mut st = self.lock_state();
        st.mutex_owner.remove(&m);
        Self::record(&mut st, tid, Op::Unlock(m));
    }

    fn thread_start(&self, tid: Tid) {
        let mut st = self.lock_state();
        st.threads[tid] = Status::Pending(Op::Start);
        st.started += 1;
        self.schedule(&mut st);
        st = self.wait_granted(st, tid);
        Self::commit_op(&mut st, tid, Op::Start);
        st.threads[tid] = Status::Running;
    }

    /// Thread exit (also runs during panic unwinding; must not panic).
    fn thread_exit(&self, tid: Tid) {
        let mut st = self.lock_state();
        Self::record(&mut st, tid, Op::Exit);
        st.threads[tid] = Status::Exited;
        if st.current == Some(tid) {
            st.current = None;
        }
        self.schedule(&mut st);
    }
}

thread_local! {
    static INSTALLED: RefCell<Option<Arc<Controller>>> = const { RefCell::new(None) };
    static MODEL_TID: Cell<Option<Tid>> = const { Cell::new(None) };
}

/// Install `ctl` as this thread's controller for object-id assignment and
/// scope propagation; restored on guard drop. The installing thread (the
/// explorer) is *not* itself scheduled — only threads spawned through a
/// shim [`scope`] while a controller is installed are.
pub fn install(ctl: Arc<Controller>) -> InstallGuard {
    INSTALLED.with(|c| *c.borrow_mut() = Some(ctl));
    InstallGuard { _priv: () }
}

/// Uninstalls the thread's controller when dropped.
pub struct InstallGuard {
    _priv: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED.with(|c| *c.borrow_mut() = None);
    }
}

fn installed() -> Option<Arc<Controller>> {
    INSTALLED.with(|c| c.borrow().clone())
}

/// The controller + tid pair if the calling thread is a registered model
/// thread (the routing test for every shim operation).
fn current_model() -> Option<(Arc<Controller>, Tid)> {
    let tid = MODEL_TID.with(|t| t.get())?;
    let ctl = installed()?;
    Some((ctl, tid))
}

/// Marks the thread exited on drop, including during panic unwinding, so
/// an aborting run cannot wedge the scheduler.
struct ExitGuard {
    ctl: Arc<Controller>,
    tid: Tid,
}

impl Drop for ExitGuard {
    fn drop(&mut self) {
        MODEL_TID.with(|t| t.set(None));
        self.ctl.thread_exit(self.tid);
    }
}

/// Shim over [`std::thread::scope`]: propagates the spawner's installed
/// controller into spawned threads, registering each as a model thread.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let ctl = installed();
    std::thread::scope(|s| f(&Scope { inner: s, ctl }))
}

/// Shim over [`std::thread::Scope`] carrying the controller to propagate.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    ctl: Option<Arc<Controller>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. Under an installed controller the thread is
    /// registered for cooperative scheduling and blocks at its `Start`
    /// yield point until every expected thread has registered.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.ctl {
            None => self.inner.spawn(f),
            Some(ctl) => {
                let ctl = ctl.clone();
                let tid = ctl.register_thread();
                self.inner.spawn(move || {
                    let _install = install(ctl.clone());
                    MODEL_TID.with(|t| t.set(Some(tid)));
                    let _exit = ExitGuard {
                        ctl: ctl.clone(),
                        tid,
                    };
                    ctl.thread_start(tid);
                    f()
                })
            }
        }
    }
}

fn fresh_obj_id() -> AtomicU64 {
    AtomicU64::new(installed().map_or(0, |c| c.alloc_obj()))
}

/// Model mutex: API-compatible with [`std::sync::Mutex`] for the ops the
/// engine uses. Lock acquisition is a yield point on model threads; the
/// inner real mutex is only ever taken uncontended (the controller
/// serializes model threads).
pub struct Mutex<T: ?Sized> {
    id: AtomicU64,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex; registers an object id if a controller is installed.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            id: fresh_obj_id(),
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn ensure_id(&self, ctl: &Controller) -> ObjId {
        let id = self.id.load(StdOrdering::SeqCst);
        if id != 0 {
            return id;
        }
        let id = ctl.alloc_obj();
        self.id.store(id, StdOrdering::SeqCst);
        id
    }

    /// Acquire the lock (a yield point on model threads).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match current_model() {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    mx: self,
                    inner: Some(g),
                    ctl: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    mx: self,
                    inner: Some(p.into_inner()),
                    ctl: None,
                })),
            },
            Some((ctl, tid)) => {
                let id = self.ensure_id(&ctl);
                ctl.yield_op(tid, Op::Lock(id));
                let g = match self.inner.lock() {
                    Ok(g) => g,
                    // Poison here means a sibling model thread unwound
                    // (run abort); the controller still serializes us.
                    Err(p) => p.into_inner(),
                };
                Ok(MutexGuard {
                    mx: self,
                    inner: Some(g),
                    ctl: Some((ctl, tid, id)),
                })
            }
        }
    }
}

/// Guard for the model [`Mutex`]. Dereferences record data accesses; the
/// drop records the release and returns ownership to the scheduler.
pub struct MutexGuard<'a, T: ?Sized> {
    mx: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    ctl: Option<(Arc<Controller>, Tid, ObjId)>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        if let Some((ctl, tid, id)) = &self.ctl {
            ctl.effect(*tid, Op::Read(data_obj(*id)));
        }
        self.inner.as_ref().expect("guard accessed after teardown")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        if let Some((ctl, tid, id)) = &self.ctl {
            ctl.effect(*tid, Op::Write(data_obj(*id)));
        }
        self.inner.as_mut().expect("guard accessed after teardown")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the model release so a granted
        // acquirer never blocks on the real mutex.
        drop(self.inner.take());
        if let Some((ctl, tid, id)) = self.ctl.take() {
            ctl.release(tid, id);
        }
    }
}

/// Model condvar. On model threads `wait` and `notify_all` are fully
/// controller-mediated (waiters never park on the real condvar, so a
/// model run has no spurious wakeups and no lost-wakeup nondeterminism
/// beyond what the schedule encodes).
pub struct Condvar {
    id: AtomicU64,
    inner: StdCondvar,
}

impl Condvar {
    /// A new condvar; registers an object id if a controller is installed.
    pub fn new() -> Condvar {
        Condvar {
            id: fresh_obj_id(),
            inner: StdCondvar::new(),
        }
    }

    fn ensure_id(&self, ctl: &Controller) -> ObjId {
        let id = self.id.load(StdOrdering::SeqCst);
        if id != 0 {
            return id;
        }
        let id = ctl.alloc_obj();
        self.id.store(id, StdOrdering::SeqCst);
        id
    }

    /// Atomically release the guard's lock and wait for a broadcast.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.ctl.take() {
            None => {
                let mx = guard.mx;
                let std_guard = guard.inner.take().expect("guard accessed after teardown");
                drop(guard);
                match self.inner.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard {
                        mx,
                        inner: Some(g),
                        ctl: None,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        mx,
                        inner: Some(p.into_inner()),
                        ctl: None,
                    })),
                }
            }
            Some((ctl, tid, lock_id)) => {
                let mx = guard.mx;
                let cv_id = self.ensure_id(&ctl);
                // Drop the real guard first: the model still records us as
                // owner until the CvWait commits, and we are the running
                // thread until then, so nobody races the real mutex.
                drop(guard.inner.take());
                drop(guard);
                ctl.cv_wait(tid, cv_id, lock_id);
                let g = match mx.inner.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                Ok(MutexGuard {
                    mx,
                    inner: Some(g),
                    ctl: Some((ctl, tid, lock_id)),
                })
            }
        }
    }

    /// Wake all waiters (a yield point on model threads).
    pub fn notify_all(&self) {
        match current_model() {
            None => self.inner.notify_all(),
            Some((ctl, tid)) => {
                let id = self.ensure_id(&ctl);
                ctl.yield_op(tid, Op::CvNotifyAll(id));
            }
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

/// Model atomic usize: every op is a yield point on model threads (the
/// ordering argument is ignored there — the controller serializes all
/// ops). Passthrough threads hit the real atomic with the caller's
/// ordering.
pub struct AtomicUsize {
    id: AtomicU64,
    inner: std::sync::atomic::AtomicUsize,
}

impl AtomicUsize {
    /// A new atomic; registers an object id if a controller is installed.
    pub fn new(value: usize) -> AtomicUsize {
        AtomicUsize {
            id: fresh_obj_id(),
            inner: std::sync::atomic::AtomicUsize::new(value),
        }
    }

    fn ensure_id(&self, ctl: &Controller) -> ObjId {
        let id = self.id.load(StdOrdering::SeqCst);
        if id != 0 {
            return id;
        }
        let id = ctl.alloc_obj();
        self.id.store(id, StdOrdering::SeqCst);
        id
    }

    /// Atomic load.
    pub fn load(&self, order: StdOrdering) -> usize {
        match current_model() {
            None => self.inner.load(order),
            Some((ctl, tid)) => {
                let id = self.ensure_id(&ctl);
                ctl.yield_op(tid, Op::Load(id));
                self.inner.load(StdOrdering::SeqCst)
            }
        }
    }

    /// Atomic store.
    pub fn store(&self, value: usize, order: StdOrdering) {
        match current_model() {
            None => self.inner.store(value, order),
            Some((ctl, tid)) => {
                let id = self.ensure_id(&ctl);
                ctl.yield_op(tid, Op::Store(id));
                self.inner.store(value, StdOrdering::SeqCst)
            }
        }
    }

    /// Atomic fetch-add (the engine's admission ticket).
    pub fn fetch_add(&self, value: usize, order: StdOrdering) -> usize {
        match current_model() {
            None => self.inner.fetch_add(value, order),
            Some((ctl, tid)) => {
                let id = self.ensure_id(&ctl);
                ctl.yield_op(tid, Op::Rmw(id));
                self.inner.fetch_add(value, StdOrdering::SeqCst)
            }
        }
    }
}

/// A deliberately unsynchronized shared cell for exercising the race
/// detector. Accesses are recorded (no yield) on model threads with **no**
/// happens-before edges, so two threads touching the same cell without a
/// common lock is a guaranteed `data-race` finding.
///
/// Soundness: on model threads the controller's own lock serializes every
/// access (one thread runs at a time), so the unsynchronized interior
/// access cannot actually race. Using this type outside a model run from
/// multiple threads is not supported.
pub struct UnsyncCell<T> {
    id: AtomicU64,
    value: UnsafeCell<T>,
}

// SAFETY: see type docs — model-run serialization makes cross-thread
// access data-race-free in the only supported usage.
unsafe impl<T: Send> Sync for UnsyncCell<T> {}

impl<T: Copy> UnsyncCell<T> {
    /// A new cell; registers an object id if a controller is installed.
    pub fn new(value: T) -> UnsyncCell<T> {
        UnsyncCell {
            id: fresh_obj_id(),
            value: UnsafeCell::new(value),
        }
    }

    /// Read the cell (recorded, unsynchronized).
    pub fn get(&self) -> T {
        if let Some((ctl, tid)) = current_model() {
            let id = self.id.load(StdOrdering::SeqCst);
            ctl.effect(tid, Op::Read(id));
        }
        // SAFETY: serialized by the controller in supported usage.
        unsafe { *self.value.get() }
    }

    /// Write the cell (recorded, unsynchronized).
    pub fn set(&self, value: T) {
        if let Some((ctl, tid)) = current_model() {
            let id = self.id.load(StdOrdering::SeqCst);
            ctl.effect(tid, Op::Write(id));
        }
        // SAFETY: serialized by the controller in supported usage.
        unsafe {
            *self.value.get() = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pick plan[i] at choice i, first-enabled once the plan runs out.
    struct PickPlan(Vec<usize>, usize);

    impl Decider for PickPlan {
        fn choose(&mut self, point: &ChoicePoint) -> Choice {
            let i = self.1;
            self.1 += 1;
            let pick = self.0.get(i).copied().unwrap_or(0);
            Choice::Pick(pick.min(point.enabled.len() - 1))
        }
    }

    /// Prefer any thread other than the most recently granted one.
    struct PingPong(Option<Tid>);

    impl Decider for PingPong {
        fn choose(&mut self, point: &ChoicePoint) -> Choice {
            let idx = point
                .enabled
                .iter()
                .position(|(t, _)| Some(*t) != self.0)
                .unwrap_or(0);
            self.0 = Some(point.enabled[idx].0);
            Choice::Pick(idx)
        }
    }

    fn run_model<F>(threads: usize, decider: Box<dyn Decider>, body: F) -> RunTrace
    where
        F: Fn(Tid) + Sync,
    {
        silence_schedule_aborts();
        let ctl = Arc::new(Controller::new(threads, 100_000, decider));
        let guard = install(ctl.clone());
        let body = &body;
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scope(|s| {
                let handles: Vec<_> = (0..threads).map(|t| s.spawn(move || body(t))).collect();
                for h in handles {
                    let _ = h.join();
                }
            });
        }));
        drop(guard);
        ctl.finish()
    }

    #[test]
    fn passthrough_without_controller() {
        let m = Mutex::new(0usize);
        let cv = Condvar::new();
        let a = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut g = m.lock().expect("lock");
                *g += 1;
                a.fetch_add(1, StdOrdering::SeqCst);
                cv.notify_all();
            });
            s.spawn(|| {
                let mut g = m.lock().expect("lock");
                while *g == 0 {
                    g = cv.wait(g).expect("wait");
                }
            });
        });
        assert_eq!(*m.lock().expect("lock"), 1);
        assert_eq!(a.load(StdOrdering::SeqCst), 1);
    }

    #[test]
    fn model_serializes_counter_increments() {
        let m = Mutex::new(0usize);
        let trace = run_model(3, Box::new(FirstEnabled), |_t| {
            let mut g = m.lock().expect("lock");
            *g += 1;
        });
        assert!(trace.abort.is_none(), "clean run: {:?}", trace.abort);
        assert_eq!(*m.lock().expect("lock"), 3);
        let locks = trace
            .events
            .iter()
            .filter(|e| matches!(e.op, Op::Lock(_)))
            .count();
        assert_eq!(locks, 3);
    }

    #[test]
    fn lock_order_inversion_deadlocks_under_ping_pong() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let trace = run_model(2, Box::new(PingPong(None)), |t| {
            let (first, second) = if t == 0 { (&a, &b) } else { (&b, &a) };
            let _g1 = first.lock().expect("lock");
            let _g2 = second.lock().expect("lock");
        });
        assert!(
            matches!(trace.abort, Some(Abort::Deadlock { .. })),
            "expected deadlock, got {:?}",
            trace.abort
        );
    }

    #[test]
    fn choices_replay_identically() {
        let m = Mutex::new(Vec::<usize>::new());
        let order = |plan: Vec<usize>| {
            let trace = run_model(2, Box::new(PickPlan(plan, 0)), |t| {
                m.lock().expect("lock").push(t);
                m.lock().expect("lock").push(t + 10);
            });
            assert!(trace.abort.is_none());
            let got = std::mem::take(&mut *m.lock().expect("lock"));
            (got, trace.schedule())
        };
        let (o1, s1) = order(vec![0, 0, 0, 0, 0, 0]);
        let (o2, s2) = order(s1.clone());
        assert_eq!(o1, o2, "same schedule must reproduce the same order");
        assert_eq!(s1, s2);
        let (o3, _s3) = order(vec![1, 1, 1, 1, 1, 1]);
        assert_ne!(o1, o3, "different schedule should reorder the pushes");
    }

    #[test]
    fn condvar_handoff_is_scheduled() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let trace = run_model(2, Box::new(PingPong(None)), |t| {
            if t == 0 {
                let mut g = m.lock().expect("lock");
                while !*g {
                    g = cv.wait(g).expect("wait");
                }
            } else {
                *m.lock().expect("lock") = true;
                cv.notify_all();
            }
        });
        assert!(trace.abort.is_none(), "clean run: {:?}", trace.abort);
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e.op, Op::CvWake { .. })));
    }
}
