//! Synchronization shim: the engine's entire concurrency surface.
//!
//! Every lock acquire/release, condvar wait/notify, atomic op and scoped
//! spawn in the concurrent admission engine (and `cm-sim`'s worker pool)
//! goes through the types re-exported here instead of `std::sync`
//! directly. In production builds this module is a zero-cost passthrough:
//! the names below *are* the `std` types, so there is no wrapper, no
//! branch, and no behavioural difference.
//!
//! With the `model` feature enabled the same names resolve to the
//! virtualized implementations in [`model`]: every operation becomes a
//! *yield point* routed through a cooperative scheduler
//! (`model::Controller`) that runs exactly one thread at a time, records
//! an operation trace with a virtual clock, and lets a decision procedure
//! (exhaustive DFS with sleep-set pruning, seeded random walk, or exact
//! replay — see `crates/race`) pick which thread moves at every
//! scheduling choice. Threads that are not registered with a controller
//! fall through to the real `std` primitives even under the feature, so
//! enabling `model` anywhere in the workspace does not perturb ordinary
//! tests.
//!
//! The shim is deliberately minimal: it exposes exactly what the engine
//! uses (`Mutex`, `MutexGuard`, `Condvar`, `AtomicUsize`, `Ordering`,
//! `scope`) and nothing more. New synchronization in the engine must be
//! added here first so the model checker sees it.

/// The virtualized implementations and the scheduler/trace machinery
/// (only compiled under the `model` feature).
#[cfg(feature = "model")]
pub mod model;

#[cfg(feature = "model")]
pub use model::{scope, AtomicUsize, Condvar, Mutex, MutexGuard, Scope};

#[cfg(not(feature = "model"))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(not(feature = "model"))]
pub use std::sync::atomic::AtomicUsize;

#[cfg(not(feature = "model"))]
pub use std::thread::{scope, Scope};

/// Memory ordering for shim atomics. The engine only ever uses `SeqCst`
/// (enforced by `cm-analyze`'s `atomic-ordering` rule); the model build
/// ignores the ordering argument entirely because the controller already
/// serializes every operation.
pub use std::sync::atomic::Ordering;
