//! The Tenant Application Graph (TAG) abstraction (§3 of the paper).
//!
//! A TAG is a directed graph whose vertices are application *components*
//! (tiers — sets of VMs performing the same function) and whose edges carry
//! per-VM bandwidth guarantees:
//!
//! * a directed edge `(u, v)` labelled `<S, R>` guarantees every VM in `u`
//!   bandwidth `S` for sending to `v`, and every VM in `v` bandwidth `R` for
//!   receiving from `u`;
//! * a self-loop `(u, u)` labelled `SR` is a conventional hose among the VMs
//!   of `u` (each VM gets a send hose and a receive hose of rate `SR`).
//!
//! Special *external* components model endpoints outside the tenant (the
//! Internet, a storage service, another tenant); their size is optional.
//!
//! The hose and pipe models are special cases: a TAG with one component and
//! a self-loop is the hose model; a TAG with one VM per component and no
//! self-loops is the pipe model (§3).

use crate::cut::CutModel;
use cm_topology::Kbps;
use std::fmt;

/// Identifier of a tier (component) within one [`Tag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TierId(pub u16);

impl TierId {
    /// The raw index of the tier in its TAG.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One application component (tier) of a TAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tier {
    /// Human-readable name ("web", "logic", "db", ...).
    pub name: String,
    /// Number of VMs (`N_u`). For external components `0` means
    /// "unknown/unbounded" (the paper makes size optional for them).
    pub size: u32,
    /// Whether this is a special external component (Internet, storage
    /// service, another tenant). External components hold no placeable VMs.
    pub external: bool,
}

/// A directed guarantee edge of a TAG.
///
/// For a self-loop (`from == to`) the TAG model prescribes a single value
/// `SR`; the constructor enforces `snd_kbps == rcv_kbps` in that case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagEdge {
    /// Sending tier.
    pub from: TierId,
    /// Receiving tier.
    pub to: TierId,
    /// Per-VM sending guarantee `S_e` for VMs of `from` (kbps).
    pub snd_kbps: Kbps,
    /// Per-VM receiving guarantee `R_e` for VMs of `to` (kbps).
    pub rcv_kbps: Kbps,
}

impl TagEdge {
    /// Whether this edge is a self-loop (an intra-tier hose).
    #[inline]
    pub fn is_self_loop(&self) -> bool {
        self.from == self.to
    }
}

/// Errors from TAG construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TagError {
    /// A non-external tier was declared with zero VMs.
    EmptyTier(String),
    /// An edge referenced a tier id that does not exist.
    UnknownTier(TierId),
    /// Two edges with identical (from, to) were added.
    DuplicateEdge(TierId, TierId),
    /// A self-loop was requested through `edge()`; use `self_loop()`.
    SelfLoopViaEdge(TierId),
    /// A self-loop was placed on an external component.
    ExternalSelfLoop(TierId),
    /// A TAG must contain at least one non-external tier.
    NoInternalTiers,
}

impl fmt::Display for TagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagError::EmptyTier(n) => write!(f, "tier '{n}' has zero VMs"),
            TagError::UnknownTier(t) => write!(f, "unknown tier {t}"),
            TagError::DuplicateEdge(u, v) => write!(f, "duplicate edge {u}->{v}"),
            TagError::SelfLoopViaEdge(t) => {
                write!(f, "self-loop on {t} must be added with self_loop()")
            }
            TagError::ExternalSelfLoop(t) => {
                write!(f, "external component {t} cannot carry a self-loop")
            }
            TagError::NoInternalTiers => write!(f, "TAG has no internal tiers"),
        }
    }
}

impl std::error::Error for TagError {}

/// Builder for [`Tag`] instances.
///
/// ```
/// use cm_core::model::TagBuilder;
/// use cm_topology::mbps;
///
/// // The three-tier web application of the paper's Fig. 2(a).
/// let mut b = TagBuilder::new("three-tier");
/// let web = b.tier("web", 10);
/// let logic = b.tier("logic", 10);
/// let db = b.tier("db", 10);
/// b.sym_edge(web, logic, mbps(500.0)).unwrap();   // B1
/// b.sym_edge(logic, db, mbps(100.0)).unwrap();    // B2
/// b.self_loop(db, mbps(50.0)).unwrap();           // B3
/// let tag = b.build().unwrap();
/// assert_eq!(tag.total_vms(), 30);
/// ```
#[derive(Debug, Clone)]
pub struct TagBuilder {
    name: String,
    tiers: Vec<Tier>,
    edges: Vec<TagEdge>,
}

impl TagBuilder {
    /// Start a new TAG with the given tenant/application name.
    pub fn new(name: impl Into<String>) -> Self {
        TagBuilder {
            name: name.into(),
            tiers: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add an internal tier with `size` VMs; returns its id.
    pub fn tier(&mut self, name: impl Into<String>, size: u32) -> TierId {
        let id = TierId(self.tiers.len() as u16);
        self.tiers.push(Tier {
            name: name.into(),
            size,
            external: false,
        });
        id
    }

    /// Add an external component of unknown size; returns its id.
    pub fn external(&mut self, name: impl Into<String>) -> TierId {
        let id = TierId(self.tiers.len() as u16);
        self.tiers.push(Tier {
            name: name.into(),
            size: 0,
            external: true,
        });
        id
    }

    /// Add an external component with a known size (number of endpoints).
    pub fn external_sized(&mut self, name: impl Into<String>, size: u32) -> TierId {
        let id = TierId(self.tiers.len() as u16);
        self.tiers.push(Tier {
            name: name.into(),
            size,
            external: true,
        });
        id
    }

    /// Add a directed edge `from -> to` with per-VM guarantees `<snd, rcv>`.
    pub fn edge(
        &mut self,
        from: TierId,
        to: TierId,
        snd_kbps: Kbps,
        rcv_kbps: Kbps,
    ) -> Result<&mut Self, TagError> {
        if from == to {
            return Err(TagError::SelfLoopViaEdge(from));
        }
        self.check_tier(from)?;
        self.check_tier(to)?;
        if self.edges.iter().any(|e| e.from == from && e.to == to) {
            return Err(TagError::DuplicateEdge(from, to));
        }
        self.edges.push(TagEdge {
            from,
            to,
            snd_kbps,
            rcv_kbps,
        });
        Ok(self)
    }

    /// Add a symmetric pair of edges between `u` and `v` where every VM on
    /// both sides gets the same `bw` in both roles (`S(u,v) = R(u,v) =
    /// S(v,u) = R(v,u) = bw`). This is the paper's footnote-6 shorthand for
    /// an undirected edge.
    pub fn sym_edge(&mut self, u: TierId, v: TierId, bw: Kbps) -> Result<&mut Self, TagError> {
        self.edge(u, v, bw, bw)?;
        self.edge(v, u, bw, bw)?;
        Ok(self)
    }

    /// Add a self-loop (intra-tier hose) with per-VM guarantee `SR`.
    pub fn self_loop(&mut self, t: TierId, sr_kbps: Kbps) -> Result<&mut Self, TagError> {
        self.check_tier(t)?;
        if self.tiers[t.index()].external {
            return Err(TagError::ExternalSelfLoop(t));
        }
        if self.edges.iter().any(|e| e.from == t && e.to == t) {
            return Err(TagError::DuplicateEdge(t, t));
        }
        self.edges.push(TagEdge {
            from: t,
            to: t,
            snd_kbps: sr_kbps,
            rcv_kbps: sr_kbps,
        });
        Ok(self)
    }

    fn check_tier(&self, t: TierId) -> Result<(), TagError> {
        if t.index() >= self.tiers.len() {
            return Err(TagError::UnknownTier(t));
        }
        Ok(())
    }

    /// Validate and build the TAG.
    pub fn build(self) -> Result<Tag, TagError> {
        if !self.tiers.iter().any(|t| !t.external) {
            return Err(TagError::NoInternalTiers);
        }
        for t in &self.tiers {
            if !t.external && t.size == 0 {
                return Err(TagError::EmptyTier(t.name.clone()));
            }
        }
        let mut per_vm_snd = vec![0u64; self.tiers.len()];
        let mut per_vm_rcv = vec![0u64; self.tiers.len()];
        let mut incident = vec![Vec::new(); self.tiers.len()];
        for (i, e) in self.edges.iter().enumerate() {
            per_vm_snd[e.from.index()] += e.snd_kbps;
            per_vm_rcv[e.to.index()] += e.rcv_kbps;
            incident[e.from.index()].push(i as u16);
            if !e.is_self_loop() {
                incident[e.to.index()].push(i as u16);
            }
        }
        let mut tag = Tag {
            name: self.name,
            tiers: self.tiers,
            edges: self.edges,
            per_vm_snd,
            per_vm_rcv,
            incident,
            hot: Vec::new(),
        };
        tag.rebuild_hot();
        Ok(tag)
    }
}

/// Precomputed per-edge parameters for the crossing arithmetic: everything
/// Eq. 1 needs about an edge in one flat record, so the placement inner
/// loops do not chase tier references per evaluation. Derived from
/// `tiers`/`edges` by [`Tag::rebuild_hot`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct HotEdge {
    fi: u32,
    ti: u32,
    snd: Kbps,
    rcv: Kbps,
    n_from: u32,
    n_to: u32,
    /// External with unknown size: imposes no cap on the opposite side.
    from_unbounded: bool,
    to_unbounded: bool,
    self_loop: bool,
}

/// An immutable, validated Tenant Application Graph.
///
/// See the module documentation for the semantics. `Tag` implements
/// [`CutModel`], providing the paper's Eq. 1 bandwidth requirement on any
/// subtree cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tag {
    name: String,
    tiers: Vec<Tier>,
    edges: Vec<TagEdge>,
    /// Per-VM aggregate sending guarantee per tier (Σ S_e + SR).
    per_vm_snd: Vec<Kbps>,
    /// Per-VM aggregate receiving guarantee per tier (Σ R_e + SR).
    per_vm_rcv: Vec<Kbps>,
    /// Edge indices incident to each tier (self-loops listed once).
    incident: Vec<Vec<u16>>,
    /// Flat per-edge parameters for the hot crossing path.
    hot: Vec<HotEdge>,
}

impl Tag {
    /// The tenant/application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Return a copy with a different tenant name (useful when stamping
    /// generated tenants with unique pool identifiers).
    pub fn with_name(mut self, name: impl Into<String>) -> Tag {
        self.name = name.into();
        self
    }

    /// Return a copy with tier `t` resized to `new_size` VMs — the §3/§6
    /// auto-scaling operation. Per-VM guarantees are untouched ("per-VM
    /// bandwidth guarantees S_e and R_e typically do not need to change
    /// when tier sizes are changed by scaling"); only the tier count moves.
    ///
    /// # Panics
    /// Panics when `t` is external or `new_size` is zero.
    pub fn resized(&self, t: TierId, new_size: u32) -> Tag {
        assert!(
            !self.tier(t).external,
            "cannot resize an external component"
        );
        assert!(new_size > 0, "use release instead of scaling to zero");
        let mut tag = self.clone();
        tag.tiers[t.index()].size = new_size;
        tag.rebuild_hot();
        tag
    }

    /// Recompute the flat per-edge parameter cache after tier sizes or
    /// edge rates changed.
    fn rebuild_hot(&mut self) {
        self.hot.clear();
        self.hot.extend(self.edges.iter().map(|e| {
            let from = &self.tiers[e.from.index()];
            let to = &self.tiers[e.to.index()];
            HotEdge {
                fi: e.from.0 as u32,
                ti: e.to.0 as u32,
                snd: e.snd_kbps,
                rcv: e.rcv_kbps,
                n_from: from.size,
                n_to: to.size,
                from_unbounded: from.external && from.size == 0,
                to_unbounded: to.external && to.size == 0,
                self_loop: e.is_self_loop(),
            }
        }));
    }

    /// [`Tag::edge_crossing_kbps`] by edge index over the flat parameter
    /// cache — the placement inner-loop form (no tier lookups).
    #[inline]
    pub fn edge_crossing_idx(&self, ei: usize, inside: &[u32]) -> Kbps {
        let h = &self.hot[ei];
        if h.self_loop {
            let n = h.n_from;
            let i = inside[h.fi as usize].min(n);
            2 * (i.min(n - i)) as u64 * h.snd
        } else {
            let snd_inside = inside[h.fi as usize] as u64 * h.snd;
            let rcv_outside = if h.to_unbounded {
                u64::MAX
            } else {
                (h.n_to.saturating_sub(inside[h.ti as usize])) as u64 * h.rcv
            };
            let snd_outside = if h.from_unbounded {
                u64::MAX
            } else {
                (h.n_from.saturating_sub(inside[h.fi as usize])) as u64 * h.snd
            };
            let rcv_inside = inside[h.ti as usize] as u64 * h.rcv;
            snd_inside.min(rcv_outside) + snd_outside.min(rcv_inside)
        }
    }

    /// All tiers (internal and external), indexable by [`TierId`].
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }

    /// A tier by id.
    pub fn tier(&self, t: TierId) -> &Tier {
        &self.tiers[t.index()]
    }

    /// All guarantee edges.
    pub fn edges(&self) -> &[TagEdge] {
        &self.edges
    }

    /// Tier ids of the internal (placeable) tiers.
    pub fn internal_tiers(&self) -> impl Iterator<Item = TierId> + '_ {
        self.tiers
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.external)
            .map(|(i, _)| TierId(i as u16))
    }

    /// Number of tiers, including external components.
    pub fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// Total number of placeable VMs (external components excluded).
    pub fn total_vms(&self) -> u64 {
        self.tiers
            .iter()
            .filter(|t| !t.external)
            .map(|t| t.size as u64)
            .sum()
    }

    /// The per-tier VM counts to be placed (0 for external tiers).
    pub fn placeable_counts(&self) -> Vec<u32> {
        self.tiers
            .iter()
            .map(|t| if t.external { 0 } else { t.size })
            .collect()
    }

    /// Per-VM aggregate sending guarantee of a tier: `Σ_e S_e + SR` over all
    /// outgoing edges and the self-loop.
    pub fn per_vm_snd(&self, t: TierId) -> Kbps {
        self.per_vm_snd[t.index()]
    }

    /// Per-VM aggregate receiving guarantee of a tier: `Σ_e R_e + SR`.
    pub fn per_vm_rcv(&self, t: TierId) -> Kbps {
        self.per_vm_rcv[t.index()]
    }

    /// Per-VM demand of a tier used for sizing decisions:
    /// `max(per_vm_snd, per_vm_rcv)`.
    pub fn per_vm_demand(&self, t: TierId) -> Kbps {
        self.per_vm_snd(t).max(self.per_vm_rcv(t))
    }

    /// Mean per-VM demand over all placeable VMs (`B_vm` in §5.1). Used to
    /// scale workload bandwidth so the largest tenant's `B_vm` hits `B_max`.
    pub fn avg_per_vm_demand_kbps(&self) -> f64 {
        let n = self.total_vms();
        if n == 0 {
            return 0.0;
        }
        let sum: u128 = self
            .internal_tiers()
            .map(|t| self.tier(t).size as u128 * self.per_vm_demand(t) as u128)
            .sum();
        sum as f64 / n as f64
    }

    /// Aggregate guaranteed application bandwidth, used for rejection
    /// accounting in §5.1 ("aggregate bandwidth" of a tenant):
    /// `Σ_trunk min(S_e·N_u, R_e·N_v) + Σ_self N_u·SR/2`
    /// (each intra-tier flow counted once). Edges to unbounded external
    /// components contribute their internal side's capacity.
    pub fn total_bandwidth_kbps(&self) -> Kbps {
        let mut total: u64 = 0;
        for e in &self.edges {
            if e.is_self_loop() {
                let n = self.tier(e.from).size as u64;
                total += n * e.snd_kbps / 2;
            } else {
                total += self.trunk_total(e);
            }
        }
        total
    }

    /// The total trunk bandwidth of a non-self-loop edge:
    /// `B_{u→v} = min(S_e·N_u, R_e·N_v)` (§3), treating an unbounded
    /// external side as infinite.
    pub fn trunk_total(&self, e: &TagEdge) -> Kbps {
        debug_assert!(!e.is_self_loop());
        let from = self.tier(e.from);
        let to = self.tier(e.to);
        let snd_cap = if from.external && from.size == 0 {
            u64::MAX
        } else {
            from.size as u64 * e.snd_kbps
        };
        let rcv_cap = if to.external && to.size == 0 {
            u64::MAX
        } else {
            to.size as u64 * e.rcv_kbps
        };
        let v = snd_cap.min(rcv_cap);
        if v == u64::MAX {
            0 // external-to-external edge: carries no internal guarantee
        } else {
            v
        }
    }

    /// The tenant's demand for communication with external components:
    /// `(out, in)` kbps that must cross every cut above the whole tenant.
    /// This is what `FindLowestSubtree` validates against the available
    /// bandwidth from a subtree to the root.
    pub fn external_demand_kbps(&self) -> (Kbps, Kbps) {
        let full = self.placeable_counts();
        self.cut_kbps(&full)
    }

    /// Return a copy with every bandwidth value scaled by `factor`
    /// (used for the `B_max` sweeps of §5.1). Values round to nearest kbps.
    pub fn scaled(&self, factor: f64) -> Tag {
        assert!(factor >= 0.0);
        let mut t = self.clone();
        for e in &mut t.edges {
            e.snd_kbps = (e.snd_kbps as f64 * factor).round() as Kbps;
            e.rcv_kbps = (e.rcv_kbps as f64 * factor).round() as Kbps;
        }
        for v in t.per_vm_snd.iter_mut().chain(t.per_vm_rcv.iter_mut()) {
            *v = (*v as f64 * factor).round() as Kbps;
        }
        t.rebuild_hot();
        t
    }

    /// Whether any edge touches an external component.
    pub fn has_external_edges(&self) -> bool {
        self.edges
            .iter()
            .any(|e| self.tier(e.from).external || self.tier(e.to).external)
    }

    /// The self-loop guarantee `SR` of a tier, if present.
    pub fn self_loop_of(&self, t: TierId) -> Option<Kbps> {
        self.edges
            .iter()
            .find(|e| e.from == t && e.to == t)
            .map(|e| e.snd_kbps)
    }

    /// Indices (into [`Tag::edges`]) of the edges incident to `t`
    /// (self-loops listed once).
    pub fn incident_edges(&self, t: TierId) -> &[u16] {
        &self.incident[t.index()]
    }

    /// The `(out + in)` crossing contribution of a single edge to the cut
    /// of a subtree holding `inside` VMs per tier — one term of Eq. 1.
    /// Summing over all edges reproduces `cut_kbps.0 + cut_kbps.1` exactly;
    /// the placement algorithm uses it to evaluate colocation savings in
    /// O(degree) instead of O(edges).
    pub fn edge_crossing_kbps(&self, e: &TagEdge, inside: &[u32]) -> Kbps {
        let fi = e.from.index();
        let ti = e.to.index();
        if e.is_self_loop() {
            let n = self.tiers[fi].size;
            let i = inside[fi].min(n);
            2 * (i.min(n - i)) as u64 * e.snd_kbps
        } else {
            let from = &self.tiers[fi];
            let to = &self.tiers[ti];
            let snd_inside = inside[fi] as u64 * e.snd_kbps;
            let rcv_outside = if to.external && to.size == 0 {
                u64::MAX
            } else {
                (to.size.saturating_sub(inside[ti])) as u64 * e.rcv_kbps
            };
            let snd_outside = if from.external && from.size == 0 {
                u64::MAX
            } else {
                (from.size.saturating_sub(inside[fi])) as u64 * e.snd_kbps
            };
            let rcv_inside = inside[ti] as u64 * e.rcv_kbps;
            snd_inside.min(rcv_outside) + snd_outside.min(rcv_inside)
        }
    }
}

impl CutModel for Tag {
    fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    fn tier_size(&self, t: usize) -> u32 {
        if self.tiers[t].external {
            0
        } else {
            self.tiers[t].size
        }
    }

    /// The paper's Eq. 1: the bandwidth that must be allocated on the uplink
    /// of a subtree containing `inside[t]` VMs of each tier, per direction.
    ///
    /// * trunk term (t ≠ t'): `min(N^t_X·S_e, (N^{t'}−N^{t'}_X)·R_e)` for
    ///   outgoing, and symmetrically for incoming;
    /// * hose term (self-loops): `min(N^t_X, N^t−N^t_X)·SR` in each
    ///   direction.
    ///
    /// External components always sit outside the subtree; an unbounded
    /// external side imposes no receive/send cap (the `min` collapses to the
    /// internal side's term).
    fn cut_kbps(&self, inside: &[u32]) -> (Kbps, Kbps) {
        debug_assert_eq!(inside.len(), self.tiers.len());
        let mut out: u64 = 0;
        let mut inc: u64 = 0;
        for h in &self.hot {
            let fi = h.fi as usize;
            let ti = h.ti as usize;
            if h.self_loop {
                let n = h.n_from;
                let i = inside[fi].min(n);
                let x = (i.min(n - i)) as u64 * h.snd;
                out += x;
                inc += x;
            } else {
                // Outgoing: senders inside `from`, receivers outside `to`.
                let snd_inside = inside[fi] as u64 * h.snd;
                let rcv_outside = if h.to_unbounded {
                    u64::MAX
                } else {
                    (h.n_to.saturating_sub(inside[ti])) as u64 * h.rcv
                };
                out += snd_inside.min(rcv_outside);
                // Incoming: senders outside `from`, receivers inside `to`.
                let snd_outside = if h.from_unbounded {
                    u64::MAX
                } else {
                    (h.n_from.saturating_sub(inside[fi])) as u64 * h.snd
                };
                let rcv_inside = inside[ti] as u64 * h.rcv;
                inc += snd_outside.min(rcv_inside);
            }
        }
        (out, inc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_topology::mbps;

    /// The paper's Fig. 5(a): two tiers C1, C2; edge C1->C2 <B1,B2>; C2 has
    /// a self-loop B2_in.
    fn fig5(n1: u32, n2: u32, b1: Kbps, b2: Kbps, b2in: Kbps) -> Tag {
        let mut b = TagBuilder::new("fig5");
        let c1 = b.tier("C1", n1);
        let c2 = b.tier("C2", n2);
        b.edge(c1, c2, b1, b2).unwrap();
        b.self_loop(c2, b2in).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_validates() {
        let mut b = TagBuilder::new("bad");
        let t = b.tier("a", 0);
        b.self_loop(t, 100).unwrap();
        assert_eq!(b.build().unwrap_err(), TagError::EmptyTier("a".into()));

        let mut b = TagBuilder::new("dup");
        let u = b.tier("u", 1);
        let v = b.tier("v", 1);
        b.edge(u, v, 1, 1).unwrap();
        assert_eq!(
            b.edge(u, v, 2, 2).unwrap_err(),
            TagError::DuplicateEdge(u, v)
        );

        let mut b = TagBuilder::new("self-via-edge");
        let u = b.tier("u", 1);
        assert_eq!(
            b.edge(u, u, 1, 1).unwrap_err(),
            TagError::SelfLoopViaEdge(u)
        );

        let mut b = TagBuilder::new("ext-loop");
        let _u = b.tier("u", 1);
        let x = b.external("net");
        assert_eq!(
            b.self_loop(x, 1).unwrap_err(),
            TagError::ExternalSelfLoop(x)
        );

        let mut b = TagBuilder::new("only-ext");
        b.external("net");
        assert_eq!(b.build().unwrap_err(), TagError::NoInternalTiers);

        let mut b = TagBuilder::new("unknown");
        let u = b.tier("u", 1);
        assert_eq!(
            b.edge(u, TierId(9), 1, 1).unwrap_err(),
            TagError::UnknownTier(TierId(9))
        );
    }

    #[test]
    fn trunk_total_is_min_of_sides() {
        // B_{u→v} = min(S·N_u, R·N_v): 4 senders at 100 vs 2 receivers at 150.
        let tag = fig5(4, 2, 100, 150, 0);
        let e = &tag.edges()[0];
        assert_eq!(tag.trunk_total(e), 300); // min(400, 300)
    }

    #[test]
    fn cut_empty_and_full_subtree_need_only_external() {
        let tag = fig5(4, 4, 100, 100, 50);
        let zero = vec![0, 0];
        assert_eq!(tag.cut_kbps(&zero), (0, 0));
        let full = vec![4, 4];
        // Whole tenant inside: nothing crosses (no external components).
        assert_eq!(tag.cut_kbps(&full), (0, 0));
    }

    #[test]
    fn cut_matches_eq1_by_hand() {
        // Fig. 5: C1 (4 VMs, S=100 to C2), C2 (4 VMs, R=100, self 50).
        let tag = fig5(4, 4, 100, 100, 50);
        // Subtree holds 2 VMs of C1 and 1 VM of C2.
        let inside = vec![2, 1];
        // out: trunk min(2*100, (4-1)*100)=200 ; hose min(1, 3)*50 = 50.
        // in : trunk min((4-2)*100, 1*100)=100 ; hose 50.
        assert_eq!(tag.cut_kbps(&inside), (250, 150));
    }

    #[test]
    fn hose_term_peaks_at_half() {
        let mut b = TagBuilder::new("hose");
        let t = b.tier("t", 10);
        b.self_loop(t, 100).unwrap();
        let tag = b.build().unwrap();
        let cut = |i: u32| tag.cut_kbps(&[i]).0;
        assert_eq!(cut(0), 0);
        assert_eq!(cut(3), 300);
        assert_eq!(cut(5), 500); // peak at N/2
        assert_eq!(cut(7), 300);
        assert_eq!(cut(10), 0);
    }

    #[test]
    fn external_edges_cross_every_cut() {
        let mut b = TagBuilder::new("ext");
        let web = b.tier("web", 8);
        let net = b.external("internet");
        b.edge(web, net, mbps(10.0), mbps(10.0)).unwrap();
        b.edge(net, web, mbps(5.0), mbps(20.0)).unwrap();
        let tag = b.build().unwrap();
        let full = tag.placeable_counts();
        // All 8 web VMs inside: out = 8*10M (no external receive cap),
        // in = 8*20M (no external send cap).
        assert_eq!(tag.cut_kbps(&full), (mbps(80.0), mbps(160.0)));
        assert_eq!(tag.external_demand_kbps(), (mbps(80.0), mbps(160.0)));
        assert!(tag.has_external_edges());
    }

    #[test]
    fn external_with_known_size_caps_the_min() {
        let mut b = TagBuilder::new("ext-sized");
        let web = b.tier("web", 8);
        let store = b.external_sized("storage", 2);
        b.edge(web, store, mbps(10.0), mbps(15.0)).unwrap();
        let tag = b.build().unwrap();
        let full = tag.placeable_counts();
        // out = min(8*10M, 2*15M) = 30M.
        assert_eq!(tag.cut_kbps(&full).0, mbps(30.0));
    }

    #[test]
    fn per_vm_aggregates() {
        let tag = fig5(4, 4, 100, 150, 50);
        assert_eq!(tag.per_vm_snd(TierId(0)), 100);
        assert_eq!(tag.per_vm_rcv(TierId(0)), 0);
        assert_eq!(tag.per_vm_snd(TierId(1)), 50);
        assert_eq!(tag.per_vm_rcv(TierId(1)), 200);
        assert_eq!(tag.per_vm_demand(TierId(1)), 200);
        // avg over 8 VMs: (4*100 + 4*200)/8 = 150.
        assert!((tag.avg_per_vm_demand_kbps() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn total_bandwidth_counts_trunks_and_half_self() {
        let tag = fig5(4, 4, 100, 100, 50);
        // trunk min(400,400)=400 ; self 4*50/2 = 100.
        assert_eq!(tag.total_bandwidth_kbps(), 500);
    }

    #[test]
    fn scaled_multiplies_everything() {
        let tag = fig5(4, 4, 100, 100, 50).scaled(2.5);
        assert_eq!(tag.edges()[0].snd_kbps, 250);
        assert_eq!(tag.self_loop_of(TierId(1)), Some(125));
        assert_eq!(tag.per_vm_rcv(TierId(1)), 375);
    }

    #[test]
    fn edge_crossing_idx_matches_reference_form() {
        // The flat hot-edge cache must price exactly like the
        // reference implementation, including after resize/scale (which
        // rebuild it).
        let tags = [
            fig5(4, 4, 100, 100, 50),
            fig5(3, 7, 120, 40, 0).scaled(1.7),
            fig5(5, 2, 10, 90, 30).resized(TierId(0), 9),
        ];
        for tag in &tags {
            let n = tag.num_tiers();
            let mut inside = vec![0u32; n];
            for step in 0..40u32 {
                for (t, c) in inside.iter_mut().enumerate() {
                    *c = (step.wrapping_mul(7 + t as u32)) % (tag.tier_size(t) + 1);
                }
                for (ei, e) in tag.edges().iter().enumerate() {
                    assert_eq!(
                        tag.edge_crossing_idx(ei, &inside),
                        tag.edge_crossing_kbps(e, &inside),
                        "edge {ei}, inside {inside:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sym_edge_adds_both_directions() {
        let mut b = TagBuilder::new("sym");
        let u = b.tier("u", 2);
        let v = b.tier("v", 3);
        b.sym_edge(u, v, 100).unwrap();
        let tag = b.build().unwrap();
        assert_eq!(tag.edges().len(), 2);
        assert_eq!(tag.cut_kbps(&[2, 0]), (200, 200));
    }
}
