//! The pipe model (§2.2): pairwise VM-to-VM bandwidth guarantees.
//!
//! Each ordered VM pair may carry a fixed "virtual pipe". The model prices a
//! cut exactly (a pipe crosses a subtree's uplink iff exactly one endpoint is
//! inside), which makes idealized pipe models fundamentally more
//! bandwidth-efficient than TAG — but rigid (no statistical multiplexing)
//! and tedious: a tenant of `N` VMs needs up to `N(N−1)` values, and
//! placement over pipes is what makes SecondNet-style algorithms slow
//! (§5.1).
//!
//! The paper evaluates pipes by "dividing each hose and trunk guarantee
//! uniformly across the corresponding pipes" of the TAG model
//! ([`PipeModel::from_tag_idealized`]).

use crate::cut::CutModel;
use crate::model::tag::Tag;
use cm_topology::Kbps;

/// A pipe-model tenant: `n` VMs and a sparse list of directed pipes.
///
/// As a [`CutModel`], every VM is its own size-1 tier, so `inside[i]` is 0
/// or 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeModel {
    n: u32,
    /// Directed pipes `(src, dst, kbps)`, `src != dst`, at most one per pair.
    pipes: Vec<(u32, u32, Kbps)>,
    /// Outgoing adjacency per VM, for O(inside·degree) cut evaluation.
    out_adj: Vec<Vec<(u32, Kbps)>>,
    /// Incoming adjacency per VM.
    in_adj: Vec<Vec<(u32, Kbps)>>,
}

/// Errors from pipe-model construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeError {
    /// An endpoint index was out of range.
    BadEndpoint(u32),
    /// A pipe had identical endpoints.
    SelfPipe(u32),
    /// Two pipes share the same (src, dst).
    DuplicatePipe(u32, u32),
}

impl std::fmt::Display for PipeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipeError::BadEndpoint(v) => write!(f, "VM index {v} out of range"),
            PipeError::SelfPipe(v) => write!(f, "pipe from VM {v} to itself"),
            PipeError::DuplicatePipe(s, d) => write!(f, "duplicate pipe {s}->{d}"),
        }
    }
}

impl std::error::Error for PipeError {}

impl PipeModel {
    /// Build a pipe model over `n` VMs from directed `(src, dst, kbps)`
    /// entries.
    pub fn new(n: u32, pipes: Vec<(u32, u32, Kbps)>) -> Result<PipeModel, PipeError> {
        let mut seen = std::collections::HashSet::new();
        for &(s, d, _) in &pipes {
            if s >= n {
                return Err(PipeError::BadEndpoint(s));
            }
            if d >= n {
                return Err(PipeError::BadEndpoint(d));
            }
            if s == d {
                return Err(PipeError::SelfPipe(s));
            }
            if !seen.insert((s, d)) {
                return Err(PipeError::DuplicatePipe(s, d));
            }
        }
        Ok(Self::with_adjacency(n, pipes))
    }

    fn with_adjacency(n: u32, pipes: Vec<(u32, u32, Kbps)>) -> PipeModel {
        // Count degrees first so every adjacency vector is allocated once
        // at its exact size — the conversion of a dense tenant pushes tens
        // of thousands of entries, and reallocation used to dominate it.
        let mut out_deg = vec![0u32; n as usize];
        let mut in_deg = vec![0u32; n as usize];
        for &(s, d, _) in &pipes {
            out_deg[s as usize] += 1;
            in_deg[d as usize] += 1;
        }
        let mut out_adj: Vec<Vec<(u32, Kbps)>> = out_deg
            .iter()
            .map(|&d| Vec::with_capacity(d as usize))
            .collect();
        let mut in_adj: Vec<Vec<(u32, Kbps)>> = in_deg
            .iter()
            .map(|&d| Vec::with_capacity(d as usize))
            .collect();
        for &(s, d, bw) in &pipes {
            out_adj[s as usize].push((d, bw));
            in_adj[d as usize].push((s, bw));
        }
        PipeModel {
            n,
            pipes,
            out_adj,
            in_adj,
        }
    }

    /// Pipes leaving `vm` as `(dst, kbps)` pairs.
    pub fn pipes_from(&self, vm: u32) -> &[(u32, Kbps)] {
        &self.out_adj[vm as usize]
    }

    /// Pipes entering `vm` as `(src, kbps)` pairs.
    pub fn pipes_to(&self, vm: u32) -> &[(u32, Kbps)] {
        &self.in_adj[vm as usize]
    }

    /// Number of VMs.
    pub fn num_vms(&self) -> u32 {
        self.n
    }

    /// The directed pipes.
    pub fn pipes(&self) -> &[(u32, u32, Kbps)] {
        &self.pipes
    }

    /// Total demand of a VM as `(send, receive)` kbps.
    pub fn vm_demand(&self, vm: u32) -> (Kbps, Kbps) {
        let s = self.out_adj[vm as usize].iter().map(|&(_, bw)| bw).sum();
        let r = self.in_adj[vm as usize].iter().map(|&(_, bw)| bw).sum();
        (s, r)
    }

    /// The paper's §5.1 idealized conversion from a TAG: every trunk total
    /// `B_{u→v} = min(S·N_u, R·N_v)` is divided uniformly over the
    /// `N_u × N_v` pipes, and every self-loop's aggregate `N·SR` over the
    /// `N(N−1)` intra-tier ordered pairs. Guarantees to external components
    /// cannot be expressed as pipes and are dropped (the bing-style tenants
    /// the paper converts have none).
    ///
    /// Division rounds to nearest kbps, which is the "idealized" part: the
    /// resulting pipes assume perfectly uniform load balancing (§2.2 argues
    /// a realistic pipe model must instead provision each pipe for its peak).
    pub fn from_tag_idealized(tag: &Tag) -> PipeModel {
        // Assign VM index ranges per internal tier.
        let mut offset = vec![u32::MAX; tag.num_tiers()];
        let mut n: u32 = 0;
        for t in tag.internal_tiers() {
            offset[t.index()] = n;
            n += tag.tier(t).size;
        }
        // Upper bound on the pipe count (entries skipped for rounding to
        // zero only make this an overestimate): one exact allocation.
        let mut cap = 0usize;
        for e in tag.edges() {
            if offset[e.from.index()] == u32::MAX || offset[e.to.index()] == u32::MAX {
                continue;
            }
            let nu = tag.tier(e.from).size as usize;
            let nv = tag.tier(e.to).size as usize;
            cap += if e.is_self_loop() {
                nu.saturating_sub(1) * nu
            } else {
                nu * nv
            };
        }
        let mut pipes = Vec::with_capacity(cap);
        for e in tag.edges() {
            let fi = e.from.index();
            let ti = e.to.index();
            if offset[fi] == u32::MAX || offset[ti] == u32::MAX {
                continue; // external edge: not expressible as pipes
            }
            let nu = tag.tier(e.from).size;
            let nv = tag.tier(e.to).size;
            if e.is_self_loop() {
                if nu < 2 {
                    continue;
                }
                let total = nu as u64 * e.snd_kbps;
                let per = (total as f64 / (nu as u64 * (nu - 1) as u64) as f64).round() as Kbps;
                if per == 0 {
                    continue;
                }
                for i in 0..nu {
                    for j in 0..nu {
                        if i != j {
                            pipes.push((offset[fi] + i, offset[fi] + j, per));
                        }
                    }
                }
            } else {
                let total = tag.trunk_total(e);
                let per = (total as f64 / (nu as u64 * nv as u64) as f64).round() as Kbps;
                if per == 0 {
                    continue;
                }
                for i in 0..nu {
                    for j in 0..nv {
                        pipes.push((offset[fi] + i, offset[ti] + j, per));
                    }
                }
            }
        }
        Self::with_adjacency(n, pipes)
    }
}

impl CutModel for PipeModel {
    fn num_tiers(&self) -> usize {
        self.n as usize
    }

    fn tier_size(&self, _t: usize) -> u32 {
        1
    }

    fn cut_kbps(&self, inside: &[u32]) -> (Kbps, Kbps) {
        debug_assert_eq!(inside.len(), self.n as usize);
        // Iterate only the inside VMs' adjacency: a pipe crosses the cut iff
        // exactly one endpoint is inside.
        let mut out = 0;
        let mut inc = 0;
        for (vm, &i) in inside.iter().enumerate() {
            if i == 0 {
                continue;
            }
            for &(dst, bw) in &self.out_adj[vm] {
                if inside[dst as usize] == 0 {
                    out += bw;
                }
            }
            for &(src, bw) in &self.in_adj[vm] {
                if inside[src as usize] == 0 {
                    inc += bw;
                }
            }
        }
        (out, inc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TagBuilder;

    #[test]
    fn construction_validates() {
        assert_eq!(
            PipeModel::new(2, vec![(0, 2, 5)]).unwrap_err(),
            PipeError::BadEndpoint(2)
        );
        assert_eq!(
            PipeModel::new(2, vec![(1, 1, 5)]).unwrap_err(),
            PipeError::SelfPipe(1)
        );
        assert_eq!(
            PipeModel::new(2, vec![(0, 1, 5), (0, 1, 7)]).unwrap_err(),
            PipeError::DuplicatePipe(0, 1)
        );
    }

    #[test]
    fn cut_counts_crossing_pipes_exactly() {
        let p = PipeModel::new(3, vec![(0, 1, 10), (1, 2, 20), (2, 0, 40)]).unwrap();
        // {0} inside: out 0->1 =10 ; in 2->0 = 40.
        assert_eq!(p.cut_kbps(&[1, 0, 0]), (10, 40));
        // {0,1}: out 1->2 = 20; in 2->0 = 40.
        assert_eq!(p.cut_kbps(&[1, 1, 0]), (20, 40));
        // all inside: nothing crosses.
        assert_eq!(p.cut_kbps(&[1, 1, 1]), (0, 0));
    }

    #[test]
    fn from_tag_divides_trunks_uniformly() {
        let mut b = TagBuilder::new("t");
        let u = b.tier("u", 2);
        let v = b.tier("v", 4);
        b.edge(u, v, 400, 300).unwrap();
        let tag = b.build().unwrap();
        let p = PipeModel::from_tag_idealized(&tag);
        assert_eq!(p.num_vms(), 6);
        // trunk total = min(2*400, 4*300) = 800 over 8 pipes = 100 each.
        assert_eq!(p.pipes().len(), 8);
        assert!(p.pipes().iter().all(|&(_, _, bw)| bw == 100));
        // Per-VM demand: each u VM sends 4*100 = 400.
        assert_eq!(p.vm_demand(0), (400, 0));
        assert_eq!(p.vm_demand(2), (0, 200));
    }

    #[test]
    fn from_tag_divides_self_loops() {
        let mut b = TagBuilder::new("t");
        let u = b.tier("u", 4);
        b.self_loop(u, 300).unwrap();
        let tag = b.build().unwrap();
        let p = PipeModel::from_tag_idealized(&tag);
        // aggregate 4*300 over 12 ordered pairs = 100 per pipe.
        assert_eq!(p.pipes().len(), 12);
        assert!(p.pipes().iter().all(|&(_, _, bw)| bw == 100));
    }

    #[test]
    fn idealized_pipe_cut_never_exceeds_tag_cut() {
        // Pipes are fundamentally more efficient (§5.1): on any cut the
        // idealized pipes reserve at most what TAG reserves.
        let mut b = TagBuilder::new("t");
        let u = b.tier("u", 3);
        let v = b.tier("v", 3);
        b.edge(u, v, 100, 100).unwrap();
        b.self_loop(v, 90).unwrap();
        let tag = b.build().unwrap();
        let p = PipeModel::from_tag_idealized(&tag);
        // Compare cut for subtree holding 2 u-VMs and 1 v-VM.
        let tag_cut = tag.cut_kbps(&[2, 1]);
        let pipe_cut = p.cut_kbps(&[1, 1, 0, 1, 0, 0]);
        assert!(pipe_cut.0 <= tag_cut.0 && pipe_cut.1 <= tag_cut.1);
    }

    #[test]
    fn singleton_tier_tag_equals_pipe_special_case() {
        // §3: a TAG with one VM per component and no self-loops IS the pipe
        // model. Check the cuts agree on every subset.
        let mut b = TagBuilder::new("t");
        let a = b.tier("a", 1);
        let c = b.tier("b", 1);
        let d = b.tier("c", 1);
        b.edge(a, c, 10, 10).unwrap();
        b.edge(c, d, 20, 20).unwrap();
        b.edge(d, a, 40, 40).unwrap();
        let tag = b.build().unwrap();
        let p = PipeModel::from_tag_idealized(&tag);
        for mask in 0u32..8 {
            let inside: Vec<u32> = (0..3).map(|i| (mask >> i) & 1).collect();
            assert_eq!(tag.cut_kbps(&inside), p.cut_kbps(&inside));
        }
    }
}
