//! Tenant network-abstraction models.
//!
//! * [`Tag`] — the paper's contribution: the Tenant Application Graph (§3).
//! * [`VocModel`](crate::model::VocModel) — generalized Virtual Oversubscribed Cluster and the VC
//!   (generalized hose) special case, used as baselines (§2.2).
//! * [`PipeModel`](crate::model::PipeModel) — pairwise VM-to-VM pipes (§2.2).
//!
//! All models implement [`crate::cut::CutModel`] so that a single placement
//! and reservation machinery serves every abstraction.

mod pipe;
mod tag;
mod voc;

pub use pipe::{PipeError, PipeModel};
pub use tag::{Tag, TagBuilder, TagEdge, TagError, Tier, TierId};
pub use voc::{VocCluster, VocModel};
