//! The (generalized) Virtual Oversubscribed Cluster model (§2.2, footnote 7).
//!
//! VOC (Ballani et al., Oktopus) organizes VMs into clusters, each an
//! internal hose of per-VM bandwidth `B_c`, with the clusters joined through
//! per-cluster oversubscribed trunks. Following the paper we use a
//! *generalized* VOC: every cluster may have its own size, hose bandwidth
//! and inter-cluster (core) per-VM send/receive guarantees.
//!
//! The defining shortcoming that the paper demonstrates — and that this
//! implementation preserves — is aggregation: VOC folds all of a VM's
//! inter-cluster requirements into a single core hose, so the model cannot
//! see which *specific* clusters communicate. Its cut price (footnote 7) is
//! therefore always ≥ the TAG cut price for the same placement.

use crate::cut::CutModel;
use crate::model::tag::Tag;
use cm_topology::Kbps;

/// One cluster of a (generalized) VOC model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VocCluster {
    /// Cluster name (mirrors the TAG tier it models, where applicable).
    pub name: String,
    /// Number of VMs `S_c`.
    pub size: u32,
    /// Intra-cluster hose guarantee per VM (`B_c`).
    pub hose_kbps: Kbps,
    /// Per-VM aggregate *inter-cluster* send guarantee (`s_c`).
    pub core_snd_kbps: Kbps,
    /// Per-VM aggregate *inter-cluster* receive guarantee (`r_c`).
    pub core_rcv_kbps: Kbps,
}

/// A generalized VOC tenant model.
///
/// Implements [`CutModel`] with the paper's footnote-7 formula:
///
/// ```text
/// C_out(X) = min( Σ_t N^t_X·s_t , Σ_t' (N^t'−N^t'_X)·r_t' + ext_rcv )
///          + Σ_t min(N^t_X, N^t−N^t_X)·B_t
/// ```
///
/// and symmetrically for the incoming direction. `ext_snd`/`ext_rcv` carry
/// the tenant's demand towards external components (always outside any
/// subtree); `u64::MAX` encodes an unbounded external side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VocModel {
    clusters: Vec<VocCluster>,
    /// Aggregate send capacity of external endpoints (they are always
    /// outside the cut, so they add to the *receive-from-outside* budget of
    /// the incoming direction).
    ext_snd_kbps: Kbps,
    /// Aggregate receive capacity of external endpoints.
    ext_rcv_kbps: Kbps,
}

impl VocModel {
    /// Build a VOC model directly from clusters (no external demand).
    pub fn new(clusters: Vec<VocCluster>) -> VocModel {
        VocModel {
            clusters,
            ext_snd_kbps: 0,
            ext_rcv_kbps: 0,
        }
    }

    /// Build a classic homogeneous Oktopus VOC: `k` clusters of `size` VMs,
    /// per-VM hose `b`, and oversubscription factor `o ≥ 1` (each VM's core
    /// guarantee is `b/o`, so a cluster's trunk carries `size·b/o`).
    pub fn homogeneous(k: usize, size: u32, b_kbps: Kbps, oversub: f64) -> VocModel {
        assert!(oversub >= 1.0, "oversubscription factor must be >= 1");
        let core = (b_kbps as f64 / oversub).round() as Kbps;
        VocModel::new(
            (0..k)
                .map(|i| VocCluster {
                    name: format!("c{i}"),
                    size,
                    hose_kbps: b_kbps,
                    core_snd_kbps: core,
                    core_rcv_kbps: core,
                })
                .collect(),
        )
    }

    /// Model a TAG tenant as a generalized VOC, the §5 evaluation mapping
    /// ("we consider each service as corresponding to a component/tier in
    /// the TAG model and to a cluster in the VOC model").
    ///
    /// Each tier becomes a cluster; its self-loop becomes the cluster hose;
    /// all its inter-tier guarantees are *aggregated* into the per-VM core
    /// send/receive values (this aggregation is precisely what loses the
    /// communication structure). Guarantees to external components join the
    /// core aggregates, with the external sides accumulated separately.
    pub fn from_tag(tag: &Tag) -> VocModel {
        let n = tag.num_tiers();
        let mut clusters = Vec::new();
        let mut ext_snd: u64 = 0;
        let mut ext_rcv: u64 = 0;
        let mut core_snd = vec![0u64; n];
        let mut core_rcv = vec![0u64; n];
        let mut hose = vec![0u64; n];
        for e in tag.edges() {
            if e.is_self_loop() {
                hose[e.from.index()] += e.snd_kbps;
            } else {
                core_snd[e.from.index()] += e.snd_kbps;
                core_rcv[e.to.index()] += e.rcv_kbps;
            }
        }
        for (i, tier) in tag.tiers().iter().enumerate() {
            if tier.external {
                // External endpoints' own capacities: unbounded size ⇒ MAX.
                if tier.size == 0 {
                    if core_snd[i] > 0 {
                        ext_snd = u64::MAX;
                    }
                    if core_rcv[i] > 0 {
                        ext_rcv = u64::MAX;
                    }
                } else {
                    ext_snd = ext_snd.saturating_add(tier.size as u64 * core_snd[i]);
                    ext_rcv = ext_rcv.saturating_add(tier.size as u64 * core_rcv[i]);
                }
            } else {
                clusters.push(VocCluster {
                    name: tier.name.clone(),
                    size: tier.size,
                    hose_kbps: hose[i],
                    core_snd_kbps: core_snd[i],
                    core_rcv_kbps: core_rcv[i],
                });
            }
        }
        VocModel {
            clusters,
            ext_snd_kbps: ext_snd,
            ext_rcv_kbps: ext_rcv,
        }
    }

    /// Model a TAG tenant as a generalized *hose* (the paper's VC baseline):
    /// a single virtual switch where each VM's hose aggregates *all* of its
    /// guarantees, intra- and inter-tier alike. This is `VOC` with all
    /// traffic pushed into the core and no intra-cluster hoses.
    pub fn vc_from_tag(tag: &Tag) -> VocModel {
        let mut voc = VocModel::from_tag(tag);
        for c in &mut voc.clusters {
            // Self-loop traffic also traverses the central virtual switch in
            // the hose model, so it joins the core aggregate.
            c.core_snd_kbps += c.hose_kbps;
            c.core_rcv_kbps += c.hose_kbps;
            c.hose_kbps = 0;
        }
        voc
    }

    /// The clusters of this model.
    pub fn clusters(&self) -> &[VocCluster] {
        &self.clusters
    }
}

impl CutModel for VocModel {
    fn num_tiers(&self) -> usize {
        self.clusters.len()
    }

    fn tier_size(&self, t: usize) -> u32 {
        self.clusters[t].size
    }

    fn cut_kbps(&self, inside: &[u32]) -> (Kbps, Kbps) {
        debug_assert_eq!(inside.len(), self.clusters.len());
        let mut snd_in: u64 = 0; // aggregate core send of inside VMs
        let mut rcv_in: u64 = 0;
        let mut snd_out: u64 = self.ext_snd_kbps;
        let mut rcv_out: u64 = self.ext_rcv_kbps;
        let mut hose: u64 = 0;
        for (c, &i) in self.clusters.iter().zip(inside.iter()) {
            let i = i.min(c.size);
            let o = c.size - i;
            snd_in += i as u64 * c.core_snd_kbps;
            rcv_in += i as u64 * c.core_rcv_kbps;
            snd_out = snd_out.saturating_add(o as u64 * c.core_snd_kbps);
            rcv_out = rcv_out.saturating_add(o as u64 * c.core_rcv_kbps);
            hose += (i.min(o)) as u64 * c.hose_kbps;
        }
        let out = snd_in.min(rcv_out) + hose;
        let inc = snd_out.min(rcv_in) + hose;
        (out, inc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TagBuilder;

    /// The Storm application of the paper's Fig. 3(a): Spout1 -> Bolt1,
    /// Spout1 -> Bolt2, Bolt2 -> Bolt3, each component `s` VMs, per-VM
    /// outgoing bandwidth `b` per communicating pair.
    pub fn storm(s: u32, b: Kbps) -> Tag {
        let mut t = TagBuilder::new("storm");
        let spout1 = t.tier("spout1", s);
        let bolt1 = t.tier("bolt1", s);
        let bolt2 = t.tier("bolt2", s);
        let bolt3 = t.tier("bolt3", s);
        t.edge(spout1, bolt1, b, b).unwrap();
        t.edge(spout1, bolt2, b, b).unwrap();
        t.edge(bolt2, bolt3, b, b).unwrap();
        t.build().unwrap()
    }

    #[test]
    fn from_tag_aggregates_per_vm_core() {
        let tag = storm(10, 100);
        let voc = VocModel::from_tag(&tag);
        assert_eq!(voc.clusters().len(), 4);
        // Spout1 sends to two components: s_c = 2B (Fig. 3(b)).
        assert_eq!(voc.clusters()[0].core_snd_kbps, 200);
        assert_eq!(voc.clusters()[0].core_rcv_kbps, 0);
        // Bolt2 receives from spout1 and sends to bolt3.
        assert_eq!(voc.clusters()[2].core_snd_kbps, 100);
        assert_eq!(voc.clusters()[2].core_rcv_kbps, 100);
        // No self-loops → no cluster hoses.
        assert!(voc.clusters().iter().all(|c| c.hose_kbps == 0));
    }

    #[test]
    fn fig3_voc_reserves_double_on_the_split() {
        // Fig. 3(c): {Spout1, Bolt1} in one branch, {Bolt2, Bolt3} in the
        // other. Only Spout1→Bolt2 crosses: TAG needs S·B; VOC needs
        // min(3S·B, 2S·B) = 2S·B — twice as much.
        let s = 10;
        let b = 100;
        let tag = storm(s, b);
        let voc = VocModel::from_tag(&tag);
        let inside = vec![s, s, 0, 0]; // spout1 + bolt1 in the subtree
        let (tag_out, _) = tag.cut_kbps(&inside);
        let (voc_out, _) = voc.cut_kbps(&inside);
        assert_eq!(tag_out, (s as u64) * b); // S·B
        assert_eq!(voc_out, 2 * (s as u64) * b); // 2S·B
    }

    #[test]
    fn voc_cut_dominates_tag_cut() {
        let tag = storm(7, 130);
        let voc = VocModel::from_tag(&tag);
        // Exhaustive small check (property test covers the general case).
        for a in 0..=7u32 {
            for b in 0..=7u32 {
                for c in 0..=7u32 {
                    let inside = vec![a, b, c, 3];
                    let (to, ti) = tag.cut_kbps(&inside);
                    let (vo, vi) = voc.cut_kbps(&inside);
                    assert!(to <= vo && ti <= vi, "TAG must never exceed VOC");
                }
            }
        }
    }

    #[test]
    fn homogeneous_voc_oversubscription() {
        let voc = VocModel::homogeneous(3, 10, 1000, 4.0);
        assert_eq!(voc.clusters()[0].core_snd_kbps, 250);
        // One full cluster inside: hose term is 0 (min(10,0)),
        // core out = min(10*250, 20*250) = 2500 = S·B/O.
        assert_eq!(voc.cut_kbps(&[10, 0, 0]).0, 2500);
        // Half a cluster inside: hose min(5,5)*1000 = 5000 + core 5*250.
        assert_eq!(voc.cut_kbps(&[5, 0, 0]).0, 5000 + 1250);
    }

    #[test]
    fn vc_folds_everything_into_one_hose() {
        let mut b = TagBuilder::new("t");
        let u = b.tier("u", 4);
        b.self_loop(u, 100).unwrap();
        let tag = b.build().unwrap();
        let vc = VocModel::vc_from_tag(&tag);
        // VC: per-VM hose 100 via the central switch; 2 VMs inside:
        // out = min(2*100, 2*100) = 200 (vs TAG hose min(2,2)*100 = 200 too
        // for a pure hose tenant — identical, as hose is a TAG special case).
        assert_eq!(vc.cut_kbps(&[2]), tag.cut_kbps(&[2]));
    }

    #[test]
    fn external_demand_joins_core() {
        let mut b = TagBuilder::new("t");
        let u = b.tier("u", 4);
        let x = b.external_sized("store", 2);
        b.edge(u, x, 100, 300).unwrap();
        let tag = b.build().unwrap();
        let voc = VocModel::from_tag(&tag);
        // 4 VMs inside: out = min(4*100, ext_rcv 2*300) = 400.
        assert_eq!(voc.cut_kbps(&[4]).0, 400);
        // Unbounded external: min collapses to the inside term.
        let mut b = TagBuilder::new("t2");
        let u = b.tier("u", 4);
        let x = b.external("inet");
        b.edge(u, x, 100, 300).unwrap();
        let voc = VocModel::from_tag(&b.build().unwrap());
        assert_eq!(voc.cut_kbps(&[4]).0, 400);
        assert_eq!(voc.cut_kbps(&[2]).0, 200);
    }
}
