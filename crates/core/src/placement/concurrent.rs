//! Sharded concurrent admission with a sequence-numbered optimistic
//! commit protocol.
//!
//! The serial engine admits one tenant at a time against one global
//! [`Topology`]. This module admits a *fixed event sequence* (arrivals and
//! departures) with several worker threads while producing **bit-identical
//! decisions** to the serial engine — the property the stress tests assert
//! and the only sane contract for an admission controller whose results
//! feed deterministic experiments.
//!
//! ## Architecture
//!
//! * **Replicated state, shared log.** Each worker owns a full replica of
//!   the topology plus its own placer instance. All committed changes live
//!   in an append-only commit log of compact deltas (slot allocations +
//!   uplink reservations); workers sync their replica by replaying log
//!   entries, so no lock is held during placement computation.
//! * **Pod shards.** The tree is partitioned into the subtrees below a
//!   configurable level ([`PodPartition`], default: the root's children —
//!   the paper datacenter's 8 pods). Every commit records which shards it
//!   touched; a commit whose delta reaches a core node (above the shard
//!   level) conservatively touches [`ShardSet::All`].
//! * **Speculation.** A worker claims the next event (atomic ticket),
//!   syncs its replica to the log prefix it can see, and computes the
//!   placement *speculatively*, recording the read-set evidence of the
//!   search ([`PlacementTrace`]: every attempted subtree).
//! * **Sequence-numbered commit.** Commits apply strictly in event order.
//!   At its turn, a worker validates its speculation against the commits
//!   that landed after its snapshot:
//!
//!   - non-mutating commits (rejections, departures of rejected tenants)
//!     never conflict;
//!   - an intervening **admission** conflicts iff its touched shards
//!     intersect the speculation's read shards. Admissions only *consume*
//!     resources, and the subtree search is an argmax over (free slots,
//!     id) with bandwidth gates, so candidates in degraded pods can only
//!     become less attractive: a speculative winner whose search never
//!     attempted a touched pod is still the serial winner (see
//!     "Exactness" below);
//!   - an intervening **departure** always conflicts (resources improved;
//!     improvement is not monotone for the search).
//!
//!   A validated speculation commits as-is; an invalidated one is rolled
//!   back off the replica and recomputed at-turn — which *is* serial
//!   execution, so the fallback is exact by construction. That bounded
//!   retry (speculate once, then recompute in sequence) keeps the protocol
//!   deterministic for any thread interleaving.
//!
//! ## Exactness
//!
//! The argument that a validated speculation equals the serial decision:
//! the placer's search is `find_lowest_subtree` (argmax over subtrees at a
//! level by (free slots desc, id asc), gated by root-path bandwidth)
//! followed by an attempt whose reads stay inside the attempted subtree
//! and its root path. An intervening admission into untouched-by-me pod
//! `q` strictly decreases `q`'s free slots and link availability and
//! changes nothing else. Hence (a) every find that returned a node in an
//! unmodified pod still returns it (competitors only degraded; gates only
//! tightened; ties already broke my way), (b) every find that returned
//! `None` still returns `None`, and (c) every attempt inside an unmodified
//! pod — including *failed* ones, which is why traces record all attempts
//! — runs on unchanged state. Rejections and untraced placers are treated
//! as having read everything. Placer state that spans arrivals (the
//! CM demand predictor) advances exactly once per arrival in sequence
//! order through [`Placer::note_arrival`], never during speculation.
//!
//! ## Constraints
//!
//! The build environment is offline, so there is deliberately no rayon /
//! crossbeam here: plain scoped workers, a `Mutex` + `Condvar` sequencer,
//! and atomic tickets. Every synchronization primitive comes from
//! [`crate::sync`] — a zero-cost std passthrough in production, and the
//! virtualized model scheduler under the `model` feature, which is how
//! `cm-race` exhaustively explores this protocol's interleavings.

// The commit log is this module's only Mutex (the Condvar sequencer waits
// on the same guard). Any second lock added here must extend this header
// with its acquisition position — cm-analyze checks inversions against it.
// cm-analyze: lock-order(log)

use crate::model::Tag;
use crate::placement::{Deployed, PlacementTrace, Placer, RejectReason};
use crate::sync::{scope, AtomicUsize, Condvar, Mutex, MutexGuard, Ordering};
use cm_topology::{Kbps, NodeId, PodPartition, ShardSet, Topology};
use std::sync::Arc;

/// One event of the admission sequence.
#[derive(Debug, Clone)]
pub enum Event {
    /// A tenant arrives and requests admission.
    Arrive {
        /// The tenant's TAG (shared, never deep-cloned).
        tag: Arc<Tag>,
    },
    /// The tenant admitted at event index `arrival` departs (a no-op if
    /// that arrival was rejected).
    Depart {
        /// Event index of the corresponding [`Event::Arrive`].
        arrival: usize,
    },
}

/// Everything recorded about one admitted tenant at commit time. Node ids
/// are global (every replica is a clone of the same topology), so records
/// compare directly across engines.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmitRecord {
    /// Per-server VM counts per tier, sorted by server id.
    pub placement: Vec<(NodeId, Vec<u32>)>,
    /// Per-uplink reservation, sorted by node id.
    pub reservations: Vec<(NodeId, (Kbps, Kbps))>,
    /// Tier sizes of the tenant's model (aligned with `wcs`).
    pub tier_sizes: Vec<u32>,
    /// Worst-case survivability per tier at the configured level.
    pub wcs: Vec<Option<f64>>,
}

/// Outcome of one arrival.
#[derive(Debug, Clone, PartialEq)]
pub enum ConcurrentOutcome {
    /// Admitted with the recorded placement.
    Admitted(Arc<AdmitRecord>),
    /// Rejected for the given reason.
    Rejected(RejectReason),
}

/// Outcome of one event (aligned with the input sequence).
#[derive(Debug, Clone, PartialEq)]
pub enum EventOutcome {
    /// An arrival's admission decision.
    Arrival(ConcurrentOutcome),
    /// A departure was processed (possibly a no-op).
    Departure,
}

/// Configuration of a concurrent admission run.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Worker threads (clamped to ≥ 1).
    pub threads: usize,
    /// Shard level; `None` uses [`PodPartition::default_level`] (directly
    /// below the root).
    pub shard_level: Option<u8>,
    /// Fault-domain level for the per-tenant WCS recorded at commit.
    pub wcs_level: u8,
    /// Test knob: treat every speculation as invalidated, forcing the
    /// rollback + at-turn recompute path (used by the interleaving
    /// proptest; keep `false` in production).
    pub force_invalidate: bool,
    /// Mutation-testing knob: skip the pod-conflict check when validating
    /// a speculation against intervening admissions, i.e. deliberately
    /// break the protocol. `cm-race`'s CI gate proves the explorer catches
    /// the resulting stale commits; keep `false` everywhere else.
    pub skip_conflict_validation: bool,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        ConcurrentConfig {
            threads: 1,
            shard_level: None,
            wcs_level: 0,
            force_invalidate: false,
            skip_conflict_validation: false,
        }
    }
}

/// A compact, replayable state delta: what one admission added (applied
/// with `dir = +1`) or one departure removed (`dir = -1`).
#[derive(Debug)]
struct Delta {
    /// Per-server total VM slots.
    slots: Vec<(NodeId, u32)>,
    /// Per-uplink reservation.
    links: Vec<(NodeId, (Kbps, Kbps))>,
}

impl Delta {
    fn from_record(rec: &AdmitRecord) -> Delta {
        Delta {
            slots: rec
                .placement
                .iter()
                .map(|(s, c)| (*s, c.iter().sum::<u32>()))
                .filter(|&(_, n)| n > 0)
                .collect(),
            links: rec.reservations.clone(),
        }
    }

    /// Apply (`dir = 1`) or revert (`dir = -1`) onto a synced replica.
    /// Replay of a committed delta cannot fail: the global sequence already
    /// admitted it, and replicas replay the same sequence.
    fn apply(&self, topo: &mut Topology, dir: i64) {
        self.try_apply(topo, dir)
            .expect("replica replay of a committed delta cannot fail"); // cm-analyze: allow(no-unwrap-in-hot-path) -- the global sequence already admitted this delta
    }

    /// Fallible apply: the replay-convergence checker uses this so a
    /// corrupted log (e.g. from a deliberately broken validation under
    /// `skip_conflict_validation`) surfaces as an error, not a panic.
    fn try_apply(&self, topo: &mut Topology, dir: i64) -> Result<(), String> {
        for &(s, n) in &self.slots {
            let r = if dir > 0 {
                topo.alloc_slots(s, n) // cm-analyze: allow(txn-discipline) -- replica replay of a committed delta, not a new reservation
            } else {
                topo.release_slots(s, n) // cm-analyze: allow(txn-discipline) -- replica replay of a committed delta, not a new reservation
            };
            r.map_err(|e| format!("slot delta at node {s:?}: {e:?}"))?;
        }
        for &(l, (o, i)) in &self.links {
            topo.adjust_uplink(l, dir * o as i64, dir * i as i64) // cm-analyze: allow(txn-discipline) -- replica replay of a committed delta, not a new reservation
                .map_err(|e| format!("link delta at node {l:?}: {e:?}"))?;
        }
        Ok(())
    }

    /// The shards this delta touches ([`ShardSet::All`] when it reaches a
    /// core node above the shard level).
    fn touched(&self, part: &PodPartition) -> ShardSet {
        let mut set = ShardSet::EMPTY;
        for &(s, _) in &self.slots {
            set.insert_node(part, s);
        }
        for &(l, _) in &self.links {
            set.insert_node(part, l);
        }
        set
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CommitKind {
    /// No state change (rejection, or departure of a rejected tenant).
    Noop,
    /// An admission: resources strictly consumed.
    Admit,
    /// A departure: resources strictly returned.
    Depart,
}

struct CommitEntry {
    kind: CommitKind,
    delta: Option<Arc<Delta>>,
    touched: ShardSet,
}

struct LogState {
    /// Number of committed events; also the current turn.
    committed: usize,
    commits: Vec<CommitEntry>,
    outcomes: Vec<EventOutcome>,
}

struct Shared<'a> {
    events: &'a [Event],
    part: PodPartition,
    log: Mutex<LogState>,
    turn: Condvar,
    next: AtomicUsize,
    force_invalidate: bool,
    skip_conflict_validation: bool,
    wcs_level: u8,
}

/// Per-worker state: a full topology replica plus a private placer.
struct Worker<P: Placer> {
    topo: Topology,
    placer: P,
    /// Log prefix applied to `topo`.
    applied: usize,
    /// Event prefix whose arrivals were fed to `placer.note_arrival`.
    noted: usize,
}

impl<P: Placer> Worker<P> {
    /// Replay committed deltas `[self.applied..upto)` onto the replica.
    /// Caller guarantees the replica carries no unvalidated speculation, or
    /// that the speculation is disjoint from every replayed delta.
    fn sync_to(&mut self, shared: &Shared<'_>, upto: usize) {
        if self.applied >= upto {
            return;
        }
        let deltas: Vec<(Option<Arc<Delta>>, CommitKind)> = {
            let log = shared.log.lock().expect("log lock"); // cm-analyze: allow(no-unwrap-in-hot-path) -- poisoned log means a worker panicked; propagating is the only sound recovery
            log.commits[self.applied..upto]
                .iter()
                .map(|c| (c.delta.clone(), c.kind))
                .collect()
        };
        for (delta, kind) in deltas {
            if let Some(d) = delta {
                d.apply(
                    &mut self.topo,
                    if kind == CommitKind::Depart { -1 } else { 1 },
                );
            }
        }
        self.applied = upto;
    }

    /// Feed `note_arrival` for every arrival in `events[self.noted..i)`, so
    /// cross-arrival placer state (the CM demand predictor) reaches the
    /// exact pre-event-`i` state regardless of which worker computed what.
    fn note_upto(&mut self, events: &[Event], i: usize) {
        while self.noted < i {
            if let Event::Arrive { tag } = &events[self.noted] {
                self.placer.note_arrival(tag);
            }
            self.noted += 1;
        }
    }
}

/// Run the event sequence concurrently and return per-event outcomes,
/// bit-identical to serial in-order execution of the same placer (see the
/// module docs for the protocol and the exactness argument).
pub fn run_events<P, F>(
    topo: &Topology,
    events: &[Event],
    make_placer: F,
    cfg: &ConcurrentConfig,
) -> Vec<EventOutcome>
where
    P: Placer,
    F: Fn() -> P + Sync,
{
    for (i, e) in events.iter().enumerate() {
        if let Event::Depart { arrival } = e {
            assert!(
                *arrival < i && matches!(events[*arrival], Event::Arrive { .. }),
                "departure at {i} must reference an earlier arrival"
            );
        }
    }
    let threads = cfg.threads.max(1);
    let shard_level = cfg
        .shard_level
        .unwrap_or_else(|| PodPartition::default_level(topo));
    let shared = Shared {
        events,
        part: PodPartition::new(topo, shard_level),
        log: Mutex::new(LogState {
            committed: 0,
            commits: Vec::with_capacity(events.len()),
            outcomes: Vec::with_capacity(events.len()),
        }),
        turn: Condvar::new(),
        next: AtomicUsize::new(0),
        force_invalidate: cfg.force_invalidate,
        skip_conflict_validation: cfg.skip_conflict_validation,
        wcs_level: cfg.wcs_level,
    };
    scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let shared = &shared;
            let make_placer = &make_placer;
            handles.push(scope.spawn(move || {
                let mut w = Worker {
                    topo: topo.clone(),
                    placer: make_placer(),
                    applied: 0,
                    noted: 0,
                };
                worker_loop(shared, &mut w);
            }));
        }
        for h in handles {
            h.join().expect("admission worker panicked"); // cm-analyze: allow(no-unwrap-in-hot-path) -- a panicked worker must abort the whole admission run, not be swallowed
        }
    });
    let log = shared.log.into_inner().expect("log lock"); // cm-analyze: allow(no-unwrap-in-hot-path) -- poisoned log means a worker panicked; propagating is the only sound recovery
    debug_assert_eq!(log.committed, events.len());
    log.outcomes
}

/// In-order execution of the event sequence with one placer on one
/// topology — the ground truth [`run_events`] must match bit-for-bit.
/// Place first, note after: arrival `i` is priced with the strict-prefix
/// predictor state, exactly like the engine's exclusive `note_upto`.
///
/// Exposed so equivalence harnesses (`cm-race`, the stress tests) share
/// one reference implementation instead of each reimplementing it.
pub fn run_events_serial<P: Placer>(
    topo: &Topology,
    events: &[Event],
    wcs_level: u8,
    mut placer: P,
) -> Vec<EventOutcome> {
    let mut t = topo.clone();
    let mut live: Vec<Option<Deployed>> = Vec::new();
    let mut out = Vec::new();
    for e in events {
        match e {
            Event::Arrive { tag } => {
                let mut trace = PlacementTrace::default();
                let placed = placer.place_speculative(&mut t, tag, &mut trace);
                placer.note_arrival(tag);
                match placed {
                    Ok(d) => {
                        let rec = AdmitRecord {
                            placement: d.placement(&t),
                            reservations: d.reservations(),
                            tier_sizes: d.tier_sizes(),
                            wcs: d.wcs_at_level(&t, wcs_level),
                        };
                        live.push(Some(d));
                        out.push(EventOutcome::Arrival(ConcurrentOutcome::Admitted(
                            Arc::new(rec),
                        )));
                    }
                    Err(r) => {
                        live.push(None);
                        out.push(EventOutcome::Arrival(ConcurrentOutcome::Rejected(r)));
                    }
                }
            }
            Event::Depart { arrival } => {
                // Arrival indices count events; live is indexed by
                // arrival order, so map through the event list.
                let arrivals_before = events[..*arrival]
                    .iter()
                    .filter(|e| matches!(e, Event::Arrive { .. }))
                    .count();
                if let Some(d) = live[arrivals_before].take() {
                    d.release(&mut t);
                }
                out.push(EventOutcome::Departure);
            }
        }
    }
    out
}

/// Replay a run's outcomes onto a fresh copy of the starting topology:
/// every admission's delta applied in order, every departure's reverted.
/// This is the delta-log convergence check — a healthy run replays
/// cleanly and leaves the topology satisfying its invariants; a run that
/// committed conflicting speculations (a protocol bug) over-allocates and
/// surfaces here as an `Err`.
pub fn replay_outcomes(
    topo: &mut Topology,
    events: &[Event],
    outcomes: &[EventOutcome],
) -> Result<(), String> {
    if events.len() != outcomes.len() {
        return Err(format!(
            "outcome count {} does not match event count {}",
            outcomes.len(),
            events.len()
        ));
    }
    for (i, (e, o)) in events.iter().zip(outcomes).enumerate() {
        match (e, o) {
            (Event::Arrive { .. }, EventOutcome::Arrival(ConcurrentOutcome::Admitted(rec))) => {
                Delta::from_record(rec)
                    .try_apply(topo, 1)
                    .map_err(|err| format!("replay of admission at event {i} failed: {err}"))?;
            }
            (Event::Arrive { .. }, EventOutcome::Arrival(ConcurrentOutcome::Rejected(_))) => {}
            (Event::Depart { arrival }, EventOutcome::Departure) => {
                if let EventOutcome::Arrival(ConcurrentOutcome::Admitted(rec)) = &outcomes[*arrival]
                {
                    Delta::from_record(rec)
                        .try_apply(topo, -1)
                        .map_err(|err| format!("replay of departure at event {i} failed: {err}"))?;
                }
            }
            _ => {
                return Err(format!(
                    "outcome at event {i} does not match the event kind"
                ));
            }
        }
    }
    Ok(())
}

fn worker_loop<P: Placer>(shared: &Shared<'_>, w: &mut Worker<P>) {
    loop {
        let i = shared.next.fetch_add(1, Ordering::SeqCst);
        if i >= shared.events.len() {
            return;
        }
        match &shared.events[i] {
            Event::Depart { arrival } => commit_departure(shared, w, i, *arrival),
            Event::Arrive { tag } => process_arrival(shared, w, i, tag),
        }
    }
}

/// Block until `committed == i`; returns with the log lock held.
fn wait_turn<'a>(shared: &'a Shared<'_>, i: usize) -> MutexGuard<'a, LogState> {
    let mut log = shared.log.lock().expect("log lock"); // cm-analyze: allow(no-unwrap-in-hot-path) -- poisoned log means a worker panicked; propagating is the only sound recovery
    while log.committed != i {
        log = shared.turn.wait(log).expect("log lock"); // cm-analyze: allow(no-unwrap-in-hot-path) -- poisoned log means a worker panicked; propagating is the only sound recovery
    }
    log
}

fn append_commit(
    shared: &Shared<'_>,
    mut log: MutexGuard<'_, LogState>,
    outcome: EventOutcome,
    entry: CommitEntry,
) {
    log.commits.push(entry);
    log.outcomes.push(outcome);
    log.committed += 1;
    drop(log);
    shared.turn.notify_all();
}

fn commit_departure<P: Placer>(shared: &Shared<'_>, _w: &mut Worker<P>, i: usize, arrival: usize) {
    let log = wait_turn(shared, i);
    let rec = match &log.outcomes[arrival] {
        EventOutcome::Arrival(ConcurrentOutcome::Admitted(rec)) => Some(Arc::clone(rec)),
        _ => None,
    };
    let entry = match rec {
        Some(rec) => {
            let delta = Arc::new(Delta::from_record(&rec));
            let touched = delta.touched(&shared.part);
            CommitEntry {
                kind: CommitKind::Depart,
                delta: Some(delta),
                touched,
            }
        }
        None => CommitEntry {
            kind: CommitKind::Noop,
            delta: None,
            touched: ShardSet::EMPTY,
        },
    };
    append_commit(shared, log, EventOutcome::Departure, entry);
    // The worker's own replica replays this commit on its next sync.
}

/// The read shards a speculation depended on: the pods of every attempted
/// subtree, degraded to `All` for untraced searches, attempts above the
/// shard level, and rejections (whose final classification reads the
/// whole tree).
fn read_set(
    part: &PodPartition,
    trace: &PlacementTrace,
    result: &Result<Deployed, RejectReason>,
) -> ShardSet {
    if !trace.complete || result.is_err() {
        return ShardSet::All;
    }
    let mut set = ShardSet::EMPTY;
    for &n in &trace.attempts {
        set.insert_node(part, n);
    }
    set
}

fn process_arrival<P: Placer>(shared: &Shared<'_>, w: &mut Worker<P>, i: usize, tag: &Arc<Tag>) {
    // Speculate against the freshest replica we can assemble without
    // waiting: sync to the committed prefix, then place.
    let snapshot = {
        let log = shared.log.lock().expect("log lock"); // cm-analyze: allow(no-unwrap-in-hot-path) -- poisoned log means a worker panicked; propagating is the only sound recovery
        log.committed.min(i)
    };
    w.sync_to(shared, snapshot);
    w.note_upto(shared.events, i);
    let mut trace = PlacementTrace::default();
    trace.reset();
    let spec_result = w.placer.place_speculative(&mut w.topo, tag, &mut trace);
    let reads = read_set(&shared.part, &trace, &spec_result);

    // From here on this worker owns turn `i`: `committed` cannot advance
    // until we append, so the log lock can be dropped and retaken freely.
    let valid = {
        let log = wait_turn(shared, i);
        !shared.force_invalidate
            && log.commits[snapshot..i].iter().all(|c| match c.kind {
                CommitKind::Noop => true,
                CommitKind::Admit => {
                    shared.skip_conflict_validation || !c.touched.intersects(&reads)
                }
                CommitKind::Depart => false,
            })
    };

    let result = if valid {
        spec_result
    } else {
        // Roll the speculation off the replica, then recompute at-turn:
        // with every prior event committed this is exact serial execution.
        if let Ok(deployed) = spec_result {
            deployed.release(&mut w.topo);
        }
        w.sync_to(shared, i);
        trace.reset();
        w.placer.place_speculative(&mut w.topo, tag, &mut trace)
    };
    // `sync_to(i)` is safe even with the validated speculation still on the
    // replica: validation proved the missing deltas are disjoint from it.
    // (No-op on the recompute path, which already synced.)
    w.sync_to(shared, i);
    let log = shared.log.lock().expect("log lock"); // cm-analyze: allow(no-unwrap-in-hot-path) -- poisoned log means a worker panicked; propagating is the only sound recovery
    debug_assert_eq!(log.committed, i);

    match result {
        Ok(deployed) => {
            let rec = Arc::new(AdmitRecord {
                placement: deployed.placement(&w.topo),
                reservations: deployed.reservations(),
                tier_sizes: deployed.tier_sizes(),
                wcs: deployed.wcs_at_level(&w.topo, shared.wcs_level),
            });
            // The resources stay accounted in the log delta; dropping the
            // handle (instead of releasing it) keeps them in the replica.
            drop(deployed);
            let delta = Arc::new(Delta::from_record(&rec));
            let touched = delta.touched(&shared.part);
            w.applied = i + 1; // our own commit is already in our replica
            append_commit(
                shared,
                log,
                EventOutcome::Arrival(ConcurrentOutcome::Admitted(rec)),
                CommitEntry {
                    kind: CommitKind::Admit,
                    delta: Some(delta),
                    touched,
                },
            );
        }
        Err(reason) => {
            w.applied = i + 1;
            append_commit(
                shared,
                log,
                EventOutcome::Arrival(ConcurrentOutcome::Rejected(reason)),
                CommitEntry {
                    kind: CommitKind::Noop,
                    delta: None,
                    touched: ShardSet::EMPTY,
                },
            );
        }
    }
}

/// Compile-time audit that everything crossing thread boundaries is
/// `Send`/`Sync`: topology replicas, shared tags, placers, and the engine's
/// shared state.
#[allow(dead_code)]
fn send_sync_audit() {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<Topology>();
    assert_sync::<Topology>();
    assert_send::<Arc<Tag>>();
    assert_sync::<Arc<Tag>>();
    assert_send::<crate::placement::CmPlacer>();
    assert_send::<crate::reserve::TenantState<Tag>>();
    assert_send::<Deployed>();
    assert_sync::<PodPartition>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TagBuilder;
    use crate::placement::{CmConfig, CmPlacer};
    use cm_topology::{mbps, TreeSpec};

    fn topo() -> Topology {
        Topology::build(&TreeSpec::small(
            4,
            2,
            4,
            4,
            [mbps(1000.0), mbps(2000.0), mbps(4000.0)],
        ))
    }

    fn hose(n: u32, sr: Kbps) -> Arc<Tag> {
        let mut b = TagBuilder::new("hose");
        let t = b.tier("t", n);
        b.self_loop(t, sr).unwrap();
        Arc::new(b.build().unwrap())
    }

    fn serial_reference<P: Placer>(
        topo: &Topology,
        events: &[Event],
        wcs_level: u8,
        placer: P,
    ) -> Vec<EventOutcome> {
        run_events_serial(topo, events, wcs_level, placer)
    }

    fn mixed_events() -> Vec<Event> {
        let mut events = Vec::new();
        for k in 0..30u32 {
            events.push(Event::Arrive {
                tag: hose(2 + (k % 5), 50 + 10 * (k as u64 % 7)),
            });
            if k % 3 == 2 {
                // Depart the arrival from two rounds ago.
                let arrival = events.len() - 3;
                if matches!(events[arrival], Event::Arrive { .. }) {
                    events.push(Event::Depart { arrival });
                }
            }
        }
        events
    }

    #[test]
    fn concurrent_matches_serial_across_thread_counts() {
        let topo = topo();
        let events = mixed_events();
        let expected = serial_reference(&topo, &events, 0, CmPlacer::new(CmConfig::cm()));
        for threads in [1usize, 2, 3, 4] {
            let cfg = ConcurrentConfig {
                threads,
                ..Default::default()
            };
            let got = run_events(&topo, &events, || CmPlacer::new(CmConfig::cm()), &cfg);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn forced_invalidation_still_matches_serial() {
        let topo = topo();
        let events = mixed_events();
        let expected = serial_reference(&topo, &events, 0, CmPlacer::new(CmConfig::cm()));
        let cfg = ConcurrentConfig {
            threads: 3,
            force_invalidate: true,
            ..Default::default()
        };
        let got = run_events(&topo, &events, || CmPlacer::new(CmConfig::cm()), &cfg);
        assert_eq!(got, expected);
    }

    #[test]
    fn explicit_shard_levels_are_exact_too() {
        let topo = topo();
        let events = mixed_events();
        let expected = serial_reference(&topo, &events, 0, CmPlacer::new(CmConfig::cm()));
        for level in [1u8, 2] {
            let cfg = ConcurrentConfig {
                threads: 4,
                shard_level: Some(level),
                ..Default::default()
            };
            let got = run_events(&topo, &events, || CmPlacer::new(CmConfig::cm()), &cfg);
            assert_eq!(got, expected, "shard level {level}");
        }
    }

    #[test]
    fn opp_ha_stateful_predictor_matches_serial() {
        // Opportunistic HA is the one configuration whose decisions depend
        // on the cross-arrival demand predictor AND on whole-topology
        // availability sums: it exercises the note/peek split and the
        // global-read trace degradation together.
        let topo = topo();
        let events = mixed_events();
        let make = || CmPlacer::named(CmConfig::cm_opp_ha(), "CM+oppHA");
        let expected = serial_reference(&topo, &events, 0, make());
        for threads in [1usize, 3] {
            let cfg = ConcurrentConfig {
                threads,
                ..Default::default()
            };
            let got = run_events(&topo, &events, make, &cfg);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn replay_outcomes_converges_and_keeps_invariants() {
        let topo = topo();
        let events = mixed_events();
        let cfg = ConcurrentConfig {
            threads: 3,
            ..Default::default()
        };
        let got = run_events(&topo, &events, || CmPlacer::new(CmConfig::cm()), &cfg);
        let mut replayed = topo.clone();
        replay_outcomes(&mut replayed, &events, &got).expect("healthy run must replay cleanly");
        replayed
            .check_invariants()
            .expect("invariants after replay");
    }

    #[test]
    fn empty_sequence_is_fine() {
        let topo = topo();
        let got = run_events(
            &topo,
            &[],
            || CmPlacer::new(CmConfig::cm()),
            &ConcurrentConfig::default(),
        );
        assert!(got.is_empty());
    }
}
