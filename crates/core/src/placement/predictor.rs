//! Demand prediction for the opportunistic-HA desirability test.
//!
//! §4.5: bandwidth-saving desirability compares available bandwidth per free
//! slot against "the average per-VM bandwidth demand of input g, factoring
//! in the expected contributions of future tenant VMs (predicted based on
//! previous arrivals)". We blend the incoming tenant's demand with an EWMA
//! over past arrivals.

/// Exponentially-weighted moving average of per-VM tenant demand (kbps).
#[derive(Debug, Clone)]
pub struct DemandPredictor {
    ewma: f64,
    alpha: f64,
    observed: u64,
}

impl Default for DemandPredictor {
    fn default() -> Self {
        Self::new(0.1)
    }
}

impl DemandPredictor {
    /// Create a predictor with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        DemandPredictor {
            ewma: 0.0,
            alpha,
            observed: 0,
        }
    }

    /// Record a tenant's average per-VM demand and return the blended
    /// estimate (half current tenant, half history; pure current until any
    /// history exists) to use for its placement decisions.
    pub fn observe(&mut self, demand_kbps: f64) -> f64 {
        // Delegate the blend to `peek` so the speculative pricing path can
        // never drift from the observing one.
        let mixed = self.peek(demand_kbps);
        self.ewma = if self.observed == 0 {
            demand_kbps
        } else {
            self.alpha * demand_kbps + (1.0 - self.alpha) * self.ewma
        };
        self.observed += 1;
        mixed
    }

    /// The blended estimate [`DemandPredictor::observe`] *would* return for
    /// `demand_kbps`, without recording the observation. The concurrent
    /// engine speculates placements out of order, so it prices each arrival
    /// with `peek` and advances the EWMA exactly once per arrival (in
    /// sequence order) via the placer's `note_arrival` hook — making the
    /// predictor state a pure function of the arrival prefix, identical to
    /// the serial engine's observe-per-arrival stream.
    pub fn peek(&self, demand_kbps: f64) -> f64 {
        if self.observed == 0 {
            demand_kbps
        } else {
            0.5 * demand_kbps + 0.5 * self.ewma
        }
    }

    /// Current EWMA estimate (0 until anything is observed).
    pub fn estimate(&self) -> f64 {
        self.ewma
    }

    /// Number of tenants observed.
    pub fn observed(&self) -> u64 {
        self.observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_passes_through() {
        let mut p = DemandPredictor::default();
        assert_eq!(p.observe(1000.0), 1000.0);
        assert_eq!(p.estimate(), 1000.0);
    }

    #[test]
    fn blends_with_history() {
        let mut p = DemandPredictor::new(0.5);
        p.observe(1000.0);
        // mixed = 0.5*2000 + 0.5*1000 = 1500; ewma = 0.5*2000+0.5*1000 = 1500.
        assert_eq!(p.observe(2000.0), 1500.0);
        assert_eq!(p.estimate(), 1500.0);
        assert_eq!(p.observed(), 2);
    }

    #[test]
    fn converges_to_steady_demand() {
        let mut p = DemandPredictor::new(0.2);
        for _ in 0..100 {
            p.observe(500.0);
        }
        assert!((p.estimate() - 500.0).abs() < 1e-6);
    }
}
