//! The unified placement engine: one trait, one deployed-tenant handle,
//! and one outer search loop shared by every algorithm.
//!
//! The paper's evaluation is entirely comparative — CloudMirror against
//! Oktopus VC/VOC and SecondNet on the same tree datacenter — so the
//! engine makes "a placement algorithm" a first-class object:
//!
//! * [`Placer`] is the interface every algorithm implements: deploy a TAG
//!   tenant onto a topology, yielding a [`Deployed`] handle or a
//!   [`RejectReason`], with the topology untouched on rejection.
//! * [`Deployed`] is the single concrete handle over a live tenant,
//!   whichever network model priced it (TAG, generalized VOC, or pipes) —
//!   simulators and experiment drivers hold these without any
//!   per-algorithm boxing.
//! * [`search_and_place`] is the level-climbing outer loop of Algorithm 1
//!   that the seed duplicated in every placer: find the lowest plausible
//!   subtree, attempt a full placement inside a [`ReservationTxn`],
//!   reserve the external path above it, and on any failure roll back and
//!   retry one level higher until the root rejects.
//!
//! Adding a new placement strategy is now one trait impl: write the
//! per-subtree `attempt` policy, and the simulator, the figure harnesses,
//! and the criterion benches pick it up unchanged.

use crate::cut::CutModel;
use crate::model::{PipeModel, Tag, TierId, VocModel};
use crate::placement::RejectReason;
use crate::reserve::{PlacementEntry, TenantState};
use crate::txn::ReservationTxn;
use cm_topology::{Kbps, NodeId, Topology};

/// Read-set evidence of one placement computation, recorded by
/// [`search_and_place_traced`] for the concurrent engine's conflict
/// validation.
///
/// The engine needs to know which subtrees a speculative placement *looked
/// at* — not just where it finally landed — because a failed attempt inside
/// pod `q` makes the decision depend on `q`'s state even when the tenant
/// ends up in pod `p`. A trace listing every attempted subtree (plus
/// whether the search was fully traced at all) is exactly enough: together
/// with the monotonicity of intervening admissions, attempts confined to
/// untouched pods prove the speculative decision equals the serial one.
#[derive(Debug, Clone, Default)]
pub struct PlacementTrace {
    /// Every subtree handed to an `attempt` (successful or not), in order.
    pub attempts: Vec<NodeId>,
    /// False when some part of the computation was not traced — the engine
    /// must then assume the whole topology was read.
    pub complete: bool,
}

impl PlacementTrace {
    /// Reset for a fresh computation, optimistically marked complete.
    pub fn reset(&mut self) {
        self.attempts.clear();
        self.complete = true;
    }

    /// Mark the read-set as unknown (conflicts with everything).
    pub fn mark_unknown(&mut self) {
        self.complete = false;
    }
}

/// A placement algorithm that can deploy TAG tenants.
///
/// Implementations are free to translate the TAG into their own pricing
/// model first (the baselines do); the returned handle erases that
/// difference.
pub trait Placer {
    /// Display name used in result tables ("CM", "OVOC", ...).
    fn name(&self) -> &'static str;

    /// Deploy the tenant. `Err` leaves the topology exactly as it was.
    fn place(&mut self, topo: &mut Topology, tag: &Tag) -> Result<Deployed, RejectReason>;

    /// Deploy an already-shared tenant model. Placers that keep the TAG
    /// (rather than translating it) override this to adopt the handle
    /// without deep-cloning; the default forwards to [`Placer::place`].
    fn place_shared(
        &mut self,
        topo: &mut Topology,
        tag: &std::sync::Arc<Tag>,
    ) -> Result<Deployed, RejectReason> {
        self.place(topo, tag)
    }

    /// [`Placer::place_shared`] for the concurrent engine's speculation
    /// path. Two contract differences:
    ///
    /// * it must record its read-set into `trace` (or call
    ///   [`PlacementTrace::mark_unknown`], as this default does);
    /// * it must **not** advance any cross-arrival placer state — the
    ///   engine may call it repeatedly for the same arrival (speculate,
    ///   invalidate, recompute) and expects identical answers on identical
    ///   topologies. Cross-arrival state advances exactly once per arrival
    ///   through [`Placer::note_arrival`] instead.
    ///
    /// The default forwards to `place_shared`, which is correct for
    /// stateless placers (the engine then validates conservatively).
    fn place_speculative(
        &mut self,
        topo: &mut Topology,
        tag: &std::sync::Arc<Tag>,
        trace: &mut PlacementTrace,
    ) -> Result<Deployed, RejectReason> {
        trace.mark_unknown();
        self.place_shared(topo, tag)
    }

    /// Advance cross-arrival placer state for one arrival (in sequence
    /// order), without placing. `CmPlacer` feeds its demand-predictor EWMA
    /// here; stateless placers keep the no-op default. The concurrent
    /// engine calls this exactly once per arrival on every worker's placer
    /// replica, so placer state stays a pure function of the arrival
    /// prefix — identical to the serial engine's per-arrival observation.
    fn note_arrival(&mut self, _tag: &std::sync::Arc<Tag>) {}

    /// Resize one tier of a **live** deployment to `new_size` VMs — the
    /// tenant-lifecycle `scale` operation (§3/§6 auto-scaling). `new_tag`
    /// is the already-resized TAG (`tag.resized(tier, new_size)`); per-VM
    /// guarantees are unchanged, only the tier count moves. All-or-nothing:
    /// on `Err` the deployment and topology are exactly as before.
    ///
    /// The default is the generic **re-place fallback**: snapshot the
    /// tenant's ledger, release it, deploy the resized TAG from scratch
    /// through [`Placer::place_shared`], and on failure restore the
    /// snapshot bit-for-bit. Placers that keep the TAG as their pricing
    /// model can do better — [`crate::placement::CmPlacer`] overrides this
    /// with an exact incremental path that places only the delta VMs
    /// (growing) or vacates the least-populated servers (shrinking),
    /// repricing every touched link under the resized model.
    fn place_incremental(
        &mut self,
        topo: &mut Topology,
        deployed: &mut Deployed,
        new_tag: &std::sync::Arc<Tag>,
        _tier: TierId,
        _new_size: u32,
    ) -> Result<(), RejectReason> {
        place_incremental_replace(self, topo, deployed, new_tag)
    }
}

/// The generic re-place fallback behind [`Placer::place_incremental`]:
/// snapshot → release → deploy the resized TAG wholesale → restore the
/// snapshot on failure. Exposed so overrides that only specialize their own
/// handle type can delegate foreign handles here.
pub fn place_incremental_replace<P: Placer + ?Sized>(
    placer: &mut P,
    topo: &mut Topology,
    deployed: &mut Deployed,
    new_tag: &std::sync::Arc<Tag>,
) -> Result<(), RejectReason> {
    let snapshot = deployed.snapshot();
    deployed.clear_in_place(topo);
    match placer.place_shared(topo, new_tag) {
        Ok(d) => {
            *deployed = d;
            Ok(())
        }
        Err(r) => {
            snapshot.reapply(topo);
            *deployed = snapshot;
            Err(r)
        }
    }
}

/// Mutable references to placers are placers (lets a lifecycle controller
/// borrow a placer instead of owning it).
impl<P: Placer + ?Sized> Placer for &mut P {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn place(&mut self, topo: &mut Topology, tag: &Tag) -> Result<Deployed, RejectReason> {
        (**self).place(topo, tag)
    }

    fn place_shared(
        &mut self,
        topo: &mut Topology,
        tag: &std::sync::Arc<Tag>,
    ) -> Result<Deployed, RejectReason> {
        (**self).place_shared(topo, tag)
    }

    fn place_speculative(
        &mut self,
        topo: &mut Topology,
        tag: &std::sync::Arc<Tag>,
        trace: &mut PlacementTrace,
    ) -> Result<Deployed, RejectReason> {
        (**self).place_speculative(topo, tag, trace)
    }

    fn note_arrival(&mut self, tag: &std::sync::Arc<Tag>) {
        (**self).note_arrival(tag)
    }

    fn place_incremental(
        &mut self,
        topo: &mut Topology,
        deployed: &mut Deployed,
        new_tag: &std::sync::Arc<Tag>,
        tier: TierId,
        new_size: u32,
    ) -> Result<(), RejectReason> {
        (**self).place_incremental(topo, deployed, new_tag, tier, new_size)
    }
}

/// Boxed placers are placers (lets heterogeneous placer sets drive one
/// generic lifecycle controller through `Box<dyn Placer>`).
impl<P: Placer + ?Sized> Placer for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn place(&mut self, topo: &mut Topology, tag: &Tag) -> Result<Deployed, RejectReason> {
        (**self).place(topo, tag)
    }

    fn place_shared(
        &mut self,
        topo: &mut Topology,
        tag: &std::sync::Arc<Tag>,
    ) -> Result<Deployed, RejectReason> {
        (**self).place_shared(topo, tag)
    }

    fn place_speculative(
        &mut self,
        topo: &mut Topology,
        tag: &std::sync::Arc<Tag>,
        trace: &mut PlacementTrace,
    ) -> Result<Deployed, RejectReason> {
        (**self).place_speculative(topo, tag, trace)
    }

    fn note_arrival(&mut self, tag: &std::sync::Arc<Tag>) {
        (**self).note_arrival(tag)
    }

    fn place_incremental(
        &mut self,
        topo: &mut Topology,
        deployed: &mut Deployed,
        new_tag: &std::sync::Arc<Tag>,
        tier: TierId,
        new_size: u32,
    ) -> Result<(), RejectReason> {
        (**self).place_incremental(topo, deployed, new_tag, tier, new_size)
    }
}

/// A deployed tenant, whichever placer and pricing model produced it.
/// Release it with [`Deployed::release`] when the tenant departs; dropping
/// it without releasing leaks its slots and bandwidth in the topology.
pub struct Deployed(DeployedState);

enum DeployedState {
    Tag(TenantState<Tag>),
    Voc(TenantState<VocModel>),
    Pipe(TenantState<PipeModel>),
}

/// Dispatch one expression over the three model-typed tenant states.
macro_rules! with_state {
    ($self:expr, $s:ident => $e:expr) => {
        match &$self.0 {
            DeployedState::Tag($s) => $e,
            DeployedState::Voc($s) => $e,
            DeployedState::Pipe($s) => $e,
        }
    };
}

impl Deployed {
    /// Release all slots and bandwidth held by the tenant.
    pub fn release(self, topo: &mut Topology) {
        match self.0 {
            DeployedState::Tag(mut s) => s.clear(topo),
            DeployedState::Voc(mut s) => s.clear(topo),
            DeployedState::Pipe(mut s) => s.clear(topo),
        }
    }

    /// [`Deployed::release`] through a mutable reference: the handle stays
    /// usable (and empty) afterwards. Lifecycle operations that may need to
    /// restore the tenant on failure use this together with
    /// [`Deployed::snapshot`].
    pub fn clear_in_place(&mut self, topo: &mut Topology) {
        match &mut self.0 {
            DeployedState::Tag(s) => s.clear(topo),
            DeployedState::Voc(s) => s.clear(topo),
            DeployedState::Pipe(s) => s.clear(topo),
        }
    }

    /// A deep copy of the tenant's ledger (the model itself is shared, not
    /// cloned). Together with [`Deployed::reapply`] this gives lifecycle
    /// operations savepoint semantics across a release: snapshot, release,
    /// attempt a re-placement, and on failure restore the snapshot exactly.
    pub fn snapshot(&self) -> Deployed {
        match &self.0 {
            DeployedState::Tag(s) => Deployed(DeployedState::Tag(s.clone())),
            DeployedState::Voc(s) => Deployed(DeployedState::Voc(s.clone())),
            DeployedState::Pipe(s) => Deployed(DeployedState::Pipe(s.clone())),
        }
    }

    /// Re-acquire every slot and reservation of a snapshot whose resources
    /// were just released (see [`Deployed::snapshot`]). Panics if the
    /// topology cannot hold them — impossible when nothing else touched the
    /// topology since the release.
    pub fn reapply(&self, topo: &mut Topology) {
        with_state!(self, s => s.reapply(topo))
    }

    /// The underlying TAG-priced tenant state, if this deployment was
    /// priced directly on the TAG (CloudMirror and its variants). Baseline
    /// deployments translate the TAG into VOC/pipe models and return
    /// `None`.
    pub fn tag_state(&self) -> Option<&TenantState<Tag>> {
        match &self.0 {
            DeployedState::Tag(s) => Some(s),
            _ => None,
        }
    }

    /// Mutable access to the TAG-priced tenant state (see
    /// [`Deployed::tag_state`]); `CmPlacer::place_incremental` scales live
    /// deployments through this.
    pub fn tag_state_mut(&mut self) -> Option<&mut TenantState<Tag>> {
        match &mut self.0 {
            DeployedState::Tag(s) => Some(s),
            _ => None,
        }
    }

    /// Worst-case survivability per tier at the given level (`None` for
    /// tiers without placeable VMs). See [`TenantState::wcs_at_level`].
    pub fn wcs_at_level(&self, topo: &Topology, level: u8) -> Vec<Option<f64>> {
        with_state!(self, s => s.wcs_at_level(topo, level))
    }

    /// Per-server VM counts of the placement.
    pub fn placement(&self, topo: &Topology) -> Vec<(NodeId, Vec<u32>)> {
        with_state!(self, s => s.placement(topo))
    }

    /// Sizes of the tenant's tiers, aligned with the placement's count
    /// vectors.
    pub fn tier_sizes(&self) -> Vec<u32> {
        with_state!(self, s => (0..s.model().num_tiers())
            .map(|t| s.model().tier_size(t))
            .collect())
    }

    /// Total VMs placed.
    pub fn total_placed(&self, topo: &Topology) -> u64 {
        with_state!(self, s => s.total_placed(topo))
    }

    /// Total bandwidth reserved across all links (out + in).
    pub fn total_reserved_kbps(&self) -> Kbps {
        with_state!(self, s => s.total_reserved_kbps())
    }

    /// Every uplink reservation of the tenant, sorted by node id (see
    /// [`TenantState::reservations`]).
    pub fn reservations(&self) -> Vec<(NodeId, (Kbps, Kbps))> {
        with_state!(self, s => s.reservations())
    }

    /// Check the tenant's ledger against a from-scratch recomputation
    /// (see [`TenantState::check_consistency`]).
    pub fn check_consistency(&self, topo: &Topology) -> Result<(), String> {
        with_state!(self, s => s.check_consistency(topo))
    }

    /// Remove every VM the tenant holds on a failed server and reclaim the
    /// stranded reservations, leaving the surviving fragment internally
    /// consistent. Returns `None` when the tenant holds nothing on failed
    /// hardware.
    ///
    /// TAG-priced deployments are additionally shrunk to the surviving
    /// tier sizes (`Tag::resized` per tier), so the fragment remains a
    /// fully-consistent smaller deployment that a later repair can grow
    /// back through the exact incremental scaling path. Because the tier
    /// sizes shrink together with the inside counts, every per-edge cut
    /// price `min(S·inside_src, R·outside_dst)` is monotone non-increasing
    /// under the combined unplace+reprice, so the repricing cannot run out
    /// of capacity. Baseline (VOC/pipe) deployments keep their model and
    /// re-sync the affected links; a hose price under an unchanged model
    /// can *rise* when the inside count drops below N/2, and if that rise
    /// no longer fits the link, the tenant is evicted wholesale
    /// (`evicted = true`) — its admitted reservation cannot be sustained
    /// after the fault.
    pub fn evacuate_failed(&mut self, topo: &mut Topology) -> Option<Evacuation> {
        let num_tiers = self.tier_sizes().len();
        let mut lost_entries: Vec<PlacementEntry> = Vec::new();
        let mut lost = vec![0u32; num_tiers];
        for (server, counts) in self.placement(topo) {
            if !topo.is_failed(server) {
                continue;
            }
            for (tier, &count) in counts.iter().enumerate() {
                if count > 0 {
                    lost_entries.push(PlacementEntry {
                        server,
                        tier,
                        count,
                    });
                    lost[tier] += count;
                }
            }
        }
        if lost_entries.is_empty() {
            return None;
        }
        let reserved_before = self.total_reserved_kbps();
        let evicted = match &mut self.0 {
            DeployedState::Tag(s) => evacuate_tag(topo, s, &lost_entries, &lost),
            DeployedState::Voc(s) => evacuate_generic(topo, s, &lost_entries),
            DeployedState::Pipe(s) => evacuate_generic(topo, s, &lost_entries),
        };
        let lost_vms = lost.iter().map(|&c| c as u64).sum();
        Some(Evacuation {
            lost,
            lost_vms,
            // A baseline fragment can end up reserving *more* than before
            // (the hose rise above); that is a net reclaim of zero.
            reclaimed_kbps: reserved_before.saturating_sub(self.total_reserved_kbps()),
            evicted,
        })
    }
}

/// Outcome of [`Deployed::evacuate_failed`] for one tenant.
#[derive(Debug, Clone)]
pub struct Evacuation {
    /// VMs lost per tier, aligned with the model's tier indices.
    pub lost: Vec<u32>,
    /// Total VMs lost across all tiers.
    pub lost_vms: u64,
    /// Reserved bandwidth reclaimed by the evacuation (out + in, summed
    /// over links). Zero when a baseline fragment's hose repricing grew
    /// its reservation instead of shrinking it.
    pub reclaimed_kbps: Kbps,
    /// True when the surviving fragment could not be kept consistent and
    /// the whole deployment was released instead.
    pub evicted: bool,
}

/// TAG evacuation: unplace the casualties, then swap in the tag shrunk to
/// the surviving tier sizes (repricing every touched link downward).
/// Returns whether the tenant had to be evicted.
fn evacuate_tag(
    topo: &mut Topology,
    s: &mut TenantState<Tag>,
    entries: &[PlacementEntry],
    lost: &[u32],
) -> bool {
    let model = s.model_arc();
    let mut shrunk: Option<Tag> = None;
    for (t, &l) in lost.iter().enumerate() {
        if l == 0 {
            continue;
        }
        let tid = TierId(t as u16);
        let cur = shrunk
            .as_ref()
            .map_or(model.tier(tid).size, |m| m.tier(tid).size);
        if cur <= l {
            // The tier lost every VM; a zero-size tier is not expressible,
            // so the tenant cannot survive as a fragment.
            s.clear(topo);
            return true;
        }
        let next = shrunk
            .as_ref()
            .map_or_else(|| model.resized(tid, cur - l), |m| m.resized(tid, cur - l));
        shrunk = Some(next);
    }
    let shrunk = shrunk.expect("evacuation with no lost VMs"); // cm-analyze: allow(no-unwrap-in-hot-path) -- callers only evacuate entries with lost > 0, so the loop ran
    for e in entries {
        s.unplace(topo, e.server, e.tier, e.count);
    }
    if s.replace_model(topo, std::sync::Arc::new(shrunk)).is_err() {
        // Cannot happen for monotone TAG cuts (see caller doc), but if a
        // model ever breaks monotonicity, degrade to eviction rather than
        // leaving an inconsistent ledger.
        s.clear(topo);
        return true;
    }
    false
}

/// Model-preserving evacuation for the baselines: unplace the casualties
/// and re-sync every link on a casualty's root path under the unchanged
/// model. Returns whether the tenant had to be evicted.
fn evacuate_generic<M: CutModel>(
    topo: &mut Topology,
    s: &mut TenantState<M>,
    entries: &[PlacementEntry],
) -> bool {
    for e in entries {
        s.unplace(topo, e.server, e.tier, e.count);
    }
    let mut affected: Vec<NodeId> = Vec::new();
    for e in entries {
        affected.extend(topo.path_to_root(e.server));
    }
    affected.sort_by_key(|&n| (topo.level(n), n));
    affected.dedup();
    for n in affected {
        if n == topo.root() {
            continue;
        }
        if s.sync_uplink(topo, n).is_err() {
            s.clear(topo);
            return true;
        }
    }
    false
}

impl From<TenantState<Tag>> for Deployed {
    fn from(s: TenantState<Tag>) -> Deployed {
        Deployed(DeployedState::Tag(s))
    }
}

impl From<TenantState<VocModel>> for Deployed {
    fn from(s: TenantState<VocModel>) -> Deployed {
        Deployed(DeployedState::Voc(s))
    }
}

impl From<TenantState<PipeModel>> for Deployed {
    fn from(s: TenantState<PipeModel>) -> Deployed {
        Deployed(DeployedState::Pipe(s))
    }
}

/// Classify a final failure: slots when the datacenter plainly lacks room
/// for `total_vms`, bandwidth otherwise. Shared by every placer.
pub fn reject_reason(topo: &Topology, total_vms: u64) -> RejectReason {
    if topo.subtree_slots_free(topo.root()) < total_vms {
        RejectReason::InsufficientSlots
    } else {
        RejectReason::InsufficientBandwidth
    }
}

/// Which `FindLowestSubtree` implementation [`search_and_place_with`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Descend from the root over the topology's subtree aggregates
    /// ([`crate::placement::find_lowest_subtree`]) — the production path.
    #[default]
    Descend,
    /// The pre-descend O(level-width × depth) scan
    /// ([`crate::placement::find_lowest_subtree_linear`]), kept as the
    /// reference for equivalence tests and before/after benchmarks.
    LinearReference,
}

impl SearchStrategy {
    /// Run the selected `FindLowestSubtree` implementation.
    pub fn find(
        self,
        topo: &Topology,
        level: usize,
        total_vms: u64,
        ext_demand: (Kbps, Kbps),
    ) -> Option<NodeId> {
        match self {
            SearchStrategy::Descend => {
                crate::placement::find_lowest_subtree(topo, level, total_vms, ext_demand)
            }
            SearchStrategy::LinearReference => {
                crate::placement::find_lowest_subtree_linear(topo, level, total_vms, ext_demand)
            }
        }
    }
}

/// The shared outer loop of Algorithm 1 (and of both baselines): starting
/// at `start_level`, find the lowest subtree that can plausibly host the
/// whole tenant (`find_lowest_subtree`), run `attempt` inside a fresh
/// [`ReservationTxn`], and on success reserve the tenant's external demand
/// on the path above the subtree. Any failure rolls the attempt back
/// atomically and retries one level higher; a failure at the root rejects.
///
/// `attempt` must stage the *entire* tenant under the given subtree through
/// the transaction and return whether it managed to; partial placements it
/// leaves staged are unwound by the engine.
pub fn search_and_place<M, F>(
    topo: &mut Topology,
    state: &mut TenantState<M>,
    total_vms: u64,
    ext_demand: (Kbps, Kbps),
    start_level: usize,
    attempt: F,
) -> Result<(), RejectReason>
where
    M: CutModel,
    F: FnMut(&mut ReservationTxn<'_, M>, NodeId) -> bool,
{
    search_and_place_with(
        topo,
        state,
        total_vms,
        ext_demand,
        start_level,
        SearchStrategy::Descend,
        attempt,
    )
}

/// [`search_and_place`] with an explicit [`SearchStrategy`] (the reference
/// scan exists only for equivalence testing; production callers use the
/// default-descend wrapper).
pub fn search_and_place_with<M, F>(
    topo: &mut Topology,
    state: &mut TenantState<M>,
    total_vms: u64,
    ext_demand: (Kbps, Kbps),
    start_level: usize,
    search: SearchStrategy,
    attempt: F,
) -> Result<(), RejectReason>
where
    M: CutModel,
    F: FnMut(&mut ReservationTxn<'_, M>, NodeId) -> bool,
{
    search_and_place_traced(
        topo,
        state,
        total_vms,
        ext_demand,
        start_level,
        search,
        None,
        attempt,
    )
}

/// [`search_and_place_with`] that additionally records every attempted
/// subtree into `trace` (see [`PlacementTrace`]) — the concurrent engine's
/// evidence that a speculative placement read only the pods it attempted.
#[allow(clippy::too_many_arguments)]
pub fn search_and_place_traced<M, F>(
    topo: &mut Topology,
    state: &mut TenantState<M>,
    total_vms: u64,
    ext_demand: (Kbps, Kbps),
    start_level: usize,
    search: SearchStrategy,
    mut trace: Option<&mut PlacementTrace>,
    mut attempt: F,
) -> Result<(), RejectReason>
where
    M: CutModel,
    F: FnMut(&mut ReservationTxn<'_, M>, NodeId) -> bool,
{
    let root_level = topo.num_levels() - 1;
    let mut level = start_level.min(root_level);
    loop {
        let st = match search.find(topo, level, total_vms, ext_demand) {
            Some(st) => st,
            None => {
                if level >= root_level {
                    return Err(reject_reason(topo, total_vms));
                }
                level += 1;
                continue;
            }
        };
        if let Some(t) = trace.as_deref_mut() {
            t.attempts.push(st);
        }
        let mut txn = ReservationTxn::begin(topo, state);
        if attempt(&mut txn, st) {
            // Reserve the tenant's external traffic above st
            // (`ReserveBW(map, root)`).
            let ok = match txn.topo().parent(st) {
                Some(p) => txn.sync_path_to_root(p).is_ok(),
                None => true,
            };
            if ok {
                txn.commit();
                return Ok(());
            }
        }
        drop(txn); // roll back the failed attempt
        if st == topo.root() {
            return Err(reject_reason(topo, total_vms));
        }
        level = topo.level(st) as usize + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TagBuilder;
    use cm_topology::{mbps, TreeSpec};

    fn hose(n: u32, sr: Kbps) -> Tag {
        let mut b = TagBuilder::new("hose");
        let t = b.tier("t", n);
        b.self_loop(t, sr).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn deployed_erases_the_model_without_boxing_per_algorithm() {
        let mut topo = Topology::build(&TreeSpec::small(
            1,
            2,
            2,
            4,
            [mbps(1000.0), mbps(1000.0), mbps(1000.0)],
        ));
        let tag = hose(4, 100);
        let mut st = TenantState::new(tag.clone());
        let s = topo.servers()[0];
        st.place(&mut topo, s, 0, 4).unwrap();
        st.sync_uplink(&mut topo, s).unwrap();
        let d = Deployed::from(st);
        assert_eq!(d.total_placed(&topo), 4);
        assert_eq!(d.tier_sizes(), vec![4]);
        d.check_consistency(&topo).unwrap();
        d.release(&mut topo);
        assert_eq!(topo.subtree_slots_free(topo.root()), 4 * 4);
        for l in 0..topo.num_levels() {
            assert_eq!(topo.reserved_at_level(l), (0, 0));
        }
    }

    #[test]
    fn search_climbs_levels_and_rejects_at_root() {
        let mut topo = Topology::build(&TreeSpec::small(
            2,
            2,
            2,
            4,
            [mbps(1000.0), mbps(1000.0), mbps(1000.0)],
        ));
        let tag = hose(40, 1); // more VMs than the 32 slots
        let mut st = TenantState::new(tag.clone());
        let err = search_and_place(&mut topo, &mut st, 40, (0, 0), 0, |_txn, _st| {
            panic!("no subtree can host 40 VMs; attempt must never run")
        })
        .unwrap_err();
        assert_eq!(err, RejectReason::InsufficientSlots);
        topo.check_invariants().unwrap();
    }

    #[test]
    fn failed_attempts_leave_no_trace() {
        let mut topo = Topology::build(&TreeSpec::small(
            2,
            2,
            2,
            4,
            [mbps(1000.0), mbps(1000.0), mbps(1000.0)],
        ));
        let tag = hose(4, mbps(900.0)); // cut price far beyond any uplink
        let mut st = TenantState::new(tag.clone());
        let mut attempts = 0;
        let err = search_and_place(&mut topo, &mut st, 4, (0, 0), 0, |txn, node| {
            attempts += 1;
            // Stage a partial placement, then report failure: the engine
            // must unwind it before climbing.
            let server = txn.topo().servers_under(node)[0];
            txn.place(server, 0, 1).unwrap();
            false
        })
        .unwrap_err();
        assert_eq!(err, RejectReason::InsufficientBandwidth);
        assert!(attempts > 1, "the search must climb levels");
        assert_eq!(st.total_placed(&topo), 0);
        assert_eq!(topo.subtree_slots_free(topo.root()), 32);
        topo.check_invariants().unwrap();
    }
}
